//! Runtime kernel dispatch (paper § 3.2.1): run the same pipeline with a
//! per-kernel mix of implementations — e.g. everything on the GPU except
//! one kernel pinned to the CPU "for testing and debugging purposes" —
//! and verify all mixes agree numerically.
//!
//! Run with: `cargo run --release --example kernel_dispatch`

use toast_repro::accel_sim::Context;
use toast_repro::toast_core::dispatch::{ImplKind, ImplSelection, KernelId};
use toast_repro::toast_core::kernels::ExecCtx;
use toast_repro::toast_core::pipeline::benchmark_pipeline;
use toast_repro::toast_core::workspace::Workspace;
use toast_repro::toast_satsim::Problem;

fn run_selection(problem: &Problem, selection: ImplSelection, kind: ImplKind) -> (Workspace, f64) {
    let mut ws = problem.rank_workspace(0, 4);
    let mut ctx = Context::new(problem.calib());
    let mut exec = ExecCtx::new(kind, 16);
    exec.selection = selection;
    let pipe = benchmark_pipeline(0.01);
    pipe.run(&mut ctx, &mut exec, &mut ws).expect("fits");
    (ws, ctx.total_seconds())
}

fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(1.0))
        .fold(0.0, f64::max)
}

fn main() {
    let mut problem = Problem::medium(1e-3);
    problem.n_det_total = 64;
    problem.total_samples *= 64.0 / 2048.0;
    problem.n_obs = 1;

    // Reference: everything on the CPU.
    let (reference, t_cpu) =
        run_selection(&problem, ImplSelection::all(ImplKind::Cpu), ImplKind::Cpu);
    println!("all-CPU reference        : {t_cpu:.4} s");

    // Everything JIT'd on the device.
    let (all_jit, t_jit) =
        run_selection(&problem, ImplSelection::all(ImplKind::Jit), ImplKind::Jit);
    println!(
        "all-JAX                  : {t_jit:.4} s   max signal diff {:.2e}",
        max_rel_diff(&reference.obs.signal, &all_jit.obs.signal)
    );

    // Offload everywhere, but pixels_healpix pinned to the CPU — the
    // paper's debugging workflow: "easily run only a subset of operators
    // on the GPU for testing and debugging purposes".
    let mixed = ImplSelection::all(ImplKind::OmpTarget)
        .with_override(KernelId::PixelsHealpix, ImplKind::Cpu);
    let (mixed_ws, t_mixed) = run_selection(&problem, mixed, ImplKind::OmpTarget);
    println!(
        "offload + CPU healpix mix: {t_mixed:.4} s   max signal diff {:.2e}",
        max_rel_diff(&reference.obs.signal, &mixed_ws.obs.signal)
    );

    let d_jit = max_rel_diff(&reference.obs.signal, &all_jit.obs.signal);
    let d_mix = max_rel_diff(&reference.obs.signal, &mixed_ws.obs.signal);
    assert!(d_jit < 1e-9 && d_mix < 1e-9, "implementations disagree");
    println!("\nall implementation mixes agree to < 1e-9 relative.");
}
