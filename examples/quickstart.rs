//! Quickstart: simulate a small satellite observation, run the benchmark
//! pipeline under all three kernel implementations, and print the
//! per-operation timing comparison the paper's profiling tooling produces.
//!
//! Run with: `cargo run --release --example quickstart`

use toast_repro::accel_sim::Context;
use toast_repro::toast_core::dispatch::ImplKind;
use toast_repro::toast_core::kernels::ExecCtx;
use toast_repro::toast_core::pipeline::benchmark_pipeline;
use toast_repro::toast_core::timing::{compare, Timers};
use toast_repro::toast_satsim::Problem;

fn main() {
    // A scaled-down version of the paper's medium problem: same scanning
    // pattern, focal-plane structure, interval statistics and noise model.
    let mut problem = Problem::medium(1e-3);
    problem.n_det_total = 128;
    problem.total_samples *= 128.0 / 2048.0;
    problem.n_obs = 2;

    println!(
        "workload: {} detectors x {} samples/obs x {} obs",
        problem.detectors_per_rank(1),
        problem.samples_per_detector(),
        problem.n_obs,
    );

    let mut runs: Vec<(&str, Timers)> = Vec::new();
    for (label, kind) in [
        ("cpu", ImplKind::Cpu),
        ("omp_target", ImplKind::OmpTarget),
        ("jax", ImplKind::Jit),
    ] {
        let mut ws = problem.rank_workspace(0, 1);
        let mut ctx = Context::new(problem.calib());
        let mut exec = ExecCtx::new(kind, 64);
        let host = problem.host_seconds_per_rank(&ws, 1);
        let pipe = benchmark_pipeline(host);
        for _ in 0..problem.n_obs {
            pipe.run(&mut ctx, &mut exec, &mut ws)
                .expect("workload fits on the simulated device");
        }
        println!(
            "{label:>10}: simulated {:.4} s ({} kernel launches, {:.1} MB over PCIe)",
            ctx.total_seconds(),
            ctx.trace().kernel_count(),
            ctx.trace().transfer_bytes() / 1e6,
        );
        let mut timers = Timers::new();
        timers.absorb_context(&ctx);
        runs.push((label, timers));
    }

    // The paper's "comparative spreadsheet" (§ 3.2.3): one row per
    // operation, one column per implementation.
    let refs: Vec<(&str, &Timers)> = runs.iter().map(|(l, t)| (*l, t)).collect();
    println!("\nper-operation comparison (seconds):\n{}", compare(&refs));
}
