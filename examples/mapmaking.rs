//! Destriping map-making: the scientific workload the template-offset
//! kernels exist for.
//!
//! A CMB timestream is modelled as `d = P_sky m + F a + n`, where `F`
//! spreads step-wise offset amplitudes `a` (the 1/f noise baseline) onto
//! the timestream. Destriping estimates `a` by solving the normal
//! equations `(Fᵀ F + εI) a = Fᵀ d` with conjugate gradients — every
//! matrix-vector product built from `template_offset_add_to_signal`
//! (apply `F`), `template_offset_project_signal` (apply `Fᵀ`) and
//! `template_offset_apply_diag_precond` — then bins the cleaned
//! timestream into a sky map with `build_noise_weighted`.
//!
//! Run with: `cargo run --release --example mapmaking`

use toast_repro::accel_sim::Context;
use toast_repro::toast_core::dispatch::{ImplKind, KernelId};
use toast_repro::toast_core::kernels::{run_kernel, ExecCtx};
use toast_repro::toast_core::workspace::Workspace;
use toast_repro::toast_satsim::Problem;

/// Apply `F` to `amps`: zero the signal, load the amplitudes, run the
/// add-to-signal kernel, return the resulting timestream.
fn apply_f(ctx: &mut Context, exec: &mut ExecCtx, ws: &mut Workspace, amps: &[f64]) -> Vec<f64> {
    ws.amplitudes.copy_from_slice(amps);
    ws.obs.signal.fill(0.0);
    run_kernel(ctx, exec, ws, KernelId::TemplateOffsetAddToSignal).expect("buffers resident");
    ws.obs.signal.clone()
}

/// Apply `Fᵀ` to a timestream.
fn apply_ft(ctx: &mut Context, exec: &mut ExecCtx, ws: &mut Workspace, tod: &[f64]) -> Vec<f64> {
    ws.obs.signal.copy_from_slice(tod);
    ws.amp_out.fill(0.0);
    run_kernel(ctx, exec, ws, KernelId::TemplateOffsetProjectSignal).expect("buffers resident");
    ws.amp_out.clone()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn main() {
    // A small observation with strong synthetic striping.
    let mut problem = Problem::medium(1e-3);
    problem.n_det_total = 8;
    problem.total_samples = 5e9 * 8.0 / 2048.0;
    problem.n_obs = 1;
    let mut ws = problem.rank_workspace(0, 1);
    // Offsets can only be recovered above the noise if each step averages
    // enough samples; use a ~50-sample step rather than the scaled
    // benchmark default.
    ws.step_length = 50;
    ws.n_amp = ws.obs.n_samples.div_ceil(ws.step_length);
    let n_total = ws.obs.n_det * ws.n_amp;
    ws.amplitudes = vec![0.0; n_total];
    ws.amp_out = vec![0.0; n_total];
    ws.precond = vec![1.0; n_total];
    let mut ctx = Context::new(problem.calib());
    let mut exec = ExecCtx::new(ImplKind::Cpu, 8);

    // Ground truth: known step offsets injected into the signal.
    let n_amp_total = ws.amplitudes.len();
    let truth: Vec<f64> = (0..n_amp_total)
        .map(|i| ((i * 37 % 19) as f64 - 9.0) * 0.5)
        .collect();
    let baseline = ws.obs.signal.clone(); // noise etc.
    let striped = apply_f(&mut ctx, &mut exec, &mut ws, &truth);
    let data: Vec<f64> = baseline.iter().zip(&striped).map(|(n, s)| n + s).collect();

    // Destripe: CG on (FᵀF + εI) a = Fᵀ d.
    let eps = 1e-3;
    let rhs = apply_ft(&mut ctx, &mut exec, &mut ws, &data);
    let mut a = vec![0.0; n_amp_total];
    let mut r = rhs.clone();
    let mut p = r.clone();
    let mut rz = dot(&r, &r);
    println!(
        "CG destriper: {} amplitudes, step {} samples",
        n_amp_total, ws.step_length
    );
    for iter in 0..50 {
        let f_p = apply_f(&mut ctx, &mut exec, &mut ws, &p);
        let mut ap = apply_ft(&mut ctx, &mut exec, &mut ws, &f_p);
        for (api, pi) in ap.iter_mut().zip(&p) {
            *api += eps * pi;
        }
        let alpha = rz / dot(&p, &ap);
        for i in 0..n_amp_total {
            a[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rz_new = dot(&r, &r);
        if iter % 10 == 0 || rz_new.sqrt() < 1e-8 {
            println!("  iter {iter:>3}: residual {:.3e}", rz_new.sqrt());
        }
        if rz_new.sqrt() < 1e-8 {
            break;
        }
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n_amp_total {
            p[i] = r[i] + beta * p[i];
        }
    }

    // Offsets are only constrained up to a common additive constant per
    // detector; compare after removing per-detector means.
    let n_amp = ws.n_amp;
    let mut err_rms = 0.0;
    let mut truth_rms = 0.0;
    for det in 0..ws.obs.n_det {
        let sl = det * n_amp..(det + 1) * n_amp;
        let mean_a: f64 = a[sl.clone()].iter().sum::<f64>() / n_amp as f64;
        let mean_t: f64 = truth[sl.clone()].iter().sum::<f64>() / n_amp as f64;
        for i in sl {
            let e = (a[i] - mean_a) - (truth[i] - mean_t);
            err_rms += e * e;
            truth_rms += (truth[i] - mean_t).powi(2);
        }
    }
    let ratio = (err_rms / truth_rms).sqrt();
    println!("recovered offsets: relative RMS error {ratio:.3e} (mean-removed)");
    assert!(ratio < 0.35, "destriper failed to recover the offsets");

    // Bin the destriped, noise-weighted map.
    let cleaned_offsets = apply_f(&mut ctx, &mut exec, &mut ws, &a);
    ws.obs.signal = data
        .iter()
        .zip(&cleaned_offsets)
        .map(|(d, o)| d - o)
        .collect();
    run_kernel(&mut ctx, &mut exec, &mut ws, KernelId::PointingDetector).expect("buffers resident");
    run_kernel(&mut ctx, &mut exec, &mut ws, KernelId::PixelsHealpix).expect("buffers resident");
    run_kernel(&mut ctx, &mut exec, &mut ws, KernelId::StokesWeightsIqu).expect("buffers resident");
    ws.zmap.fill(0.0);
    run_kernel(&mut ctx, &mut exec, &mut ws, KernelId::BuildNoiseWeighted)
        .expect("buffers resident");
    let hit_pixels = ws.zmap.chunks(3).filter(|c| c[0] != 0.0).count();
    println!(
        "binned destriped map: {hit_pixels} of {} pixels hit; simulated cost {:.4} s",
        ws.geom.n_pix(),
        ctx.total_seconds()
    );
}
