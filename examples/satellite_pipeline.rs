//! The paper's benchmark scenario end to end: a satellite scanning
//! simulation processed by the hybrid CPU/GPU pipeline, comparing the
//! OpenMP-CPU baseline against both GPU ports and reporting the same
//! headline numbers as Fig. 5 (overall speedups) at example scale.
//!
//! Run with: `cargo run --release --example satellite_pipeline`

use toast_repro::accel_sim::Context;
use toast_repro::toast_core::dispatch::ImplKind;
use toast_repro::toast_core::kernels::ExecCtx;
use toast_repro::toast_core::pipeline::benchmark_pipeline;
use toast_repro::toast_satsim::Problem;

fn simulate(problem: &Problem, kind: ImplKind, procs: u32) -> Option<f64> {
    // Simulate one representative rank of the node and scale: for this
    // example we report per-rank pipeline time (the figure binaries do the
    // full multi-rank discrete-event replay).
    let mut ws = problem.rank_workspace(0, procs);
    let mut ctx = Context::new(problem.calib());
    let mut exec = ExecCtx::new(kind, 64 / procs);
    let host = problem.host_seconds_per_rank(&ws, procs);
    let pipe = benchmark_pipeline(host);
    for _ in 0..problem.n_obs {
        if pipe.run(&mut ctx, &mut exec, &mut ws).is_err() {
            return None; // device out of memory
        }
    }
    Some(ctx.total_seconds())
}

fn main() {
    let mut problem = Problem::medium(1e-3);
    problem.n_det_total = 256;
    problem.total_samples *= 256.0 / 2048.0;
    problem.n_obs = 4;
    let procs = 16;

    println!(
        "satellite simulation: {} detectors/rank, {} samples/obs, {} obs, {} procs\n",
        problem.detectors_per_rank(procs),
        problem.samples_per_detector(),
        problem.n_obs,
        procs
    );

    let cpu = simulate(&problem, ImplKind::Cpu, procs).expect("cpu fits");
    println!("OpenMP CPU baseline : {:.4} s", cpu);

    for (label, kind) in [
        ("JAX (device)", ImplKind::Jit),
        ("OpenMP Target Offload", ImplKind::OmpTarget),
        ("JAX (CPU backend)", ImplKind::JitCpu),
    ] {
        match simulate(&problem, kind, procs) {
            Some(t) if t < cpu => {
                println!("{label:<21}: {:.4} s  ({:.2}x faster)", t, cpu / t)
            }
            Some(t) => println!("{label:<21}: {:.4} s  ({:.2}x slower)", t, t / cpu),
            None => println!("{label:<21}: out of device memory"),
        }
    }
    println!("\npaper (full scale, Fig. 5): JAX 2.28x faster, OpenMP Target 2.58x");
    println!("faster, JAX CPU backend 7.4x slower than the parallel CPU baseline.");
}
