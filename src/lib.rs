//! Umbrella crate for the toast-repro workspace.
//!
//! Re-exports every sub-crate so the runnable examples and the
//! cross-crate integration tests under `tests/` have a single import root.

#![forbid(unsafe_code)]

pub use accel_sim;
pub use arrayjit;
pub use loc_count;
pub use offload;
pub use toast_core;
pub use toast_fft;
pub use toast_healpix;
pub use toast_rng;
pub use toast_satsim;
