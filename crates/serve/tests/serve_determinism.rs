//! Determinism for batched serving: the same job set must produce
//! byte-identical per-job results whatever order the jobs arrive in,
//! whatever `RAYON_NUM_THREADS` says, and whether they are batched into
//! one drain or submitted serially — the service-level lift of the
//! engine and sweep determinism suites. Scenario jobs use a pure
//! in-process executor (the real runner's determinism is locked by
//! `engine_determinism` and the e2e golden test); sweep jobs run the
//! real compile-once engine, which is where batching and the thread
//! pool could actually leak.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use accel_sim::{KernelProfile, RankTrace, RecordMeta, RecordedWorkload, Segment, TransferDir};
use scenario::{ProblemSize, Scenario};
use simd_serve::{ScenarioExec, ScenarioOutcome, ServeConfig, Service};

/// Deterministic pure-function executor: outcome depends only on the
/// scenario, never on order, threads, or time.
struct PureExec;

impl ScenarioExec for PureExec {
    fn run_scenario(&mut self, s: &Scenario) -> Result<ScenarioOutcome, String> {
        let base = s.procs_per_node as f64 * 0.03125 + s.gpus as f64 * 0.21875;
        Ok(ScenarioOutcome {
            makespan: base + 0.0078125,
            node_wall: base,
            comm_seconds: 0.0078125,
            transfer_bytes: 1e7 * s.procs_per_node as f64,
            segments: 50 * s.procs_per_node as usize,
        })
    }
}

fn recording(label: &str, skew: f64) -> RecordedWorkload {
    let rank = |f: f64| RankTrace {
        segments: vec![
            Segment::Host {
                seconds: 1e-4 * f,
                label: "serial".into(),
            },
            Segment::Transfer {
                bytes: 3e6 * f,
                dir: TransferDir::HostToDevice,
                label: "accel_data_update_device".into(),
            },
            Segment::Kernel {
                profile: KernelProfile::uniform("k", 8e6, 20.0 * f, 8.0),
                dispatch: 1e-5,
            },
            Segment::Collective {
                seconds: 2e-4,
                bytes: 1e6,
                label: "mpi_allreduce".into(),
            },
        ],
        ..RankTrace::default()
    };
    let meta = RecordMeta {
        label: label.into(),
        total_ranks: 4,
        ..RecordMeta::default()
    };
    RecordedWorkload::capture(
        vec![
            vec![rank(1.0), rank(1.3 * skew)],
            vec![rank(0.8), rank(1.9 * skew)],
        ],
        meta,
    )
}

/// The job set: two scenarios, two sweeps sharing a recording (so the
/// batch coalesces them onto one compiled arena), one sweep on another.
fn job_lines(rec1: &Path, rec2: &Path, out_dir: &Path) -> Vec<(String, String)> {
    let scn = |id: &str, procs: u32, gpus: u32| {
        let mut s = Scenario::new(id, ProblemSize::Medium, 1e-3).with_procs(procs);
        s.gpus = gpus;
        (
            id.to_string(),
            format!(
                "{{\"type\":\"submit\",\"id\":\"{id}\",\"scenario\":{}}}",
                s.to_json_compact()
            ),
        )
    };
    let sweep = |id: &str, rec: &Path, grid: &str, out: Option<PathBuf>| {
        let out = out.map_or(String::new(), |p| format!(",\"out\":\"{}\"", p.display()));
        (
            id.to_string(),
            format!(
                "{{\"type\":\"sweep\",\"id\":\"{id}\",\"recording\":\"{}\",\"grid\":\"{grid}\"{out}}}",
                rec.display()
            ),
        )
    };
    vec![
        scn("scn-a", 4, 2),
        scn("scn-b", 8, 4),
        sweep(
            "swp-1",
            rec1,
            "gpus=1..4;calib=identity,h100",
            Some(out_dir.join("swp-1.jsonl")),
        ),
        sweep(
            "swp-2",
            rec1,
            "gpus=2,8;calib=a100,slingshot11;schedule=fifo",
            None,
        ),
        sweep("swp-3", rec2, "gpus=1,2;calib=identity,a100-nvlink", None),
    ]
}

/// Drop the `"out":<path>` attribute from a done event, so events are
/// comparable across sessions writing to different files.
fn strip_out(line: &str) -> String {
    let Some(i) = line.find(",\"out\":\"") else {
        return line.to_string();
    };
    let bytes = line.as_bytes();
    let mut j = i + 9;
    while j < line.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => break,
            _ => j += 1,
        }
    }
    format!("{}{}", &line[..i], &line[j + 1..])
}

/// Run one service session submitting `order`, then one drain; return
/// each job's `done` event (with the session-specific `out` path
/// stripped) keyed by id, plus the stats line.
fn session(order: &[&(String, String)]) -> (BTreeMap<String, String>, String) {
    let mut svc = Service::new(ServeConfig::default(), PureExec);
    let input: String = order
        .iter()
        .map(|(_, line)| format!("{line}\n"))
        .collect::<String>()
        + "{\"type\":\"drain\"}\n{\"type\":\"stats\"}\n";
    let mut out = Vec::new();
    svc.serve(input.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let mut done = BTreeMap::new();
    let mut stats = String::new();
    for line in text.lines() {
        if line.contains("\"type\":\"stats\"") {
            stats = line.to_string();
        }
        if !line.contains("\"state\":\"done\"") {
            continue;
        }
        let id = {
            let i = line.find("\"id\":\"").unwrap() + 6;
            line[i..i + line[i..].find('"').unwrap()].to_string()
        };
        done.insert(id, strip_out(line));
    }
    (done, stats)
}

#[test]
fn per_job_results_are_identical_across_arrival_order_threads_and_batching() {
    let dir = std::env::temp_dir().join(format!("simd-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let rec1 = dir.join("rec1.jsonl");
    let rec2 = dir.join("rec2.jsonl");
    std::fs::write(&rec1, recording("det one", 1.0).to_jsonl()).unwrap();
    std::fs::write(&rec2, recording("det two", 1.7).to_jsonl()).unwrap();

    let jobs = job_lines(&rec1, &rec2, &dir);

    // Baseline: serial submission — every job in its own drain, one
    // thread — the least-batched execution possible.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let mut baseline: BTreeMap<String, String> = BTreeMap::new();
    let mut svc = Service::new(ServeConfig::default(), PureExec);
    for (id, line) in &jobs {
        let input = format!("{line}\n{{\"type\":\"drain\"}}\n");
        let mut out = Vec::new();
        svc.serve(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let done = text
            .lines()
            .find(|l| l.contains("\"state\":\"done\""))
            .unwrap_or_else(|| panic!("no done for {id}:\n{text}"));
        baseline.insert(id.clone(), strip_out(done));
    }
    assert_eq!(baseline.len(), jobs.len());
    assert_eq!(
        svc.stats().sweep_compiles,
        3,
        "serial drains cannot coalesce"
    );
    assert_eq!(svc.stats().sweep_jobs_coalesced, 0);
    let swp1_baseline = std::fs::read(dir.join("swp-1.jsonl")).unwrap();

    let orders: [Vec<usize>; 3] = [
        vec![0, 1, 2, 3, 4],
        vec![4, 3, 2, 1, 0],
        vec![2, 0, 4, 1, 3],
    ];
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        for order in &orders {
            std::fs::remove_file(dir.join("swp-1.jsonl")).ok();
            let ordered: Vec<&(String, String)> = order.iter().map(|&i| &jobs[i]).collect();
            let (done, stats) = session(&ordered);
            for (id, expected) in &baseline {
                assert_eq!(
                    done.get(id),
                    Some(expected),
                    "job {id} diverged (threads={threads}, order={order:?})"
                );
            }
            // The two rec1 sweeps shared one compiled arena.
            assert!(
                stats.contains("\"sweep_compiles\":2,\"sweep_jobs_coalesced\":1"),
                "batch must coalesce rec1's sweeps: {stats}"
            );
            assert_eq!(
                std::fs::read(dir.join("swp-1.jsonl")).unwrap(),
                swp1_baseline,
                "sweep output bytes diverged (threads={threads}, order={order:?})"
            );
        }
    }

    std::env::remove_var("RAYON_NUM_THREADS");
    std::fs::remove_dir_all(&dir).unwrap();
}
