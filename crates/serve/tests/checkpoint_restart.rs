//! Checkpoint/restart differential test: a real `simd` process is
//! SIGKILLed mid-sweep at a checkpoint boundary, restarted with
//! `--resume`, and must produce sweep output byte-identical to an
//! uninterrupted run — the service-level face of the engine's
//! resumable-sweep bit-identity contract.

mod common;

use common::{event, raw_field, run_simd, spawn_simd};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use accel_sim::{KernelProfile, RankTrace, RecordMeta, RecordedWorkload, Segment, TransferDir};

/// A synthetic two-node recording, heavy enough that its 40-point grid
/// spans several checkpoint chunks but replays in milliseconds.
fn recording() -> RecordedWorkload {
    let rank = |f: f64, extra: usize| {
        let mut segments = vec![
            Segment::Host {
                seconds: 2e-4 * f,
                label: "serial".into(),
            },
            Segment::Transfer {
                bytes: 4e6 * f,
                dir: TransferDir::HostToDevice,
                label: "accel_data_update_device".into(),
            },
            Segment::Kernel {
                profile: KernelProfile::uniform("k_big", 1e7, 24.0 * f, 8.0),
                dispatch: 1e-5,
            },
            Segment::Collective {
                seconds: 3e-4,
                bytes: 1e6,
                label: "mpi_allreduce".into(),
            },
        ];
        for i in 0..extra {
            segments.push(Segment::Kernel {
                profile: KernelProfile::uniform("k_small", 5e4, 60.0 + i as f64, 16.0),
                dispatch: 1e-5,
            });
        }
        RankTrace {
            segments,
            ..RankTrace::default()
        }
    };
    let node_a = vec![rank(1.0, 1), rank(1.4, 2)];
    let node_b = vec![rank(0.9, 3), rank(1.8, 0)];
    let meta = RecordMeta {
        label: "checkpoint restart".into(),
        total_ranks: 4,
        ..RecordMeta::default()
    };
    RecordedWorkload::capture(vec![node_a, node_b], meta)
}

/// 5 calibrations × 8 GPU counts × the recorded schedule = 40 points.
const GRID: &str = "gpus=1..8;calib=identity,a100,h100,a100-nvlink,slingshot11";

fn sweep_req(id: &str, recording: &Path, out: &Path) -> String {
    format!(
        "{{\"type\":\"sweep\",\"id\":\"{id}\",\"recording\":\"{}\",\"grid\":\"{GRID}\",\"out\":\"{}\"}}\n",
        recording.display(),
        out.display()
    )
}

#[test]
fn killed_and_resumed_sweep_output_is_byte_identical() {
    let dir = std::env::temp_dir().join(format!("simd-ckpt-{}", std::process::id()));
    let ckdir = dir.join("ckpt");
    std::fs::create_dir_all(&ckdir).unwrap();
    let rec = dir.join("recording.jsonl");
    std::fs::write(&rec, recording().to_jsonl()).unwrap();
    let out_a = dir.join("uninterrupted.jsonl");
    let out_b = dir.join("resumed.jsonl");
    let ck_args = [
        "--checkpoint-dir",
        ckdir.to_str().unwrap(),
        "--checkpoint-every",
        "8",
    ];

    // Oracle: the same job, never interrupted.
    let lines = run_simd(&[], &[], &sweep_req("ck", &rec, &out_a));
    let done = event(&lines, "ck", "done");
    assert_eq!(raw_field(done, "points"), "40");
    let oracle = std::fs::read(&out_a).expect("uninterrupted output");

    // Interrupted run: checkpoint every 8 points, with a long post-
    // checkpoint pause so the SIGKILL deterministically lands between
    // the first cursor write and the next chunk.
    let mut child = spawn_simd(&ck_args, &[("SIMD_SERVE_CHUNK_SLEEP_MS", "2000")], &dir);
    let mut stdin = child.stdin.take().unwrap();
    writeln!(
        stdin,
        "{}{{\"type\":\"drain\"}}",
        sweep_req("ck", &rec, &out_b)
    )
    .unwrap();
    stdin.flush().unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "simd exited before its first checkpoint");
        if line.contains("\"state\":\"checkpoint\"") {
            break;
        }
    }
    child.kill().unwrap();
    child.wait().unwrap();
    drop(stdin);

    let ckpt = ckdir.join("ck.ckpt.jsonl");
    assert!(ckpt.exists(), "killed run must leave its cursor behind");
    assert!(!out_b.exists(), "killed run must not have written output");

    // Restart with --resume: adopts the cursor, finishes the grid.
    let args: Vec<&str> = ck_args.iter().copied().chain(["--resume"]).collect();
    let lines = run_simd(&args, &[], &sweep_req("ck", &rec, &out_b));
    let running = event(&lines, "ck", "running");
    let resumed: usize = raw_field(running, "resumed").parse().unwrap();
    assert!(
        (8..40).contains(&resumed),
        "expected a partial cursor, resumed {resumed} of 40"
    );
    event(&lines, "ck", "done");

    assert_eq!(
        std::fs::read(&out_b).expect("resumed output"),
        oracle,
        "resumed sweep output diverged from the uninterrupted run"
    );
    assert!(
        !ckpt.exists(),
        "completed sweep must remove its cursor file"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_stale_cursor_for_a_different_grid_is_ignored() {
    let dir = std::env::temp_dir().join(format!("simd-stale-{}", std::process::id()));
    let ckdir = dir.join("ckpt");
    std::fs::create_dir_all(&ckdir).unwrap();
    let rec = dir.join("recording.jsonl");
    std::fs::write(&rec, recording().to_jsonl()).unwrap();
    let out_a = dir.join("fresh.jsonl");
    let out_b = dir.join("after-stale.jsonl");
    let ck_args = [
        "--checkpoint-dir",
        ckdir.to_str().unwrap(),
        "--checkpoint-every",
        "8",
    ];

    let lines = run_simd(&[], &[], &sweep_req("job", &rec, &out_a));
    event(&lines, "job", "done");

    // Leave a cursor under the same job id but from a different grid
    // (different sweep digest): a resumed service must refuse to splice
    // it in and start fresh instead.
    let small = run_simd(
        &ck_args,
        &[],
        &format!(
            "{{\"type\":\"sweep\",\"id\":\"job\",\"recording\":\"{}\",\"grid\":\"gpus=1..4;calib=identity\"}}\n",
            rec.display()
        ),
    );
    event(&small, "job", "done");
    let ckpt = ckdir.join("job.ckpt.jsonl");
    // The small sweep completed, removing its cursor; forge a stale one
    // from its output shape instead.
    assert!(!ckpt.exists());
    std::fs::write(
        &ckpt,
        "{\"type\":\"sweep_checkpoint\",\"version\":1,\"digest\":12345,\"total\":40,\"completed\":0}\n",
    )
    .unwrap();

    let args: Vec<&str> = ck_args.iter().copied().chain(["--resume"]).collect();
    let lines = run_simd(&args, &[], &sweep_req("job", &rec, &out_b));
    let running = event(&lines, "job", "running");
    assert_eq!(raw_field(running, "resumed"), "0", "{running}");
    assert_eq!(
        std::fs::read(&out_b).unwrap(),
        std::fs::read(&out_a).unwrap(),
        "a refused cursor must not change the output"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
