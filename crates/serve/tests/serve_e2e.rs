//! End-to-end service tests: a real `simd` process driven over its
//! stdin/stdout pipe protocol, exactly as a shell client would.
//!
//! The three locks, in order: a service-submitted golden scenario
//! reproduces the standalone runner's makespan bit for bit; a known-bad
//! scenario is rejected at admission carrying the exact simlint
//! diagnostics the `lint` binary would print; overfilling the bounded
//! queue yields the typed `queue_full` backpressure rejection, and the
//! overflow costs the admitted jobs nothing.

mod common;

use common::{event, raw_field, run_simd};
use repro_bench::{run_config, runner::RunConfig};
use scenario::{check_scenario, ImplKind, NetCalib, NodeCalib, ProblemSize, Scenario};
use std::path::Path;

fn golden_scenario() -> Scenario {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/whatif_record.json");
    Scenario::read(&path).expect("golden scenario")
}

fn submit(id: &str, s: &Scenario) -> String {
    format!(
        "{{\"type\":\"submit\",\"id\":\"{id}\",\"scenario\":{}}}\n",
        s.to_json_compact()
    )
}

#[test]
fn served_golden_scenario_is_bit_identical_to_the_standalone_run() {
    let s = golden_scenario();

    // Oracle: the standalone path every figure binary uses.
    let cfg = RunConfig::from_scenario(&s).expect("config");
    let out = run_config(&cfg).expect("standalone run");
    let node_wall = *out.node_wall.as_ref().expect("fits on device");
    let makespan = node_wall + out.comm_seconds;

    let lines = run_simd(&[], &[], &submit("golden", &s));
    let done = event(&lines, "golden", "done");
    let served: f64 = raw_field(done, "makespan").parse().expect("makespan");
    assert_eq!(
        served.to_bits(),
        makespan.to_bits(),
        "served makespan {served} != standalone {makespan}"
    );
    let served_wall: f64 = raw_field(done, "node_wall").parse().expect("node_wall");
    assert_eq!(served_wall.to_bits(), node_wall.to_bits());
    let segments: usize = raw_field(done, "segments").parse().expect("segments");
    assert_eq!(
        segments,
        out.traces.iter().map(|t| t.segments.len()).sum::<usize>()
    );
}

#[test]
fn doomed_scenario_is_rejected_with_the_exact_simlint_diagnostics() {
    // Parses and validates, but 64 JIT ranks sharing one default device
    // provably cannot reserve their framework memory (S006, error).
    let mut doomed = Scenario::new("doomed", ProblemSize::Medium, 1e-3)
        .with_kind(ImplKind::Jit)
        .with_procs(64)
        .with_calib_inline(NodeCalib::default(), NetCalib::default());
    doomed.gpus = 1;
    let oracle = check_scenario(&doomed);
    assert!(!oracle.is_clean(), "fixture must carry an error finding");

    let lines = run_simd(&[], &[], &submit("doomed", &doomed));
    let rejected = event(&lines, "doomed", "rejected");
    assert!(rejected.contains("\"reason\":\"lint\""), "{rejected}");
    for d in &oracle.diagnostics {
        assert!(
            rejected.contains(&d.to_json()),
            "event is missing diagnostic {}\nevent: {rejected}",
            d.to_json()
        );
    }
    // Rejected at admission: the job never ran.
    assert!(
        !lines.iter().any(|l| l.contains("\"state\":\"running\"")),
        "{lines:#?}"
    );
}

#[test]
fn overfilling_the_queue_is_a_typed_backpressure_rejection() {
    let s = golden_scenario();
    let input: String = (1..=3).map(|i| submit(&format!("q{i}"), &s)).collect();
    let lines = run_simd(
        &["--queue-bound", "2"],
        &[],
        &(input + "{\"type\":\"stats\"}\n"),
    );

    for id in ["q1", "q2"] {
        event(&lines, id, "admitted");
    }
    let rejected = event(&lines, "q3", "rejected");
    assert!(rejected.contains("\"reason\":\"queue_full\""), "{rejected}");
    assert!(
        rejected.contains("\"queue_depth\":2,\"bound\":2"),
        "{rejected}"
    );
    assert!(
        rejected.contains("queue full: 2 jobs queued at bound 2; drain before submitting more"),
        "{rejected}"
    );

    let stats = lines
        .iter()
        .find(|l| l.contains("\"type\":\"stats\""))
        .expect("stats line");
    assert!(stats.contains("\"rejected_queue_full\":1"), "{stats}");

    // EOF drains the two admitted jobs; the rejected one stays rejected.
    for id in ["q1", "q2"] {
        event(&lines, id, "done");
    }
    assert!(
        !lines
            .iter()
            .any(|l| l.contains("\"id\":\"q3\"") && l.contains("\"state\":\"done\"")),
        "{lines:#?}"
    );
}
