//! Shared plumbing for the service e2e suites: locate (building if
//! needed) the real `simd` binary and drive it over its stdin/stdout
//! pipe protocol, the way a shell client would.

#![allow(dead_code)]

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// Path to the `simd` binary for the active profile. Integration tests
/// of `simd-serve` cannot use `CARGO_BIN_EXE_*` (the binary belongs to
/// `repro-bench`), so resolve it relative to the test executable and
/// build it on first use — the cargo invocation blocks on the shared
/// target-dir lock, so concurrent test binaries serialize cleanly.
pub fn simd_bin() -> PathBuf {
    let mut dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("deps dir")
        .to_path_buf();
    dir.pop(); // target/<profile>
    let bin = dir.join("simd");
    if !bin.exists() {
        let mut cmd = Command::new("cargo");
        cmd.args(["build", "-p", "repro-bench", "--bin", "simd"]);
        if dir.file_name().is_some_and(|n| n == "release") {
            cmd.arg("--release");
        }
        let status = cmd.status().expect("cargo build -p repro-bench --bin simd");
        assert!(status.success(), "building simd failed");
    }
    bin
}

/// Spawn `simd` with piped stdio in `cwd`.
pub fn spawn_simd(args: &[&str], envs: &[(&str, &str)], cwd: &std::path::Path) -> Child {
    let mut cmd = Command::new(simd_bin());
    cmd.args(args)
        .current_dir(cwd)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn simd")
}

/// Run one full `simd` session: write `input` to its stdin, close it,
/// collect every event line, and require a clean exit.
pub fn run_simd(args: &[&str], envs: &[(&str, &str)], input: &str) -> Vec<String> {
    let cwd = std::env::current_dir().expect("cwd");
    let mut child = spawn_simd(args, envs, &cwd);
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    let lines: Vec<String> = BufReader::new(child.stdout.take().expect("stdout"))
        .lines()
        .map(|l| l.expect("event line"))
        .collect();
    let status = child.wait().expect("wait");
    assert!(status.success(), "simd exited with {status}:\n{lines:#?}");
    lines
}

/// The status event for `id` with the given state, or panic with the
/// full transcript.
pub fn event<'a>(lines: &'a [String], id: &str, state: &str) -> &'a String {
    let (id_pat, state_pat) = (format!("\"id\":\"{id}\""), format!("\"state\":\"{state}\""));
    lines
        .iter()
        .find(|l| l.contains(&id_pat) && l.contains(&state_pat))
        .unwrap_or_else(|| panic!("no {state} event for {id} in:\n{lines:#?}"))
}

/// Extract a numeric field's raw token from an event line.
pub fn raw_field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let i = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + pat.len();
    let rest = &line[i..];
    &rest[..rest.find([',', '}']).expect("field terminator")]
}
