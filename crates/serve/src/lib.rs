//! `simd-serve` — the long-running batched simulation service.
//!
//! The paper's figures are one-shot runs; the roadmap's north star is a
//! system serving heavy traffic. This crate is the loop between the two:
//! a service that accepts many small scenario and sweep jobs, admits
//! them through the `simlint` static analyzer, batches compatible work
//! through the compile-once sweep engine, and survives being killed
//! mid-sweep.
//!
//! ## Protocol
//!
//! Newline-delimited JSON in both directions — over stdin/stdout or a
//! Unix socket ([`serve_unix`]), never the network. Requests are
//! [`scenario::JobRequest`] envelopes:
//!
//! ```text
//! {"type":"submit","id":"j1","scenario":{…}}          queue a scenario
//! {"type":"sweep","id":"s1","recording":"w.jsonl",
//!  "grid":"gpus=1..8;calib=identity,h100",
//!  "deadline":0.5,"out":"res.jsonl"}                  queue a sweep grid
//! {"type":"stats"}                                    service counters
//! {"type":"drain"}                                    run every queued job
//! {"type":"shutdown"}                                 drain, then exit
//! ```
//!
//! Each job streams status events: `queued` → `admitted` or `rejected`
//! (with the simlint diagnostics, or a typed [`QueueFull`] backpressure
//! error) → `running` → `done` with metrics or `failed` with the typed
//! engine error text. EOF on the input behaves like `drain`: admitted
//! work always runs.
//!
//! ## Admission, batching, checkpoints
//!
//! Admission runs `scenario::check_scenario` / `accel_sim::check_workload`
//! *before* enqueueing, so a doomed job is refused in microseconds with
//! the exact error text its replay would have produced. A `drain` takes
//! the whole queue as one batch; sweep jobs sharing a recording (by
//! content digest) share one [`accel_sim::CompiledSweep`] arena, and
//! every grid fans out over the deterministic rayon pool. Long sweeps
//! write a [`accel_sim::SweepCheckpoint`] cursor after every chunk
//! (atomic tmp+rename), and a restarted service with `resume` enabled
//! adopts a digest-matching cursor — producing output byte-identical to
//! an uninterrupted run, the same determinism contract the engine suite
//! locks.
//!
//! The scenario *executor* is injected via [`ScenarioExec`]: the engine
//! lives below this crate, but problem construction and the kernel
//! ports live above it in `repro-bench`, whose `simd` binary plugs the
//! real runner in here.

#![forbid(unsafe_code)]

mod service;

#[cfg(unix)]
mod net;

pub use service::{
    Flow, QueueFull, ScenarioExec, ScenarioOutcome, ServeConfig, ServeStats, Service,
};

#[cfg(unix)]
pub use net::serve_unix;
