//! Unix-socket transport: the same [`Service`] loop, served to local
//! clients one connection at a time.
//!
//! Connections are handled sequentially on purpose: the service's whole
//! value is batching compatible jobs through one compiled arena and one
//! deterministic thread pool, and a second concurrent drain would race
//! both. A client that wants interleaving submits more jobs per
//! connection instead. There is deliberately no TCP listener — the
//! service prices simulations, it does not need a network attack
//! surface.

use std::io::{self, BufReader};
use std::os::unix::net::UnixListener;
use std::path::Path;

use crate::{ScenarioExec, Service};

/// Serve connections on a Unix socket at `path` until a client sends
/// `shutdown`. A stale socket file from a previous run is replaced. The
/// queue and counters persist across connections: jobs one client
/// queued and abandoned (EOF drains them) are visible in the stats any
/// later client reads.
pub fn serve_unix<E: ScenarioExec>(service: &mut Service<E>, path: &Path) -> io::Result<()> {
    // Binding fails with AddrInUse if the file exists, even with no
    // listener behind it; a leftover from a killed process is the
    // expected case for a service built to be killed and resumed.
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    let result = accept_loop(service, &listener);
    let _ = std::fs::remove_file(path);
    result
}

fn accept_loop<E: ScenarioExec>(
    service: &mut Service<E>,
    listener: &UnixListener,
) -> io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = BufReader::new(stream.try_clone()?);
        // A client vanishing mid-reply (broken pipe) ends that
        // connection, not the service.
        match service.serve(reader, stream) {
            Ok(true) => return Ok(()),
            Ok(false) => {}
            Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScenarioOutcome, ServeConfig};
    use scenario::Scenario;
    use std::io::{BufRead, Write};
    use std::os::unix::net::UnixStream;

    struct FixedExec;

    impl ScenarioExec for FixedExec {
        fn run_scenario(&mut self, _: &Scenario) -> Result<ScenarioOutcome, String> {
            Ok(ScenarioOutcome {
                makespan: 2.5,
                node_wall: 2.0,
                comm_seconds: 0.5,
                transfer_bytes: 0.0,
                segments: 10,
            })
        }
    }

    #[test]
    fn socket_serves_across_connections_and_stops_on_shutdown() {
        let dir = std::env::temp_dir().join(format!("simd-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("simd.sock");
        // Stale socket files must not wedge the next boot.
        std::fs::write(&sock, b"").unwrap();

        let path = sock.clone();
        let server = std::thread::spawn(move || {
            let mut svc = Service::new(ServeConfig::default(), FixedExec);
            serve_unix(&mut svc, &path).unwrap();
            svc.stats().completed
        });

        // First connection: queue one scenario, then EOF (drains it).
        let connect = || {
            for _ in 0..200 {
                if let Ok(s) = UnixStream::connect(&sock) {
                    return s;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            panic!("server never bound {}", sock.display());
        };
        let mut c1 = connect();
        let s = Scenario::new("net", scenario::ProblemSize::Medium, 1e-3);
        writeln!(
            c1,
            "{{\"type\":\"submit\",\"id\":\"n1\",\"scenario\":{}}}",
            s.to_json_compact()
        )
        .unwrap();
        c1.shutdown(std::net::Shutdown::Write).unwrap();
        let lines: Vec<String> = BufReader::new(c1).lines().map(|l| l.unwrap()).collect();
        assert!(
            lines.iter().any(|l| l.contains("\"state\":\"done\"")),
            "{lines:?}"
        );

        // Second connection sees the first one's work in the counters,
        // then shuts the service down.
        let mut c2 = connect();
        writeln!(c2, "{{\"type\":\"stats\"}}").unwrap();
        writeln!(c2, "{{\"type\":\"shutdown\"}}").unwrap();
        let mut reply = String::new();
        let mut r2 = BufReader::new(c2);
        r2.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"completed\":1"), "{reply}");

        assert_eq!(server.join().unwrap(), 1);
        assert!(!sock.exists(), "socket file must be removed on exit");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
