//! The service loop: bounded queue, simlint admission, batch draining
//! through the compile-once sweep engine, checkpointed long sweeps.
//!
//! Everything an event line carries is a deterministic function of the
//! submitted jobs — wall-clock quantities (busy seconds, events/sec)
//! appear only in the `stats` response, never in per-job status events,
//! which is what lets the determinism suite compare event bytes across
//! arrival orders and thread counts.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use accel_sim::{
    check_workload, sweep_digest, workload_digest, CompiledSweep, RecordedWorkload, Report,
    SweepCheckpoint, SweepPoint, SweepSpec,
};
use scenario::json::{esc, num};
use scenario::{check_scenario, JobRequest, Scenario};

/// Typed backpressure error: the bounded queue is at capacity. Carried
/// on the `rejected` event (`"reason":"queue_full"`) so clients can
/// distinguish "slow down" from "your job is broken".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Jobs currently queued.
    pub depth: usize,
    /// The admission bound they hit.
    pub bound: usize,
}

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue full: {} jobs queued at bound {}; drain before submitting more",
            self.depth, self.bound
        )
    }
}

impl std::error::Error for QueueFull {}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission bound on queued (not yet drained) jobs.
    pub queue_bound: usize,
    /// Directory for sweep checkpoint cursors; `None` disables them.
    pub checkpoint_dir: Option<PathBuf>,
    /// Grid points evaluated between checkpoints.
    pub checkpoint_every: usize,
    /// Adopt digest-matching checkpoint cursors left by a killed
    /// process; a stale or foreign cursor is ignored, never spliced in.
    pub resume: bool,
    /// Test hook: sleep this long after each non-final checkpoint, so
    /// kill-at-a-checkpoint tests have a deterministic window to land
    /// in. `0` (the default) disables it.
    pub chunk_sleep_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_bound: 16,
            checkpoint_dir: None,
            checkpoint_every: 8,
            resume: false,
            chunk_sleep_ms: 0,
        }
    }
}

/// What executing one scenario produced — the `done` event's payload.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Total simulated runtime (node wall + communication): the same
    /// quantity the standalone `repro-bench --scenario` run reports, bit
    /// for bit.
    pub makespan: f64,
    /// Simulated node wall seconds.
    pub node_wall: f64,
    /// Collective communication seconds.
    pub comm_seconds: f64,
    /// Bytes moved over PCIe, summed over ranks.
    pub transfer_bytes: f64,
    /// Trace segments replayed — the throughput counter's unit.
    pub segments: usize,
}

/// How scenario jobs execute. The engine lives below this crate but the
/// full runner (problem construction, kernel ports) lives above it in
/// `repro-bench`, so the service takes its executor by trait: the `simd`
/// binary injects the real runner, tests inject stubs.
pub trait ScenarioExec {
    /// Run one admitted scenario. `Err` is a job failure (typed engine
    /// error text), not a service failure.
    fn run_scenario(&mut self, scenario: &Scenario) -> Result<ScenarioOutcome, String>;
}

/// Service counters, exposed by the `stats` request.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests carrying a job id (including ones later rejected).
    pub submitted: u64,
    /// Jobs that passed admission and were queued.
    pub admitted: u64,
    /// Jobs refused with error-severity simlint findings.
    pub rejected_lint: u64,
    /// Jobs refused because their payload would not parse or load.
    pub rejected_invalid: u64,
    /// Jobs refused by [`QueueFull`] backpressure.
    pub rejected_queue_full: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Admitted jobs whose execution failed (typed engine errors).
    pub failed: u64,
    /// Drains that processed at least one job.
    pub batches: u64,
    /// Largest batch drained.
    pub max_batch: u64,
    /// Distinct recordings compiled across all batches.
    pub sweep_compiles: u64,
    /// Sweep jobs that reused a batch-mate's compiled arena.
    pub sweep_jobs_coalesced: u64,
    /// Grid points replayed across all sweep jobs.
    pub points_evaluated: u64,
    /// Trace segments replayed across all jobs (the events/sec unit).
    pub segments_replayed: u64,
    /// Wall-clock seconds spent draining batches.
    pub busy_seconds: f64,
}

impl ServeStats {
    /// Total rejections, every reason.
    pub fn rejected(&self) -> u64 {
        self.rejected_lint + self.rejected_invalid + self.rejected_queue_full
    }

    /// Replayed segments per busy second (0 before any work ran).
    pub fn events_per_sec(&self) -> f64 {
        if self.busy_seconds > 0.0 {
            self.segments_replayed as f64 / self.busy_seconds
        } else {
            0.0
        }
    }

    /// The `stats` response line.
    pub fn to_json(&self, queue_depth: usize, bound: usize) -> String {
        format!(
            concat!(
                "{{\"type\":\"stats\",\"queue_depth\":{},\"bound\":{},\"submitted\":{},",
                "\"admitted\":{},\"rejected\":{},\"rejected_lint\":{},",
                "\"rejected_invalid\":{},\"rejected_queue_full\":{},\"completed\":{},",
                "\"failed\":{},\"batches\":{},\"max_batch\":{},\"sweep_compiles\":{},",
                "\"sweep_jobs_coalesced\":{},\"points_evaluated\":{},",
                "\"segments_replayed\":{},\"busy_seconds\":{},\"events_per_sec\":{}}}"
            ),
            queue_depth,
            bound,
            self.submitted,
            self.admitted,
            self.rejected(),
            self.rejected_lint,
            self.rejected_invalid,
            self.rejected_queue_full,
            self.completed,
            self.failed,
            self.batches,
            self.max_batch,
            self.sweep_compiles,
            self.sweep_jobs_coalesced,
            self.points_evaluated,
            self.segments_replayed,
            num(self.busy_seconds),
            num(self.events_per_sec()),
        )
    }
}

/// What [`Service::handle_line`] tells the transport loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep reading requests.
    Continue,
    /// The client asked for shutdown; stop serving.
    Shutdown,
}

/// An admitted job waiting in the queue.
enum Job {
    Scenario { id: String, scenario: Box<Scenario> },
    Sweep(Box<SweepJob>),
}

struct SweepJob {
    id: String,
    workload: RecordedWorkload,
    spec: SweepSpec,
    out: Option<String>,
    /// [`sweep_digest`] of (workload, spec) — the checkpoint guard.
    digest: u64,
    /// [`workload_digest`] alone — the batch-coalescing key.
    wdigest: u64,
}

/// The service: a bounded queue of admitted jobs plus counters. Generic
/// over the scenario executor and the transport (any `BufRead`/`Write`
/// pair), so tests drive it in-process and the binary over pipes or a
/// socket.
pub struct Service<E> {
    cfg: ServeConfig,
    exec: E,
    queue: VecDeque<Job>,
    stats: ServeStats,
}

impl<E: ScenarioExec> Service<E> {
    pub fn new(cfg: ServeConfig, exec: E) -> Self {
        Service {
            cfg,
            exec,
            queue: VecDeque::new(),
            stats: ServeStats::default(),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Jobs queued and not yet drained.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Serve one connection: read request lines, stream event lines
    /// (each flushed, so clients can follow progress live). Returns
    /// `true` when the client requested shutdown — socket servers stop
    /// accepting — and `false` on EOF, after draining whatever was
    /// admitted (closing the pipe never drops accepted work).
    pub fn serve<R: BufRead, W: Write>(&mut self, reader: R, mut w: W) -> io::Result<bool> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if self.handle_line(&line, &mut w)? == Flow::Shutdown {
                return Ok(true);
            }
        }
        self.drain(&mut w)?;
        Ok(false)
    }

    /// Process one request line.
    pub fn handle_line<W: Write>(&mut self, line: &str, w: &mut W) -> io::Result<Flow> {
        let req = match JobRequest::parse(line) {
            Ok(req) => req,
            Err(e) => {
                // A malformed job that still names an id keeps the
                // queued → rejected state machine; anonymous garbage
                // gets a bare protocol error.
                if let Some(id) = scrape_id(line) {
                    self.stats.submitted += 1;
                    self.stats.rejected_invalid += 1;
                    status(w, &id, "queued", "")?;
                    status(
                        w,
                        &id,
                        "rejected",
                        &format!(
                            ",\"reason\":\"invalid\",\"error\":\"{}\"",
                            esc(&e.to_string())
                        ),
                    )?;
                } else {
                    emit(
                        w,
                        &format!(
                            "{{\"type\":\"error\",\"error\":\"{}\"}}",
                            esc(&e.to_string())
                        ),
                    )?;
                }
                return Ok(Flow::Continue);
            }
        };
        match req {
            JobRequest::Submit { id, scenario } => {
                self.stats.submitted += 1;
                self.admit_scenario(id, scenario, w)?;
            }
            JobRequest::Sweep {
                id,
                recording,
                grid,
                deadline,
                out,
            } => {
                self.stats.submitted += 1;
                self.admit_sweep(id, recording, grid, deadline, out, w)?;
            }
            JobRequest::Stats => {
                emit(
                    w,
                    &self.stats.to_json(self.queue.len(), self.cfg.queue_bound),
                )?;
            }
            JobRequest::Drain => self.drain(w)?,
            JobRequest::Shutdown => {
                self.drain(w)?;
                emit(w, "{\"type\":\"bye\"}")?;
                return Ok(Flow::Shutdown);
            }
        }
        Ok(Flow::Continue)
    }

    /// The backpressure gate, checked before any (possibly expensive)
    /// payload analysis.
    fn check_depth(&self) -> Result<(), QueueFull> {
        if self.queue.len() >= self.cfg.queue_bound {
            return Err(QueueFull {
                depth: self.queue.len(),
                bound: self.cfg.queue_bound,
            });
        }
        Ok(())
    }

    fn reject_queue_full<W: Write>(
        &mut self,
        id: &str,
        qf: QueueFull,
        w: &mut W,
    ) -> io::Result<()> {
        self.stats.rejected_queue_full += 1;
        status(
            w,
            id,
            "rejected",
            &format!(
                ",\"reason\":\"queue_full\",\"queue_depth\":{},\"bound\":{},\"error\":\"{}\"",
                qf.depth,
                qf.bound,
                esc(&qf.to_string())
            ),
        )
    }

    fn reject_invalid<W: Write>(&mut self, id: &str, error: &str, w: &mut W) -> io::Result<()> {
        self.stats.rejected_invalid += 1;
        status(
            w,
            id,
            "rejected",
            &format!(",\"reason\":\"invalid\",\"error\":\"{}\"", esc(error)),
        )
    }

    /// Lint rejection: the event carries every diagnostic verbatim
    /// (code, severity, locus, message, suggestion) — for error-severity
    /// barrier/residency findings the message is the exact engine error
    /// a replay would have produced.
    fn reject_lint<W: Write>(&mut self, id: &str, report: &Report, w: &mut W) -> io::Result<()> {
        self.stats.rejected_lint += 1;
        status(
            w,
            id,
            "rejected",
            &format!(
                ",\"reason\":\"lint\",\"diagnostics\":[{}]",
                diags_json(report)
            ),
        )
    }

    fn admit_scenario<W: Write>(
        &mut self,
        id: String,
        scenario: Box<Scenario>,
        w: &mut W,
    ) -> io::Result<()> {
        status(w, &id, "queued", "")?;
        if let Err(qf) = self.check_depth() {
            return self.reject_queue_full(&id, qf, w);
        }
        let report = check_scenario(&scenario);
        if !report.is_clean() {
            return self.reject_lint(&id, &report, w);
        }
        self.stats.admitted += 1;
        status(
            w,
            &id,
            "admitted",
            &format!(
                ",\"job\":\"scenario\",\"warnings\":{}",
                report.warnings().count()
            ),
        )?;
        self.queue.push_back(Job::Scenario { id, scenario });
        Ok(())
    }

    fn admit_sweep<W: Write>(
        &mut self,
        id: String,
        recording: String,
        grid: Option<String>,
        deadline: Option<f64>,
        out: Option<String>,
        w: &mut W,
    ) -> io::Result<()> {
        status(w, &id, "queued", "")?;
        if let Err(qf) = self.check_depth() {
            return self.reject_queue_full(&id, qf, w);
        }
        let workload = match RecordedWorkload::read(Path::new(&recording)) {
            Ok(wl) => wl,
            Err(e) => return self.reject_invalid(&id, &format!("recording '{recording}': {e}"), w),
        };
        let mut spec = match SweepSpec::parse_grid(grid.as_deref().unwrap_or(""), &workload.meta) {
            Ok(s) => s,
            Err(e) => return self.reject_invalid(&id, &format!("grid: {e}"), w),
        };
        if deadline.is_some() {
            spec.deadline = deadline;
        }
        let report = check_workload(&workload);
        if !report.is_clean() {
            return self.reject_lint(&id, &report, w);
        }
        self.stats.admitted += 1;
        status(
            w,
            &id,
            "admitted",
            &format!(
                ",\"job\":\"sweep\",\"points\":{},\"warnings\":{}",
                spec.point_count(),
                report.warnings().count()
            ),
        )?;
        let digest = sweep_digest(&workload, &spec);
        let wdigest = workload_digest(&workload);
        self.queue.push_back(Job::Sweep(Box::new(SweepJob {
            id,
            workload,
            spec,
            out,
            digest,
            wdigest,
        })));
        Ok(())
    }

    /// Run every queued job as one batch, FIFO. Sweep jobs sharing a
    /// recording (by content digest) share one compiled arena.
    fn drain<W: Write>(&mut self, w: &mut W) -> io::Result<()> {
        let batch: Vec<Job> = self.queue.drain(..).collect();
        if batch.is_empty() {
            return emit(w, "{\"type\":\"drained\",\"jobs\":0}");
        }
        self.stats.batches += 1;
        self.stats.max_batch = self.stats.max_batch.max(batch.len() as u64);
        let t0 = Instant::now();
        let mut compiled: Vec<(u64, Result<CompiledSweep<'_>, String>)> = Vec::new();
        for job in &batch {
            match job {
                Job::Scenario { id, scenario } => {
                    status(w, id, "running", ",\"job\":\"scenario\"")?;
                    match self.exec.run_scenario(scenario) {
                        Ok(o) => {
                            self.stats.completed += 1;
                            self.stats.segments_replayed += o.segments as u64;
                            status(
                                w,
                                id,
                                "done",
                                &format!(
                                    concat!(
                                        ",\"job\":\"scenario\",\"makespan\":{},",
                                        "\"node_wall\":{},\"comm_seconds\":{},",
                                        "\"transfer_bytes\":{},\"segments\":{}"
                                    ),
                                    num(o.makespan),
                                    num(o.node_wall),
                                    num(o.comm_seconds),
                                    num(o.transfer_bytes),
                                    o.segments,
                                ),
                            )?;
                        }
                        Err(e) => {
                            self.stats.failed += 1;
                            status(w, id, "failed", &format!(",\"error\":\"{}\"", esc(&e)))?;
                        }
                    }
                }
                Job::Sweep(sj) => {
                    let idx = match compiled.iter().position(|(d, _)| *d == sj.wdigest) {
                        Some(i) => {
                            self.stats.sweep_jobs_coalesced += 1;
                            i
                        }
                        None => {
                            self.stats.sweep_compiles += 1;
                            compiled.push((
                                sj.wdigest,
                                CompiledSweep::compile(&sj.workload).map_err(|e| e.to_string()),
                            ));
                            compiled.len() - 1
                        }
                    };
                    match &compiled[idx].1 {
                        Ok(cs) => run_sweep_job(&self.cfg, &mut self.stats, cs, sj, w)?,
                        Err(e) => {
                            self.stats.failed += 1;
                            status(w, &sj.id, "failed", &format!(",\"error\":\"{}\"", esc(e)))?;
                        }
                    }
                }
            }
        }
        self.stats.busy_seconds += t0.elapsed().as_secs_f64();
        emit(
            w,
            &format!("{{\"type\":\"drained\",\"jobs\":{}}}", batch.len()),
        )
    }
}

/// Execute one admitted sweep job: adopt a digest-matching cursor when
/// resuming, evaluate in `checkpoint_every` chunks, persist the cursor
/// atomically after each, and emit the result. Free function (not a
/// method) so the borrow of the batch-shared `CompiledSweep` stays
/// disjoint from `self`.
fn run_sweep_job<W: Write>(
    cfg: &ServeConfig,
    stats: &mut ServeStats,
    cs: &CompiledSweep<'_>,
    sj: &SweepJob,
    w: &mut W,
) -> io::Result<()> {
    let total = sj.spec.point_count();
    let ckpt_path = cfg
        .checkpoint_dir
        .as_ref()
        .map(|d| d.join(format!("{}.ckpt.jsonl", sanitize(&sj.id))));
    let mut completed: Vec<SweepPoint> = Vec::new();
    if cfg.resume {
        if let Some(path) = &ckpt_path {
            if let Ok(ck) = SweepCheckpoint::read(path) {
                if ck.digest == sj.digest && ck.total == total {
                    completed = ck.points;
                }
            }
        }
    }
    status(
        w,
        &sj.id,
        "running",
        &format!(
            ",\"job\":\"sweep\",\"total\":{total},\"resumed\":{}",
            completed.len()
        ),
    )?;
    // The checkpoint callback runs inside the sweep; I/O failures are
    // captured and re-raised as the service's own error after it ends.
    let mut io_err: Option<io::Error> = None;
    let result = {
        let mut on_checkpoint = |pts: &[SweepPoint]| {
            if io_err.is_some() {
                return;
            }
            if let Some(path) = &ckpt_path {
                let ck = SweepCheckpoint {
                    total,
                    digest: sj.digest,
                    points: pts.to_vec(),
                };
                if let Err(e) = ck.write(path) {
                    io_err = Some(e);
                    return;
                }
            }
            if let Err(e) = status(
                w,
                &sj.id,
                "checkpoint",
                &format!(",\"completed\":{},\"total\":{total}", pts.len()),
            ) {
                io_err = Some(e);
                return;
            }
            if cfg.chunk_sleep_ms > 0 && pts.len() < total {
                std::thread::sleep(std::time::Duration::from_millis(cfg.chunk_sleep_ms));
            }
        };
        cs.run_resumable(
            &sj.spec,
            &completed,
            cfg.checkpoint_every.max(1),
            &mut on_checkpoint,
        )
    };
    if let Some(e) = io_err {
        return Err(e);
    }
    match result {
        Ok(res) => {
            stats.points_evaluated += res.evaluated as u64;
            stats.segments_replayed += (res.compiled_segments * res.evaluated) as u64;
            // The front is sorted by makespan ascending, so its first
            // member is the fastest evaluated point.
            let best = res
                .pareto
                .first()
                .and_then(|&i| res.points[i].makespan)
                .map_or_else(|| "null".to_string(), num);
            let mut extra = format!(
                concat!(
                    ",\"job\":\"sweep\",\"points\":{},\"evaluated\":{},\"pruned\":{},",
                    "\"pareto\":{},\"best_makespan\":{}"
                ),
                res.points.len(),
                res.evaluated,
                res.pruned,
                res.pareto.len(),
                best,
            );
            if let Some(path) = &sj.out {
                if let Err(e) = std::fs::write(path, res.to_jsonl()) {
                    stats.failed += 1;
                    return status(
                        w,
                        &sj.id,
                        "failed",
                        &format!(
                            ",\"error\":\"cannot write '{}': {}\"",
                            esc(path),
                            esc(&e.to_string())
                        ),
                    );
                }
                extra.push_str(&format!(",\"out\":\"{}\"", esc(path)));
            }
            // The job is complete; its cursor has served its purpose.
            if let Some(path) = &ckpt_path {
                let _ = std::fs::remove_file(path);
            }
            stats.completed += 1;
            status(w, &sj.id, "done", &extra)
        }
        Err(e) => {
            stats.failed += 1;
            status(
                w,
                &sj.id,
                "failed",
                &format!(",\"error\":\"{}\"", esc(&e.to_string())),
            )
        }
    }
}

/// Write one event line and flush — clients follow progress live.
fn emit<W: Write>(w: &mut W, line: &str) -> io::Result<()> {
    writeln!(w, "{line}")?;
    w.flush()
}

fn status<W: Write>(w: &mut W, id: &str, state: &str, extra: &str) -> io::Result<()> {
    emit(
        w,
        &format!(
            "{{\"type\":\"status\",\"id\":\"{}\",\"state\":\"{state}\"{extra}}}",
            esc(id)
        ),
    )
}

fn diags_json(report: &Report) -> String {
    report
        .diagnostics
        .iter()
        .map(|d| d.to_json())
        .collect::<Vec<_>>()
        .join(",")
}

/// Best-effort id extraction from a line that failed envelope parsing,
/// so even a rejected-at-parse job gets addressable status events.
fn scrape_id(line: &str) -> Option<String> {
    let start = line.find("\"id\":\"")? + 6;
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Checkpoint files are named after job ids; keep them path-safe.
fn sanitize(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario::{ImplKind, NetCalib, NodeCalib, ProblemSize};

    /// A stub executor: makespan is a pure function of the scenario, so
    /// event bytes are deterministic without pulling in the real runner.
    struct StubExec;

    impl ScenarioExec for StubExec {
        fn run_scenario(&mut self, s: &Scenario) -> Result<ScenarioOutcome, String> {
            if s.name.contains("explode") {
                return Err(format!("engine error: {} refused", s.name));
            }
            let makespan = s.procs_per_node as f64 * 0.25 + s.gpus as f64;
            Ok(ScenarioOutcome {
                makespan,
                node_wall: makespan - 0.125,
                comm_seconds: 0.125,
                transfer_bytes: 1e6,
                segments: 100 * s.procs_per_node as usize,
            })
        }
    }

    fn svc(bound: usize) -> Service<StubExec> {
        Service::new(
            ServeConfig {
                queue_bound: bound,
                ..ServeConfig::default()
            },
            StubExec,
        )
    }

    fn run(svc: &mut Service<StubExec>, input: &str) -> (bool, Vec<String>) {
        let mut out = Vec::new();
        let shutdown = svc.serve(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        (shutdown, text.lines().map(str::to_string).collect())
    }

    fn submit_line(id: &str, s: &Scenario) -> String {
        format!(
            "{{\"type\":\"submit\",\"id\":\"{id}\",\"scenario\":{}}}",
            s.to_json_compact()
        )
    }

    fn clean_scenario(name: &str) -> Scenario {
        Scenario::new(name, ProblemSize::Medium, 1e-3)
            .with_kind(ImplKind::OmpTarget)
            .with_procs(4)
    }

    /// Valid (parses) but doomed (lints): 64 JIT ranks on one default
    /// device — the framework reservations alone exceed GPU memory
    /// (`S006`, error severity).
    fn doomed_scenario() -> Scenario {
        let mut s = Scenario::new("doomed", ProblemSize::Medium, 1e-3)
            .with_kind(ImplKind::Jit)
            .with_procs(64)
            .with_calib_inline(NodeCalib::default(), NetCalib::default());
        s.gpus = 1;
        s
    }

    #[test]
    fn lifecycle_events_stream_in_order() {
        let mut s = svc(8);
        let (shutdown, lines) = run(
            &mut s,
            &format!(
                "{}\n{{\"type\":\"drain\"}}\n{{\"type\":\"shutdown\"}}\n",
                submit_line("j1", &clean_scenario("ok"))
            ),
        );
        assert!(shutdown);
        let states: Vec<&str> = lines
            .iter()
            .filter(|l| l.contains("\"id\":\"j1\""))
            .map(|l| {
                let i = l.find("\"state\":\"").unwrap() + 9;
                &l[i..i + l[i..].find('"').unwrap()]
            })
            .collect();
        assert_eq!(states, ["queued", "admitted", "running", "done"]);
        assert!(lines
            .iter()
            .any(|l| l.contains("\"type\":\"drained\",\"jobs\":1")));
        assert!(lines.last().unwrap().contains("\"type\":\"bye\""));
        assert_eq!(s.stats().completed, 1);
    }

    #[test]
    fn queue_full_is_a_typed_backpressure_rejection() {
        let mut s = svc(2);
        let input: String = (1..=3)
            .map(|i| submit_line(&format!("q{i}"), &clean_scenario("ok")) + "\n")
            .collect();
        let (_, lines) = run(&mut s, &input);
        let rejected: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"state\":\"rejected\""))
            .collect();
        assert_eq!(rejected.len(), 1);
        assert!(rejected[0].contains("\"id\":\"q3\""));
        assert!(rejected[0].contains("\"reason\":\"queue_full\""));
        assert!(rejected[0].contains("\"queue_depth\":2,\"bound\":2"));
        let qf = QueueFull { depth: 2, bound: 2 };
        assert!(rejected[0].contains(&qf.to_string()));
        // EOF drained the two admitted jobs.
        assert_eq!(s.stats().completed, 2);
        assert_eq!(s.stats().rejected_queue_full, 1);
    }

    #[test]
    fn lint_rejection_carries_the_diagnostics() {
        let doomed = doomed_scenario();
        let oracle = check_scenario(&doomed);
        assert!(!oracle.is_clean(), "fixture must lint dirty");
        let mut s = svc(8);
        let (_, lines) = run(&mut s, &(submit_line("bad", &doomed) + "\n"));
        let rej = lines
            .iter()
            .find(|l| l.contains("\"state\":\"rejected\""))
            .expect("rejected event");
        assert!(rej.contains("\"reason\":\"lint\""));
        for d in oracle.errors() {
            assert!(rej.contains(&d.to_json()), "missing {}", d.to_json());
        }
        assert_eq!(s.stats().rejected_lint, 1);
        assert_eq!(s.stats().admitted, 0);
    }

    #[test]
    fn invalid_payloads_keep_the_state_machine_when_they_name_an_id() {
        let mut s = svc(8);
        let mut bad = clean_scenario("ok");
        bad.procs_per_node = 7; // fails Scenario validation at parse
        let (_, lines) = run(
            &mut s,
            &format!(
                "{}\nnot json at all\n{{\"type\":\"nope\"}}\n",
                submit_line("inv", &bad)
            ),
        );
        let rej = lines
            .iter()
            .find(|l| l.contains("\"id\":\"inv\"") && l.contains("rejected"))
            .expect("rejected event");
        assert!(rej.contains("\"reason\":\"invalid\""));
        assert!(rej.contains("procs"), "{rej}");
        // Anonymous garbage gets bare protocol errors.
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"type\":\"error\""))
                .count(),
            2
        );
        assert_eq!(s.stats().rejected_invalid, 1);
    }

    #[test]
    fn failed_jobs_report_the_executor_error() {
        let mut s = svc(8);
        let (_, lines) = run(
            &mut s,
            &(submit_line("f1", &clean_scenario("explode")) + "\n"),
        );
        let failed = lines
            .iter()
            .find(|l| l.contains("\"state\":\"failed\""))
            .expect("failed event");
        assert!(failed.contains("engine error: explode refused"));
        assert_eq!(s.stats().failed, 1);
        assert_eq!(s.stats().completed, 0);
    }

    #[test]
    fn stats_counts_every_outcome() {
        let mut s = svc(1);
        let input = format!(
            "{}\n{}\n{{\"type\":\"drain\"}}\n{{\"type\":\"stats\"}}\n",
            submit_line("a", &clean_scenario("ok")),
            submit_line("b", &clean_scenario("ok")),
        );
        let (_, lines) = run(&mut s, &input);
        let stats = lines
            .iter()
            .find(|l| l.contains("\"type\":\"stats\""))
            .expect("stats line");
        assert!(stats.contains("\"submitted\":2"));
        assert!(stats.contains("\"admitted\":1"));
        assert!(stats.contains("\"rejected_queue_full\":1"));
        assert!(stats.contains("\"completed\":1"));
        assert!(stats.contains("\"segments_replayed\":400"));
        assert!(stats.contains("\"max_batch\":1"));
    }

    #[test]
    fn scraped_ids_unescape_and_sanitize() {
        assert_eq!(scrape_id("{\"id\":\"a b\\\"c\""), Some("a b\"c".into()));
        assert_eq!(scrape_id("{\"type\":\"stats\"}"), None);
        assert_eq!(sanitize("job/7:x"), "job_7_x");
    }
}
