//! A typed, versioned scenario spec: one serializable value that fully
//! describes a benchmark run.
//!
//! Every figure, ablation and what-if in this workspace boils down to the
//! same handful of knobs — problem size and scale, which implementation to
//! run, how many processes per node, MPS on or off, schedule policy, node
//! count, calibration. Before this crate each binary re-assembled those
//! knobs from ad-hoc flags, so "the configuration behind Fig. 5" lived
//! only in `main()` bodies. A [`Scenario`] makes that configuration a
//! value: it round-trips losslessly through JSON (`scenarios/` holds one
//! golden file per figure), projects onto the runner's `RunConfig`, embeds
//! itself in what-if recordings, and expands against a sweep grid.
//!
//! The format is versioned (`schema_version`, currently
//! [`SCHEMA_VERSION`]) and strict: unknown fields and unknown versions are
//! typed errors naming the offender, in the same spirit as the what-if
//! recorder's `WhatifError`. Strictness is the forward-compatibility
//! story — a file written by a newer schema fails loudly instead of
//! silently dropping the knob an experiment depended on.

#![forbid(unsafe_code)]

use std::io::Read as _;
use std::path::Path;
use std::str::FromStr;

use accel_sim::whatif::preset;
use accel_sim::{CpuCalib, DeviceCalib, SweepSpec};

pub mod analyze;
pub mod envelope;
pub mod json;

pub use analyze::check_scenario;
pub use envelope::JobRequest;

use json::{as_bool, as_f64, as_int, as_str, Fields, Value};

// Re-export the types a Scenario is made of, so downstream code can build
// and match scenarios with `use scenario::…` alone.
pub use accel_sim::{NetCalib, NodeCalib, SchedulePolicyKind, UnknownPreset};
pub use toast_core::dispatch::ImplKind;
pub use toast_core::pipeline::MovementPolicy;
pub use toast_satsim::problem::{Problem, ProblemSize};

/// The schema version this build reads and writes.
pub const SCHEMA_VERSION: u64 = 1;

/// Everything that can go wrong reading, validating or resolving a
/// scenario. Every variant names its offender (field, line, value) so a
/// CLI can surface the message verbatim.
#[derive(Debug)]
pub enum ScenarioError {
    /// File-level I/O failure.
    Io(std::io::Error),
    /// Structurally malformed JSON.
    Json { line: usize, msg: String },
    /// A `schema_version` this build does not read.
    UnknownVersion { version: u64 },
    /// A field no version-1 scenario defines — typo or newer schema.
    UnknownField { field: String, line: usize },
    /// A required field is absent.
    MissingField { field: String },
    /// A field is present but holds a value outside its domain.
    InvalidValue { field: String, msg: String },
    /// `procs_per_node` does not evenly partition the node's cores.
    InvalidProcs { procs: u32, cores: u32 },
    /// A named calibration preset that does not exist.
    UnknownPreset(UnknownPreset),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Io(e) => write!(f, "scenario I/O error: {e}"),
            ScenarioError::Json { line, msg } => {
                write!(f, "scenario JSON error at line {line}: {msg}")
            }
            ScenarioError::UnknownVersion { version } => write!(
                f,
                "unsupported scenario schema_version {version} (this build reads version {SCHEMA_VERSION})"
            ),
            ScenarioError::UnknownField { field, line } => write!(
                f,
                "unknown scenario field '{field}' at line {line} (typo, or a file from a newer schema?)"
            ),
            ScenarioError::MissingField { field } => {
                write!(f, "missing required scenario field '{field}'")
            }
            ScenarioError::InvalidValue { field, msg } => {
                write!(f, "invalid value for scenario field '{field}': {msg}")
            }
            ScenarioError::InvalidProcs { procs, cores } => write!(
                f,
                "invalid procs_per_node {procs}: must be >= 1 and divide the node's {cores} cores"
            ),
            ScenarioError::UnknownPreset(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Io(e) => Some(e),
            ScenarioError::UnknownPreset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ScenarioError {
    fn from(e: std::io::Error) -> Self {
        ScenarioError::Io(e)
    }
}

impl From<UnknownPreset> for ScenarioError {
    fn from(e: UnknownPreset) -> Self {
        ScenarioError::UnknownPreset(e)
    }
}

/// The problem a scenario runs: one of the paper's two sizes at a work
/// scale, with optional per-field overrides (the differential tests run
/// the medium problem shrunk to 64 detectors, for example).
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemSpec {
    /// Which paper configuration to start from.
    pub size: ProblemSize,
    /// Work scale in `(0, 1]` applied to samples and calibration.
    pub scale: f64,
    /// Override paper-scale total samples.
    pub total_samples: Option<f64>,
    /// Override the detector count.
    pub n_det_total: Option<usize>,
    /// Override the sky resolution.
    pub nside: Option<u64>,
    /// Override the observation count.
    pub n_obs: Option<usize>,
    /// Override the solver passes per observation.
    pub passes: Option<usize>,
    /// Override the RNG seed.
    pub seed: Option<u64>,
}

impl ProblemSpec {
    /// A plain paper problem at `scale`, no overrides.
    pub fn sized(size: ProblemSize, scale: f64) -> Self {
        Self {
            size,
            scale,
            total_samples: None,
            n_det_total: None,
            nside: None,
            n_obs: None,
            passes: None,
            seed: None,
        }
    }

    /// Build the concrete [`Problem`], applying overrides.
    pub fn build(&self) -> Problem {
        let mut p = Problem::sized(self.size, self.scale);
        if let Some(v) = self.total_samples {
            p.total_samples = v;
        }
        if let Some(v) = self.n_det_total {
            p.n_det_total = v;
        }
        if let Some(v) = self.nside {
            p.nside = v;
        }
        if let Some(v) = self.n_obs {
            p.n_obs = v;
        }
        if let Some(v) = self.passes {
            p.passes = v;
        }
        if let Some(v) = self.seed {
            p.seed = v;
        }
        p
    }
}

/// Where a scenario's calibration comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibSpec {
    /// The problem's own scaled calibration ([`NodeCalib::scaled`] at the
    /// scenario's work scale) — what every flag-driven run uses.
    Auto,
    /// A named what-if preset (`a100`, `h100`, …), defined at paper scale
    /// and rescaled to the scenario's work scale on resolution.
    Preset(String),
    /// Fully inline constants, taken as-is (already at working scale).
    Inline { node: NodeCalib, net: NetCalib },
}

/// Optional output sinks a run writes besides stdout.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OutputSpec {
    /// Chrome-trace JSON of the replayed timeline.
    pub trace_out: Option<String>,
    /// What-if workload recording (JSONL).
    pub record_out: Option<String>,
}

impl OutputSpec {
    fn is_empty(&self) -> bool {
        self.trace_out.is_none() && self.record_out.is_none()
    }
}

/// One fully specified run. See the crate docs for the role this type
/// plays; see `DESIGN.md` § 6 for the schema and versioning policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable label (figure name, sweep point, …). Carried into
    /// recordings and reports; not semantically load-bearing.
    pub name: String,
    /// The problem to run.
    pub problem: ProblemSpec,
    /// Which port runs the kernels.
    pub kind: ImplKind,
    /// MPI-style ranks per node.
    pub procs_per_node: u32,
    /// GPUs per node.
    pub gpus: u32,
    /// CUDA MPS daemon on or off.
    pub mps: bool,
    /// Data-movement policy.
    pub movement: MovementPolicy,
    /// GPU schedule policy.
    pub schedule: SchedulePolicyKind,
    /// Override the problem's node count.
    pub nodes: Option<u32>,
    /// Per-rank asynchronous transfer streams.
    pub overlap_transfers: bool,
    /// Calibration source.
    pub calib: CalibSpec,
    /// Optional output sinks.
    pub output: OutputSpec,
}

impl Scenario {
    /// A scenario with the workspace's defaults: CPU implementation, 16
    /// procs per node, 4 GPUs, MPS on, tracked movement, auto schedule,
    /// auto calibration.
    pub fn new(name: &str, size: ProblemSize, scale: f64) -> Self {
        Self {
            name: name.to_string(),
            problem: ProblemSpec::sized(size, scale),
            kind: ImplKind::Cpu,
            procs_per_node: 16,
            gpus: 4,
            mps: true,
            movement: MovementPolicy::Tracked,
            schedule: SchedulePolicyKind::Auto,
            nodes: None,
            overlap_transfers: false,
            calib: CalibSpec::Auto,
            output: OutputSpec::default(),
        }
    }

    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    pub fn with_kind(mut self, kind: ImplKind) -> Self {
        self.kind = kind;
        self
    }

    pub fn with_procs(mut self, procs: u32) -> Self {
        self.procs_per_node = procs;
        self
    }

    pub fn with_gpus(mut self, gpus: u32) -> Self {
        self.gpus = gpus;
        self
    }

    pub fn with_mps(mut self, mps: bool) -> Self {
        self.mps = mps;
        self
    }

    pub fn with_movement(mut self, movement: MovementPolicy) -> Self {
        self.movement = movement;
        self
    }

    pub fn with_schedule(mut self, schedule: SchedulePolicyKind) -> Self {
        self.schedule = schedule;
        self
    }

    pub fn with_nodes(mut self, nodes: u32) -> Self {
        self.nodes = Some(nodes);
        self
    }

    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap_transfers = overlap;
        self
    }

    pub fn with_calib_preset(mut self, name: &str) -> Self {
        self.calib = CalibSpec::Preset(name.to_string());
        self
    }

    pub fn with_calib_inline(mut self, node: NodeCalib, net: NetCalib) -> Self {
        self.calib = CalibSpec::Inline { node, net };
        self
    }

    /// Host threads each rank gets: the node's cores divided evenly.
    /// The typed replacement for the runner's old "must divide 64" panic.
    pub fn threads(&self) -> Result<u32, ScenarioError> {
        let cores = CpuCalib::default().cores;
        if self.procs_per_node == 0 || cores % self.procs_per_node != 0 {
            return Err(ScenarioError::InvalidProcs {
                procs: self.procs_per_node,
                cores,
            });
        }
        Ok(cores / self.procs_per_node)
    }

    /// Check every domain constraint. [`Scenario::parse`] calls this, so
    /// a scenario that decodes is a scenario that runs.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.threads()?;
        let invalid = |field: &str, msg: String| {
            Err(ScenarioError::InvalidValue {
                field: field.to_string(),
                msg,
            })
        };
        if !(self.problem.scale > 0.0 && self.problem.scale <= 1.0) {
            return invalid(
                "problem.scale",
                format!("must be in (0, 1], got {:?}", self.problem.scale),
            );
        }
        if self.gpus == 0 {
            return invalid("gpus", "must be >= 1".to_string());
        }
        if self.nodes == Some(0) {
            return invalid("nodes", "must be >= 1 when present".to_string());
        }
        if let CalibSpec::Preset(name) = &self.calib {
            preset(name)?;
        }
        // The calibration gate: a roofline the cost model cannot price
        // (zero bandwidth, NaN throughput, …) is rejected here, naming
        // the field, instead of surfacing as a NonFiniteCharge replay
        // error long after the scenario was accepted.
        let (node, net) = self.resolved_calib()?;
        if let Err(e) = node.validate().and_then(|()| net.validate()) {
            return invalid(&format!("calib.{}", e.field), e.to_string());
        }
        Ok(())
    }

    /// The concrete problem this scenario runs (overrides applied).
    pub fn build_problem(&self) -> Problem {
        self.problem.build()
    }

    /// Resolve the calibration source to concrete constants at the
    /// scenario's working scale. `Auto` reproduces the flag-driven path
    /// bit-for-bit: the problem's own scaled calibration and the default
    /// interconnect.
    pub fn resolved_calib(&self) -> Result<(NodeCalib, NetCalib), ScenarioError> {
        match &self.calib {
            CalibSpec::Auto => Ok((NodeCalib::scaled(self.problem.scale), NetCalib::default())),
            CalibSpec::Preset(name) => {
                let p = preset(name)?;
                Ok((p.node.rescaled(self.problem.scale), p.net))
            }
            CalibSpec::Inline { node, net } => Ok((*node, *net)),
        }
    }

    /// Canonical pretty JSON: fixed field order, two-space indent, `None`
    /// fields omitted. `parse(to_json(s)) == s` and serializing a parsed
    /// file reproduces it byte-for-byte (the golden files are written this
    /// way).
    pub fn to_json(&self) -> String {
        let mut s = render(&self.encode(), false, 0);
        s.push('\n');
        s
    }

    /// One-line JSON with identical content — the form embedded in
    /// what-if recording metadata.
    pub fn to_json_compact(&self) -> String {
        render(&self.encode(), true, 0)
    }

    fn encode(&self) -> J {
        let mut fields: Vec<(&'static str, J)> = vec![
            ("schema_version", J::Raw(SCHEMA_VERSION.to_string())),
            ("name", J::Str(self.name.clone())),
            ("problem", self.encode_problem()),
            ("impl", J::Str(self.kind.to_string())),
            ("procs_per_node", J::Raw(self.procs_per_node.to_string())),
            ("gpus", J::Raw(self.gpus.to_string())),
            ("mps", J::Raw(self.mps.to_string())),
            ("movement", J::Str(self.movement.to_string())),
            ("schedule", J::Str(self.schedule.to_string())),
        ];
        if let Some(n) = self.nodes {
            fields.push(("nodes", J::Raw(n.to_string())));
        }
        fields.push((
            "overlap_transfers",
            J::Raw(self.overlap_transfers.to_string()),
        ));
        fields.push((
            "calib",
            match &self.calib {
                CalibSpec::Auto => J::Str("auto".to_string()),
                CalibSpec::Preset(name) => J::Str(name.clone()),
                CalibSpec::Inline { node, net } => J::Obj(vec![
                    ("node", encode_node_calib(node)),
                    ("net", encode_net_calib(net)),
                ]),
            },
        ));
        if !self.output.is_empty() {
            let mut out = Vec::new();
            if let Some(p) = &self.output.trace_out {
                out.push(("trace_out", J::Str(p.clone())));
            }
            if let Some(p) = &self.output.record_out {
                out.push(("record_out", J::Str(p.clone())));
            }
            fields.push(("output", J::Obj(out)));
        }
        J::Obj(fields)
    }

    fn encode_problem(&self) -> J {
        let p = &self.problem;
        let size = match p.size {
            ProblemSize::Medium => "medium",
            ProblemSize::Large => "large",
        };
        let mut fields = vec![
            ("size", J::Str(size.to_string())),
            ("scale", J::Raw(json::num(p.scale))),
        ];
        if let Some(v) = p.total_samples {
            fields.push(("total_samples", J::Raw(json::num(v))));
        }
        if let Some(v) = p.n_det_total {
            fields.push(("n_det_total", J::Raw(v.to_string())));
        }
        if let Some(v) = p.nside {
            fields.push(("nside", J::Raw(v.to_string())));
        }
        if let Some(v) = p.n_obs {
            fields.push(("n_obs", J::Raw(v.to_string())));
        }
        if let Some(v) = p.passes {
            fields.push(("passes", J::Raw(v.to_string())));
        }
        if let Some(v) = p.seed {
            fields.push(("seed", J::Raw(v.to_string())));
        }
        J::Obj(fields)
    }

    /// Parse and validate a scenario document.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        Self::from_value(json::parse(text)?, 1)
    }

    /// Decode and validate an already-parsed JSON value. The service's
    /// job envelope carries scenarios as nested objects, so decoding
    /// must compose; `line` is where the object appeared in its
    /// enclosing document, for error context.
    pub fn from_value(root: Value, line: usize) -> Result<Self, ScenarioError> {
        let mut f = Fields::of(root, "scenario", line)?;
        let version: u64 = as_int(f.require("schema_version")?, "schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(ScenarioError::UnknownVersion { version });
        }
        let name = as_str(f.require("name")?, "name")?;
        let problem = decode_problem(f.require("problem")?)?;
        let kind = decode_enum::<ImplKind>(f.require("impl")?, "impl")?;
        let procs_per_node = as_int(f.require("procs_per_node")?, "procs_per_node")?;
        let gpus = as_int(f.require("gpus")?, "gpus")?;
        let mps = as_bool(f.require("mps")?, "mps")?;
        let movement = decode_enum::<MovementPolicy>(f.require("movement")?, "movement")?;
        let schedule = decode_enum::<SchedulePolicyKind>(f.require("schedule")?, "schedule")?;
        let nodes = f.take("nodes").map(|v| as_int(v, "nodes")).transpose()?;
        let overlap_transfers = as_bool(f.require("overlap_transfers")?, "overlap_transfers")?;
        let calib = decode_calib(f.require("calib")?)?;
        let output = match f.take("output") {
            Some(v) => decode_output(v)?,
            None => OutputSpec::default(),
        };
        f.finish()?;
        let s = Scenario {
            name,
            problem,
            kind,
            procs_per_node,
            gpus,
            mps,
            movement,
            schedule,
            nodes,
            overlap_transfers,
            calib,
            output,
        };
        s.validate()?;
        Ok(s)
    }

    /// Read and parse a scenario file.
    pub fn read(path: impl AsRef<Path>) -> Result<Self, ScenarioError> {
        let mut text = String::new();
        std::fs::File::open(path)?.read_to_string(&mut text)?;
        Self::parse(&text)
    }

    /// Write the canonical pretty form to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<(), ScenarioError> {
        std::fs::write(path, self.to_json())?;
        Ok(())
    }
}

/// Expand a sweep grid into concrete scenarios, in the exact order the
/// sweep engine visits points: calibration-major, then GPU count, then
/// schedule. Each scenario names its point; the `identity` calibration
/// keeps the base scenario's own calibration source.
pub fn expand_sweep(base: &Scenario, spec: &SweepSpec) -> Vec<Scenario> {
    let mut out = Vec::with_capacity(spec.calibs.len() * spec.gpus.len() * spec.schedules.len());
    for c in &spec.calibs {
        for &g in &spec.gpus {
            for &sched in &spec.schedules {
                let mut s = base.clone();
                s.name = format!("{}__{}_{}g_{}", base.name, c.name, g, sched);
                if c.name != "identity" {
                    s.calib = CalibSpec::Preset(c.name.clone());
                }
                s.gpus = g;
                s.schedule = sched;
                out.push(s);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Encoding/decoding internals
// ---------------------------------------------------------------------------

/// A value ready to serialize: raw token, string, or ordered object.
enum J {
    Raw(String),
    Str(String),
    Obj(Vec<(&'static str, J)>),
}

fn render(j: &J, compact: bool, indent: usize) -> String {
    match j {
        J::Raw(s) => s.clone(),
        J::Str(s) => format!("\"{}\"", json::esc(s)),
        J::Obj(fields) => {
            if fields.is_empty() {
                return "{}".to_string();
            }
            let mut out = String::from("{");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if compact {
                    out.push_str(&format!("\"{k}\":{}", render(v, true, 0)));
                } else {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&format!("\"{k}\": {}", render(v, false, indent + 1)));
                }
            }
            if !compact {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
            out
        }
    }
}

fn encode_node_calib(n: &NodeCalib) -> J {
    J::Obj(vec![
        (
            "cpu",
            J::Obj(vec![
                ("cores", J::Raw(n.cpu.cores.to_string())),
                ("core_flops", J::Raw(json::num(n.cpu.core_flops))),
                ("socket_bw", J::Raw(json::num(n.cpu.socket_bw))),
                ("mem_bytes", J::Raw(n.cpu.mem_bytes.to_string())),
                ("thread_overhead", J::Raw(json::num(n.cpu.thread_overhead))),
            ]),
        ),
        (
            "gpu",
            J::Obj(vec![
                ("fp64_peak", J::Raw(json::num(n.gpu.fp64_peak))),
                ("hbm_bw", J::Raw(json::num(n.gpu.hbm_bw))),
                ("mem_bytes", J::Raw(n.gpu.mem_bytes.to_string())),
                ("launch_latency", J::Raw(json::num(n.gpu.launch_latency))),
                (
                    "saturation_items",
                    J::Raw(json::num(n.gpu.saturation_items)),
                ),
                ("pcie_bw", J::Raw(json::num(n.gpu.pcie_bw))),
                ("pcie_latency", J::Raw(json::num(n.gpu.pcie_latency))),
                ("context_switch", J::Raw(json::num(n.gpu.context_switch))),
                ("mps_crowding", J::Raw(json::num(n.gpu.mps_crowding))),
                ("alloc_latency", J::Raw(json::num(n.gpu.alloc_latency))),
            ]),
        ),
        (
            "framework",
            J::Obj(vec![
                ("jit_dispatch", J::Raw(json::num(n.framework.jit_dispatch))),
                ("jit_compile", J::Raw(json::num(n.framework.jit_compile))),
                ("omp_region", J::Raw(json::num(n.framework.omp_region))),
                (
                    "jit_mem_overhead",
                    J::Raw(json::num(n.framework.jit_mem_overhead)),
                ),
                (
                    "jit_process_device_bytes",
                    J::Raw(json::num(n.framework.jit_process_device_bytes)),
                ),
                (
                    "omp_process_device_bytes",
                    J::Raw(json::num(n.framework.omp_process_device_bytes)),
                ),
                (
                    "jit_runtime_factor",
                    J::Raw(json::num(n.framework.jit_runtime_factor)),
                ),
                (
                    "jit_cpu_backend_eff",
                    J::Raw(json::num(n.framework.jit_cpu_backend_eff)),
                ),
            ]),
        ),
    ])
}

fn encode_net_calib(n: &NetCalib) -> J {
    J::Obj(vec![
        ("bw", J::Raw(json::num(n.bw))),
        ("latency", J::Raw(json::num(n.latency))),
    ])
}

fn decode_enum<T: FromStr<Err = String>>(
    v: (Value, usize),
    field: &str,
) -> Result<T, ScenarioError> {
    let s = as_str(v, field)?;
    s.parse().map_err(|msg| ScenarioError::InvalidValue {
        field: field.to_string(),
        msg,
    })
}

fn decode_problem(v: (Value, usize)) -> Result<ProblemSpec, ScenarioError> {
    let (value, line) = v;
    let mut f = Fields::of(value, "problem", line)?;
    let size = match as_str(f.require("size")?, "problem.size")?.as_str() {
        "medium" => ProblemSize::Medium,
        "large" => ProblemSize::Large,
        other => {
            return Err(ScenarioError::InvalidValue {
                field: "problem.size".to_string(),
                msg: format!("unknown size '{other}' (expected medium or large)"),
            })
        }
    };
    let scale = as_f64(f.require("scale")?, "problem.scale")?;
    let total_samples = f
        .take("total_samples")
        .map(|v| as_f64(v, "problem.total_samples"))
        .transpose()?;
    let n_det_total = f
        .take("n_det_total")
        .map(|v| as_int(v, "problem.n_det_total"))
        .transpose()?;
    let nside = f
        .take("nside")
        .map(|v| as_int(v, "problem.nside"))
        .transpose()?;
    let n_obs = f
        .take("n_obs")
        .map(|v| as_int(v, "problem.n_obs"))
        .transpose()?;
    let passes = f
        .take("passes")
        .map(|v| as_int(v, "problem.passes"))
        .transpose()?;
    let seed = f
        .take("seed")
        .map(|v| as_int(v, "problem.seed"))
        .transpose()?;
    f.finish()?;
    Ok(ProblemSpec {
        size,
        scale,
        total_samples,
        n_det_total,
        nside,
        n_obs,
        passes,
        seed,
    })
}

fn decode_calib(v: (Value, usize)) -> Result<CalibSpec, ScenarioError> {
    let (value, line) = v;
    match value {
        Value::Str(s) if s == "auto" => Ok(CalibSpec::Auto),
        Value::Str(s) => Ok(CalibSpec::Preset(s)),
        value @ Value::Obj(_) => {
            let mut f = Fields::of(value, "calib", line)?;
            let node = decode_node_calib(f.require("node")?)?;
            let net = decode_net_calib(f.require("net")?)?;
            f.finish()?;
            Ok(CalibSpec::Inline { node, net })
        }
        _ => Err(ScenarioError::InvalidValue {
            field: "calib".to_string(),
            msg: "must be \"auto\", a preset name, or an inline {node, net} object".to_string(),
        }),
    }
}

fn decode_node_calib(v: (Value, usize)) -> Result<NodeCalib, ScenarioError> {
    let (value, line) = v;
    let mut f = Fields::of(value, "calib.node", line)?;

    let (cpu_v, cpu_line) = f.require("cpu")?;
    let mut c = Fields::of(cpu_v, "calib.node.cpu", cpu_line)?;
    let cpu = CpuCalib {
        cores: as_int(c.require("cores")?, "cpu.cores")?,
        core_flops: as_f64(c.require("core_flops")?, "cpu.core_flops")?,
        socket_bw: as_f64(c.require("socket_bw")?, "cpu.socket_bw")?,
        mem_bytes: as_int(c.require("mem_bytes")?, "cpu.mem_bytes")?,
        thread_overhead: as_f64(c.require("thread_overhead")?, "cpu.thread_overhead")?,
    };
    c.finish()?;

    let (gpu_v, gpu_line) = f.require("gpu")?;
    let mut g = Fields::of(gpu_v, "calib.node.gpu", gpu_line)?;
    let gpu = DeviceCalib {
        fp64_peak: as_f64(g.require("fp64_peak")?, "gpu.fp64_peak")?,
        hbm_bw: as_f64(g.require("hbm_bw")?, "gpu.hbm_bw")?,
        mem_bytes: as_int(g.require("mem_bytes")?, "gpu.mem_bytes")?,
        launch_latency: as_f64(g.require("launch_latency")?, "gpu.launch_latency")?,
        saturation_items: as_f64(g.require("saturation_items")?, "gpu.saturation_items")?,
        pcie_bw: as_f64(g.require("pcie_bw")?, "gpu.pcie_bw")?,
        pcie_latency: as_f64(g.require("pcie_latency")?, "gpu.pcie_latency")?,
        context_switch: as_f64(g.require("context_switch")?, "gpu.context_switch")?,
        mps_crowding: as_f64(g.require("mps_crowding")?, "gpu.mps_crowding")?,
        alloc_latency: as_f64(g.require("alloc_latency")?, "gpu.alloc_latency")?,
    };
    g.finish()?;

    let (fw_v, fw_line) = f.require("framework")?;
    let mut w = Fields::of(fw_v, "calib.node.framework", fw_line)?;
    let framework = accel_sim::calib::FrameworkCalib {
        jit_dispatch: as_f64(w.require("jit_dispatch")?, "framework.jit_dispatch")?,
        jit_compile: as_f64(w.require("jit_compile")?, "framework.jit_compile")?,
        omp_region: as_f64(w.require("omp_region")?, "framework.omp_region")?,
        jit_mem_overhead: as_f64(w.require("jit_mem_overhead")?, "framework.jit_mem_overhead")?,
        jit_process_device_bytes: as_f64(
            w.require("jit_process_device_bytes")?,
            "framework.jit_process_device_bytes",
        )?,
        omp_process_device_bytes: as_f64(
            w.require("omp_process_device_bytes")?,
            "framework.omp_process_device_bytes",
        )?,
        jit_runtime_factor: as_f64(
            w.require("jit_runtime_factor")?,
            "framework.jit_runtime_factor",
        )?,
        jit_cpu_backend_eff: as_f64(
            w.require("jit_cpu_backend_eff")?,
            "framework.jit_cpu_backend_eff",
        )?,
    };
    w.finish()?;

    f.finish()?;
    Ok(NodeCalib {
        cpu,
        gpu,
        framework,
    })
}

fn decode_net_calib(v: (Value, usize)) -> Result<NetCalib, ScenarioError> {
    let (value, line) = v;
    let mut f = Fields::of(value, "calib.net", line)?;
    let net = NetCalib {
        bw: as_f64(f.require("bw")?, "net.bw")?,
        latency: as_f64(f.require("latency")?, "net.latency")?,
    };
    f.finish()?;
    Ok(net)
}

fn decode_output(v: (Value, usize)) -> Result<OutputSpec, ScenarioError> {
    let (value, line) = v;
    let mut f = Fields::of(value, "output", line)?;
    let trace_out = f
        .take("trace_out")
        .map(|v| as_str(v, "output.trace_out"))
        .transpose()?;
    let record_out = f
        .take("record_out")
        .map(|v| as_str(v, "output.record_out"))
        .transpose()?;
    f.finish()?;
    Ok(OutputSpec {
        trace_out,
        record_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::SweepCalib;

    fn base() -> Scenario {
        Scenario::new("fig5_full_benchmark", ProblemSize::Large, 1e-3)
            .with_kind(ImplKind::OmpTarget)
            .with_nodes(4)
    }

    #[test]
    fn round_trips_through_pretty_and_compact_json() {
        for s in [
            base(),
            Scenario::new("plain", ProblemSize::Medium, 2e-4),
            base().with_calib_preset("h100"),
            base().with_calib_inline(NodeCalib::scaled(0.5), NetCalib::slingshot11()),
        ] {
            let pretty = s.to_json();
            assert_eq!(Scenario::parse(&pretty).unwrap(), s, "{pretty}");
            let compact = s.to_json_compact();
            assert_eq!(Scenario::parse(&compact).unwrap(), s, "{compact}");
            assert!(!compact.contains('\n'));
            // Canonical form is a fixed point: serialize(parse(f)) == f.
            assert_eq!(Scenario::parse(&pretty).unwrap().to_json(), pretty);
        }
    }

    #[test]
    fn problem_overrides_apply() {
        let mut s = Scenario::new("tiny", ProblemSize::Medium, 2e-3);
        s.problem.total_samples = Some(5e9 * (64.0 / 2048.0));
        s.problem.n_det_total = Some(64);
        s.problem.n_obs = Some(2);
        let p = s.build_problem();
        assert_eq!(p.n_det_total, 64);
        assert_eq!(p.n_obs, 2);
        assert_eq!(p.total_samples, 5e9 * (64.0 / 2048.0));
        // Untouched fields keep the paper values.
        assert_eq!(p.seed, 53);
        assert_eq!(p.passes, 6);
        // And the override survives a round trip.
        let back = Scenario::parse(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn auto_calib_matches_the_problem_calibration() {
        let s = Scenario::new("x", ProblemSize::Medium, 2e-3);
        let (node, net) = s.resolved_calib().unwrap();
        assert_eq!(node, s.build_problem().calib());
        assert_eq!(net, NetCalib::default());
    }

    #[test]
    fn preset_calib_is_rescaled_to_the_working_scale() {
        let s = Scenario::new("x", ProblemSize::Medium, 1e-3).with_calib_preset("h100");
        let (node, net) = s.resolved_calib().unwrap();
        let p = preset("h100").unwrap();
        assert_eq!(node, p.node.rescaled(1e-3));
        assert_eq!(net, p.net);
    }

    #[test]
    fn unknown_preset_is_a_typed_error() {
        let s = Scenario::new("x", ProblemSize::Medium, 1e-3).with_calib_preset("b200");
        match s.validate() {
            Err(ScenarioError::UnknownPreset(e)) => assert_eq!(e.name, "b200"),
            other => panic!("expected UnknownPreset, got {other:?}"),
        }
    }

    #[test]
    fn invalid_procs_is_a_typed_error() {
        for procs in [0u32, 3, 7, 65, 128] {
            let s = Scenario::new("x", ProblemSize::Medium, 1e-3).with_procs(procs);
            match s.threads() {
                Err(ScenarioError::InvalidProcs { procs: p, cores }) => {
                    assert_eq!(p, procs);
                    assert_eq!(cores, 64);
                }
                other => panic!("procs {procs}: expected InvalidProcs, got {other:?}"),
            }
        }
        for procs in [1u32, 2, 4, 8, 16, 32, 64] {
            let s = Scenario::new("x", ProblemSize::Medium, 1e-3).with_procs(procs);
            assert_eq!(s.threads().unwrap(), 64 / procs);
        }
    }

    #[test]
    fn unknown_version_and_unknown_field_name_the_offender() {
        let mut text = base().to_json();
        text = text.replace("\"schema_version\": 1", "\"schema_version\": 2");
        match Scenario::parse(&text) {
            Err(ScenarioError::UnknownVersion { version }) => assert_eq!(version, 2),
            other => panic!("expected UnknownVersion, got {other:?}"),
        }

        let text = base()
            .to_json()
            .replace("\"mps\": true", "\"mps\": true,\n  \"turbo\": true");
        match Scenario::parse(&text) {
            Err(ScenarioError::UnknownField { field, line }) => {
                assert_eq!(field, "turbo");
                assert!(line > 1, "line {line}");
            }
            other => panic!("expected UnknownField, got {other:?}"),
        }
    }

    #[test]
    fn missing_field_and_bad_enum_values_are_typed() {
        let text = base().to_json().replace("  \"impl\": \"omp\",\n", "");
        match Scenario::parse(&text) {
            Err(ScenarioError::MissingField { field }) => assert_eq!(field, "impl"),
            other => panic!("expected MissingField, got {other:?}"),
        }

        let text = base()
            .to_json()
            .replace("\"impl\": \"omp\"", "\"impl\": \"cuda\"");
        match Scenario::parse(&text) {
            Err(ScenarioError::InvalidValue { field, msg }) => {
                assert_eq!(field, "impl");
                assert!(msg.contains("cuda"), "{msg}");
            }
            other => panic!("expected InvalidValue, got {other:?}"),
        }
    }

    #[test]
    fn sweep_expansion_matches_the_engine_grid_order() {
        let b = base();
        let spec = SweepSpec {
            calibs: vec![
                SweepCalib {
                    name: "identity".into(),
                    node: NodeCalib::scaled(1e-3),
                    net: NetCalib::default(),
                },
                SweepCalib {
                    name: "h100".into(),
                    node: preset("h100").unwrap().node.rescaled(1e-3),
                    net: preset("h100").unwrap().net,
                },
            ],
            gpus: vec![4, 8],
            schedules: vec![SchedulePolicyKind::Auto, SchedulePolicyKind::Fifo],
            deadline: None,
        };
        let expanded = expand_sweep(&b, &spec);
        assert_eq!(expanded.len(), 8);
        // Calib-major, then gpus, then schedules — the sweep()'s order.
        assert_eq!(expanded[0].gpus, 4);
        assert_eq!(expanded[1].schedule, SchedulePolicyKind::Fifo);
        assert_eq!(expanded[2].gpus, 8);
        assert_eq!(
            expanded[3].calib,
            CalibSpec::Auto,
            "identity keeps base calib"
        );
        assert_eq!(expanded[4].calib, CalibSpec::Preset("h100".into()));
        assert!(expanded[4].name.contains("h100"));
        // Every expanded point is itself a valid, serializable scenario.
        for s in &expanded {
            s.validate().unwrap();
            assert_eq!(Scenario::parse(&s.to_json()).unwrap(), *s);
        }
    }

    #[test]
    fn names_with_quotes_and_backslashes_survive() {
        let s = base().with_name("odd \"name\" with \\ and \n newline");
        assert_eq!(Scenario::parse(&s.to_json()).unwrap(), s);
    }
}
