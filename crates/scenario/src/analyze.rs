//! Scenario-level static analysis — `simlint`'s pre-run surface.
//!
//! A [`Scenario`] describes a run that has not happened yet, so unlike
//! the workload passes in `accel_sim::analyze` there is no recorded
//! trace to prove things against. These checks are instead judgments on
//! the *description*: layouts that are self-contradictory (`S001`,
//! error), layouts that are legal but almost certainly not what the
//! author meant (`S002`–`S004`, warnings), calibrations the cost model
//! cannot price (`S005`, error, shared with the workload checker), and
//! device reservations that provably cannot fit before a single kernel
//! launches (`S006`, error).

use accel_sim::analyze::{check_calib, Code, Diagnostic, Locus, Report};

use crate::{ImplKind, Scenario};

/// Statically check a scenario. Deterministic: findings appear in fixed
/// order (procs, layout, overlap, calibration, reservations).
pub fn check_scenario(scenario: &Scenario) -> Report {
    let mut diagnostics = Vec::new();

    if let Err(e) = scenario.threads() {
        diagnostics.push(
            Diagnostic::error(
                Code::InfeasibleProcs,
                Locus::field("procs_per_node"),
                e.to_string(),
            )
            .with_suggestion("pick a procs_per_node that divides the node's cores"),
        );
    }

    let gpus = scenario.gpus.max(1);
    let procs = scenario.procs_per_node;
    if procs > 0 && gpus > procs {
        diagnostics.push(
            Diagnostic::warn(
                Code::IdleGpus,
                Locus::field("gpus"),
                format!(
                    "{gpus} GPU(s) per node but only {procs} rank(s): {} device(s) per node are provably idle",
                    gpus - procs
                ),
            )
            .with_suggestion("lower gpus, or raise procs_per_node"),
        );
    }
    if !scenario.mps && procs > gpus {
        diagnostics.push(
            Diagnostic::warn(
                Code::OversubscribedNoMps,
                Locus::field("mps"),
                format!(
                    "{procs} rank(s) share {gpus} GPU(s) without MPS: every kernel pays the full context-switch cost (paper § 3.1.2)",
                ),
            )
            .with_suggestion("set mps: true, or run at most one rank per GPU"),
        );
    }

    if scenario.overlap_transfers && matches!(scenario.kind, ImplKind::Cpu | ImplKind::JitCpu) {
        diagnostics.push(Diagnostic::warn(
            Code::OverlapWithoutTransfers,
            Locus::field("overlap_transfers"),
            format!(
                "overlap_transfers is enabled but the '{:?}' implementation runs on the host and records no device transfers; the flag cannot change the result",
                scenario.kind
            ),
        ));
    }

    match scenario.resolved_calib() {
        Err(e) => {
            diagnostics.push(Diagnostic::error(
                Code::DegenerateCalib,
                Locus::field("calib"),
                e.to_string(),
            ));
        }
        Ok((node, net)) => {
            let calib_findings = check_calib(&node, &net);
            let calib_ok = calib_findings.is_empty();
            diagnostics.extend(calib_findings);

            // S006: the framework's fixed per-process device reservation
            // (JIT preallocation / OMP runtime image) is charged per
            // resident rank before any kernel data. If the reservations
            // alone exceed device memory the run cannot start — provable
            // from the description, no trace needed.
            let per_proc = match scenario.kind {
                ImplKind::Jit => node.framework.jit_process_device_bytes,
                ImplKind::OmpTarget => node.framework.omp_process_device_bytes,
                ImplKind::Cpu | ImplKind::JitCpu => 0.0,
            };
            if calib_ok && per_proc > 0.0 && procs > 0 {
                let ranks_per_gpu = procs.div_ceil(gpus);
                let reserved = ranks_per_gpu as f64 * per_proc;
                let capacity = node.gpu.mem_bytes as f64;
                if reserved > capacity {
                    diagnostics.push(
                        Diagnostic::error(
                            Code::ReservationsExceedMemory,
                            Locus::field("procs_per_node"),
                            format!(
                                "{ranks_per_gpu} rank(s) per GPU each reserve {per_proc:.3e} B of device memory ({reserved:.3e} B total) but the GPU holds {capacity:.3e} B; the run is out of memory before the first kernel",
                            ),
                        )
                        .with_suggestion("lower procs_per_node, raise gpus, or pick a larger-memory calibration"),
                    );
                }
            }
        }
    }

    Report { diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetCalib, NodeCalib, ProblemSize};
    use accel_sim::analyze::Severity;

    fn base() -> Scenario {
        Scenario::new("lint-test", ProblemSize::Medium, 1e-3)
    }

    #[test]
    fn the_default_scenario_is_clean() {
        let report = check_scenario(&base());
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn infeasible_procs_is_an_error() {
        let report = check_scenario(&base().with_procs(7));
        assert!(!report.is_clean());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::InfeasibleProcs)
            .expect("S001");
        assert_eq!(d.locus.field.as_deref(), Some("procs_per_node"));
    }

    #[test]
    fn layout_lints_warn_but_admit() {
        let report = check_scenario(&base().with_procs(2).with_gpus(4));
        assert!(report.is_clean());
        assert!(report.has(Code::IdleGpus));

        let report = check_scenario(&base().with_procs(16).with_gpus(4).with_mps(false));
        assert!(report.is_clean());
        assert!(report.has(Code::OversubscribedNoMps));
    }

    #[test]
    fn overlap_on_a_host_port_is_pointless() {
        let report = check_scenario(&base().with_kind(ImplKind::Cpu).with_overlap(true));
        assert!(report.has(Code::OverlapWithoutTransfers));
        // A device port with overlap is fine.
        let report = check_scenario(&base().with_kind(ImplKind::Jit).with_overlap(true));
        assert!(!report.has(Code::OverlapWithoutTransfers));
    }

    #[test]
    fn degenerate_inline_calibration_is_rejected() {
        let mut node = NodeCalib::default();
        node.gpu.hbm_bw = 0.0;
        let report = check_scenario(&base().with_calib_inline(node, NetCalib::default()));
        assert!(!report.is_clean());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::DegenerateCalib)
            .expect("S005");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.locus.field.as_deref(), Some("gpu.hbm_bw"));
    }

    #[test]
    fn provable_reservation_overflow_is_an_error() {
        // 64 JIT ranks on one GPU: 64 × 2.2 GB of fixed reservations
        // against a 40 GB device (unscaled default calibration).
        let s = base()
            .with_kind(ImplKind::Jit)
            .with_procs(64)
            .with_gpus(1)
            .with_calib_inline(NodeCalib::default(), NetCalib::default());
        let report = check_scenario(&s);
        assert!(!report.is_clean());
        assert!(report.has(Code::ReservationsExceedMemory));
        // Spreading the same ranks over 8 GPUs fits.
        let s = s.with_gpus(8);
        assert!(!check_scenario(&s).has(Code::ReservationsExceedMemory));
    }
}
