//! Job envelope: the simulation service's request format.
//!
//! The `simd` service speaks newline-delimited JSON — one request per
//! line, streamed over a pipe or Unix socket. This module holds the
//! typed envelope those lines decode into: scenario jobs carry a full
//! inline [`Scenario`] (validated by the same `Scenario` decoding every
//! binary uses), sweep jobs reference a recorded workload by path and
//! describe their grid with the `whatif sweep` clause syntax. Decoding
//! is strict in the house style: an unknown envelope field is a typed
//! error naming the offender, never silently ignored.
//!
//! The envelope deliberately lives in this crate rather than the serve
//! crate: it is the request *format*, versioned alongside the scenario
//! schema it embeds, and parseable by any client without pulling in the
//! service loop.

use crate::json::{self, as_f64, as_str, Fields};
use crate::{Scenario, ScenarioError};

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum JobRequest {
    /// `{"type":"submit","id":…,"scenario":{…}}` — run one scenario
    /// through the engine.
    Submit {
        /// Client-chosen job id, echoed on every status event.
        id: String,
        /// The fully validated scenario payload.
        scenario: Box<Scenario>,
    },
    /// `{"type":"sweep","id":…,"recording":…}` — evaluate a grid over a
    /// recorded workload.
    Sweep {
        id: String,
        /// Path to the recorded workload (what-if JSONL).
        recording: String,
        /// Optional `key=value;…` grid clauses (`gpus=1..8;calib=h100`);
        /// unspecified axes default per the recording, as in
        /// `whatif sweep --grid`.
        grid: Option<String>,
        /// Optional makespan budget: prunes provably-late points and
        /// selects the cheapest point meeting it.
        deadline: Option<f64>,
        /// Where to write the sweep result JSONL.
        out: Option<String>,
    },
    /// `{"type":"stats"}` — report service counters.
    Stats,
    /// `{"type":"drain"}` — process every queued job now.
    Drain,
    /// `{"type":"shutdown"}` — drain, then exit.
    Shutdown,
}

impl JobRequest {
    /// Parse one request line. Errors are [`ScenarioError`]s: malformed
    /// JSON, a missing/unknown envelope field, or an invalid embedded
    /// scenario — each naming the offending field and line.
    pub fn parse(line: &str) -> Result<Self, ScenarioError> {
        let root = json::parse(line)?;
        let mut f = Fields::of(root, "request", 1)?;
        let kind = as_str(f.require("type")?, "type")?;
        let req = match kind.as_str() {
            "submit" => {
                let id = as_str(f.require("id")?, "id")?;
                let (sv, line) = f.require("scenario")?;
                let scenario = Scenario::from_value(sv, line)?;
                JobRequest::Submit {
                    id,
                    scenario: Box::new(scenario),
                }
            }
            "sweep" => JobRequest::Sweep {
                id: as_str(f.require("id")?, "id")?,
                recording: as_str(f.require("recording")?, "recording")?,
                grid: f.take("grid").map(|v| as_str(v, "grid")).transpose()?,
                deadline: f
                    .take("deadline")
                    .map(|v| as_f64(v, "deadline"))
                    .transpose()?,
                out: f.take("out").map(|v| as_str(v, "out")).transpose()?,
            },
            "stats" => JobRequest::Stats,
            "drain" => JobRequest::Drain,
            "shutdown" => JobRequest::Shutdown,
            other => {
                return Err(ScenarioError::InvalidValue {
                    field: "type".into(),
                    msg: format!(
                        "unknown request type '{other}' \
                         (expected submit, sweep, stats, drain or shutdown)"
                    ),
                })
            }
        };
        f.finish()?;
        Ok(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ImplKind, ProblemSize};

    fn tiny() -> Scenario {
        Scenario::new("envelope test", ProblemSize::Medium, 1e-3)
    }

    #[test]
    fn submit_round_trips_the_embedded_scenario() {
        let s = tiny().with_kind(ImplKind::OmpTarget).with_procs(8);
        let line = format!(
            "{{\"type\":\"submit\",\"id\":\"job-1\",\"scenario\":{}}}",
            s.to_json_compact()
        );
        match JobRequest::parse(&line).unwrap() {
            JobRequest::Submit { id, scenario } => {
                assert_eq!(id, "job-1");
                assert_eq!(*scenario, s);
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn sweep_carries_optional_axes() {
        let line = concat!(
            "{\"type\":\"sweep\",\"id\":\"s1\",\"recording\":\"w.jsonl\",",
            "\"grid\":\"gpus=1..4\",\"deadline\":0.5,\"out\":\"res.jsonl\"}"
        );
        match JobRequest::parse(line).unwrap() {
            JobRequest::Sweep {
                id,
                recording,
                grid,
                deadline,
                out,
            } => {
                assert_eq!(id, "s1");
                assert_eq!(recording, "w.jsonl");
                assert_eq!(grid.as_deref(), Some("gpus=1..4"));
                assert_eq!(deadline, Some(0.5));
                assert_eq!(out.as_deref(), Some("res.jsonl"));
            }
            other => panic!("expected Sweep, got {other:?}"),
        }
        let bare = JobRequest::parse("{\"type\":\"sweep\",\"id\":\"s2\",\"recording\":\"w\"}");
        assert!(matches!(
            bare.unwrap(),
            JobRequest::Sweep {
                grid: None,
                deadline: None,
                out: None,
                ..
            }
        ));
    }

    #[test]
    fn control_requests_parse() {
        assert_eq!(
            JobRequest::parse("{\"type\":\"stats\"}").unwrap(),
            JobRequest::Stats
        );
        assert_eq!(
            JobRequest::parse("{\"type\":\"drain\"}").unwrap(),
            JobRequest::Drain
        );
        assert_eq!(
            JobRequest::parse("{\"type\":\"shutdown\"}").unwrap(),
            JobRequest::Shutdown
        );
    }

    #[test]
    fn envelope_errors_are_typed_and_name_the_offender() {
        // Unknown request type.
        let e = JobRequest::parse("{\"type\":\"frobnicate\"}").unwrap_err();
        assert!(e.to_string().contains("frobnicate"), "{e}");
        // Unknown envelope field.
        let e = JobRequest::parse("{\"type\":\"stats\",\"bogus\":1}").unwrap_err();
        assert!(matches!(e, ScenarioError::UnknownField { ref field, .. } if field == "bogus"));
        // Missing required field.
        let e = JobRequest::parse("{\"type\":\"sweep\",\"id\":\"x\"}").unwrap_err();
        assert!(matches!(e, ScenarioError::MissingField { ref field } if field == "recording"));
        // An invalid embedded scenario surfaces the scenario's own error.
        let mut s = tiny();
        s.procs_per_node = 7;
        let line = format!(
            "{{\"type\":\"submit\",\"id\":\"bad\",\"scenario\":{}}}",
            s.to_json_compact()
        );
        let e = JobRequest::parse(&line).unwrap_err();
        assert!(
            matches!(e, ScenarioError::InvalidProcs { procs: 7, .. }),
            "{e}"
        );
    }
}
