//! A minimal JSON reader for scenario files.
//!
//! The workspace builds without registry dependencies, so — like the
//! what-if recorder's JSONL and the trace exporter before it — the format
//! is hand-rolled. Unlike those line-oriented formats, scenario files are
//! nested, human-edited documents, so this module is a real (if small)
//! recursive-descent parser: it tracks the line of every token, keeps
//! number tokens verbatim (so `u64` seeds and `{:?}`-printed `f64`s both
//! round-trip losslessly), and hands decoding errors enough context to
//! name the offending line.
//!
//! Decoding goes through [`Fields`], which records which keys a caller
//! consumed; [`Fields::finish`] turns every leftover key into a typed
//! unknown-field error naming the field and its line — the scenario
//! spec's forward-compatibility contract (an unknown knob is a hard
//! error, never silently ignored).

use crate::ScenarioError;

/// A parsed JSON value. Numbers keep their raw token so integer and
/// float interpretation is decided by the consumer, losslessly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// The raw number token (e.g. `0.001`, `5000000000.0`, `53`).
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    /// Key → (value, line of the key), in document order.
    Obj(Vec<(String, Value, usize)>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

fn err(line: usize, msg: impl Into<String>) -> ScenarioError {
    ScenarioError::Json {
        line,
        msg: msg.into(),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&mut self) -> Result<u8, ScenarioError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| err(self.line, "unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), ScenarioError> {
        let got = self.peek()?;
        if got != b {
            return Err(err(
                self.line,
                format!("expected '{}', found '{}'", b as char, got as char),
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Value, ScenarioError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(err(
                self.line,
                format!("unexpected character '{}'", other as char),
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ScenarioError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(err(self.line, format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, ScenarioError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Validate now so consumers can parse the token infallibly later.
        raw.parse::<f64>()
            .map_err(|_| err(self.line, format!("malformed number '{raw}'")))?;
        Ok(Value::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, ScenarioError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(err(self.line, "unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err(err(self.line, "unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => {
                            return Err(err(
                                self.line,
                                format!("unsupported escape '\\{}'", other as char),
                            ))
                        }
                    }
                }
                b'\n' => return Err(err(self.line, "unterminated string")),
                _ => {
                    // Re-attach multi-byte UTF-8 sequences whole.
                    let ch_start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = ch_start + width;
                    let s = std::str::from_utf8(&self.bytes[ch_start..self.pos])
                        .map_err(|_| err(self.line, "invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ScenarioError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(err(
                        self.line,
                        format!("expected ',' or ']', found '{}'", other as char),
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, ScenarioError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key_line = self.line;
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            if fields.iter().any(|(k, _, _)| *k == key) {
                return Err(err(key_line, format!("duplicate field '{key}'")));
            }
            fields.push((key, value, key_line));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(err(
                        self.line,
                        format!("expected ',' or '}}', found '{}'", other as char),
                    ))
                }
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parse one JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, ScenarioError> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err(p.line, "trailing characters after document"));
    }
    Ok(v)
}

/// An object being decoded: consumed keys are crossed off, and
/// [`Fields::finish`] reports whatever is left as unknown fields.
pub struct Fields {
    entries: Vec<(String, Value, usize)>,
    taken: Vec<bool>,
    /// Line of the opening object, for missing-field context.
    pub line: usize,
}

impl Fields {
    /// Wrap a value that must be an object.
    pub fn of(value: Value, what: &str, line: usize) -> Result<Self, ScenarioError> {
        match value {
            Value::Obj(entries) => {
                let taken = vec![false; entries.len()];
                Ok(Self {
                    entries,
                    taken,
                    line,
                })
            }
            other => Err(err(
                line,
                format!("{what} must be an object, found {}", other.type_name()),
            )),
        }
    }

    /// Consume a key, if present. Returns the value and the line it
    /// appeared on.
    pub fn take(&mut self, key: &str) -> Option<(Value, usize)> {
        let i = self.entries.iter().position(|(k, _, _)| k == key)?;
        self.taken[i] = true;
        let (_, v, line) = &self.entries[i];
        Some((v.clone(), *line))
    }

    /// Consume a key that must be present.
    pub fn require(&mut self, key: &str) -> Result<(Value, usize), ScenarioError> {
        self.take(key).ok_or_else(|| ScenarioError::MissingField {
            field: key.to_string(),
        })
    }

    /// Error on any key no caller consumed, naming the first offender and
    /// the line it appears on.
    pub fn finish(self) -> Result<(), ScenarioError> {
        for (i, (key, _, line)) in self.entries.iter().enumerate() {
            if !self.taken[i] {
                return Err(ScenarioError::UnknownField {
                    field: key.clone(),
                    line: *line,
                });
            }
        }
        Ok(())
    }
}

/// Decode helpers: each names the field in its error.
pub fn as_str((v, line): (Value, usize), field: &str) -> Result<String, ScenarioError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(err(
            line,
            format!(
                "field '{field}' must be a string, found {}",
                other.type_name()
            ),
        )),
    }
}

pub fn as_bool((v, line): (Value, usize), field: &str) -> Result<bool, ScenarioError> {
    match v {
        Value::Bool(b) => Ok(b),
        other => Err(err(
            line,
            format!(
                "field '{field}' must be a boolean, found {}",
                other.type_name()
            ),
        )),
    }
}

pub fn as_f64((v, line): (Value, usize), field: &str) -> Result<f64, ScenarioError> {
    match v {
        Value::Num(raw) => raw
            .parse()
            .map_err(|_| err(line, format!("field '{field}' holds a malformed number"))),
        other => Err(err(
            line,
            format!(
                "field '{field}' must be a number, found {}",
                other.type_name()
            ),
        )),
    }
}

pub fn as_int<T: std::str::FromStr>(
    (v, line): (Value, usize),
    field: &str,
) -> Result<T, ScenarioError> {
    match v {
        Value::Num(raw) => raw.parse().map_err(|_| {
            err(
                line,
                format!("field '{field}' must be a non-negative integer, got '{raw}'"),
            )
        }),
        other => Err(err(
            line,
            format!(
                "field '{field}' must be a number, found {}",
                other.type_name()
            ),
        )),
    }
}

/// Escape a string for embedding in JSON output.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// `{:?}` on f64 is the shortest representation that parses back to the
/// identical bits — the same convention as the what-if JSONL writer.
pub fn num(v: f64) -> String {
    format!("{v:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents_with_line_tracking() {
        let text = "{\n  \"a\": 1,\n  \"b\": {\n    \"c\": [true, null, \"x\"]\n  }\n}";
        let v = parse(text).unwrap();
        let Value::Obj(fields) = v else {
            panic!("object")
        };
        assert_eq!(fields[0].0, "a");
        assert_eq!(fields[0].2, 2);
        assert_eq!(fields[1].2, 3);
        let Value::Obj(inner) = &fields[1].1 else {
            panic!("inner object")
        };
        assert_eq!(inner[0].2, 4);
    }

    #[test]
    fn numbers_keep_their_raw_tokens() {
        let v = parse("{\"x\": 0.30000000000000004, \"y\": 18446744073709551615}").unwrap();
        let Value::Obj(fields) = v else {
            panic!("object")
        };
        assert_eq!(fields[0].1, Value::Num("0.30000000000000004".into()));
        // u64::MAX survives verbatim (f64 would round it).
        let Value::Num(raw) = &fields[1].1 else {
            panic!("number")
        };
        assert_eq!(raw.parse::<u64>().unwrap(), u64::MAX);
    }

    #[test]
    fn malformed_documents_name_their_line() {
        for (text, line) in [
            ("{\"a\": }", 1),
            ("{\n\"a\": 1\n\"b\": 2}", 3),
            ("{\"a\": 1} x", 1),
            ("{\n  \"a\": tru\n}", 2),
        ] {
            match parse(text) {
                Err(ScenarioError::Json { line: l, .. }) => assert_eq!(l, line, "{text}"),
                other => panic!("{text}: expected Json error, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let e = parse("{\"a\": 1, \"a\": 2}").unwrap_err();
        assert!(e.to_string().contains("duplicate field 'a'"), "{e}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse("{\"s\": \"a\\\"b\\\\c\\nd\"}").unwrap();
        let Value::Obj(fields) = v else {
            panic!("object")
        };
        assert_eq!(fields[0].1, Value::Str("a\"b\\c\nd".into()));
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn unknown_fields_surface_with_line_numbers() {
        let v = parse("{\n  \"known\": 1,\n  \"mystery\": 2\n}").unwrap();
        let mut f = Fields::of(v, "test", 1).unwrap();
        f.take("known").unwrap();
        match f.finish() {
            Err(ScenarioError::UnknownField { field, line }) => {
                assert_eq!(field, "mystery");
                assert_eq!(line, 3);
            }
            other => panic!("expected UnknownField, got {other:?}"),
        }
    }
}
