//! Property-based tests for the scenario spec: any valid [`Scenario`]
//! survives a JSON round trip unchanged (pretty and compact forms), the
//! serializer is a fixed point, and strictness errors name their
//! offender. These hold over the whole space of valid scenarios, not just
//! the golden files under `scenarios/`.

use proptest::prelude::*;
use scenario::{
    CalibSpec, ImplKind, MovementPolicy, NetCalib, NodeCalib, ProblemSize, Scenario, ScenarioError,
    SchedulePolicyKind,
};

const NAMES: [&str; 6] = [
    "fig5_full_benchmark",
    "spaces in names",
    "q\"uote",
    "back\\slash",
    "line\nbreak",
    "π-scan",
];
const PRESETS: [&str; 5] = ["a100", "h100", "a100-nvlink", "h100-nvlink", "slingshot11"];
const DIVISORS_OF_64: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

#[allow(clippy::too_many_arguments)]
fn build(
    name_i: usize,
    size_i: u8,
    scale: f64,
    kind_i: u8,
    procs_i: usize,
    gpus: u32,
    mps: bool,
    movement_i: u8,
    schedule_i: u8,
    nodes_i: u32,
    overlap: bool,
    calib_i: u8,
    inline_scale: f64,
    net_bw: f64,
    net_lat: f64,
) -> Scenario {
    let size = if size_i == 0 {
        ProblemSize::Medium
    } else {
        ProblemSize::Large
    };
    let mut s = Scenario::new(NAMES[name_i], size, scale);
    s.kind = [
        ImplKind::Cpu,
        ImplKind::OmpTarget,
        ImplKind::Jit,
        ImplKind::JitCpu,
    ][kind_i as usize];
    s.procs_per_node = DIVISORS_OF_64[procs_i];
    s.gpus = gpus;
    s.mps = mps;
    s.movement = if movement_i == 0 {
        MovementPolicy::Tracked
    } else {
        MovementPolicy::Naive
    };
    s.schedule = [
        SchedulePolicyKind::Auto,
        SchedulePolicyKind::MpsFluid,
        SchedulePolicyKind::TimeSliced,
        SchedulePolicyKind::Fifo,
        SchedulePolicyKind::Priority,
    ][schedule_i as usize];
    s.nodes = (nodes_i > 0).then_some(nodes_i);
    s.overlap_transfers = overlap;
    s.calib = match calib_i {
        0..=2 => CalibSpec::Auto,
        3..=7 => CalibSpec::Preset(PRESETS[calib_i as usize - 3].into()),
        _ => CalibSpec::Inline {
            node: NodeCalib::scaled(inline_scale),
            net: NetCalib {
                bw: net_bw,
                latency: net_lat,
            },
        },
    };
    s
}

fn round_trip(s: &Scenario) -> Result<(), String> {
    prop_assert!(s.validate().is_ok(), "generator made an invalid scenario");

    let pretty = s.to_json();
    let parsed = Scenario::parse(&pretty);
    prop_assert!(parsed.is_ok(), "pretty form rejected: {:?}", parsed.err());
    let parsed = parsed.unwrap();
    prop_assert_eq!(&parsed, s);
    // The serializer is a fixed point: re-serializing the parse is
    // byte-identical, so goldens never churn.
    prop_assert_eq!(parsed.to_json(), pretty);

    let compact = s.to_json_compact();
    prop_assert!(
        !compact.contains('\n'),
        "compact form must stay on one line (it is embedded in JSONL)"
    );
    let reparsed = Scenario::parse(&compact);
    prop_assert!(
        reparsed.is_ok(),
        "compact form rejected: {:?}",
        reparsed.err()
    );
    prop_assert_eq!(&reparsed.unwrap(), s);
    Ok(())
}

proptest! {
    /// parse(serialize(s)) == s for arbitrary valid scenarios, pretty and
    /// compact, including names that need escaping and every calibration
    /// source.
    #[test]
    fn valid_scenarios_round_trip(
        name_i in 0usize..6,
        size_i in 0u8..2,
        scale in 1e-6..1.0f64,
        kind_i in 0u8..4,
        procs_i in 0usize..7,
        gpus in 1u32..9,
        mps: bool,
        movement_i in 0u8..2,
        schedule_i in 0u8..5,
        nodes_i in 0u32..5,
        overlap: bool,
        calib_i in 0u8..9,
        inline_scale in 1e-3..1.0f64,
        net_bw in 1e9..1e12f64,
        net_lat in 1e-7..1e-4f64,
    ) {
        let s = build(
            name_i, size_i, scale, kind_i, procs_i, gpus, mps, movement_i,
            schedule_i, nodes_i, overlap, calib_i, inline_scale, net_bw, net_lat,
        );
        round_trip(&s)?;
    }

    /// The problem-override block round-trips too: every combination of
    /// present/absent optional fields, with raw integers kept lossless
    /// (seeds use the full u64 domain, beyond f64's exact range).
    #[test]
    fn problem_overrides_round_trip(
        mask in 0u8..64,
        ts in 1e6..1e11f64,
        ndet in 1usize..10_000,
        nside in 1u64..64,
        nobs in 1usize..64,
        passes in 1usize..10,
        seed: u64,
        trace_i in 0usize..3,
        record_i in 0usize..3,
    ) {
        let mut s = Scenario::new("overrides", ProblemSize::Medium, 2e-3);
        if mask & 1 != 0 {
            s.problem.total_samples = Some(ts);
        }
        if mask & 2 != 0 {
            s.problem.n_det_total = Some(ndet);
        }
        if mask & 4 != 0 {
            s.problem.nside = Some(nside);
        }
        if mask & 8 != 0 {
            s.problem.n_obs = Some(nobs);
        }
        if mask & 16 != 0 {
            s.problem.passes = Some(passes);
        }
        if mask & 32 != 0 {
            s.problem.seed = Some(seed);
        }
        s.output.trace_out =
            [None, Some("trace.json"), Some("out dir/trace.jsonl")][trace_i].map(String::from);
        s.output.record_out =
            [None, Some("rec.jsonl"), Some("päth.jsonl")][record_i].map(String::from);
        round_trip(&s)?;
    }

    /// Strictness holds everywhere in the valid space: injecting an
    /// unknown top-level key into any serialized scenario is rejected with
    /// an error naming exactly that key and its line.
    #[test]
    fn unknown_fields_are_rejected_by_name(
        name_i in 0usize..6,
        size_i in 0u8..2,
        scale in 1e-6..1.0f64,
        kind_i in 0u8..4,
        procs_i in 0usize..7,
        gpus in 1u32..9,
        mps: bool,
    ) {
        let s = build(
            name_i, size_i, scale, kind_i, procs_i, gpus, mps, 0, 0, 0, false,
            0, 0.5, 1e10, 1e-6,
        );
        let doc = s
            .to_json()
            .replacen("\"name\":", "\"mystery_knob\": true,\n  \"name\":", 1);
        match Scenario::parse(&doc) {
            Err(ScenarioError::UnknownField { field, line }) => {
                prop_assert_eq!(field, "mystery_knob");
                prop_assert_eq!(line, 3);
            }
            other => prop_assert!(false, "expected UnknownField, got {:?}", other.err()),
        }
    }

    /// A future schema_version is always a typed error carrying the
    /// version it refused, never a silent partial parse.
    #[test]
    fn unknown_versions_are_rejected_with_the_version(
        version in 2u64..1000,
        name_i in 0usize..6,
    ) {
        let s = Scenario::new(NAMES[name_i], ProblemSize::Medium, 1e-3);
        let doc = s
            .to_json()
            .replacen("\"schema_version\": 1", &format!("\"schema_version\": {version}"), 1);
        match Scenario::parse(&doc) {
            Err(ScenarioError::UnknownVersion { version: got }) => {
                prop_assert_eq!(got, version);
            }
            other => prop_assert!(false, "expected UnknownVersion, got {:?}", other.err()),
        }
    }

    /// Truncating a valid document anywhere inside produces a Json error
    /// that points at a real line of the input — malformed files fail with
    /// a location, not a panic.
    #[test]
    fn truncated_documents_fail_with_a_line_number(cut in 10usize..200) {
        let s = Scenario::new("truncation", ProblemSize::Large, 1e-2);
        let doc = s.to_json();
        prop_assume!(cut < doc.len());
        let maimed = &doc[..cut];
        match Scenario::parse(maimed) {
            Err(ScenarioError::Json { line, .. }) => {
                prop_assert!(
                    line >= 1 && line <= maimed.lines().count() + 1,
                    "line {} out of range",
                    line
                );
            }
            // Cutting between fields can also surface as a missing field.
            Err(ScenarioError::MissingField { .. }) => {}
            other => prop_assert!(false, "expected Json error, got {:?}", other.err()),
        }
    }
}
