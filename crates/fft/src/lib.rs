//! Fast Fourier transforms and power-spectral-density noise synthesis.
//!
//! TOAST's kernels lean on FFT-based building blocks (the paper lists fast
//! Fourier transforms among the numerical patterns its benchmark
//! exercises); the main in-repo consumer is the simulated-noise operator,
//! which synthesises correlated `1/f + white` detector noise by colouring
//! Gaussian Fourier coefficients with a PSD and transforming back to the
//! time domain.
//!
//! The implementation is a from-scratch iterative radix-2 Cooley–Tukey
//! transform over a minimal [`Complex`] type — no external FFT library.
//!
//! # Example
//!
//! ```
//! use toast_fft::{fft, ifft, Complex};
//!
//! let signal: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! let mut spectrum = signal.clone();
//! fft(&mut spectrum);
//! ifft(&mut spectrum);
//! for (a, b) in signal.iter().zip(&spectrum) {
//!     assert!((a.re - b.re).abs() < 1e-12);
//! }
//! ```

#![forbid(unsafe_code)]

pub mod complex;
pub mod psd;
pub mod transform;

pub use complex::Complex;
pub use psd::{synthesize_noise, Psd};
pub use transform::{fft, ifft, rfft_forward};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_roundtrip() {
        let signal: Vec<Complex> = (0..16).map(|i| Complex::new((i * i) as f64, 0.0)).collect();
        let mut s = signal.clone();
        fft(&mut s);
        ifft(&mut s);
        for (a, b) in signal.iter().zip(&s) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!(b.im.abs() < 1e-9);
        }
    }
}
