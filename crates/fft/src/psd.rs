//! Power-spectral-density models and FFT-based noise synthesis.
//!
//! CMB detectors exhibit `1/f + white` noise. TOAST simulates a detector's
//! noise timestream by colouring unit Gaussian Fourier coefficients with
//! the square root of the detector PSD and transforming to the time
//! domain; this module reimplements that scheme.

use crate::complex::Complex;
use crate::transform::ifft;

/// A `1/f + white` noise power spectral density:
///
/// `P(f) = net² · (1 + (f_knee / f)^alpha)`, flattened below `f_min`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Psd {
    /// White-noise level (noise-equivalent temperature per √Hz).
    pub net: f64,
    /// Knee frequency in Hz where the 1/f component equals the white level.
    pub fknee: f64,
    /// Spectral slope of the low-frequency component (typically 1–2).
    pub alpha: f64,
    /// Minimum frequency: the PSD is held constant below this, bounding the
    /// divergence at `f → 0`.
    pub fmin: f64,
}

impl Psd {
    /// A pure white-noise PSD.
    pub fn white(net: f64) -> Self {
        Self {
            net,
            fknee: 0.0,
            alpha: 1.0,
            fmin: 1e-5,
        }
    }

    /// Evaluate the PSD at frequency `f` (Hz), in units of `net²`/Hz.
    pub fn eval(&self, f: f64) -> f64 {
        let f = f.max(self.fmin);
        if self.fknee <= 0.0 {
            return self.net * self.net;
        }
        self.net * self.net * (1.0 + (self.fknee / f).powf(self.alpha))
    }
}

/// Synthesise `n` samples of real noise with spectral density `psd` at
/// sample rate `rate` Hz.
///
/// `gauss(i)` must return the `i`-th variate of a unit Gaussian stream;
/// passing a counter-based stream makes the synthesis reproducible. Two
/// variates are consumed per positive-frequency bin.
///
/// `n` must be a power of two.
pub fn synthesize_noise(
    psd: &Psd,
    rate: f64,
    n: usize,
    mut gauss: impl FnMut(u64) -> f64,
) -> Vec<f64> {
    assert!(
        n.is_power_of_two(),
        "noise length {n} is not a power of two"
    );
    assert!(rate > 0.0);
    if n == 1 {
        return vec![psd.eval(rate / 2.0).sqrt() * rate.sqrt() * gauss(0)];
    }

    let mut spec = vec![Complex::ZERO; n];
    let df = rate / n as f64;
    // Scaling such that <|X_k|^2> = P(f_k) * rate * n / 2 for complex bins,
    // which makes the time-domain variance equal the PSD integral.
    for k in 1..n / 2 {
        let f = k as f64 * df;
        let sigma = (psd.eval(f) * rate * n as f64 / 2.0).sqrt();
        let g1 = gauss(2 * k as u64);
        let g2 = gauss(2 * k as u64 + 1);
        let z = Complex::new(g1, g2).scale(sigma * std::f64::consts::FRAC_1_SQRT_2);
        spec[k] = z;
        spec[n - k] = z.conj(); // Hermitian symmetry ⇒ real output
    }
    // DC: zero-mean noise. Nyquist: purely real.
    spec[0] = Complex::ZERO;
    let fnyq = rate / 2.0;
    spec[n / 2] = Complex::new(
        (psd.eval(fnyq) * rate * n as f64 / 2.0).sqrt() * gauss(1),
        0.0,
    );

    ifft(&mut spec);
    spec.into_iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cheap deterministic gaussian stream for tests (sum of 12 hashed
    /// uniforms — splitmix64 decorrelates consecutive indices).
    fn test_gauss(i: u64) -> f64 {
        fn splitmix(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }
        let mut acc = 0.0;
        for j in 0..12u64 {
            acc += (splitmix(i * 12 + j) >> 11) as f64 / (1u64 << 53) as f64;
        }
        acc - 6.0
    }

    #[test]
    fn psd_white_is_flat() {
        let psd = Psd::white(2.0);
        assert_eq!(psd.eval(0.01), 4.0);
        assert_eq!(psd.eval(10.0), 4.0);
    }

    #[test]
    fn psd_one_over_f_doubles_at_knee() {
        let psd = Psd {
            net: 1.0,
            fknee: 0.1,
            alpha: 1.0,
            fmin: 1e-6,
        };
        assert!((psd.eval(0.1) - 2.0).abs() < 1e-12);
        // Far above the knee → white level.
        assert!((psd.eval(100.0) - 1.0).abs() < 1e-2);
        // Below the knee the PSD rises.
        assert!(psd.eval(0.01) > psd.eval(0.1));
    }

    #[test]
    fn psd_fmin_bounds_divergence() {
        let psd = Psd {
            net: 1.0,
            fknee: 1.0,
            alpha: 2.0,
            fmin: 0.01,
        };
        assert_eq!(psd.eval(1e-9), psd.eval(0.01));
    }

    #[test]
    fn noise_is_real_and_zero_mean() {
        let psd = Psd::white(1.0);
        let noise = synthesize_noise(&psd, 10.0, 4096, test_gauss);
        assert_eq!(noise.len(), 4096);
        let mean: f64 = noise.iter().sum::<f64>() / 4096.0;
        // DC bin is zeroed, so the sample mean is exactly ~0 up to fp error.
        assert!(mean.abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn white_noise_variance_matches_psd_integral() {
        // For white noise, variance = NET² · (rate / 2).
        let net = 3.0;
        let rate = 8.0;
        let psd = Psd::white(net);
        let n = 1 << 14;
        let noise = synthesize_noise(&psd, rate, n, test_gauss);
        let var: f64 = noise.iter().map(|x| x * x).sum::<f64>() / n as f64;
        let expected = net * net * rate / 2.0;
        let rel = (var - expected).abs() / expected;
        assert!(rel < 0.1, "var {var} vs expected {expected}");
    }

    #[test]
    fn one_over_f_noise_has_more_low_frequency_power() {
        let psd = Psd {
            net: 1.0,
            fknee: 1.0,
            alpha: 1.5,
            fmin: 1e-4,
        };
        let n = 1 << 12;
        let noise = synthesize_noise(&psd, 10.0, n, test_gauss);
        let spec = crate::transform::rfft_forward(&noise);
        // Average power in the lowest decade of bins vs a high decade.
        let low: f64 = (1..20).map(|k| spec[k].norm_sqr()).sum::<f64>() / 19.0;
        let high: f64 = (n / 2 - 200..n / 2)
            .map(|k| spec[k].norm_sqr())
            .sum::<f64>()
            / 200.0;
        assert!(low > 4.0 * high, "low {low} high {high}");
    }

    #[test]
    fn synthesis_is_reproducible() {
        let psd = Psd::white(1.0);
        let a = synthesize_noise(&psd, 5.0, 256, test_gauss);
        let b = synthesize_noise(&psd, 5.0, 256, test_gauss);
        assert_eq!(a, b);
    }
}
