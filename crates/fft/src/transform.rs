//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! In-place, decimation-in-time, with an explicit bit-reversal permutation
//! pass followed by `log2(n)` butterfly stages. Twiddle factors are
//! generated per stage from a single `cis` call and updated by complex
//! multiplication, which keeps the inner loop free of trigonometry.

use crate::complex::Complex;

/// Forward DFT, in place. `data.len()` must be a power of two.
///
/// Uses the physics sign convention `X_k = Σ_n x_n e^{-2πi kn/N}` and no
/// normalisation (matching FFTW's `FFTW_FORWARD`).
pub fn fft(data: &mut [Complex]) {
    transform(data, -1.0);
}

/// Inverse DFT, in place, *including* the `1/N` normalisation so that
/// `ifft(fft(x)) == x`.
pub fn ifft(data: &mut [Complex]) {
    transform(data, 1.0);
    let scale = 1.0 / data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(scale);
    }
}

/// Forward DFT of a real signal; returns the full complex spectrum.
///
/// Convenience wrapper: the spectrum is Hermitian
/// (`X[N-k] == conj(X[k])`), which [`crate::psd::synthesize_noise`] relies
/// on in reverse to build real noise.
pub fn rfft_forward(signal: &[f64]) -> Vec<Complex> {
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft(&mut data);
    data
}

fn transform(data: &mut [Complex], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }

    bit_reverse_permute(data);

    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_exact_mut(len) {
            let (lo, hi) = chunk.split_at_mut(len / 2);
            let mut w = Complex::ONE;
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Permute `data` into bit-reversed index order.
fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    let shift = usize::BITS - n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if i < j {
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n²) reference DFT used to validate the fast transform.
    fn dft_reference(x: &[Complex], sign: f64) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &xj) in x.iter().enumerate() {
                    let ang = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc += xj * Complex::cis(ang);
                }
                acc
            })
            .collect()
    }

    fn pseudo_signal(n: usize, seed: u64) -> Vec<Complex> {
        // Deterministic, irregular test data without pulling in a RNG dep.
        (0..n)
            .map(|i| {
                let a = ((i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed)
                    >> 33) as f64
                    / (1u64 << 31) as f64;
                let b = ((i as u64)
                    .wrapping_mul(1442695040888963407)
                    .wrapping_add(seed)
                    >> 33) as f64
                    / (1u64 << 31) as f64;
                Complex::new(a - 1.0, b - 1.0)
            })
            .collect()
    }

    #[test]
    fn matches_reference_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 256] {
            let signal = pseudo_signal(n, 42);
            let expected = dft_reference(&signal, -1.0);
            let mut fast = signal.clone();
            fft(&mut fast);
            for (k, (e, f)) in expected.iter().zip(&fast).enumerate() {
                assert!(
                    (e.re - f.re).abs() < 1e-9 && (e.im - f.im).abs() < 1e-9,
                    "n={n} bin {k}: {e:?} vs {f:?}"
                );
            }
        }
    }

    #[test]
    fn roundtrip() {
        for &n in &[2usize, 8, 128, 1024] {
            let signal = pseudo_signal(n, 7);
            let mut s = signal.clone();
            fft(&mut s);
            ifft(&mut s);
            for (a, b) in signal.iter().zip(&s) {
                assert!((a.re - b.re).abs() < 1e-10);
                assert!((a.im - b.im).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 32];
        data[0] = Complex::ONE;
        fft(&mut data);
        for z in &data {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 64;
        let k0 = 5;
        // e^{+2πi k0 n / N} concentrates in bin k0 under the e^{-...}
        // forward convention.
        let mut data: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * std::f64::consts::PI * (k0 * i) as f64 / n as f64))
            .collect();
        fft(&mut data);
        for (k, z) in data.iter().enumerate() {
            if k == k0 {
                assert!((z.re - n as f64).abs() < 1e-9, "bin {k}: {z:?}");
            } else {
                assert!(z.abs() < 1e-9, "bin {k} leaked: {z:?}");
            }
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let signal = pseudo_signal(256, 99);
        let time_energy: f64 = signal.iter().map(|z| z.norm_sqr()).sum();
        let mut spec = signal.clone();
        fft(&mut spec);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 256.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn linearity() {
        let a = pseudo_signal(64, 1);
        let b = pseudo_signal(64, 2);
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let (mut fa, mut fb, mut fsum) = (a, b, sum);
        fft(&mut fa);
        fft(&mut fb);
        fft(&mut fsum);
        for ((x, y), s) in fa.iter().zip(&fb).zip(&fsum) {
            let lhs = *x + *y;
            assert!((lhs.re - s.re).abs() < 1e-9 && (lhs.im - s.im).abs() < 1e-9);
        }
    }

    #[test]
    fn real_signal_spectrum_is_hermitian() {
        let signal: Vec<f64> = (0..128).map(|i| ((i * 37) % 41) as f64 - 20.0).collect();
        let spec = rfft_forward(&signal);
        for k in 1..64 {
            let a = spec[k];
            let b = spec[128 - k].conj();
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut data = vec![Complex::ZERO; 12];
        fft(&mut data);
    }
}
