//! A minimal double-precision complex number.
//!
//! Only the operations the transform and the PSD synthesis need — keeping
//! the type local avoids an external dependency and keeps it `Copy` and
//! 16 bytes, which matters for FFT working-set bandwidth.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A complex number `re + i·im` in double precision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    /// Construct from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub const ZERO: Self = Self::new(0.0, 0.0);

    /// The multiplicative identity.
    pub const ONE: Self = Self::new(1.0, 0.0);

    /// `e^{iθ}` — a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn field_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z + (-z), Complex::ZERO);
        assert_eq!(z.abs(), 5.0);
    }

    #[test]
    fn multiplication_matches_polar() {
        let a = Complex::cis(0.3).scale(2.0);
        let b = Complex::cis(0.5).scale(3.0);
        let p = a * b;
        assert!((p.abs() - 6.0).abs() < 1e-12);
        assert!((p.im.atan2(p.re) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex::new(1.5, 2.5);
        assert_eq!(z.conj().conj(), z);
        let zz = z * z.conj();
        assert!((zz.re - z.norm_sqr()).abs() < 1e-12);
        assert!(zz.im.abs() < 1e-12);
    }

    #[test]
    fn cis_full_turn() {
        let z = Complex::cis(2.0 * PI);
        assert!((z.re - 1.0).abs() < 1e-12);
        assert!(z.im.abs() < 1e-12);
    }
}
