//! Conversions from raw cipher output to floating-point distributions.

/// Map a uniform `u64` to a double in `[0, 1)` using the top 53 bits.
#[inline]
pub fn u64_to_f64_01(w: u64) -> f64 {
    // 2^-53 spacing: exactly representable, never returns 1.0.
    (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map a uniform `u64` to a double in `(0, 1]` — safe for `ln()`.
#[inline]
pub fn u64_to_f64_open(w: u64) -> f64 {
    ((w >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64)
}

/// Box–Muller transform: two uniforms → one standard normal.
///
/// `u1` must be in `(0, 1]` (so `ln` is finite), `u2` in `[0, 1)`.
#[inline]
pub fn box_muller(u1: f64, u2: f64) -> f64 {
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    r * theta.cos()
}

/// Both outputs of the Box–Muller transform, when pairs are wanted.
#[inline]
pub fn box_muller_pair(u1: f64, u2: f64) -> (f64, f64) {
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_interval_bounds() {
        assert_eq!(u64_to_f64_01(0), 0.0);
        assert!(u64_to_f64_01(u64::MAX) < 1.0);
        assert!(u64_to_f64_open(0) > 0.0);
        assert!(u64_to_f64_open(u64::MAX) <= 1.0);
    }

    #[test]
    fn box_muller_finite_at_extremes() {
        assert!(box_muller(1.0, 0.0).is_finite());
        let tiny = u64_to_f64_open(0);
        assert!(box_muller(tiny, 0.5).is_finite());
    }

    #[test]
    fn box_muller_pair_is_orthogonal_rotation() {
        // cos^2 + sin^2 = 1 ⇒ x^2 + y^2 = -2 ln u1.
        let (x, y) = box_muller_pair(0.3, 0.7);
        let r2 = x * x + y * y;
        assert!((r2 - (-2.0 * 0.3f64.ln())).abs() < 1e-12);
    }
}
