//! The Threefry-2x64 block cipher (Salmon et al., "Parallel Random Numbers:
//! As Easy as 1, 2, 3", SC'11), as used by Random123 and therefore by TOAST.
//!
//! Threefry is a reduced-strength variant of the Threefish cipher from
//! Skein. The 2x64 variant mixes two 64-bit words per round using only
//! addition, rotation and xor (an ARX network), injecting the extended key
//! every four rounds. Twenty rounds is the Random123 default ("crush
//! resistant" in the paper's TestU01 sense).

/// Skein key-schedule parity constant (`SKEIN_KS_PARITY64`).
const PARITY: u64 = 0x1BD1_1BDA_A9FC_1A22;

/// Per-round rotation constants for Threefry-2x64 (period 8).
const ROTATIONS: [u32; 8] = [16, 42, 12, 31, 16, 32, 24, 21];

/// One Threefry-2x64 encryption with `R` rounds.
///
/// `ctr` is the plaintext (the "counter"), `key` the cipher key. The result
/// is two statistically independent, uniformly distributed 64-bit words.
#[inline]
pub fn threefry2x64<const R: usize>(ctr: [u64; 2], key: [u64; 2]) -> [u64; 2] {
    let ks = [key[0], key[1], PARITY ^ key[0] ^ key[1]];
    let mut x0 = ctr[0].wrapping_add(ks[0]);
    let mut x1 = ctr[1].wrapping_add(ks[1]);
    for r in 0..R {
        x0 = x0.wrapping_add(x1);
        x1 = x1.rotate_left(ROTATIONS[r % 8]);
        x1 ^= x0;
        if (r + 1) % 4 == 0 {
            let s = (r + 1) / 4;
            x0 = x0.wrapping_add(ks[s % 3]);
            x1 = x1.wrapping_add(ks[(s + 1) % 3]);
            x1 = x1.wrapping_add(s as u64);
        }
    }
    [x0, x1]
}

/// The Random123 default: Threefry-2x64 with 20 rounds.
#[inline]
pub fn threefry2x64_20(ctr: [u64; 2], key: [u64; 2]) -> [u64; 2] {
    threefry2x64::<20>(ctr, key)
}

/// A reduced 13-round variant, the smallest round count Random123 certifies
/// as passing BigCrush. Exposed for the throughput ablation bench.
#[inline]
pub fn threefry2x64_13(ctr: [u64; 2], key: [u64; 2]) -> [u64; 2] {
    threefry2x64::<13>(ctr, key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = threefry2x64_20([1, 2], [3, 4]);
        let b = threefry2x64_20([1, 2], [3, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn counter_sensitivity() {
        // Flipping a single counter bit must change both output words
        // (avalanche): check across all 128 counter bit positions.
        let key = [0xdead_beef, 0xfeed_cafe];
        let base = threefry2x64_20([0, 0], key);
        for bit in 0..128u32 {
            let ctr = if bit < 64 {
                [1u64 << bit, 0]
            } else {
                [0, 1u64 << (bit - 64)]
            };
            let out = threefry2x64_20(ctr, key);
            assert_ne!(out, base, "bit {bit} failed to perturb output");
        }
    }

    #[test]
    fn key_sensitivity() {
        let ctr = [42, 43];
        let base = threefry2x64_20(ctr, [0, 0]);
        for bit in 0..128u32 {
            let key = if bit < 64 {
                [1u64 << bit, 0]
            } else {
                [0, 1u64 << (bit - 64)]
            };
            assert_ne!(threefry2x64_20(ctr, key), base, "key bit {bit}");
        }
    }

    #[test]
    fn avalanche_is_strong() {
        // A one-bit counter change should flip roughly half of the 128
        // output bits. Average over a few hundred trials and demand the mean
        // sit in a generous [48, 80] window.
        let key = [7, 11];
        let mut total = 0u32;
        let trials = 512;
        for i in 0..trials {
            let a = threefry2x64_20([i, 0], key);
            let b = threefry2x64_20([i ^ 1, 0], key);
            total += (a[0] ^ b[0]).count_ones() + (a[1] ^ b[1]).count_ones();
        }
        let mean = total as f64 / trials as f64;
        assert!((48.0..=80.0).contains(&mean), "avalanche mean {mean}");
    }

    #[test]
    fn rounds_matter() {
        let ctr = [5, 9];
        let key = [1, 2];
        assert_ne!(threefry2x64_13(ctr, key), threefry2x64_20(ctr, key));
    }

    #[test]
    fn output_bits_unbiased() {
        // Each of the 128 output bit positions should be ~50% ones over a
        // sweep of counters.
        let key = [0x1234, 0x5678];
        let n = 4096u64;
        let mut ones = [0u32; 128];
        for i in 0..n {
            let out = threefry2x64_20([i, 0], key);
            for b in 0..64 {
                ones[b as usize] += ((out[0] >> b) & 1) as u32;
                ones[64 + b as usize] += ((out[1] >> b) & 1) as u32;
            }
        }
        for (pos, &c) in ones.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((0.45..=0.55).contains(&frac), "bit {pos} biased: {frac}");
        }
    }
}
