//! Counter-based random number generation for reproducible parallel
//! simulations.
//!
//! TOAST draws all of its simulated noise from the Random123 `threefry2x64`
//! counter-based generator so that every sample of every detector stream is
//! reproducible *independently of the parallel decomposition*: a draw is a
//! pure function of `(key, counter)` rather than of generator state. This
//! crate is a from-scratch Rust implementation of the same scheme.
//!
//! The core primitive is [`threefry2x64_20`], the Threefry-2x64 block cipher
//! with 20 rounds (the Random123 default). On top of it sit
//! [`CounterRng`], a stateless stream abstraction keyed the way TOAST keys
//! its streams (two 64-bit key words, two 64-bit counter words), and bulk
//! fill helpers for uniform and Gaussian variates.
//!
//! # Example
//!
//! ```
//! use toast_rng::CounterRng;
//!
//! // Same key + counter always produce the same variate, regardless of
//! // which thread or rank asks for it.
//! let rng = CounterRng::new(12345, 0);
//! let a = rng.uniform_01(7);
//! let b = CounterRng::new(12345, 0).uniform_01(7);
//! assert_eq!(a, b);
//! ```

#![forbid(unsafe_code)]

pub mod counter;
pub mod dist;
pub mod threefry;

pub use counter::CounterRng;
pub use threefry::threefry2x64_20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_reproducibility_is_decomposition_independent() {
        // Draw a block of 1000 gaussians in one shot, then in 10 chunks of
        // 100 from the same offsets; results must be identical.
        let rng = CounterRng::new(42, 7);
        let mut whole = vec![0.0; 1000];
        rng.fill_gaussian(0, &mut whole);
        let mut chunked = vec![0.0; 1000];
        for c in 0..10 {
            rng.fill_gaussian((c * 100) as u64, &mut chunked[c * 100..(c + 1) * 100]);
        }
        assert_eq!(whole, chunked);
    }

    #[test]
    fn different_streams_differ() {
        let a = CounterRng::new(1, 0).uniform_01(0);
        let b = CounterRng::new(1, 1).uniform_01(0);
        let c = CounterRng::new(2, 0).uniform_01(0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
