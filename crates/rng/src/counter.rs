//! Stateless random streams over the Threefry cipher.
//!
//! TOAST keys its noise streams as `key = (telescope/realisation, detector)`
//! and counters as `(observation, sample index)`. [`CounterRng`] mirrors
//! that: a stream is identified by two 64-bit key words; every draw names
//! its absolute position in the stream, so any sub-range can be generated
//! by any worker with bitwise-identical results.

use crate::dist;
use crate::threefry::threefry2x64_20;

/// A reproducible, stateless random stream.
///
/// Cloning or re-creating a `CounterRng` with the same keys yields the same
/// stream. All methods take the draw index explicitly; there is no hidden
/// cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRng {
    key: [u64; 2],
}

impl CounterRng {
    /// Create a stream identified by `(key_hi, key_lo)` — in TOAST terms,
    /// typically `(realization, detector)` or `(observation, telescope)`.
    #[inline]
    pub fn new(key_hi: u64, key_lo: u64) -> Self {
        Self {
            key: [key_hi, key_lo],
        }
    }

    /// The raw 128-bit block at counter position `(hi, lo)`.
    #[inline]
    pub fn block(&self, hi: u64, lo: u64) -> [u64; 2] {
        threefry2x64_20([hi, lo], self.key)
    }

    /// The `idx`-th raw 64-bit word of the stream.
    ///
    /// Consecutive indices map to the two words of consecutive cipher
    /// blocks, so a stream of `n` words costs `ceil(n/2)` cipher calls when
    /// generated in bulk.
    #[inline]
    pub fn word(&self, idx: u64) -> u64 {
        let block = self.block(0, idx / 2);
        block[(idx % 2) as usize]
    }

    /// Uniform double in `[0, 1)` at stream position `idx`.
    #[inline]
    pub fn uniform_01(&self, idx: u64) -> f64 {
        dist::u64_to_f64_01(self.word(idx))
    }

    /// Uniform double in `[-1, 1)` at stream position `idx`.
    #[inline]
    pub fn uniform_m11(&self, idx: u64) -> f64 {
        2.0 * self.uniform_01(idx) - 1.0
    }

    /// Standard normal variate at stream position `idx`.
    ///
    /// Uses Box–Muller over two dedicated uniform sub-streams so that the
    /// `idx`-th gaussian is a pure function of `idx` (no pairing between
    /// adjacent indices leaks across chunk boundaries).
    #[inline]
    pub fn gaussian(&self, idx: u64) -> f64 {
        // Two independent words per gaussian: draw them from one cipher
        // block so the cost stays at one cipher call per variate.
        let block = self.block(1, idx);
        let (u1, u2) = (
            dist::u64_to_f64_open(block[0]),
            dist::u64_to_f64_01(block[1]),
        );
        dist::box_muller(u1, u2)
    }

    /// Fill `out` with uniform `[0,1)` variates for stream positions
    /// `start .. start + out.len()`.
    pub fn fill_uniform_01(&self, start: u64, out: &mut [f64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.uniform_01(start + i as u64);
        }
    }

    /// Fill `out` with standard normal variates for stream positions
    /// `start .. start + out.len()`.
    pub fn fill_gaussian(&self, start: u64, out: &mut [f64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.gaussian(start + i as u64);
        }
    }

    /// Fill `out` with raw 64-bit words for positions
    /// `start .. start + out.len()`, two words per cipher call.
    pub fn fill_words(&self, start: u64, out: &mut [u64]) {
        let mut i = 0usize;
        // Align to a block boundary first.
        if start % 2 == 1 && !out.is_empty() {
            out[0] = self.word(start);
            i = 1;
        }
        let mut ctr = (start + i as u64) / 2;
        while i + 1 < out.len() {
            let block = self.block(0, ctr);
            out[i] = block[0];
            out[i + 1] = block[1];
            i += 2;
            ctr += 1;
        }
        if i < out.len() {
            out[i] = self.block(0, ctr)[0];
        }
    }

    /// Derive a child stream, e.g. one per detector from a telescope
    /// stream. Mixes the child index through the cipher so sibling streams
    /// are statistically independent.
    pub fn child(&self, index: u64) -> Self {
        let mixed = threefry2x64_20([index, !index], self.key);
        Self { key: mixed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_matches_bulk_fill() {
        let rng = CounterRng::new(9, 9);
        for start in [0u64, 1, 2, 5, 100] {
            let mut bulk = vec![0u64; 17];
            rng.fill_words(start, &mut bulk);
            for (i, &w) in bulk.iter().enumerate() {
                assert_eq!(w, rng.word(start + i as u64), "start={start} i={i}");
            }
        }
    }

    #[test]
    fn uniform_in_range() {
        let rng = CounterRng::new(3, 1);
        for i in 0..10_000 {
            let u = rng.uniform_01(i);
            assert!((0.0..1.0).contains(&u));
            let v = rng.uniform_m11(i);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_and_variance() {
        let rng = CounterRng::new(77, 0);
        let n = 100_000u64;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for i in 0..n {
            let u = rng.uniform_01(i);
            sum += u;
            sumsq += u * u;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn gaussian_moments() {
        let rng = CounterRng::new(5, 123);
        let n = 200_000u64;
        let (mut sum, mut sumsq, mut sum3) = (0.0, 0.0, 0.0);
        for i in 0..n {
            let g = rng.gaussian(i);
            sum += g;
            sumsq += g * g;
            sum3 += g * g * g;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        let skew = sum3 / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.05, "skew {skew}");
    }

    #[test]
    fn gaussian_tail_probability() {
        // P(|g| > 3) ~ 0.0027; check it is small but non-zero at n=2e5.
        let rng = CounterRng::new(8, 2);
        let n = 200_000u64;
        let tail = (0..n).filter(|&i| rng.gaussian(i).abs() > 3.0).count();
        let frac = tail as f64 / n as f64;
        assert!((0.001..0.006).contains(&frac), "tail fraction {frac}");
    }

    #[test]
    fn children_are_independent() {
        let parent = CounterRng::new(1, 2);
        let a = parent.child(0);
        let b = parent.child(1);
        assert_ne!(a, b);
        // Correlation of first 1000 uniforms should be near zero.
        let n = 1000u64;
        let (mut sa, mut sb, mut sab) = (0.0, 0.0, 0.0);
        for i in 0..n {
            let (x, y) = (a.uniform_01(i), b.uniform_01(i));
            sa += x;
            sb += y;
            sab += x * y;
        }
        let corr = sab / n as f64 - (sa / n as f64) * (sb / n as f64);
        assert!(corr.abs() < 0.01, "corr {corr}");
    }

    #[test]
    fn uniform_histogram_is_flat() {
        let rng = CounterRng::new(31, 41);
        let n = 100_000u64;
        let mut bins = [0u32; 20];
        for i in 0..n {
            let u = rng.uniform_01(i);
            bins[(u * 20.0) as usize] += 1;
        }
        let expected = n as f64 / 20.0;
        for (b, &c) in bins.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bin {b} deviates {dev}");
        }
    }
}
