//! Property-based tests for the counter RNG.

use proptest::prelude::*;
use toast_rng::{threefry2x64_20, CounterRng};

proptest! {
    /// The cipher is a pure function: same inputs, same outputs.
    #[test]
    fn cipher_is_pure(c0: u64, c1: u64, k0: u64, k1: u64) {
        prop_assert_eq!(
            threefry2x64_20([c0, c1], [k0, k1]),
            threefry2x64_20([c0, c1], [k0, k1])
        );
    }

    /// The cipher is injective in the counter for a fixed key on distinct
    /// counters (it is a bijection, being a block cipher).
    #[test]
    fn distinct_counters_distinct_blocks(k0: u64, k1: u64, a: u64, b: u64) {
        prop_assume!(a != b);
        prop_assert_ne!(
            threefry2x64_20([a, 0], [k0, k1]),
            threefry2x64_20([b, 0], [k0, k1])
        );
    }

    /// Bulk fill equals element-wise draws for any start offset and length.
    #[test]
    fn fill_words_matches_pointwise(key: u64, start in 0u64..1_000_000, len in 0usize..64) {
        let rng = CounterRng::new(key, 0);
        let mut bulk = vec![0u64; len];
        rng.fill_words(start, &mut bulk);
        for (i, &w) in bulk.iter().enumerate() {
            prop_assert_eq!(w, rng.word(start + i as u64));
        }
    }

    /// Uniform draws stay inside [0, 1) for arbitrary positions.
    #[test]
    fn uniform_bounds(key: u64, idx: u64) {
        let u = CounterRng::new(key, 3).uniform_01(idx);
        prop_assert!((0.0..1.0).contains(&u));
    }

    /// Gaussians are always finite (Box–Muller never sees ln(0)).
    #[test]
    fn gaussian_finite(key: u64, idx: u64) {
        prop_assert!(CounterRng::new(key, 5).gaussian(idx).is_finite());
    }

    /// Child streams never collide with the parent or with low-index
    /// siblings on their first block.
    #[test]
    fn child_streams_distinct(key: u64, idx in 0u64..1000) {
        let parent = CounterRng::new(key, 0);
        let child = parent.child(idx);
        prop_assert_ne!(parent.block(0, 0), child.block(0, 0));
    }
}
