//! Satellite CMB telescope simulation workloads.
//!
//! The paper's benchmark "simulates the characteristic scanning motion of
//! a space-based CMB telescope ... with a couple thousand detectors
//! observing a simulated sky". This crate generates that workload:
//!
//! * [`scan`] — the boresight attitude: spacecraft spin composed with a
//!   precessing anti-solar axis (the classic WMAP/Planck-style strategy),
//!   plus the variable-length science intervals between repointings;
//! * [`focalplane`] — detector layouts fanned in rings around the
//!   boresight, with polarisation angles and per-detector 1/f noise;
//! * [`sky`] — a structured synthetic I/Q/U sky map;
//! * [`noise`] — reproducible 1/f + white noise timestreams (counter RNG +
//!   FFT colouring);
//! * [`problem`] — the paper's `medium` (5·10⁹ samples) and `large`
//!   (5·10¹⁰ samples) configurations with a documented scale factor, and
//!   per-rank workspace construction.

#![forbid(unsafe_code)]

pub mod focalplane;
pub mod noise;
pub mod problem;
pub mod scan;
pub mod sky;

pub use problem::{Problem, ProblemSize};
