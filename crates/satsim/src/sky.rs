//! Synthetic input skies.
//!
//! A structured I/Q/U map: large-scale harmonics plus reproducible
//! small-scale Gaussian structure, polarised at a few percent — enough
//! spatial structure that `scan_map` produces non-trivial timestreams and
//! the map-making pipeline has something to recover.

use toast_core::data::SkyGeometry;
use toast_healpix::ring::pix2ang_ring;
use toast_rng::CounterRng;

/// Fill a `[n_pix × nnz]` map for `geom`, seeded reproducibly.
pub fn synthesize_sky(geom: &SkyGeometry, seed: u64) -> Vec<f64> {
    let rng = CounterRng::new(seed, 0x5C1);
    let n_pix = geom.n_pix();
    let mut map = vec![0.0; geom.map_len()];
    for p in 0..n_pix {
        let (theta, phi) = pix2ang_ring(geom.nside, p as u64);
        // Large-scale structure: a dipole + a few low harmonics.
        let i = 10.0 * theta.cos()
            + 4.0 * (2.0 * theta).sin() * (3.0 * phi).cos()
            + 2.5 * (4.0 * theta).cos() * (2.0 * phi).sin()
            + 0.8 * rng.gaussian(p as u64);
        map[geom.nnz * p] = i;
        if geom.nnz >= 3 {
            // Few-percent polarisation with its own pattern.
            let q = 0.05 * i * (2.0 * phi).cos() + 0.02 * rng.gaussian((n_pix + p) as u64);
            let u = 0.05 * i * (2.0 * phi).sin() + 0.02 * rng.gaussian((2 * n_pix + p) as u64);
            map[geom.nnz * p + 1] = q;
            map[geom.nnz * p + 2] = u;
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use toast_healpix::Nside;

    fn geom() -> SkyGeometry {
        SkyGeometry {
            nside: Nside::new(16).unwrap(),
            nest: false,
            nnz: 3,
        }
    }

    #[test]
    fn map_has_structure_and_is_reproducible() {
        let g = geom();
        let a = synthesize_sky(&g, 1);
        let b = synthesize_sky(&g, 1);
        assert_eq!(a, b);
        let c = synthesize_sky(&g, 2);
        assert_ne!(a, c);

        // Intensity varies across the sky.
        let i_vals: Vec<f64> = (0..g.n_pix()).map(|p| a[3 * p]).collect();
        let max = i_vals.iter().cloned().fold(f64::MIN, f64::max);
        let min = i_vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min > 10.0, "flat sky: [{min}, {max}]");
    }

    #[test]
    fn polarisation_is_a_small_fraction_of_intensity() {
        let g = geom();
        let m = synthesize_sky(&g, 3);
        let i_rms: f64 =
            ((0..g.n_pix()).map(|p| m[3 * p].powi(2)).sum::<f64>() / g.n_pix() as f64).sqrt();
        let p_rms: f64 = ((0..g.n_pix())
            .map(|p| m[3 * p + 1].powi(2) + m[3 * p + 2].powi(2))
            .sum::<f64>()
            / g.n_pix() as f64)
            .sqrt();
        assert!(p_rms < 0.2 * i_rms, "pol {p_rms} vs I {i_rms}");
        assert!(p_rms > 0.0);
    }
}
