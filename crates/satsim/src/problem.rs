//! The paper's problem sizes and per-rank workload construction.
//!
//! The paper benchmarks two configurations of the satellite simulation:
//!
//! * **medium** — 5·10⁹ samples (~1 TB), run on 1 node;
//! * **large** — 5·10¹⁰ samples (~10 TB), run on 8 nodes;
//!
//! with "a couple thousand detectors". We reproduce the *structure* at a
//! documented `scale` factor: samples per detector shrink by `scale`, and
//! [`accel_sim::NodeCalib::scaled`] shrinks every fixed latency and
//! capacity by the same factor, so simulated runtimes are `scale ×` the
//! paper-scale ones and every reported ratio is scale-invariant
//! (DESIGN.md § 10).

use accel_sim::NodeCalib;
use toast_core::data::SkyGeometry;
use toast_core::dispatch::KernelId;
use toast_core::kernels::cost_constants;
use toast_core::workspace::Workspace;
use toast_healpix::Nside;

use crate::focalplane::build_focal_plane;
use crate::noise::simulate_noise;
use crate::scan::{science_intervals, ScanStrategy};
use crate::sky::synthesize_sky;

/// Which of the paper's configurations to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemSize {
    /// 5·10⁹ samples, 1 node — every single-node figure.
    Medium,
    /// 5·10¹⁰ samples, 8 nodes — the full benchmark (Fig. 5).
    Large,
}

/// A fully specified benchmark problem.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Paper-scale total samples (across all detectors and nodes).
    pub total_samples: f64,
    /// Total detectors ("a couple thousand").
    pub n_det_total: usize,
    /// Nodes in the job.
    pub nodes: u32,
    /// Scale factor applied to samples per detector (and to the
    /// calibration's latencies/capacities).
    pub scale: f64,
    /// Sky resolution (NSIDE 512 at paper scale shrinks with the scan's
    /// reduced coverage; figures use a fixed modest resolution so map
    /// buffers stay proportionate).
    pub nside: u64,
    /// Template offset step length in samples (paper-scale ~1 minute of
    /// data; scaled along with the samples).
    pub step_seconds: f64,
    /// Per-rank serial host work (unported kernels + Python layer that
    /// every process repeats on its own data), as a fraction of the node's
    /// CPU kernel time. Together with `parallel_host_fraction` this sets
    /// the Amdahl term: at the paper's 16-process reference the host
    /// fraction is ~1/3 of the CPU runtime ("strictly bounded … to about
    /// 3x").
    pub serial_host_fraction: f64,
    /// Node-level host work that *is* parallelised by adding processes —
    /// the paper's explanation for the falling CPU curve of Fig. 4 ("a
    /// large number of operations are serial within a process and are
    /// parallelized by the addition of more processes").
    pub parallel_host_fraction: f64,
    /// RNG seed for the whole problem.
    pub seed: u64,
    /// Observations the full dataset is split into: TOAST streams the
    /// medium problem's ~1 TB through a 256 GB node one observation at a
    /// time, so the resident working set is `1/n_obs` of the total. The
    /// pipelines run once per observation.
    pub n_obs: usize,
    /// Kernel passes over each observation's resident data (the map-making
    /// solver iterates the template/scan/accumulate kernels several times
    /// per observation), which is why the paper's Fig. 6 shows data
    /// movement "barely register\[ing\]" next to kernel time.
    pub passes: usize,
}

impl Problem {
    /// The paper's medium problem at `scale`.
    pub fn medium(scale: f64) -> Self {
        Self {
            total_samples: 5e9,
            n_det_total: 2048,
            nodes: 1,
            scale,
            nside: 16,
            step_seconds: 60.0,
            serial_host_fraction: 0.27,
            parallel_host_fraction: 1.0,
            seed: 53,
            n_obs: 16,
            passes: 6,
        }
    }

    /// The paper's large problem at `scale`.
    pub fn large(scale: f64) -> Self {
        Self {
            total_samples: 5e10,
            n_det_total: 2048,
            nodes: 8,
            scale,
            nside: 16,
            step_seconds: 60.0,
            serial_host_fraction: 0.27,
            parallel_host_fraction: 1.0,
            seed: 54,
            n_obs: 16,
            passes: 6,
        }
    }

    /// Build by size.
    pub fn sized(size: ProblemSize, scale: f64) -> Self {
        match size {
            ProblemSize::Medium => Self::medium(scale),
            ProblemSize::Large => Self::large(scale),
        }
    }

    /// The matching calibration (latencies/capacities scaled with the
    /// data).
    pub fn calib(&self) -> NodeCalib {
        NodeCalib::scaled(self.scale)
    }

    /// Scaled samples per detector *per observation* (the paper-scale
    /// count × `scale`), floored so tiny scales still exercise every code
    /// path.
    pub fn samples_per_detector(&self) -> usize {
        let paper =
            self.total_samples / (self.n_det_total as f64 * self.n_obs as f64) / self.nodes as f64;
        ((paper * self.scale) as usize).max(64)
    }

    /// Detectors owned by one rank when each node runs `ranks_per_node`
    /// processes. Detectors are partitioned *within* a node; multi-node
    /// jobs split observations (time) across nodes, as TOAST does — every
    /// node sees the full focal plane.
    pub fn detectors_per_rank(&self, ranks_per_node: u32) -> usize {
        (self.n_det_total / ranks_per_node as usize).max(1)
    }

    /// Sky geometry.
    pub fn geometry(&self) -> SkyGeometry {
        SkyGeometry {
            nside: Nside::new(self.nside).expect("valid nside"),
            nest: false,
            nnz: 3,
        }
    }

    /// Build one rank's workspace: focal-plane share, boresight, varied
    /// intervals, synthetic sky, simulated sky signal + noise.
    pub fn rank_workspace(&self, rank: u32, ranks_per_node: u32) -> Workspace {
        let n_det = self.detectors_per_rank(ranks_per_node);
        let n_samp = self.samples_per_detector();
        let scan = ScanStrategy::default();

        // Each rank owns a distinct detector block of the shared focal
        // plane; the boresight is common.
        let full_fp = build_focal_plane(n_det * ranks_per_node as usize);
        let lo = (rank as usize % ranks_per_node as usize) * n_det;
        let fp = toast_core::data::FocalPlane {
            detectors: full_fp.detectors[lo..lo + n_det].to_vec(),
        };

        let nominal = (n_samp / 12).max(4);
        let intervals = science_intervals(n_samp, nominal, self.seed + rank as u64);
        let mut obs =
            toast_core::data::Observation::new(&fp, n_samp, scan.sample_rate, intervals, 3);
        scan.fill_boresight(&mut obs.boresight);
        simulate_noise(&mut obs, &fp, self.seed * 1000 + rank as u64);

        let geom = self.geometry();
        let step = ((self.step_seconds * scan.sample_rate * self.scale) as usize).max(2);
        let mut ws = Workspace::new(obs, geom, step);
        ws.sky_map = synthesize_sky(&geom, self.seed);
        ws
    }

    /// Estimated CPU seconds for one pass of the benchmark kernels over
    /// `ws` on `threads` host threads (cost-model based).
    pub fn cpu_kernel_seconds(&self, ws: &Workspace, threads: u32) -> f64 {
        let calib = self.calib();
        let science: usize = ws.obs.intervals.iter().map(|iv| iv.len()).sum();
        let items = (ws.obs.n_det * science) as f64;
        KernelId::BENCHMARK
            .iter()
            .map(|&k| {
                let (flops, bytes) = cost_constants(k);
                accel_sim::KernelProfile::uniform(k.name(), items, flops, bytes)
                    .cpu_seconds(&calib.cpu, threads)
            })
            .sum()
    }

    /// Per-rank unported/serial host seconds when the node runs
    /// `ranks_per_node` processes: a fixed per-rank serial share plus the
    /// rank's slice of the node-level parallelisable host pool.
    ///
    /// `host(p) = K_node · (serial_host_fraction + parallel_host_fraction / p)`
    ///
    /// where `K_node` is the node's CPU kernel time on all cores. At the
    /// paper's 16-process reference this yields a host fraction of ~1/3 of
    /// the CPU runtime; at 1 process the pool dominates, reproducing the
    /// falling CPU curve of Fig. 4.
    pub fn host_seconds_per_rank(&self, ws: &Workspace, ranks_per_node: u32) -> f64 {
        // Kernel time of the whole node's data on all cores, for every
        // solver pass (the host layer wraps each pass).
        let node_kernel = self.cpu_kernel_seconds(ws, self.calib().cpu.cores)
            * ranks_per_node as f64
            * self.passes as f64;
        node_kernel
            * (self.serial_host_fraction + self.parallel_host_fraction / ranks_per_node as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Problem {
        let mut p = Problem::medium(2e-4);
        p.nside = 16;
        p
    }

    #[test]
    fn sizes_match_the_paper() {
        let m = Problem::medium(1e-3);
        let l = Problem::large(1e-3);
        assert_eq!(m.total_samples, 5e9);
        assert_eq!(l.total_samples, 5e10);
        assert_eq!(m.nodes, 1);
        assert_eq!(l.nodes, 8);
        // Large is 10x the total data on 8x the nodes: per node (and per
        // observation) it is 1.25x medium.
        let m10 = Problem::medium(1e-2);
        let l10 = Problem::large(1e-2);
        let ratio = l10.samples_per_detector() as f64 / m10.samples_per_detector() as f64;
        assert!((ratio - 1.25).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn detector_partition_is_exhaustive() {
        let p = tiny();
        for ranks in [1u32, 2, 4, 8, 16, 32, 64] {
            let per = p.detectors_per_rank(ranks);
            assert!(per >= 1);
            assert!(per * ranks as usize <= p.n_det_total);
        }
    }

    #[test]
    fn rank_workspaces_differ_by_rank_but_share_the_sky() {
        let p = tiny();
        let a = p.rank_workspace(0, 4);
        let b = p.rank_workspace(1, 4);
        assert_eq!(a.sky_map, b.sky_map);
        assert_ne!(a.obs.signal, b.obs.signal);
        assert_ne!(a.obs.fp_quats, b.obs.fp_quats);
        // Same scan: shared boresight.
        assert_eq!(a.obs.boresight.len(), b.obs.boresight.len());
    }

    #[test]
    fn workspace_is_runnable_end_to_end() {
        let p = tiny();
        let mut ws = p.rank_workspace(0, 8);
        let mut ctx = accel_sim::Context::new(p.calib());
        let mut exec = toast_core::kernels::ExecCtx::new(toast_core::dispatch::ImplKind::Cpu, 8);
        let host = p.host_seconds_per_rank(&ws, 8);
        assert!(host > 0.0);
        let pipe = toast_core::pipeline::benchmark_pipeline(host);
        pipe.run(&mut ctx, &mut exec, &mut ws).unwrap();
        assert!(ctx.total_seconds() > 0.0);
    }

    #[test]
    fn amdahl_fraction_is_one_third_at_sixteen_processes() {
        // At the paper's 16-process reference the host share of the CPU
        // runtime must be ~1/3 (the "about 3x" Amdahl bound).
        let p = tiny();
        let ws = p.rank_workspace(0, 16);
        // Per-rank kernel wall time: the rank's data on its thread share,
        // for every solver pass (host work is sized against the full
        // passes, so the comparison must be too).
        let k = p.cpu_kernel_seconds(&ws, 4) * p.passes as f64;
        let h = p.host_seconds_per_rank(&ws, 16);
        let fraction = h / (h + k);
        assert!(
            (0.25..0.42).contains(&fraction),
            "fraction {fraction} (k {k}, h {h})"
        );
    }

    #[test]
    fn more_processes_mean_less_serial_work_per_rank() {
        let p = tiny();
        let ws1 = p.rank_workspace(0, 1);
        let ws16 = p.rank_workspace(0, 16);
        let h1 = p.host_seconds_per_rank(&ws1, 1);
        let h16 = p.host_seconds_per_rank(&ws16, 16);
        assert!(h16 < h1, "h1 {h1} h16 {h16}");
    }
}
