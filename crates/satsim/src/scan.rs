//! Satellite scanning strategy.
//!
//! The boresight attitude composes three rotations, outermost first:
//! a slow precession of the spin axis about the anti-solar direction, the
//! spacecraft spin, and the fixed opening angle between the spin axis and
//! the boresight. Science intervals are the spans between repointing /
//! data-gap events and vary in length, which is exactly the structure
//! that forces interval padding in the traced port.

use toast_core::data::Interval;
use toast_core::quat;
use toast_rng::CounterRng;

/// Scan-strategy parameters (Planck-like defaults, scaled rates so short
/// test runs still precess visibly).
#[derive(Debug, Clone, Copy)]
pub struct ScanStrategy {
    /// Spin rate in revolutions per minute.
    pub spin_rpm: f64,
    /// Precession period in minutes.
    pub precession_min: f64,
    /// Opening angle between spin axis and boresight, radians.
    pub opening_angle: f64,
    /// Angle between precession axis and spin axis, radians.
    pub precession_angle: f64,
    /// Sampling rate in Hz.
    pub sample_rate: f64,
}

impl Default for ScanStrategy {
    fn default() -> Self {
        Self {
            spin_rpm: 1.0,
            precession_min: 50.0,
            opening_angle: 1.48,     // ~85 degrees
            precession_angle: 0.785, // ~45 degrees
            sample_rate: 19.0,
        }
    }
}

impl ScanStrategy {
    /// The boresight quaternion at sample `s`.
    pub fn boresight_at(&self, s: usize) -> [f64; 4] {
        let t = s as f64 / self.sample_rate; // seconds
        let spin_angle = 2.0 * std::f64::consts::PI * self.spin_rpm * t / 60.0;
        let prec_angle = 2.0 * std::f64::consts::PI * t / (self.precession_min * 60.0);

        let precession = quat::mul(
            quat::from_axis_angle([0.0, 0.0, 1.0], prec_angle),
            quat::from_axis_angle([0.0, 1.0, 0.0], self.precession_angle),
        );
        let spin = quat::from_axis_angle([0.0, 0.0, 1.0], spin_angle);
        let open = quat::from_axis_angle([0.0, 1.0, 0.0], self.opening_angle);
        quat::mul(quat::mul(precession, spin), open)
    }

    /// Fill a `[n_samp × 4]` boresight array.
    pub fn fill_boresight(&self, out: &mut [f64]) {
        assert_eq!(out.len() % 4, 0);
        for s in 0..out.len() / 4 {
            let q = self.boresight_at(s);
            out[4 * s..4 * s + 4].copy_from_slice(&q);
        }
    }
}

/// Generate variable-length science intervals over `n_samp` samples:
/// nominal spans of `nominal_len` jittered ±40% by the seeded counter RNG,
/// separated by short gaps — TOAST's repointing structure.
pub fn science_intervals(n_samp: usize, nominal_len: usize, seed: u64) -> Vec<Interval> {
    assert!(nominal_len > 0);
    let rng = CounterRng::new(seed, 0xC0FFEE);
    let mut intervals = Vec::new();
    let mut start = 0usize;
    let mut draw = 0u64;
    while start < n_samp {
        let jitter = 0.6 + 0.8 * rng.uniform_01(draw);
        draw += 1;
        let len = ((nominal_len as f64 * jitter) as usize).max(1);
        let end = (start + len).min(n_samp);
        intervals.push(Interval::new(start, end));
        // Gap: 1-5% of the nominal length.
        let gap = 1 + (rng.uniform_01(draw) * 0.04 * nominal_len as f64) as usize;
        draw += 1;
        start = end + gap;
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boresight_is_unit_and_smooth() {
        let scan = ScanStrategy::default();
        let mut prev = scan.boresight_at(0);
        for s in 1..500 {
            let q = scan.boresight_at(s);
            assert!((quat::norm(q) - 1.0).abs() < 1e-12);
            // Successive line-of-sight directions move by a small angle.
            let a = quat::rotate_z(prev);
            let b = quat::rotate_z(q);
            let dot = (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]).clamp(-1.0, 1.0);
            assert!(dot.acos() < 0.05, "jump at sample {s}");
            prev = q;
        }
    }

    #[test]
    fn scan_covers_a_band_of_the_sky() {
        // Spin + precession should sweep a wide range of z.
        let scan = ScanStrategy::default();
        let n = 100_000;
        let (mut zmin, mut zmax) = (1.0f64, -1.0f64);
        for s in (0..n).step_by(37) {
            let z = quat::rotate_z(scan.boresight_at(s))[2];
            zmin = zmin.min(z);
            zmax = zmax.max(z);
        }
        assert!(zmax - zmin > 1.0, "z range [{zmin}, {zmax}] too narrow");
    }

    #[test]
    fn intervals_partition_without_overlap() {
        let ivs = science_intervals(10_000, 300, 42);
        assert!(ivs.len() > 10);
        for w in ivs.windows(2) {
            assert!(w[0].end < w[1].start, "intervals must be separated by gaps");
        }
        assert!(ivs.last().unwrap().end <= 10_000);
        // Lengths vary.
        let lens: Vec<usize> = ivs.iter().map(|iv| iv.len()).collect();
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert!(max > min, "lengths must vary: {lens:?}");
    }

    #[test]
    fn intervals_are_reproducible() {
        assert_eq!(
            science_intervals(5000, 200, 7),
            science_intervals(5000, 200, 7)
        );
        assert_ne!(
            science_intervals(5000, 200, 7),
            science_intervals(5000, 200, 8)
        );
    }
}
