//! Focal-plane layouts: detectors fanned in concentric rings around the
//! boresight, alternating polarisation angles (the A/B pairs of real CMB
//! focal planes).

use toast_core::data::{Detector, FocalPlane};
use toast_core::quat;

/// Build a focal plane of `n_det` detectors.
///
/// Detectors are placed on rings of increasing radius (up to ~1° off
/// axis); each carries a polarisation rotation so Q and U are both
/// constrained, NET/fknee spread detector-to-detector for realistic noise
/// diversity.
pub fn build_focal_plane(n_det: usize) -> FocalPlane {
    let mut detectors = Vec::with_capacity(n_det);
    let mut placed = 0usize;
    let mut ring = 0usize;
    while placed < n_det {
        let in_ring = if ring == 0 { 1 } else { 6 * ring };
        let radius = 0.0175 * ring as f64 / 4.0; // up to ~1 degree
        for k in 0..in_ring {
            if placed >= n_det {
                break;
            }
            let azimuth = 2.0 * std::f64::consts::PI * k as f64 / in_ring as f64;
            // Offset: rotate about z to the azimuth, tilt by the radius,
            // then set the polarisation angle (alternating 0/45/90/135°).
            let pol_angle = (placed % 4) as f64 * std::f64::consts::FRAC_PI_4;
            let offset = quat::mul(
                quat::mul(
                    quat::from_axis_angle([0.0, 0.0, 1.0], azimuth),
                    quat::from_axis_angle([0.0, 1.0, 0.0], radius),
                ),
                quat::from_axis_angle([0.0, 0.0, 1.0], pol_angle),
            );
            detectors.push(Detector {
                name: format!(
                    "D{placed:04}{}",
                    if placed.is_multiple_of(2) { "A" } else { "B" }
                ),
                quat: offset,
                pol_efficiency: 0.92 + 0.06 * ((placed * 13 % 17) as f64 / 17.0),
                noise_weight: 1.0,
                net: 1.0 + 0.2 * ((placed * 7 % 11) as f64 / 11.0),
                fknee: 0.05 + 0.1 * ((placed * 3 % 5) as f64 / 5.0),
                alpha: 1.0 + 0.5 * ((placed % 3) as f64 / 3.0),
            });
            placed += 1;
        }
        ring += 1;
    }
    FocalPlane { detectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_count_with_unique_names() {
        let fp = build_focal_plane(37);
        assert_eq!(fp.len(), 37);
        let mut names: Vec<&String> = fp.detectors.iter().map(|d| &d.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 37);
    }

    #[test]
    fn offsets_are_unit_quaternions_near_boresight() {
        let fp = build_focal_plane(19);
        for d in &fp.detectors {
            assert!((quat::norm(d.quat) - 1.0).abs() < 1e-12, "{}", d.name);
            // Line of sight within ~2 degrees of the boresight z-axis.
            let dir = quat::rotate_z(d.quat);
            assert!(dir[2] > 0.999, "{} too far off axis", d.name);
        }
    }

    #[test]
    fn polarisation_angles_alternate() {
        // Detectors 1 and 7 sit at the same azimuth (first of rings 1 and
        // 2) with polarisation angles 45 and 135 degrees: their x-axes are
        // nearly orthogonal (up to the small radial tilt).
        let fp = build_focal_plane(8);
        let x1 = quat::rotate_x(fp.detectors[1].quat);
        let x7 = quat::rotate_x(fp.detectors[7].quat);
        let dot = x1[0] * x7[0] + x1[1] * x7[1] + x1[2] * x7[2];
        assert!(dot.abs() < 0.05, "dot {dot}");
    }

    #[test]
    fn noise_parameters_vary() {
        let fp = build_focal_plane(20);
        let nets: Vec<f64> = fp.detectors.iter().map(|d| d.net).collect();
        assert!(nets.windows(2).any(|w| w[0] != w[1]));
    }
}
