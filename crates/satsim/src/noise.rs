//! Reproducible detector noise timestreams.
//!
//! Each detector's noise is synthesised by colouring unit Gaussian Fourier
//! coefficients with its 1/f + white PSD (`toast-fft`) using draws from a
//! per-detector counter-RNG stream (`toast-rng`), so any rank can generate
//! any detector's noise identically — TOAST's reproducibility contract.

use toast_core::data::{FocalPlane, Observation};
use toast_fft::{synthesize_noise, Psd};
use toast_rng::CounterRng;

/// Add simulated noise to every detector's timestream.
///
/// Noise is synthesised in power-of-two chunks (the FFT length); `seed`
/// and the detector index key the RNG streams.
pub fn simulate_noise(obs: &mut Observation, fp: &FocalPlane, seed: u64) {
    let n_samp = obs.n_samples;
    let chunk = n_samp.next_power_of_two().min(1 << 14);
    let rate = obs.sample_rate;
    for (det, d) in fp.detectors.iter().enumerate() {
        let psd = Psd {
            net: d.net,
            fknee: d.fknee,
            alpha: d.alpha,
            fmin: 1e-5,
        };
        let rng = CounterRng::new(seed, det as u64);
        let sig = obs.signal_det_mut(det);
        let mut offset = 0usize;
        let mut block = 0u64;
        while offset < n_samp {
            let take = chunk.min(n_samp - offset);
            let noise = synthesize_noise(&psd, rate, chunk, |i| {
                rng.gaussian(block * (2 * chunk as u64 + 4) + i)
            });
            for (s, v) in noise[..take].iter().enumerate() {
                sig[offset + s] += v;
            }
            offset += take;
            block += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::focalplane::build_focal_plane;
    use toast_core::data::Interval;

    fn obs(n_det: usize, n_samp: usize) -> (Observation, FocalPlane) {
        let fp = build_focal_plane(n_det);
        let o = Observation::new(&fp, n_samp, 19.0, vec![Interval::new(0, n_samp)], 3);
        (o, fp)
    }

    #[test]
    fn noise_is_reproducible_and_seed_sensitive() {
        let (mut a, fp) = obs(3, 500);
        let (mut b, _) = obs(3, 500);
        let (mut c, _) = obs(3, 500);
        simulate_noise(&mut a, &fp, 42);
        simulate_noise(&mut b, &fp, 42);
        simulate_noise(&mut c, &fp, 43);
        assert_eq!(a.signal, b.signal);
        assert_ne!(a.signal, c.signal);
    }

    #[test]
    fn detectors_get_independent_noise() {
        let (mut o, fp) = obs(2, 2048);
        simulate_noise(&mut o, &fp, 1);
        let x = o.signal_det(0).to_vec();
        let y = o.signal_det(1).to_vec();
        assert_ne!(x, y);
        // Cross-correlation near zero relative to autocorrelation.
        let dot: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let xx: f64 = x.iter().map(|a| a * a).sum();
        let yy: f64 = y.iter().map(|a| a * a).sum();
        let corr = dot / (xx * yy).sqrt();
        assert!(corr.abs() < 0.15, "corr {corr}");
    }

    #[test]
    fn noise_rms_is_of_order_net_scaled() {
        let (mut o, fp) = obs(1, 4096);
        simulate_noise(&mut o, &fp, 9);
        let sig = o.signal_det(0);
        let rms = (sig.iter().map(|x| x * x).sum::<f64>() / sig.len() as f64).sqrt();
        // White-level variance ~ NET^2 rate/2; 1/f adds on top of it.
        let white = fp.detectors[0].net * (o.sample_rate / 2.0).sqrt();
        assert!(
            rms > 0.5 * white && rms < 10.0 * white,
            "rms {rms} white {white}"
        );
    }

    #[test]
    fn noise_accumulates_on_existing_signal() {
        let (mut o, fp) = obs(1, 256);
        o.signal.fill(100.0);
        simulate_noise(&mut o, &fp, 5);
        let mean: f64 = o.signal.iter().sum::<f64>() / 256.0;
        assert!((mean - 100.0).abs() < 5.0, "mean {mean}");
    }
}
