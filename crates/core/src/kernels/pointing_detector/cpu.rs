//! CPU baseline: rayon-parallel over detectors, serial over the variable
//! intervals of each detector — the shape of the original OpenMP-threaded
//! C++ kernel.

use accel_sim::Context;
use rayon::prelude::*;

use crate::kernels::support::{charge_cpu, science_items};
use crate::quat;
use crate::workspace::Workspace;

/// Expand boresight pointing into per-detector pointing on the host.
pub fn run(ctx: &mut Context, threads: u32, ws: &mut Workspace) {
    let n_samp = ws.obs.n_samples;
    let boresight = &ws.obs.boresight;
    let fp_quats = &ws.obs.fp_quats;
    let intervals = &ws.obs.intervals;

    ws.obs
        .quats
        .par_chunks_mut(n_samp * 4)
        .enumerate()
        .for_each(|(det, out)| {
            let fp = [
                fp_quats[4 * det],
                fp_quats[4 * det + 1],
                fp_quats[4 * det + 2],
                fp_quats[4 * det + 3],
            ];
            for iv in intervals {
                for s in iv.start..iv.end {
                    let b = [
                        boresight[4 * s],
                        boresight[4 * s + 1],
                        boresight[4 * s + 2],
                        boresight[4 * s + 3],
                    ];
                    let q = quat::mul(b, fp);
                    out[4 * s..4 * s + 4].copy_from_slice(&q);
                }
            }
        });

    charge_cpu(
        ctx,
        "pointing_detector",
        science_items(ws.obs.n_det, &ws.obs.intervals),
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        threads,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_scalar_reference() {
        let mut ws = test_workspace(3, 100, 8);
        let mut ctx = Context::new(NodeCalib::default());
        run(&mut ctx, 4, &mut ws);

        for det in 0..3 {
            for iv in ws.obs.intervals.clone() {
                for s in iv.start..iv.end {
                    let b = [
                        ws.obs.boresight[4 * s],
                        ws.obs.boresight[4 * s + 1],
                        ws.obs.boresight[4 * s + 2],
                        ws.obs.boresight[4 * s + 3],
                    ];
                    let f = [
                        ws.obs.fp_quats[4 * det],
                        ws.obs.fp_quats[4 * det + 1],
                        ws.obs.fp_quats[4 * det + 2],
                        ws.obs.fp_quats[4 * det + 3],
                    ];
                    let expected = crate::quat::mul(b, f);
                    let base = det * 100 * 4 + 4 * s;
                    for (c, e) in expected.iter().enumerate() {
                        assert_eq!(ws.obs.quats[base + c], *e, "det {det} s {s} c {c}");
                    }
                }
            }
        }
        assert!(ctx.stats()["pointing_detector"].seconds > 0.0);
    }

    #[test]
    fn out_of_interval_samples_untouched() {
        let mut ws = test_workspace(2, 100, 8);
        ws.obs.quats.fill(9.0);
        let mut ctx = Context::new(NodeCalib::default());
        run(&mut ctx, 1, &mut ws);
        for s in 0..100 {
            let in_iv = ws
                .obs
                .intervals
                .iter()
                .any(|iv| s >= iv.start && s < iv.end);
            if !in_iv {
                assert_eq!(ws.obs.quats[4 * s], 9.0, "gap sample {s} was written");
            }
        }
    }
}
