//! Offload port: the collapsed triple loop of the paper's § 3.1.2 —
//! `collapse(3)` over detectors × intervals × the precomputed maximum
//! interval length, with a guard cutting work past each interval's end.

use accel_sim::Context;
use offload::{target_parallel_for_collapse3, KernelSpec};

use crate::kernels::support::guard_divergence;
use crate::memory::{OmpStore, ResidencyError};
use crate::quat;
use crate::workspace::{BufferId, Workspace};

/// Launch the device kernel over resident buffers.
pub fn run(ctx: &mut Context, store: &mut OmpStore, ws: &Workspace) -> Result<(), ResidencyError> {
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let intervals = &ws.obs.intervals;
    let max_len = ws.obs.max_interval_len();

    let spec = KernelSpec::divergent(
        "pointing_detector",
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        guard_divergence(n_det, intervals),
    );

    let boresight = store.take(BufferId::Boresight)?;
    let fp_quats = store.take(BufferId::FpQuats)?;
    let mut quats = store.take(BufferId::Quats)?;
    {
        let bore = boresight.device_slice();
        let fp = fp_quats.device_slice();
        let out = quats.device_slice_mut();
        target_parallel_for_collapse3(
            ctx,
            &spec,
            (n_det, intervals.len(), max_len),
            |det, iv_idx, k| {
                let iv = intervals[iv_idx];
                let s = iv.start + k;
                if s >= iv.end {
                    return; // guard: past this interval's end (no-op lane)
                }
                let b = [
                    bore[4 * s],
                    bore[4 * s + 1],
                    bore[4 * s + 2],
                    bore[4 * s + 3],
                ];
                let f = [
                    fp[4 * det],
                    fp[4 * det + 1],
                    fp[4 * det + 2],
                    fp[4 * det + 3],
                ];
                let q = quat::mul(b, f);
                let base = det * n_samp * 4 + 4 * s;
                out[base..base + 4].copy_from_slice(&q);
            },
        );
    }
    store.put_back(BufferId::Boresight, boresight);
    store.put_back(BufferId::FpQuats, fp_quats);
    store.put_back(BufferId::Quats, quats);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_implementation() {
        let mut ws_cpu = test_workspace(3, 120, 8);
        let mut ws_omp = ws_cpu.clone();

        let mut ctx = Context::new(NodeCalib::default());
        super::super::cpu::run(&mut ctx, 4, &mut ws_cpu);

        let mut store = AccelStore::omp();
        for id in [BufferId::Boresight, BufferId::FpQuats, BufferId::Quats] {
            store.ensure_device(&mut ctx, &ws_omp, id).unwrap();
        }
        if let AccelStore::Omp(s) = &mut store {
            run(&mut ctx, s, &ws_omp).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_omp, BufferId::Quats);

        assert_eq!(ws_cpu.obs.quats, ws_omp.obs.quats);
        // The launch was charged to the device.
        assert_eq!(ctx.stats()["pointing_detector"].calls, 2);
    }
}
