//! arrayjit port: the quaternion product written as pure NumPy-style array
//! algebra over dense `[n_det, n_samp]` component arrays, with the 0/1
//! interval mask selecting padded (gap) samples back to their old values —
//! JAX-style "dummy work" on padding.

use accel_sim::Context;
use arrayjit::{Backend, Jit, Tracer};

use crate::memory::{JitStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Build the traced program (compiled lazily per signature).
pub fn build() -> Jit {
    Jit::new("pointing_detector", |_tc, params, _statics| {
        let (bore, fp, old, mask) = (&params[0], &params[1], &params[2], &params[3]);
        let n_samp = bore.shape().dim(0);
        let n_det = fp.shape().dim(0);

        // Boresight components [n_samp], focal-plane components [n_det, 1].
        let a: Vec<Tracer> = (0..4).map(|c| bore.index_axis(1, c)).collect();
        let b: Vec<Tracer> = (0..4)
            .map(|c| fp.index_axis(1, c).reshape(vec![n_det, 1]))
            .collect();
        let (ax, ay, az, aw) = (&a[0], &a[1], &a[2], &a[3]);
        let (bx, by, bz, bw) = (&b[0], &b[1], &b[2], &b[3]);

        // Hamilton product (bore ⊗ fp), broadcast to [n_det, n_samp].
        let qx = aw * bx + ax * bw + ay * bz - az * by;
        let qy = aw * by - ax * bz + ay * bw + az * bx;
        let qz = aw * bz + ax * by - ay * bx + az * bw;
        let qw = aw * bw - ax * bx - ay * by - az * bz;
        let fresh = qx.stack_last(&[&qy, &qz, &qw]); // [n_det, n_samp, 4]

        // Padded lanes (mask == 0) keep the old values.
        let keep = mask.gt_s(0.5).reshape(vec![1, n_samp, 1]);
        vec![keep.select(&fresh, old)]
    })
}

/// Run against resident arrays, replacing `Quats` functionally.
pub fn run(
    ctx: &mut Context,
    backend: Backend,
    store: &mut JitStore,
    jit: &mut Jit,
    ws: &Workspace,
) -> Result<(), ResidencyError> {
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let mask = store.sample_mask(ctx, ws);
    let bore = store
        .array(BufferId::Boresight)?
        .clone()
        .reshaped(vec![n_samp, 4]);
    let fp = store
        .array(BufferId::FpQuats)?
        .clone()
        .reshaped(vec![n_det, 4]);
    let old = store
        .array(BufferId::Quats)?
        .clone()
        .reshaped(vec![n_det, n_samp, 4]);

    let out = jit
        .call(ctx, backend, &[bore, fp, old, mask])
        .remove(0)
        .reshaped(vec![n_det * n_samp * 4]);
    store.replace(BufferId::Quats, out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    fn run_jit(backend: Backend) -> (Workspace, Context) {
        let mut ws = test_workspace(3, 120, 8);
        let mut ctx = Context::new(NodeCalib::default());
        let mut store = if backend == Backend::Cpu {
            AccelStore::jit_host()
        } else {
            AccelStore::jit()
        };
        for id in [BufferId::Boresight, BufferId::FpQuats, BufferId::Quats] {
            store.ensure_device(&mut ctx, &ws, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, backend, s, &mut jit, &ws).unwrap();
        }
        store.update_host(&mut ctx, &mut ws, BufferId::Quats);
        (ws, ctx)
    }

    #[test]
    fn matches_cpu_implementation() {
        let mut ws_cpu = test_workspace(3, 120, 8);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::cpu::run(&mut ctx, 4, &mut ws_cpu);

        let (ws_jit, jit_ctx) = run_jit(Backend::Device);
        for (i, (a, b)) in ws_cpu.obs.quats.iter().zip(&ws_jit.obs.quats).enumerate() {
            assert!((a - b).abs() < 1e-13, "quat elem {i}: {a} vs {b}");
        }
        // The program was compiled once and launched fused stages.
        assert_eq!(jit_ctx.stats()["pointing_detector/jit_compile"].calls, 1);
        assert!(jit_ctx
            .stats()
            .keys()
            .any(|k| k.starts_with("pointing_detector/fused")));
    }

    #[test]
    fn cpu_backend_matches_device_backend() {
        let (dev, _) = run_jit(Backend::Device);
        let (cpu, cpu_ctx) = run_jit(Backend::Cpu);
        assert_eq!(dev.obs.quats, cpu.obs.quats);
        // No device kernels were launched on the CPU backend.
        assert_eq!(cpu_ctx.trace().kernel_count(), 0);
    }
}
