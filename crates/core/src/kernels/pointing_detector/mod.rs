//! `pointing_detector` — expand boresight pointing into detector pointing.
//!
//! For every detector `d` and in-interval sample `s`:
//!
//! ```text
//! quats[d, s] = boresight[s] ⊗ fp_quats[d]
//! ```
//!
//! A pure quaternion-multiply kernel: 28 flops per sample, streaming reads
//! of the boresight and streaming writes of the expanded pointing.

pub mod cpu;
pub mod jit;
pub mod omp;

use crate::dispatch::KernelId;

/// Flops per sample (one quaternion product).
pub(crate) const FLOPS_PER_ITEM: f64 = 28.0;
/// Bytes per sample: 32 B boresight read + 32 B quaternion write (the
/// per-detector offset quaternion stays in registers/cache).
pub(crate) const BYTES_PER_ITEM: f64 = 64.0;

crate::kernels::dispatch_impl!(KernelId::PointingDetector, pointing_detector);
