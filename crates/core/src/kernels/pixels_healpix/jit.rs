//! arrayjit port: the RING pixelisation written branch-free over dense
//! arrays. Every `select` computes *both* the equatorial and the polar
//! arm for every sample — the predication dummy work that limits this
//! kernel's JIT speedup in the paper (11× vs offload's 41×).
//!
//! The arithmetic mirrors `toast_healpix::ring::zphi2pix_ring`
//! operation-for-operation (floor-division and Euclidean remainders
//! included), so the traced and scalar implementations agree bit-exactly.
//! Out-of-interval samples keep their previous value (the buffers are
//! initialised to `-1`).

use std::f64::consts::{FRAC_PI_2, PI};

use accel_sim::Context;
use arrayjit::{Backend, DType, Jit};

use crate::memory::{JitStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Build the traced program. Statics: `[nside]`.
pub fn build() -> Jit {
    Jit::new("pixels_healpix", |_tc, params, statics| {
        let (quats, old_pix, mask) = (&params[0], &params[1], &params[2]);
        let nside = statics[0] as f64;
        let npix = 12.0 * nside * nside;
        let ncap = 2.0 * nside * (nside - 1.0);
        let n_samp = mask.shape().dim(0);

        // Line of sight: rotate the z-axis through each quaternion.
        let qx = quats.index_axis(2, 0);
        let qy = quats.index_axis(2, 1);
        let qz = quats.index_axis(2, 2);
        let qw = quats.index_axis(2, 3);
        let dx = (&qx * &qz + &qw * &qy).mul_s(2.0);
        let dy = (&qy * &qz - &qw * &qx).mul_s(2.0);
        let dz = (&qx * &qx + &qy * &qy).mul_s(-2.0).add_s(1.0);

        // z = dz / |d| clamped, phi wrapped to [0, 2π) — the exact ops of
        // `vec2pix_ring`.
        let norm = (&dx * &dx + &dy * &dy + &dz * &dz).sqrt();
        let z = (&dz / &norm).max_s(-1.0).min_s(1.0);
        let phi_raw = dy.atan2(&dx);
        let phi = phi_raw.lt_s(0.0).select(&phi_raw.add_s(2.0 * PI), &phi_raw);
        let tt = phi.div_s(FRAC_PI_2).rem_s(4.0);
        let za = z.abs();

        // --- equatorial arm (za <= 2/3) --------------------------------
        let t1 = tt.add_s(0.5).mul_s(nside);
        let t2 = z.mul_s(0.75).mul_s(nside);
        let jp = (&t1 - &t2).floor();
        let jm = (&t1 + &t2).floor();
        let ir = (&jp - &jm).add_s(nside + 1.0);
        let kshift = ir.rem_s(2.0).neg().add_s(1.0);
        let ip_eq = (&jp + &jm + &kshift)
            .add_s(1.0 - nside)
            .div_s(2.0)
            .floor()
            .rem_s(4.0 * nside);
        let pix_eq = ir.sub_s(1.0).mul_s(4.0 * nside).add_s(ncap) + ip_eq;

        // --- polar arm (za > 2/3) ---------------------------------------
        let tp = &tt - &tt.floor();
        let tmp = za.neg().add_s(1.0).mul_s(3.0).sqrt().mul_s(nside);
        let jp_p = (&tp * &tmp).floor();
        let jm_p = (tp.neg().add_s(1.0) * &tmp).floor();
        let ir_p = (&jp_p + &jm_p).add_s(1.0);
        let ip_p = (&tt * &ir_p).floor().rem(&ir_p.mul_s(4.0));
        let pix_north = (&ir_p * &ir_p.sub_s(1.0)).mul_s(2.0) + &ip_p;
        let pix_south = (&ir_p * &ir_p.add_s(1.0)).mul_s(-2.0).add_s(npix) + &ip_p;
        let pix_polar = z.gt_s(0.0).select(&pix_north, &pix_south);

        // Merge arms; padded samples keep their previous value.
        let pix = za.le_s(2.0 / 3.0).select(&pix_eq, &pix_polar);
        let keep = mask.gt_s(0.5).reshape(vec![1, n_samp]);
        vec![keep.select(&pix.convert(DType::I64), old_pix)]
    })
}

/// Run against resident arrays, replacing `Pixels` functionally.
pub fn run(
    ctx: &mut Context,
    backend: Backend,
    store: &mut JitStore,
    jit: &mut Jit,
    ws: &Workspace,
) -> Result<(), ResidencyError> {
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    assert!(
        ws.geom.nside.npix() < (1 << 50),
        "pixel indices must stay exactly representable in f64"
    );
    assert!(!ws.geom.nest, "the arrayjit port implements RING ordering");
    let mask = store.sample_mask(ctx, ws);
    let quats = store
        .array(BufferId::Quats)?
        .clone()
        .reshaped(vec![n_det, n_samp, 4]);
    let old_pix = store
        .array(BufferId::Pixels)?
        .clone()
        .reshaped(vec![n_det, n_samp]);

    let out = jit
        .call_static(
            ctx,
            backend,
            &[quats, old_pix, mask],
            &[ws.geom.nside.get() as i64],
        )
        .remove(0)
        .reshaped(vec![n_det * n_samp]);
    store.replace(BufferId::Pixels, out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_bit_exactly() {
        let mut ws_cpu = test_workspace(3, 200, 64);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::super::pointing_detector::cpu::run(&mut ctx, 2, &mut ws_cpu);
        let mut ws_jit = ws_cpu.clone();
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::jit();
        for id in [BufferId::Quats, BufferId::Pixels] {
            store.ensure_device(&mut ctx, &ws_jit, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws_jit).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_jit, BufferId::Pixels);
        assert_eq!(ws_cpu.obs.pixels, ws_jit.obs.pixels);
    }

    #[test]
    fn both_select_arms_count_as_flops() {
        // The compiled program's flop count must include both the
        // equatorial and polar arms (the paper's predication dummy work).
        let ws = test_workspace(1, 64, 16);
        let mut ctx = Context::new(NodeCalib::default());
        let mut store = AccelStore::jit();
        for id in [BufferId::Quats, BufferId::Pixels] {
            store.ensure_device(&mut ctx, &ws, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws).unwrap();
        }
        let n_samp = 64.0;
        let total: f64 = ctx
            .stats()
            .iter()
            .filter(|(k, _)| k.starts_with("pixels_healpix/"))
            .map(|(_, s)| s.seconds)
            .sum();
        assert!(total > 0.0);
        // flops/sample in the compiled program include both arms of every
        // select: well above what one arm needs in IR op counts.
        let mut jit2 = build();
        let quats = store_array(&store, BufferId::Quats, 1, 64);
        let pix = store_array_i(&store, 1, 64);
        let mask = arrayjit::Array::from_f64(vec![1.0; 64]);
        jit2.call_static(&mut ctx, Backend::Device, &[quats, pix, mask], &[16]);
        let program = jit2
            .program_for(
                &[
                    store_array(&store, BufferId::Quats, 1, 64),
                    store_array_i(&store, 1, 64),
                    arrayjit::Array::from_f64(vec![1.0; 64]),
                ],
                &[16],
            )
            .unwrap();
        // One arm costs ~60 IR flop-units (rotation + atan2 + one region's
        // arithmetic); predication forces both arms plus the merge.
        assert!(program.total_flops() / n_samp > 100.0);
    }

    fn store_array(
        store: &AccelStore,
        id: BufferId,
        n_det: usize,
        n_samp: usize,
    ) -> arrayjit::Array {
        match store {
            AccelStore::Jit(s) => s
                .array(id)
                .unwrap()
                .clone()
                .reshaped(vec![n_det, n_samp, 4]),
            _ => unreachable!(),
        }
    }

    fn store_array_i(store: &AccelStore, n_det: usize, n_samp: usize) -> arrayjit::Array {
        match store {
            AccelStore::Jit(s) => s
                .array(BufferId::Pixels)
                .unwrap()
                .clone()
                .reshaped(vec![n_det, n_samp]),
            _ => unreachable!(),
        }
    }
}
