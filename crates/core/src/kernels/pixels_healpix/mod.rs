//! `pixels_healpix` — translate detector pointing into HEALPix pixels.
//!
//! For every detector `d` and in-interval sample `s`, rotate the z-axis
//! through `quats[d, s]` and pixelise the resulting line of sight in RING
//! ordering; out-of-interval samples get pixel `-1`.
//!
//! This is the paper's branch-heavy kernel ("many branches, with dozens of
//! variables declared per branch"): the equatorial/polar split and the
//! north/south split diverge across a warp. The offload port pays a
//! divergence factor; the arrayjit port is branch-free but computes *both*
//! sides of every `select` — which is why the paper sees it speed up only
//! 11× against OpenMP offload's 41×.

pub mod cpu;
pub mod jit;
pub mod omp;

use crate::dispatch::KernelId;

/// Flop-equivalents per sample: z-axis rotation, `atan2`, `sqrt`, the
/// floor/remainder chains of both pixelisation arms — scalar libm heavy on
/// the CPU, and (unlike `stokes_weights_IQU`) still compute-bound on the
/// device because divergence inflates the arithmetic.
pub(crate) const FLOPS_PER_ITEM: f64 = 280.0;
/// Bytes per sample: 32 B quaternion read + 8 B pixel write.
pub(crate) const BYTES_PER_ITEM: f64 = 40.0;
/// Warp-divergence multiplier of the offload port: the equatorial/polar
/// branch correlates with sky position, so warps split only near region
/// boundaries.
pub(crate) const OMP_DIVERGENCE: f64 = 1.6;

crate::kernels::dispatch_impl!(KernelId::PixelsHealpix, pixels_healpix);
