//! Offload port: same inner pixelisation function as the CPU baseline,
//! inside the collapsed triple loop with the interval guard. The branchy
//! body costs a divergence factor on the SIMT device.

use accel_sim::Context;
use offload::{target_parallel_for_collapse3, KernelSpec};
use toast_healpix::ring::vec2pix_ring;

use crate::kernels::support::guard_divergence;
use crate::memory::{OmpStore, ResidencyError};
use crate::quat;
use crate::workspace::{BufferId, Workspace};

/// Launch the device kernel over resident buffers.
pub fn run(ctx: &mut Context, store: &mut OmpStore, ws: &Workspace) -> Result<(), ResidencyError> {
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let nside = ws.geom.nside;
    let intervals = &ws.obs.intervals;
    let max_len = ws.obs.max_interval_len();

    let spec = KernelSpec::divergent(
        "pixels_healpix",
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        super::OMP_DIVERGENCE * guard_divergence(n_det, intervals),
    );

    let quats = store.take(BufferId::Quats)?;
    {
        let q = quats.device_slice();
        let pix = store.pixels_mut()?.device_slice_mut();
        target_parallel_for_collapse3(
            ctx,
            &spec,
            (n_det, intervals.len(), max_len),
            |det, iv_idx, k| {
                let iv = intervals[iv_idx];
                let s = iv.start + k;
                if s >= iv.end {
                    return; // guard
                }
                let base = det * n_samp * 4 + 4 * s;
                let quat = [q[base], q[base + 1], q[base + 2], q[base + 3]];
                pix[det * n_samp + s] = vec2pix_ring(nside, quat::rotate_z(quat)) as i64;
            },
        );
    }
    store.put_back(BufferId::Quats, quats);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_implementation() {
        let mut ws_cpu = test_workspace(3, 130, 16);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::super::pointing_detector::cpu::run(&mut ctx, 2, &mut ws_cpu);
        let mut ws_omp = ws_cpu.clone();
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::omp();
        for id in [BufferId::Quats, BufferId::Pixels] {
            store.ensure_device(&mut ctx, &ws_omp, id).unwrap();
        }
        if let AccelStore::Omp(s) = &mut store {
            run(&mut ctx, s, &ws_omp).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_omp, BufferId::Pixels);
        assert_eq!(ws_cpu.obs.pixels, ws_omp.obs.pixels);
    }
}
