//! CPU baseline: per-sample scalar pixelisation through the shared
//! `toast-healpix` routines (the offload port reuses the same inner
//! function, as the paper's port shared inner functions with the original
//! code).

use accel_sim::Context;
use rayon::prelude::*;
use toast_healpix::ring::vec2pix_ring;

use crate::kernels::support::{charge_cpu, science_items};
use crate::quat;
use crate::workspace::Workspace;

/// Pixelise detector pointing on the host.
// Index loops mirror the ported C kernels' interval addressing.
#[allow(clippy::needless_range_loop)]
pub fn run(ctx: &mut Context, threads: u32, ws: &mut Workspace) {
    let n_samp = ws.obs.n_samples;
    let nside = ws.geom.nside;
    let quats = &ws.obs.quats;
    let intervals = &ws.obs.intervals;

    ws.obs
        .pixels
        .par_chunks_mut(n_samp)
        .enumerate()
        .for_each(|(det, pix)| {
            for iv in intervals {
                for s in iv.start..iv.end {
                    let base = det * n_samp * 4 + 4 * s;
                    let q = [
                        quats[base],
                        quats[base + 1],
                        quats[base + 2],
                        quats[base + 3],
                    ];
                    let dir = quat::rotate_z(q);
                    pix[s] = vec2pix_ring(nside, dir) as i64;
                }
            }
        });

    charge_cpu(
        ctx,
        "pixels_healpix",
        science_items(ws.obs.n_det, &ws.obs.intervals),
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        threads,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn pixels_valid_and_gaps_flagged() {
        let mut ws = test_workspace(2, 150, 16);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::super::pointing_detector::cpu::run(&mut ctx, 2, &mut ws);
        run(&mut ctx, 2, &mut ws);
        let npix = ws.geom.nside.npix() as i64;
        for det in 0..2 {
            for s in 0..150 {
                let p = ws.obs.pixels[det * 150 + s];
                let in_iv = ws
                    .obs
                    .intervals
                    .iter()
                    .any(|iv| s >= iv.start && s < iv.end);
                if in_iv {
                    assert!((0..npix).contains(&p), "det {det} s {s}: pixel {p}");
                } else {
                    assert_eq!(p, -1, "gap sample {s} should stay -1");
                }
            }
        }
    }

    #[test]
    fn neighbouring_samples_hit_nearby_pixels() {
        // The boresight moves smoothly, so consecutive pixel centres should
        // be within a few pixel radii of each other.
        let mut ws = test_workspace(1, 400, 64);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::super::pointing_detector::cpu::run(&mut ctx, 2, &mut ws);
        run(&mut ctx, 2, &mut ws);
        let nside = ws.geom.nside;
        let limit = 40.0 * (nside.pixel_area() / std::f64::consts::PI).sqrt();
        for iv in &ws.obs.intervals {
            for s in iv.start + 1..iv.end {
                let (a, b) = (ws.obs.pixels[s - 1], ws.obs.pixels[s]);
                let va = toast_healpix::ring::pix2vec_ring(nside, a as u64);
                let vb = toast_healpix::ring::pix2vec_ring(nside, b as u64);
                let d = toast_healpix::ang::angdist(va, vb);
                assert!(d < limit, "samples {}..{s}: {d}", s - 1);
            }
        }
    }
}
