//! arrayjit port: masked per-component scatter-adds into a fresh map,
//! summed with the resident accumulation — the functional
//! `zmap.at[pix, :].add(dw * sig * w)`.

use accel_sim::Context;
use arrayjit::{Backend, DType, Jit, Tracer};

use crate::memory::{JitStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Build the traced program. Statics: `[nnz]`.
pub fn build() -> Jit {
    Jit::new("build_noise_weighted", |_tc, params, statics| {
        let (pixels, weights, signal, det_weights, zmap, mask) = (
            &params[0], &params[1], &params[2], &params[3], &params[4], &params[5],
        );
        let nnz = statics[0];
        let n_det = det_weights.shape().dim(0);
        let n_samp = mask.shape().dim(0);
        let map_len = zmap.shape().dim(0);

        // Clamp invalid (-1) pixels to 0; their contribution is gated to
        // zero before the scatter.
        let zero = pixels.mul_s_i(0);
        let safe = pixels.max(&zero);
        let valid = pixels.ge(&zero).convert(DType::F64);
        let gate = &valid * &mask.reshape(vec![1, n_samp]);

        let dw = det_weights.reshape(vec![n_det, 1]);
        let base = signal * &dw * gate;

        let mut acc: Option<Tracer> = None;
        for c in 0..nnz {
            let flat = safe.mul_s_i(nnz).add_s_i(c);
            let val = &base * &weights.index_axis(2, c as usize);
            let scat = val.scatter_add(&flat, map_len);
            acc = Some(match acc {
                None => scat,
                Some(a) => a + scat,
            });
        }
        vec![zmap + acc.expect("nnz >= 1")]
    })
}

/// Run against resident arrays, replacing `ZMap` functionally.
pub fn run(
    ctx: &mut Context,
    backend: Backend,
    store: &mut JitStore,
    jit: &mut Jit,
    ws: &Workspace,
) -> Result<(), ResidencyError> {
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let nnz = ws.geom.nnz;
    let mask = store.sample_mask(ctx, ws);
    let pixels = store
        .array(BufferId::Pixels)?
        .clone()
        .reshaped(vec![n_det, n_samp]);
    let weights = store
        .array(BufferId::Weights)?
        .clone()
        .reshaped(vec![n_det, n_samp, nnz]);
    let signal = store
        .array(BufferId::Signal)?
        .clone()
        .reshaped(vec![n_det, n_samp]);
    let det_weights = store.array(BufferId::DetWeights)?.clone();
    let zmap = store.array(BufferId::ZMap)?.clone();

    let out = jit
        .call_static(
            ctx,
            backend,
            &[pixels, weights, signal, det_weights, zmap, mask],
            &[nnz as i64],
        )
        .remove(0);
    store.replace(BufferId::ZMap, out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_implementation() {
        let mut ws_cpu = test_workspace(3, 120, 8);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::super::pointing_detector::cpu::run(&mut ctx, 2, &mut ws_cpu);
        super::super::super::pixels_healpix::cpu::run(&mut ctx, 2, &mut ws_cpu);
        super::super::super::stokes_weights_iqu::cpu::run(&mut ctx, 2, &mut ws_cpu);
        let mut ws_jit = ws_cpu.clone();
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::jit();
        for id in [
            BufferId::Pixels,
            BufferId::Weights,
            BufferId::Signal,
            BufferId::DetWeights,
            BufferId::ZMap,
        ] {
            store.ensure_device(&mut ctx, &ws_jit, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws_jit).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_jit, BufferId::ZMap);
        for (a, b) in ws_cpu.zmap.iter().zip(&ws_jit.zmap) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn scatter_stages_are_charged() {
        let mut ws = test_workspace(1, 50, 8);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::super::pointing_detector::cpu::run(&mut ctx, 2, &mut ws);
        super::super::super::pixels_healpix::cpu::run(&mut ctx, 2, &mut ws);
        super::super::super::stokes_weights_iqu::cpu::run(&mut ctx, 2, &mut ws);
        let mut store = AccelStore::jit();
        for id in [
            BufferId::Pixels,
            BufferId::Weights,
            BufferId::Signal,
            BufferId::DetWeights,
            BufferId::ZMap,
        ] {
            store.ensure_device(&mut ctx, &ws, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws).unwrap();
        }
        assert!(ctx
            .stats()
            .keys()
            .any(|k| k.starts_with("build_noise_weighted/")));
    }
}
