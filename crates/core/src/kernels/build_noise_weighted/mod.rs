//! `build_noise_weighted` — accumulate noise-weighted timestreams into a
//! map.
//!
//! For every detector `d` and in-interval sample `s` with a valid pixel:
//!
//! ```text
//! zmap[pixels[d, s], k] += det_weights[d] · signal[d, s] · weights[d, s, k]
//! ```
//!
//! The scatter dual of [`scan_map`](crate::kernels::scan_map): the map
//! writes are data-dependent, so the offload port needs atomic updates and
//! the JIT port a functional scatter-add.

pub mod cpu;
pub mod jit;
pub mod omp;

use crate::dispatch::KernelId;

/// Flops per sample: the det-weight · signal product plus nnz (= 3)
/// multiply-adds into the map.
pub(crate) const FLOPS_PER_ITEM: f64 = 7.0;
/// Bytes per sample: 8 B pixel + 8 B signal + 24 B weights + 48 B
/// uncoalesced map read-modify-write charged at 2x.
pub(crate) const BYTES_PER_ITEM: f64 = 136.0;

crate::kernels::dispatch_impl!(KernelId::BuildNoiseWeighted, build_noise_weighted);
