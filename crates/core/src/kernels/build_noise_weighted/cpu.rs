//! CPU baseline: scatter-accumulate into the shared map.

use accel_sim::Context;

use crate::kernels::support::{charge_cpu, science_items};
use crate::workspace::Workspace;

/// Accumulate noise-weighted timestreams into the map on the host.
///
/// The output map is shared between detectors, so the detector loop runs
/// serially; the threaded analogue scatters with atomic updates, and the
/// cost model charges the same item count either way.
pub fn run(ctx: &mut Context, threads: u32, ws: &mut Workspace) {
    let n_samp = ws.obs.n_samples;
    let nnz = ws.geom.nnz;
    let zmap = &mut ws.zmap;
    let pixels = &ws.obs.pixels;
    let weights = &ws.obs.weights;
    let signal = &ws.obs.signal;
    let det_weights = &ws.obs.det_weights;

    for det in 0..ws.obs.n_det {
        let dw = det_weights[det];
        for iv in &ws.obs.intervals {
            for s in iv.start..iv.end {
                let pix = pixels[det * n_samp + s];
                if pix < 0 {
                    continue;
                }
                let v = dw * signal[det * n_samp + s];
                let wbase = det * n_samp * nnz + nnz * s;
                let mbase = pix as usize * nnz;
                for k in 0..nnz {
                    zmap[mbase + k] += v * weights[wbase + k];
                }
            }
        }
    }

    charge_cpu(
        ctx,
        "build_noise_weighted",
        science_items(ws.obs.n_det, &ws.obs.intervals),
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        threads,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    /// Full pointing chain, unit signal: the intensity column of the map
    /// accumulates exactly `det_weight` per hit (w_I = 1), so the column
    /// total equals Σ_det det_weight · in-interval valid hits.
    #[test]
    fn intensity_column_counts_weighted_hits() {
        let mut ws = test_workspace(2, 100, 8);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::super::pointing_detector::cpu::run(&mut ctx, 2, &mut ws);
        super::super::super::pixels_healpix::cpu::run(&mut ctx, 2, &mut ws);
        super::super::super::stokes_weights_iqu::cpu::run(&mut ctx, 2, &mut ws);
        ws.obs.signal.iter_mut().for_each(|s| *s = 1.0);

        run(&mut ctx, 2, &mut ws);

        let mut expected = 0.0;
        for det in 0..2 {
            for iv in &ws.obs.intervals {
                for s in iv.start..iv.end {
                    if ws.obs.pixels[det * 100 + s] >= 0 {
                        expected += ws.obs.det_weights[det];
                    }
                }
            }
        }
        let total_i: f64 = ws.zmap.iter().step_by(3).sum();
        assert!((total_i - expected).abs() < 1e-9, "{total_i} vs {expected}");
    }

    /// Samples outside every interval and invalid pixels contribute
    /// nothing.
    #[test]
    fn skips_gaps_and_invalid_pixels() {
        let mut ws = test_workspace(1, 60, 8);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::super::pointing_detector::cpu::run(&mut ctx, 2, &mut ws);
        super::super::super::pixels_healpix::cpu::run(&mut ctx, 2, &mut ws);
        super::super::super::stokes_weights_iqu::cpu::run(&mut ctx, 2, &mut ws);
        // Invalidate every pixel: the map must stay identically zero.
        ws.obs.pixels.iter_mut().for_each(|p| *p = -1);
        run(&mut ctx, 2, &mut ws);
        assert!(ws.zmap.iter().all(|&z| z == 0.0));
    }
}
