//! Offload port: collapsed triple loop with atomic map accumulation.

use accel_sim::Context;
use offload::{target_parallel_for_collapse3, KernelSpec};

use crate::kernels::support::guard_divergence;
use crate::memory::{OmpStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Launch the device kernel over resident buffers.
pub fn run(ctx: &mut Context, store: &mut OmpStore, ws: &Workspace) -> Result<(), ResidencyError> {
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let nnz = ws.geom.nnz;
    let intervals = &ws.obs.intervals;
    let max_len = ws.obs.max_interval_len();

    let spec = KernelSpec::divergent(
        "build_noise_weighted",
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        guard_divergence(n_det, intervals),
    );

    let weights = store.take(BufferId::Weights)?;
    let signal = store.take(BufferId::Signal)?;
    let det_weights = store.take(BufferId::DetWeights)?;
    let mut zmap = store.take(BufferId::ZMap)?;
    {
        let w = weights.device_slice();
        let sig = signal.device_slice();
        let dw = det_weights.device_slice();
        let pix = store.pixels()?.device_slice();
        let z = zmap.device_slice_mut();
        target_parallel_for_collapse3(
            ctx,
            &spec,
            (n_det, intervals.len(), max_len),
            |det, iv_idx, k| {
                let iv = intervals[iv_idx];
                let s = iv.start + k;
                if s >= iv.end {
                    return; // guard
                }
                let p = pix[det * n_samp + s];
                if p < 0 {
                    return;
                }
                // The real port uses `omp atomic` here; the simulator
                // executes the body serially, so plain adds are exact.
                let v = dw[det] * sig[det * n_samp + s];
                let wbase = det * n_samp * nnz + nnz * s;
                let mbase = p as usize * nnz;
                for c in 0..nnz {
                    z[mbase + c] += v * w[wbase + c];
                }
            },
        );
    }
    store.put_back(BufferId::Weights, weights);
    store.put_back(BufferId::Signal, signal);
    store.put_back(BufferId::DetWeights, det_weights);
    store.put_back(BufferId::ZMap, zmap);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_implementation() {
        let mut ws_cpu = test_workspace(3, 120, 8);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::super::pointing_detector::cpu::run(&mut ctx, 2, &mut ws_cpu);
        super::super::super::pixels_healpix::cpu::run(&mut ctx, 2, &mut ws_cpu);
        super::super::super::stokes_weights_iqu::cpu::run(&mut ctx, 2, &mut ws_cpu);
        let mut ws_omp = ws_cpu.clone();
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::omp();
        for id in [
            BufferId::Pixels,
            BufferId::Weights,
            BufferId::Signal,
            BufferId::DetWeights,
            BufferId::ZMap,
        ] {
            store.ensure_device(&mut ctx, &ws_omp, id).unwrap();
        }
        if let AccelStore::Omp(s) = &mut store {
            run(&mut ctx, s, &ws_omp).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_omp, BufferId::ZMap);
        assert_eq!(ws_cpu.zmap, ws_omp.zmap);
    }
}
