//! arrayjit port: a single fused elementwise multiply.

use accel_sim::Context;
use arrayjit::{Backend, Jit};

use crate::memory::{JitStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Build the traced program.
pub fn build() -> Jit {
    Jit::new(
        "template_offset_apply_diag_precond",
        |_tc, params, _statics| vec![&params[0] * &params[1]],
    )
}

/// Run against resident arrays, replacing `AmpOut` functionally.
pub fn run(
    ctx: &mut Context,
    backend: Backend,
    store: &mut JitStore,
    jit: &mut Jit,
    ws: &Workspace,
) -> Result<(), ResidencyError> {
    let _ = ws;
    let amps = store.array(BufferId::Amplitudes)?.clone();
    let precond = store.array(BufferId::Precond)?.clone();
    let out = jit.call(ctx, backend, &[amps, precond]).remove(0);
    store.replace(BufferId::AmpOut, out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_bit_exactly() {
        let mut ws_cpu = test_workspace(2, 60, 4);
        let mut ws_jit = ws_cpu.clone();
        let mut ctx = Context::new(NodeCalib::default());
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::jit();
        for id in [BufferId::Amplitudes, BufferId::Precond, BufferId::AmpOut] {
            store.ensure_device(&mut ctx, &ws_jit, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws_jit).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_jit, BufferId::AmpOut);
        assert_eq!(ws_cpu.amp_out, ws_jit.amp_out);
    }
}
