//! CPU baseline: an elementwise product over the amplitude vectors.

use accel_sim::Context;
use rayon::prelude::*;

use crate::kernels::support::charge_cpu;
use crate::workspace::Workspace;

/// Apply the diagonal preconditioner on the host.
pub fn run(ctx: &mut Context, threads: u32, ws: &mut Workspace) {
    let amps = &ws.amplitudes;
    let precond = &ws.precond;
    ws.amp_out.par_iter_mut().enumerate().for_each(|(i, out)| {
        *out = amps[i] * precond[i];
    });

    charge_cpu(
        ctx,
        "template_offset_apply_diag_precond",
        (ws.obs.n_det * ws.n_amp) as f64,
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        threads,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn multiplies_elementwise() {
        let mut ws = test_workspace(2, 60, 4);
        let mut ctx = Context::new(NodeCalib::default());
        run(&mut ctx, 2, &mut ws);
        for i in 0..ws.amp_out.len() {
            assert_eq!(ws.amp_out[i], ws.amplitudes[i] * ws.precond[i]);
        }
    }
}
