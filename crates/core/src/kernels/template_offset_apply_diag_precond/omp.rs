//! Offload port: a flat elementwise target region (no intervals — the
//! amplitude vector has no time structure).

use accel_sim::Context;
use offload::{target_parallel_for, KernelSpec};

use crate::memory::{OmpStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Launch the device kernel over resident buffers.
pub fn run(ctx: &mut Context, store: &mut OmpStore, ws: &Workspace) -> Result<(), ResidencyError> {
    let n = ws.obs.n_det * ws.n_amp;
    let spec = KernelSpec::uniform(
        "template_offset_apply_diag_precond",
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
    );

    let amps = store.take(BufferId::Amplitudes)?;
    let precond = store.take(BufferId::Precond)?;
    let mut amp_out = store.take(BufferId::AmpOut)?;
    {
        let a = amps.device_slice();
        let p = precond.device_slice();
        let out = amp_out.device_slice_mut();
        target_parallel_for(ctx, &spec, n, |i| {
            out[i] = a[i] * p[i];
        });
    }
    store.put_back(BufferId::Amplitudes, amps);
    store.put_back(BufferId::Precond, precond);
    store.put_back(BufferId::AmpOut, amp_out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_implementation() {
        let mut ws_cpu = test_workspace(2, 60, 4);
        let mut ws_omp = ws_cpu.clone();
        let mut ctx = Context::new(NodeCalib::default());
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::omp();
        for id in [BufferId::Amplitudes, BufferId::Precond, BufferId::AmpOut] {
            store.ensure_device(&mut ctx, &ws_omp, id).unwrap();
        }
        if let AccelStore::Omp(s) = &mut store {
            run(&mut ctx, s, &ws_omp).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_omp, BufferId::AmpOut);
        assert_eq!(ws_cpu.amp_out, ws_omp.amp_out);
    }
}
