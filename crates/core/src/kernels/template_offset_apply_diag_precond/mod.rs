//! `template_offset_apply_diag_precond` — apply a diagonal preconditioner
//! to a noise-offset amplitude vector.
//!
//! ```text
//! amp_out[d, j] = amplitudes[d, j] · precond[d, j]
//! ```
//!
//! Used by the destriping conjugate-gradient solver; not part of the
//! benchmark figures (paper footnote 6).

pub mod cpu;
pub mod jit;
pub mod omp;

use crate::dispatch::KernelId;

/// Flops per amplitude.
pub(crate) const FLOPS_PER_ITEM: f64 = 1.0;
/// Bytes per amplitude: two reads, one write.
pub(crate) const BYTES_PER_ITEM: f64 = 24.0;

crate::kernels::dispatch_impl!(
    KernelId::TemplateOffsetApplyDiagPrecond,
    template_offset_apply_diag_precond
);
