//! CPU baseline: rayon over detectors, scalar trig per sample.

use accel_sim::Context;
use rayon::prelude::*;

use crate::kernels::support::{charge_cpu, science_items};
use crate::workspace::Workspace;

/// Compute I/Q/U weights on the host.
pub fn run(ctx: &mut Context, threads: u32, ws: &mut Workspace) {
    assert_eq!(ws.geom.nnz, 3, "stokes_weights_IQU needs nnz == 3");
    let n_samp = ws.obs.n_samples;
    let quats = &ws.obs.quats;
    let eps = &ws.obs.det_epsilon;
    let intervals = &ws.obs.intervals;

    ws.obs
        .weights
        .par_chunks_mut(n_samp * 3)
        .enumerate()
        .for_each(|(det, wout)| {
            let epsilon = eps[det];
            for iv in intervals {
                for s in iv.start..iv.end {
                    let base = det * n_samp * 4 + 4 * s;
                    let q = [
                        quats[base],
                        quats[base + 1],
                        quats[base + 2],
                        quats[base + 3],
                    ];
                    let w = super::weights_for(q, epsilon);
                    wout[3 * s..3 * s + 3].copy_from_slice(&w);
                }
            }
        });

    charge_cpu(
        ctx,
        "stokes_weights_IQU",
        science_items(ws.obs.n_det, &ws.obs.intervals),
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        threads,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn intensity_weight_is_unity_in_intervals() {
        let mut ws = test_workspace(2, 90, 8);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::super::pointing_detector::cpu::run(&mut ctx, 2, &mut ws);
        run(&mut ctx, 2, &mut ws);
        for det in 0..2 {
            for iv in ws.obs.intervals.clone() {
                for s in iv.start..iv.end {
                    let base = det * 90 * 3 + 3 * s;
                    assert_eq!(ws.obs.weights[base], 1.0);
                    let eps = ws.obs.det_epsilon[det];
                    let p = (ws.obs.weights[base + 1].powi(2) + ws.obs.weights[base + 2].powi(2))
                        .sqrt();
                    assert!((p - eps).abs() < 1e-12, "pol norm {p} vs eps {eps}");
                }
            }
        }
    }
}
