//! arrayjit port: the ψ formula as dense array algebra, mirroring the
//! scalar operation order bit-for-bit.

use accel_sim::Context;
use arrayjit::{Backend, Jit};

use crate::memory::{JitStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Build the traced program.
pub fn build() -> Jit {
    Jit::new("stokes_weights_IQU", |_tc, params, _statics| {
        let (quats, eps, old, mask) = (&params[0], &params[1], &params[2], &params[3]);
        let n_det = eps.shape().dim(0);
        let n_samp = mask.shape().dim(0);

        let qx = quats.index_axis(2, 0);
        let qy = quats.index_axis(2, 1);
        let qz = quats.index_axis(2, 2);
        let qw = quats.index_axis(2, 3);

        // dir = R(q)·ẑ, orient = R(q)·x̂ (same expansions as quat.rs).
        let dx = (&qx * &qz + &qw * &qy).mul_s(2.0);
        let dy = (&qy * &qz - &qw * &qx).mul_s(2.0);
        let dz = (&qx * &qx + &qy * &qy).mul_s(-2.0).add_s(1.0);
        let ox = (&qy * &qy + &qz * &qz).mul_s(-2.0).add_s(1.0);
        let oy = (&qx * &qy + &qw * &qz).mul_s(2.0);
        let oz = (&qx * &qz - &qw * &qy).mul_s(2.0);

        let num = &dx * &oy - &dy * &ox;
        let den = &dz * &dx * &ox + &dz * &dy * &oy - (&dx * &dx + &dy * &dy) * &oz;
        let two_psi = num.atan2(&den).mul_s(2.0);
        let e = eps.reshape(vec![n_det, 1]);
        let w_i = two_psi.mul_s(0.0).add_s(1.0);
        let w_q = &e * &two_psi.cos();
        let w_u = &e * &two_psi.sin();
        let fresh = w_i.stack_last(&[&w_q, &w_u]); // [n_det, n_samp, 3]

        let keep = mask.gt_s(0.5).reshape(vec![1, n_samp, 1]);
        vec![keep.select(&fresh, old)]
    })
}

/// Run against resident arrays, replacing `Weights` functionally.
pub fn run(
    ctx: &mut Context,
    backend: Backend,
    store: &mut JitStore,
    jit: &mut Jit,
    ws: &Workspace,
) -> Result<(), ResidencyError> {
    assert_eq!(ws.geom.nnz, 3, "stokes_weights_IQU needs nnz == 3");
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let mask = store.sample_mask(ctx, ws);
    let quats = store
        .array(BufferId::Quats)?
        .clone()
        .reshaped(vec![n_det, n_samp, 4]);
    let eps = store.array(BufferId::DetEpsilon)?.clone();
    let old = store
        .array(BufferId::Weights)?
        .clone()
        .reshaped(vec![n_det, n_samp, 3]);

    let out = jit
        .call(ctx, backend, &[quats, eps, old, mask])
        .remove(0)
        .reshaped(vec![n_det * n_samp * 3]);
    store.replace(BufferId::Weights, out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_bit_exactly() {
        let mut ws_cpu = test_workspace(3, 140, 8);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::super::pointing_detector::cpu::run(&mut ctx, 2, &mut ws_cpu);
        let mut ws_jit = ws_cpu.clone();
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::jit();
        for id in [BufferId::Quats, BufferId::DetEpsilon, BufferId::Weights] {
            store.ensure_device(&mut ctx, &ws_jit, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws_jit).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_jit, BufferId::Weights);
        assert_eq!(ws_cpu.obs.weights, ws_jit.obs.weights);
    }
}
