//! `stokes_weights_IQU` — detector response to intensity and linear
//! polarisation.
//!
//! For every detector `d` and in-interval sample `s`, the detector
//! orientation angle ψ on the sky is derived from the pointing quaternion
//! (line of sight `dir = R(q)·ẑ`, polarisation axis `orient = R(q)·x̂`,
//! ψ measured against the local meridian):
//!
//! ```text
//! ψ = atan2(dx·oy − dy·ox,  dz·dx·ox + dz·dy·oy − (dx² + dy²)·oz)
//! weights[d, s] = [1, η·cos 2ψ, η·sin 2ψ]
//! ```
//!
//! Trig-heavy and compute-bound: the paper's most expensive CPU kernel and
//! its biggest offload win (61×).

pub mod cpu;
pub mod jit;
pub mod omp;

use crate::dispatch::KernelId;

/// Flop-equivalents per sample. The kernel is trig-bound: `atan2`, `cos`
/// and `sin` cost tens of flop-equivalents each through scalar libm on the
/// CPU (the reason the paper calls this the most expensive CPU kernel),
/// while the wide FP64 pipes of the device absorb them — so the constant
/// is large but the device side stays memory-bound.
pub(crate) const FLOPS_PER_ITEM: f64 = 400.0;
/// Bytes per sample: 32 B quaternion read + 24 B weight write.
pub(crate) const BYTES_PER_ITEM: f64 = 56.0;

crate::kernels::dispatch_impl!(KernelId::StokesWeightsIqu, stokes_weights_iqu);

/// The shared scalar formula (one sample); all three implementations and
/// the tests route through the same operation order so results match
/// bit-exactly.
#[inline]
pub(crate) fn weights_for(q: [f64; 4], epsilon: f64) -> [f64; 3] {
    let d = crate::quat::rotate_z(q);
    let o = crate::quat::rotate_x(q);
    let num = d[0] * o[1] - d[1] * o[0];
    let den = d[2] * d[0] * o[0] + d[2] * d[1] * o[1] - (d[0] * d[0] + d[1] * d[1]) * o[2];
    let psi = num.atan2(den);
    let two_psi = 2.0 * psi;
    [1.0, epsilon * two_psi.cos(), epsilon * two_psi.sin()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quat;

    #[test]
    fn weights_are_bounded_and_start_with_unity() {
        let q = quat::normalize([0.2, -0.4, 0.1, 0.9]);
        let w = weights_for(q, 0.9);
        assert_eq!(w[0], 1.0);
        assert!((w[1] * w[1] + w[2] * w[2]).sqrt() <= 0.9 + 1e-12);
    }

    #[test]
    fn rotating_the_detector_by_90_degrees_flips_qu() {
        // ψ → ψ + π/2 means cos 2ψ → −cos 2ψ and sin 2ψ → −sin 2ψ.
        let base = quat::from_axis_angle([0.0, 1.0, 0.0], 0.8);
        let spun = quat::mul(
            base,
            quat::from_axis_angle([0.0, 0.0, 1.0], std::f64::consts::FRAC_PI_2),
        );
        let w0 = weights_for(base, 1.0);
        let w1 = weights_for(spun, 1.0);
        assert!((w0[1] + w1[1]).abs() < 1e-10, "{w0:?} vs {w1:?}");
        assert!((w0[2] + w1[2]).abs() < 1e-10, "{w0:?} vs {w1:?}");
    }

    #[test]
    fn efficiency_scales_polarisation_only() {
        let q = quat::normalize([0.1, 0.2, 0.3, 0.9]);
        let full = weights_for(q, 1.0);
        let half = weights_for(q, 0.5);
        assert_eq!(half[0], 1.0);
        assert!((half[1] - 0.5 * full[1]).abs() < 1e-15);
        assert!((half[2] - 0.5 * full[2]).abs() < 1e-15);
    }
}
