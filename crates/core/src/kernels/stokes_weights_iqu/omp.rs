//! Offload port: collapsed triple loop, straight-line trig body (no
//! divergence beyond the interval guard).

use accel_sim::Context;
use offload::{target_parallel_for_collapse3, KernelSpec};

use crate::kernels::support::guard_divergence;
use crate::memory::{OmpStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Launch the device kernel over resident buffers.
pub fn run(ctx: &mut Context, store: &mut OmpStore, ws: &Workspace) -> Result<(), ResidencyError> {
    assert_eq!(ws.geom.nnz, 3, "stokes_weights_IQU needs nnz == 3");
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let intervals = &ws.obs.intervals;
    let max_len = ws.obs.max_interval_len();

    let spec = KernelSpec::divergent(
        "stokes_weights_IQU",
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        guard_divergence(n_det, intervals),
    );

    let quats = store.take(BufferId::Quats)?;
    let eps = store.take(BufferId::DetEpsilon)?;
    let mut weights = store.take(BufferId::Weights)?;
    {
        let q = quats.device_slice();
        let e = eps.device_slice();
        let w = weights.device_slice_mut();
        target_parallel_for_collapse3(
            ctx,
            &spec,
            (n_det, intervals.len(), max_len),
            |det, iv_idx, k| {
                let iv = intervals[iv_idx];
                let s = iv.start + k;
                if s >= iv.end {
                    return; // guard
                }
                let base = det * n_samp * 4 + 4 * s;
                let quat = [q[base], q[base + 1], q[base + 2], q[base + 3]];
                let wi = super::weights_for(quat, e[det]);
                let wbase = det * n_samp * 3 + 3 * s;
                w[wbase..wbase + 3].copy_from_slice(&wi);
            },
        );
    }
    store.put_back(BufferId::Quats, quats);
    store.put_back(BufferId::DetEpsilon, eps);
    store.put_back(BufferId::Weights, weights);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_implementation() {
        let mut ws_cpu = test_workspace(3, 110, 8);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::super::pointing_detector::cpu::run(&mut ctx, 2, &mut ws_cpu);
        let mut ws_omp = ws_cpu.clone();
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::omp();
        for id in [BufferId::Quats, BufferId::DetEpsilon, BufferId::Weights] {
            store.ensure_device(&mut ctx, &ws_omp, id).unwrap();
        }
        if let AccelStore::Omp(s) = &mut store {
            run(&mut ctx, s, &ws_omp).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_omp, BufferId::Weights);
        assert_eq!(ws_cpu.obs.weights, ws_omp.obs.weights);
    }
}
