//! arrayjit port: a masked constant write — the smallest traced program in
//! the suite.

use accel_sim::Context;
use arrayjit::{Backend, Jit};

use crate::memory::{JitStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Build the traced program. Statics: `[nnz]`.
pub fn build() -> Jit {
    Jit::new("stokes_weights_I", |_tc, params, statics| {
        let (old, mask) = (&params[0], &params[1]);
        let nnz = statics[0] as usize;
        let n_samp = mask.shape().dim(0);
        let n_det = old.shape().dim(0);

        // Only component 0 changes (to 1.0); the other components pass
        // through untouched, exactly like the scalar kernel.
        let keep = mask.gt_s(0.5).reshape(vec![1, n_samp, 1]);
        let w0 = old.index_axis(2, 0).mul_s(0.0).add_s(1.0);
        let mut parts: Vec<arrayjit::Tracer> = vec![w0];
        for c in 1..nnz {
            parts.push(old.index_axis(2, c));
        }
        let refs: Vec<&arrayjit::Tracer> = parts[1..].iter().collect();
        let fresh = parts[0].stack_last(&refs);
        let _ = n_det;
        vec![keep.select(&fresh, old)]
    })
}

/// Run against resident arrays, replacing `Weights` functionally.
pub fn run(
    ctx: &mut Context,
    backend: Backend,
    store: &mut JitStore,
    jit: &mut Jit,
    ws: &Workspace,
) -> Result<(), ResidencyError> {
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let nnz = ws.geom.nnz;
    let mask = store.sample_mask(ctx, ws);
    let old = store
        .array(BufferId::Weights)?
        .clone()
        .reshaped(vec![n_det, n_samp, nnz]);

    let out = jit
        .call_static(ctx, backend, &[old, mask], &[nnz as i64])
        .remove(0)
        .reshaped(vec![n_det * n_samp * nnz]);
    store.replace(BufferId::Weights, out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_implementation() {
        let mut ws_cpu = test_workspace(2, 80, 4);
        for (i, w) in ws_cpu.obs.weights.iter_mut().enumerate() {
            *w = (i % 7) as f64 * 0.5;
        }
        let mut ws_jit = ws_cpu.clone();
        let mut ctx = Context::new(NodeCalib::default());
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::jit();
        store
            .ensure_device(&mut ctx, &ws_jit, BufferId::Weights)
            .unwrap();
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws_jit).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_jit, BufferId::Weights);
        assert_eq!(ws_cpu.obs.weights, ws_jit.obs.weights);
    }
}
