//! `stokes_weights_I` — the trivial intensity-only weight vector.
//!
//! Sets weight component 0 to `1.0` for every in-interval sample. Not part
//! of the benchmark figures (paper footnote 6) but "used for some key CMB
//! experiments", so ported like the rest.

pub mod cpu;
pub mod jit;
pub mod omp;

use crate::dispatch::KernelId;

/// Flops per sample (a single store dominates; count the store setup).
pub(crate) const FLOPS_PER_ITEM: f64 = 1.0;
/// Bytes per sample: one f64 write per nnz stride.
pub(crate) const BYTES_PER_ITEM: f64 = 8.0;

crate::kernels::dispatch_impl!(KernelId::StokesWeightsI, stokes_weights_i);
