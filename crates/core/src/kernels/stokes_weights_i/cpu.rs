//! CPU baseline: write unit intensity weights.

use accel_sim::Context;
use rayon::prelude::*;

use crate::kernels::support::{charge_cpu, science_items};
use crate::workspace::Workspace;

/// Set weight component 0 to one on the host.
pub fn run(ctx: &mut Context, threads: u32, ws: &mut Workspace) {
    let n_samp = ws.obs.n_samples;
    let nnz = ws.geom.nnz;
    let intervals = &ws.obs.intervals;

    ws.obs
        .weights
        .par_chunks_mut(n_samp * nnz)
        .for_each(|wout| {
            for iv in intervals {
                for s in iv.start..iv.end {
                    wout[nnz * s] = 1.0;
                }
            }
        });

    charge_cpu(
        ctx,
        "stokes_weights_I",
        science_items(ws.obs.n_det, &ws.obs.intervals),
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        threads,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn sets_intensity_only() {
        let mut ws = test_workspace(2, 60, 4);
        let mut ctx = Context::new(NodeCalib::default());
        run(&mut ctx, 2, &mut ws);
        for det in 0..2 {
            for iv in ws.obs.intervals.clone() {
                for s in iv.start..iv.end {
                    let base = det * 60 * 3 + 3 * s;
                    assert_eq!(ws.obs.weights[base], 1.0);
                    assert_eq!(ws.obs.weights[base + 1], 0.0);
                    assert_eq!(ws.obs.weights[base + 2], 0.0);
                }
            }
        }
    }
}
