//! Offload port: collapsed triple loop writing unit intensity weights.

use accel_sim::Context;
use offload::{target_parallel_for_collapse3, KernelSpec};

use crate::kernels::support::guard_divergence;
use crate::memory::{OmpStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Launch the device kernel over resident buffers.
pub fn run(ctx: &mut Context, store: &mut OmpStore, ws: &Workspace) -> Result<(), ResidencyError> {
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let nnz = ws.geom.nnz;
    let intervals = &ws.obs.intervals;
    let max_len = ws.obs.max_interval_len();

    let spec = KernelSpec::divergent(
        "stokes_weights_I",
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        guard_divergence(n_det, intervals),
    );

    let weights = store.f64_buf_mut(BufferId::Weights)?;
    let w = weights.device_slice_mut();
    target_parallel_for_collapse3(
        ctx,
        &spec,
        (n_det, intervals.len(), max_len),
        |det, iv_idx, k| {
            let iv = intervals[iv_idx];
            let s = iv.start + k;
            if s >= iv.end {
                return; // guard
            }
            w[det * n_samp * nnz + nnz * s] = 1.0;
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_implementation() {
        let mut ws_cpu = test_workspace(2, 70, 4);
        for (i, w) in ws_cpu.obs.weights.iter_mut().enumerate() {
            *w = (i % 7) as f64 * 0.5;
        }
        let mut ws_omp = ws_cpu.clone();
        let mut ctx = Context::new(NodeCalib::default());
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::omp();
        store
            .ensure_device(&mut ctx, &ws_omp, BufferId::Weights)
            .unwrap();
        if let AccelStore::Omp(s) = &mut store {
            run(&mut ctx, s, &ws_omp).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_omp, BufferId::Weights);
        assert_eq!(ws_cpu.obs.weights, ws_omp.obs.weights);
    }
}
