//! Shared helpers for the three kernel implementation styles.

use accel_sim::{Context, KernelProfile};
use rayon::prelude::*;

use crate::data::Interval;

/// Charge the CPU baseline for a kernel: `items` loop iterations at
/// `flops`/`bytes` per iteration on `threads` host threads. Branch
/// divergence never penalises the MIMD CPU, so no divergence parameter.
pub fn charge_cpu(
    ctx: &mut Context,
    name: &str,
    items: f64,
    flops_per_item: f64,
    bytes_per_item: f64,
    threads: u32,
) {
    let profile = KernelProfile::uniform(name, items, flops_per_item, bytes_per_item);
    let seconds = profile.cpu_seconds(&ctx.calib.cpu, threads);
    ctx.host_compute(name, seconds);
}

/// Run `body(det, sample)` for every in-interval sample of every detector,
/// in parallel over detectors (the "OpenMP threading" of the CPU
/// baseline). `body` must only write detector-`det` data; the split is
/// expressed through the per-detector mutable chunks of `det_data`.
pub fn par_detectors<T: Send>(
    det_data: &mut [T],
    n_det: usize,
    intervals: &[Interval],
    body: impl Fn(usize, &mut [T], usize) + Sync,
) {
    assert_eq!(det_data.len() % n_det.max(1), 0, "uneven detector chunks");
    let chunk = det_data.len() / n_det.max(1);
    det_data
        .par_chunks_mut(chunk.max(1))
        .enumerate()
        .for_each(|(det, data)| {
            for iv in intervals {
                for s in iv.start..iv.end {
                    body(det, data, s);
                }
            }
        });
}

/// Total in-interval samples × detectors: the item count of most kernels.
pub fn science_items(n_det: usize, intervals: &[Interval]) -> f64 {
    let science: usize = intervals.iter().map(Interval::len).sum();
    (n_det * science) as f64
}

/// The padded item count of the collapsed offload loops: detectors ×
/// intervals × the maximum interval length (iterations outside the actual
/// interval fail the guard and retire immediately).
pub fn padded_items(n_det: usize, intervals: &[Interval]) -> f64 {
    let max_len = intervals.iter().map(Interval::len).max().unwrap_or(0);
    (n_det * intervals.len() * max_len) as f64
}

/// Divergence factor of the offload guard: the padded iteration count over
/// the useful one, floored at 1 (the guard's false branch is a no-op, so
/// the cost is waste lanes, not serialised paths — paper § 3.1.2 argues
/// this is nearly free, and indeed the ratio is near 1 for realistic
/// interval distributions).
pub fn guard_divergence(n_det: usize, intervals: &[Interval]) -> f64 {
    let useful = science_items(n_det, intervals);
    if useful == 0.0 {
        return 1.0;
    }
    (padded_items(n_det, intervals) / useful).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::NodeCalib;

    fn ivs() -> Vec<Interval> {
        vec![
            Interval::new(0, 10),
            Interval::new(12, 42),
            Interval::new(50, 55),
        ]
    }

    #[test]
    fn item_counts() {
        assert_eq!(science_items(4, &ivs()), (4 * 45) as f64);
        assert_eq!(padded_items(4, &ivs()), (4 * 3 * 30) as f64);
        let d = guard_divergence(4, &ivs());
        assert!((d - 2.0).abs() < 1e-12, "{d}");
        assert_eq!(guard_divergence(4, &[]), 1.0);
    }

    #[test]
    fn par_detectors_visits_only_interval_samples() {
        let n_det = 3;
        let n_samp = 60;
        let mut data = vec![0.0f64; n_det * n_samp];
        par_detectors(&mut data, n_det, &ivs(), |_det, chunk, s| {
            chunk[s] += 1.0;
        });
        for det in 0..n_det {
            for s in 0..n_samp {
                let in_iv = ivs().iter().any(|iv| s >= iv.start && s < iv.end);
                let expected = if in_iv { 1.0 } else { 0.0 };
                assert_eq!(data[det * n_samp + s], expected, "det {det} s {s}");
            }
        }
    }

    #[test]
    fn charge_cpu_scales_with_items() {
        let mut c1 = Context::new(NodeCalib::default());
        charge_cpu(&mut c1, "k", 1e6, 100.0, 8.0, 16);
        let mut c2 = Context::new(NodeCalib::default());
        charge_cpu(&mut c2, "k", 2e6, 100.0, 8.0, 16);
        let (t1, t2) = (c1.stats()["k"].seconds, c2.stats()["k"].seconds);
        assert!((t2 / t1 - 2.0).abs() < 0.01);
    }
}
