//! `scan_map` — scan a pixelised sky map onto a timestream.
//!
//! For every detector `d` and in-interval sample `s` with a valid pixel:
//!
//! ```text
//! signal[d, s] += Σ_k map[pixels[d, s], k] · weights[d, s, k]
//! ```
//!
//! A gather kernel: the map reads are data-dependent (random access), the
//! arithmetic is a short dot product over the Stokes components.

pub mod cpu;
pub mod jit;
pub mod omp;

use crate::dispatch::KernelId;

/// Flops per sample: nnz multiply-adds (nnz = 3) plus the accumulate.
pub(crate) const FLOPS_PER_ITEM: f64 = 7.0;
/// Bytes per sample: 8 B pixel + 24 B weights + 24 B uncoalesced map
/// gather (charged at 2x) + 16 B signal read-modify-write.
pub(crate) const BYTES_PER_ITEM: f64 = 96.0;

crate::kernels::dispatch_impl!(KernelId::ScanMap, scan_map);
