//! arrayjit port: flat gathers from the map, a short Stokes dot product,
//! masked accumulate into the signal.

use accel_sim::Context;
use arrayjit::{Backend, DType, Jit};

use crate::memory::{JitStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Build the traced program. Statics: `[nnz]`.
pub fn build() -> Jit {
    Jit::new("scan_map", |_tc, params, statics| {
        let (map, pixels, weights, signal, mask) =
            (&params[0], &params[1], &params[2], &params[3], &params[4]);
        let nnz = statics[0];
        let n_samp = mask.shape().dim(0);

        // Clamp invalid (-1) pixels to 0; their contribution is masked out.
        let zero = pixels.mul_s_i(0);
        let safe = pixels.max(&zero);
        let valid = pixels.ge(&zero).convert(DType::F64);

        let mut acc = signal.mul_s(0.0);
        for c in 0..nnz {
            let flat = safe.mul_s_i(nnz).add_s_i(c);
            let m_c = map.gather(&flat);
            let w_c = weights.index_axis(2, c as usize);
            acc = acc + m_c * w_c;
        }
        let gate = &valid * &mask.reshape(vec![1, n_samp]);
        vec![signal + acc * gate]
    })
}

/// Run against resident arrays, replacing `Signal` functionally.
pub fn run(
    ctx: &mut Context,
    backend: Backend,
    store: &mut JitStore,
    jit: &mut Jit,
    ws: &Workspace,
) -> Result<(), ResidencyError> {
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let nnz = ws.geom.nnz;
    let mask = store.sample_mask(ctx, ws);
    let map = store.array(BufferId::SkyMap)?.clone();
    let pixels = store
        .array(BufferId::Pixels)?
        .clone()
        .reshaped(vec![n_det, n_samp]);
    let weights = store
        .array(BufferId::Weights)?
        .clone()
        .reshaped(vec![n_det, n_samp, nnz]);
    let signal = store
        .array(BufferId::Signal)?
        .clone()
        .reshaped(vec![n_det, n_samp]);

    let out = jit
        .call_static(
            ctx,
            backend,
            &[map, pixels, weights, signal, mask],
            &[nnz as i64],
        )
        .remove(0)
        .reshaped(vec![n_det * n_samp]);
    store.replace(BufferId::Signal, out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_implementation() {
        let mut ws_cpu = test_workspace(3, 120, 8);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::super::pointing_detector::cpu::run(&mut ctx, 2, &mut ws_cpu);
        super::super::super::pixels_healpix::cpu::run(&mut ctx, 2, &mut ws_cpu);
        super::super::super::stokes_weights_iqu::cpu::run(&mut ctx, 2, &mut ws_cpu);
        let mut ws_jit = ws_cpu.clone();
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::jit();
        for id in [
            BufferId::SkyMap,
            BufferId::Weights,
            BufferId::Signal,
            BufferId::Pixels,
        ] {
            store.ensure_device(&mut ctx, &ws_jit, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws_jit).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_jit, BufferId::Signal);
        for (a, b) in ws_cpu.obs.signal.iter().zip(&ws_jit.obs.signal) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn gather_stages_are_charged() {
        let ws = test_workspace(1, 50, 8);
        let mut ctx = Context::new(NodeCalib::default());
        let mut store = AccelStore::jit();
        for id in [
            BufferId::SkyMap,
            BufferId::Weights,
            BufferId::Signal,
            BufferId::Pixels,
        ] {
            store.ensure_device(&mut ctx, &ws, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws).unwrap();
        }
        assert!(ctx.stats().keys().any(|k| k.starts_with("scan_map/gather")));
    }
}
