//! CPU baseline: gather-and-accumulate per sample.

use accel_sim::Context;
use rayon::prelude::*;

use crate::kernels::support::{charge_cpu, science_items};
use crate::workspace::Workspace;

/// Scan the sky map into the timestreams on the host.
pub fn run(ctx: &mut Context, threads: u32, ws: &mut Workspace) {
    let n_samp = ws.obs.n_samples;
    let nnz = ws.geom.nnz;
    let map = &ws.sky_map;
    let pixels = &ws.obs.pixels;
    let weights = &ws.obs.weights;
    let intervals = &ws.obs.intervals;

    ws.obs
        .signal
        .par_chunks_mut(n_samp)
        .enumerate()
        .for_each(|(det, sig)| {
            for iv in intervals {
                for s in iv.start..iv.end {
                    let pix = pixels[det * n_samp + s];
                    if pix < 0 {
                        continue;
                    }
                    let wbase = det * n_samp * nnz + nnz * s;
                    let mbase = pix as usize * nnz;
                    let mut acc = 0.0;
                    for k in 0..nnz {
                        acc += map[mbase + k] * weights[wbase + k];
                    }
                    sig[s] += acc;
                }
            }
        });

    charge_cpu(
        ctx,
        "scan_map",
        science_items(ws.obs.n_det, &ws.obs.intervals),
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        threads,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    /// Full pointing + weights, then scan: uniform-map scan adds exactly
    /// the intensity weight (1.0 · map value) within intervals.
    #[test]
    fn uniform_intensity_map_adds_constant() {
        let mut ws = test_workspace(2, 100, 8);
        let mut ctx = Context::new(NodeCalib::default());
        super::super::super::pointing_detector::cpu::run(&mut ctx, 2, &mut ws);
        super::super::super::pixels_healpix::cpu::run(&mut ctx, 2, &mut ws);
        super::super::super::stokes_weights_iqu::cpu::run(&mut ctx, 2, &mut ws);
        // Map: I = 5, Q = U = 0.
        for p in 0..ws.geom.n_pix() {
            ws.sky_map[3 * p] = 5.0;
            ws.sky_map[3 * p + 1] = 0.0;
            ws.sky_map[3 * p + 2] = 0.0;
        }
        let before = ws.obs.signal.clone();
        run(&mut ctx, 2, &mut ws);
        for det in 0..2 {
            for s in 0..100 {
                let idx = det * 100 + s;
                let in_iv = ws
                    .obs
                    .intervals
                    .iter()
                    .any(|iv| s >= iv.start && s < iv.end);
                let expected = if in_iv {
                    before[idx] + 5.0
                } else {
                    before[idx]
                };
                assert!(
                    (ws.obs.signal[idx] - expected).abs() < 1e-12,
                    "det {det} s {s}"
                );
            }
        }
    }
}
