//! arrayjit port: a masked broadcast multiply — one fused kernel.

use accel_sim::Context;
use arrayjit::{Backend, Jit};

use crate::memory::{JitStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Build the traced program.
pub fn build() -> Jit {
    Jit::new("noise_weight", |_tc, params, _statics| {
        let (signal, det_weights, mask) = (&params[0], &params[1], &params[2]);
        let n_det = det_weights.shape().dim(0);
        let n_samp = mask.shape().dim(0);
        let w = det_weights.reshape(vec![n_det, 1]);
        let keep = mask.gt_s(0.5).reshape(vec![1, n_samp]);
        vec![keep.select(&(signal * &w), signal)]
    })
}

/// Run against resident arrays, replacing `Signal` functionally.
pub fn run(
    ctx: &mut Context,
    backend: Backend,
    store: &mut JitStore,
    jit: &mut Jit,
    ws: &Workspace,
) -> Result<(), ResidencyError> {
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let mask = store.sample_mask(ctx, ws);
    let signal = store
        .array(BufferId::Signal)?
        .clone()
        .reshaped(vec![n_det, n_samp]);
    let det_weights = store.array(BufferId::DetWeights)?.clone();

    let out = jit
        .call(ctx, backend, &[signal, det_weights, mask])
        .remove(0)
        .reshaped(vec![n_det * n_samp]);
    store.replace(BufferId::Signal, out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_bit_exactly() {
        let mut ws_cpu = test_workspace(3, 90, 4);
        let mut ws_jit = ws_cpu.clone();
        let mut ctx = Context::new(NodeCalib::default());
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::jit();
        for id in [BufferId::DetWeights, BufferId::Signal] {
            store.ensure_device(&mut ctx, &ws_jit, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws_jit).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_jit, BufferId::Signal);
        assert_eq!(ws_cpu.obs.signal, ws_jit.obs.signal);
    }

    #[test]
    fn compiles_to_a_single_fused_stage() {
        let ws = test_workspace(1, 40, 4);
        let mut ctx = Context::new(NodeCalib::default());
        let mut store = AccelStore::jit();
        for id in [BufferId::DetWeights, BufferId::Signal] {
            store.ensure_device(&mut ctx, &ws, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws).unwrap();
        }
        // Exactly one device kernel: everything fused.
        assert_eq!(ctx.trace().kernel_count(), 1);
    }
}
