//! CPU baseline: a streaming scale.

use accel_sim::Context;
use rayon::prelude::*;

use crate::kernels::support::{charge_cpu, science_items};
use crate::workspace::Workspace;

/// Apply noise weights on the host.
// Index loops mirror the ported C kernels' interval addressing.
#[allow(clippy::needless_range_loop)]
pub fn run(ctx: &mut Context, threads: u32, ws: &mut Workspace) {
    let n_samp = ws.obs.n_samples;
    let det_weights = &ws.obs.det_weights;
    let intervals = &ws.obs.intervals;

    ws.obs
        .signal
        .par_chunks_mut(n_samp)
        .enumerate()
        .for_each(|(det, sig)| {
            let w = det_weights[det];
            for iv in intervals {
                for s in iv.start..iv.end {
                    sig[s] *= w;
                }
            }
        });

    charge_cpu(
        ctx,
        "noise_weight",
        science_items(ws.obs.n_det, &ws.obs.intervals),
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        threads,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn scales_only_interval_samples() {
        let mut ws = test_workspace(2, 80, 4);
        let before = ws.obs.signal.clone();
        let mut ctx = Context::new(NodeCalib::default());
        run(&mut ctx, 2, &mut ws);
        for det in 0..2 {
            let w = ws.obs.det_weights[det];
            for s in 0..80 {
                let idx = det * 80 + s;
                let in_iv = ws
                    .obs
                    .intervals
                    .iter()
                    .any(|iv| s >= iv.start && s < iv.end);
                let expected = if in_iv { before[idx] * w } else { before[idx] };
                assert_eq!(ws.obs.signal[idx], expected, "det {det} s {s}");
            }
        }
    }
}
