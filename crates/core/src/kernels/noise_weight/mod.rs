//! `noise_weight` — scale timestreams with detector noise weights.
//!
//! For every detector `d` and in-interval sample `s`:
//!
//! ```text
//! signal[d, s] *= det_weights[d]
//! ```
//!
//! Purely memory-bound: one multiply per 16 bytes of read-modify-write
//! traffic.

pub mod cpu;
pub mod jit;
pub mod omp;

use crate::dispatch::KernelId;

/// Flops per sample.
pub(crate) const FLOPS_PER_ITEM: f64 = 1.0;
/// Bytes per sample: signal read + write.
pub(crate) const BYTES_PER_ITEM: f64 = 16.0;

crate::kernels::dispatch_impl!(KernelId::NoiseWeight, noise_weight);
