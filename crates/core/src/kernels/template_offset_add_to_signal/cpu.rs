//! CPU baseline: stride through steps, streaming adds.

use accel_sim::Context;
use rayon::prelude::*;

use crate::kernels::support::{charge_cpu, science_items};
use crate::workspace::Workspace;

/// Add template offsets into the timestreams on the host.
pub fn run(ctx: &mut Context, threads: u32, ws: &mut Workspace) {
    let n_samp = ws.obs.n_samples;
    let step = ws.step_length;
    let n_amp = ws.n_amp;
    let amplitudes = &ws.amplitudes;
    let intervals = &ws.obs.intervals;

    ws.obs
        .signal
        .par_chunks_mut(n_samp)
        .enumerate()
        .for_each(|(det, sig)| {
            let amps = &amplitudes[det * n_amp..(det + 1) * n_amp];
            for iv in intervals {
                for s in iv.start..iv.end {
                    sig[s] += amps[s / step];
                }
            }
        });

    charge_cpu(
        ctx,
        "template_offset_add_to_signal",
        science_items(ws.obs.n_det, &ws.obs.intervals),
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        threads,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn adds_the_right_step_amplitude() {
        let mut ws = test_workspace(2, 100, 4);
        let before = ws.obs.signal.clone();
        let mut ctx = Context::new(NodeCalib::default());
        run(&mut ctx, 2, &mut ws);
        for det in 0..2 {
            for s in 0..100 {
                let idx = det * 100 + s;
                let in_iv = ws
                    .obs
                    .intervals
                    .iter()
                    .any(|iv| s >= iv.start && s < iv.end);
                let amp = ws.amplitudes[det * ws.n_amp + s / ws.step_length];
                let expected = if in_iv {
                    before[idx] + amp
                } else {
                    before[idx]
                };
                assert_eq!(ws.obs.signal[idx], expected, "det {det} s {s}");
            }
        }
    }
}
