//! arrayjit port: gather the step amplitude for every sample, masked add.

use accel_sim::Context;
use arrayjit::{Backend, Jit};

use crate::memory::{JitStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Build the traced program. Statics: `[step_length, n_amp]`.
pub fn build() -> Jit {
    Jit::new("template_offset_add_to_signal", |tc, params, statics| {
        let (signal, amplitudes, mask) = (&params[0], &params[1], &params[2]);
        let step = statics[0];
        let n_amp = statics[1];
        let n_det = signal.shape().dim(0);
        let n_samp = signal.shape().dim(1);

        // Flat amplitude index per (det, sample): det * n_amp + s / step.
        let step_idx = tc.iota(n_samp).div_s_i(step).reshape(vec![1, n_samp]);
        let det_idx = tc.iota(n_det).mul_s_i(n_amp).reshape(vec![n_det, 1]);
        let flat = det_idx + step_idx; // [n_det, n_samp]
        let amp = amplitudes.gather(&flat);
        let gate = mask.reshape(vec![1, n_samp]);
        vec![signal + amp * gate]
    })
}

/// Run against resident arrays, replacing `Signal` functionally.
pub fn run(
    ctx: &mut Context,
    backend: Backend,
    store: &mut JitStore,
    jit: &mut Jit,
    ws: &Workspace,
) -> Result<(), ResidencyError> {
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let mask = store.sample_mask(ctx, ws);
    let signal = store
        .array(BufferId::Signal)?
        .clone()
        .reshaped(vec![n_det, n_samp]);
    let amplitudes = store.array(BufferId::Amplitudes)?.clone();

    let out = jit
        .call_static(
            ctx,
            backend,
            &[signal, amplitudes, mask],
            &[ws.step_length as i64, ws.n_amp as i64],
        )
        .remove(0)
        .reshaped(vec![n_det * n_samp]);
    store.replace(BufferId::Signal, out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_bit_exactly() {
        let mut ws_cpu = test_workspace(3, 110, 4);
        let mut ws_jit = ws_cpu.clone();
        let mut ctx = Context::new(NodeCalib::default());
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::jit();
        for id in [BufferId::Amplitudes, BufferId::Signal] {
            store.ensure_device(&mut ctx, &ws_jit, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws_jit).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_jit, BufferId::Signal);
        for (a, b) in ws_cpu.obs.signal.iter().zip(&ws_jit.obs.signal) {
            assert!((a - b).abs() < 1e-13, "{a} vs {b}");
        }
    }
}
