//! `template_offset_add_to_signal` — scan a step-wise noise offset
//! solution onto a timestream.
//!
//! Each detector's timestream is divided into steps of `step_length`
//! samples; amplitude `j` of detector `d` is added to every in-interval
//! sample of step `j`:
//!
//! ```text
//! signal[d, s] += amplitudes[d, s / step_length]
//! ```
//!
//! Almost no arithmetic — "a kernel doing very little computation" — which
//! is why it shows the paper's *smallest* GPU speedups (1.5× JIT, 5×
//! offload).

pub mod cpu;
pub mod jit;
pub mod omp;

use crate::dispatch::KernelId;

/// Flops per sample (index arithmetic + one add).
pub(crate) const FLOPS_PER_ITEM: f64 = 2.0;
/// Bytes per sample: signal read-modify-write + amortised amplitude read.
pub(crate) const BYTES_PER_ITEM: f64 = 24.0;

crate::kernels::dispatch_impl!(
    KernelId::TemplateOffsetAddToSignal,
    template_offset_add_to_signal
);
