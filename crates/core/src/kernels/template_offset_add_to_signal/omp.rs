//! Offload port: the collapsed loop with an integer divide per sample.

use accel_sim::Context;
use offload::{target_parallel_for_collapse3, KernelSpec};

use crate::kernels::support::guard_divergence;
use crate::memory::{OmpStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Launch the device kernel over resident buffers.
pub fn run(ctx: &mut Context, store: &mut OmpStore, ws: &Workspace) -> Result<(), ResidencyError> {
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let step = ws.step_length;
    let n_amp = ws.n_amp;
    let intervals = &ws.obs.intervals;
    let max_len = ws.obs.max_interval_len();

    let spec = KernelSpec::divergent(
        "template_offset_add_to_signal",
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        guard_divergence(n_det, intervals),
    );

    let amplitudes = store.take(BufferId::Amplitudes)?;
    let mut signal = store.take(BufferId::Signal)?;
    {
        let amps = amplitudes.device_slice();
        let sig = signal.device_slice_mut();
        target_parallel_for_collapse3(
            ctx,
            &spec,
            (n_det, intervals.len(), max_len),
            |det, iv_idx, k| {
                let iv = intervals[iv_idx];
                let s = iv.start + k;
                if s >= iv.end {
                    return; // guard
                }
                sig[det * n_samp + s] += amps[det * n_amp + s / step];
            },
        );
    }
    store.put_back(BufferId::Amplitudes, amplitudes);
    store.put_back(BufferId::Signal, signal);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_implementation() {
        let mut ws_cpu = test_workspace(3, 110, 4);
        let mut ws_omp = ws_cpu.clone();
        let mut ctx = Context::new(NodeCalib::default());
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::omp();
        for id in [BufferId::Amplitudes, BufferId::Signal] {
            store.ensure_device(&mut ctx, &ws_omp, id).unwrap();
        }
        if let AccelStore::Omp(s) = &mut store {
            run(&mut ctx, s, &ws_omp).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_omp, BufferId::Signal);
        assert_eq!(ws_cpu.obs.signal, ws_omp.obs.signal);
    }
}
