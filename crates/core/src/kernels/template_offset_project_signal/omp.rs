//! Offload port: "a straight loop" — one device thread per (detector,
//! amplitude), serially reducing its step. Exposes only `n_det × n_amp`
//! parallel items with strided reads, which is why the paper's offload
//! version *loses* to the JIT library path on this kernel.

use accel_sim::Context;
use offload::{target_parallel_for, KernelSpec};

use crate::memory::{OmpStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Launch the device kernel over resident buffers.
pub fn run(ctx: &mut Context, store: &mut OmpStore, ws: &Workspace) -> Result<(), ResidencyError> {
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let step = ws.step_length;
    let n_amp = ws.n_amp;
    let intervals = ws.obs.intervals.clone();

    // Per-item work is a whole step: flops/bytes scale with step_length.
    // The strided, serialised per-thread reduction wastes memory bandwidth
    // (partial cache lines, no coalescing), so the penalty is folded into
    // the byte traffic where this memory-bound kernel actually binds.
    let spec = KernelSpec::uniform(
        "template_offset_project_signal",
        super::FLOPS_PER_ITEM * step as f64,
        super::BYTES_PER_ITEM * step as f64 * super::OMP_SERIAL_REDUCTION_PENALTY,
    );

    let signal = store.take(BufferId::Signal)?;
    let mut amp_out = store.take(BufferId::AmpOut)?;
    {
        let sig = signal.device_slice();
        let out = amp_out.device_slice_mut();
        target_parallel_for(ctx, &spec, n_det * n_amp, |item| {
            let det = item / n_amp;
            let j = item % n_amp;
            let lo = j * step;
            let hi = ((j + 1) * step).min(n_samp);
            let mut acc = 0.0;
            for iv in &intervals {
                let a = iv.start.max(lo);
                let b = iv.end.min(hi);
                for s in a..b {
                    acc += sig[det * n_samp + s];
                }
            }
            out[item] += acc;
        });
    }
    store.put_back(BufferId::Signal, signal);
    store.put_back(BufferId::AmpOut, amp_out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_implementation() {
        let mut ws_cpu = test_workspace(3, 130, 4);
        let mut ws_omp = ws_cpu.clone();
        let mut ctx = Context::new(NodeCalib::default());
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::omp();
        for id in [BufferId::Signal, BufferId::AmpOut] {
            store.ensure_device(&mut ctx, &ws_omp, id).unwrap();
        }
        if let AccelStore::Omp(s) = &mut store {
            run(&mut ctx, s, &ws_omp).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_omp, BufferId::AmpOut);
        assert_eq!(ws_cpu.amp_out, ws_omp.amp_out);
    }
}
