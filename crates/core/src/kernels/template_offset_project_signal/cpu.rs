//! CPU baseline: per-amplitude serial reduction (cache-friendly on a CPU).

use accel_sim::Context;
use rayon::prelude::*;

use crate::kernels::support::{charge_cpu, science_items};
use crate::workspace::Workspace;

/// Project the timestreams onto the offset amplitudes on the host.
// Index loops mirror the ported C kernels' interval addressing.
#[allow(clippy::needless_range_loop)]
pub fn run(ctx: &mut Context, threads: u32, ws: &mut Workspace) {
    let n_samp = ws.obs.n_samples;
    let step = ws.step_length;
    let n_amp = ws.n_amp;
    let signal = &ws.obs.signal;
    let intervals = &ws.obs.intervals;

    ws.amp_out
        .par_chunks_mut(n_amp)
        .enumerate()
        .for_each(|(det, out)| {
            let sig = &signal[det * n_samp..(det + 1) * n_samp];
            for (j, slot) in out.iter_mut().enumerate() {
                let lo = j * step;
                let hi = ((j + 1) * step).min(n_samp);
                let mut acc = 0.0;
                for iv in intervals {
                    let a = iv.start.max(lo);
                    let b = iv.end.min(hi);
                    for s in a..b {
                        acc += sig[s];
                    }
                }
                *slot += acc;
            }
        });

    charge_cpu(
        ctx,
        "template_offset_project_signal",
        science_items(ws.obs.n_det, &ws.obs.intervals),
        super::FLOPS_PER_ITEM,
        super::BYTES_PER_ITEM,
        threads,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn projection_is_the_transpose_of_add() {
        // <P a, s> == <a, P^T s>: project then dot against amplitudes must
        // equal add-to-signal of the amplitudes dotted against the signal.
        let ws0 = test_workspace(2, 100, 4);
        let mut ctx = Context::new(NodeCalib::default());

        // y = P a (add amplitudes into a zero signal)
        let mut ws_a = ws0.clone();
        ws_a.obs.signal.fill(0.0);
        super::super::super::template_offset_add_to_signal::cpu::run(&mut ctx, 2, &mut ws_a);
        let lhs: f64 = ws_a
            .obs
            .signal
            .iter()
            .zip(&ws0.obs.signal)
            .map(|(y, s)| y * s)
            .sum();

        // b = P^T s (project the original signal)
        let mut ws_b = ws0.clone();
        ws_b.amp_out.fill(0.0);
        run(&mut ctx, 2, &mut ws_b);
        let rhs: f64 = ws_b
            .amp_out
            .iter()
            .zip(&ws0.amplitudes)
            .map(|(b, a)| b * a)
            .sum();

        assert!(
            (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }
}
