//! arrayjit port: pad the masked signal to `n_amp × step_length`, reshape,
//! and reduce over the innermost axis — exactly the `reduce_sum(mul(...))`
//! shape the compiler's `LibraryDot` pattern recognises and routes to the
//! "vendor library" (the paper's explanation for JAX's 45× on this
//! kernel).

use accel_sim::Context;
use arrayjit::{Backend, DType, Jit, StageKind};

use crate::memory::{JitStore, ResidencyError};
use crate::workspace::{BufferId, Workspace};

/// Build the traced program. Statics: `[step_length, n_amp, n_samp]`.
pub fn build() -> Jit {
    Jit::new("template_offset_project_signal", |tc, params, statics| {
        let (signal, amp_out, mask) = (&params[0], &params[1], &params[2]);
        let step = statics[0] as usize;
        let n_amp = statics[1] as usize;
        let n_samp = statics[2] as usize;
        let n_det = signal.shape().dim(0);
        let padded = n_amp * step;

        let (sig_pad, gate) = if padded == n_samp {
            // Exact fit: a pure reshape, no data movement — the common
            // case, and the one where the compiled program is *only* the
            // library dot.
            (
                signal.reshape(vec![n_det, n_amp, step]),
                mask.reshape(vec![1, n_amp, step]),
            )
        } else {
            // Pad the per-sample gate (interval mask × in-bounds mask) and
            // the signal to the static padded length via a clamped gather.
            let pos = tc.iota(padded);
            let in_bounds = pos.lt(&tc.constant_i64(n_samp as i64)).convert(DType::F64);
            let clamped = pos.min(&tc.constant_i64(n_samp as i64 - 1));
            let gate = (&mask.gather(&clamped) * &in_bounds).reshape(vec![1, n_amp, step]);
            let det_base = tc
                .iota(n_det)
                .mul_s_i(n_samp as i64)
                .reshape(vec![n_det, 1]);
            let gidx = det_base + clamped.reshape(vec![1, padded]);
            let sig_pad = signal
                .reshape(vec![n_det * n_samp])
                .gather(&gidx)
                .reshape(vec![n_det, n_amp, step]);
            (sig_pad, gate)
        };

        // The dot: reduce(mul) over the innermost axis -> LibraryDot.
        let projected = (sig_pad * gate).reduce_sum(2); // [n_det, n_amp]
        vec![amp_out + projected]
    })
}

/// Run against resident arrays, replacing `AmpOut` functionally.
pub fn run(
    ctx: &mut Context,
    backend: Backend,
    store: &mut JitStore,
    jit: &mut Jit,
    ws: &Workspace,
) -> Result<(), ResidencyError> {
    let n_det = ws.obs.n_det;
    let n_samp = ws.obs.n_samples;
    let mask = store.sample_mask(ctx, ws);
    let signal = store
        .array(BufferId::Signal)?
        .clone()
        .reshaped(vec![n_det, n_samp]);
    let amp_out = store
        .array(BufferId::AmpOut)?
        .clone()
        .reshaped(vec![n_det, ws.n_amp]);

    let out = jit
        .call_static(
            ctx,
            backend,
            &[signal, amp_out, mask],
            &[ws.step_length as i64, ws.n_amp as i64, n_samp as i64],
        )
        .remove(0)
        .reshaped(vec![n_det * ws.n_amp]);
    store.replace(BufferId::AmpOut, out)?;
    Ok(())
}

/// Whether the compiled program hit the library-dot path (exposed for the
/// ablation bench).
pub fn used_library_path(jit: &Jit, args: &[arrayjit::Array], statics: &[i64]) -> bool {
    jit.program_for(args, statics)
        .map(|p| p.stages.iter().any(|s| s.kind == StageKind::LibraryDot))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccelStore;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    #[test]
    fn matches_cpu_within_reduction_tolerance() {
        let mut ws_cpu = test_workspace(3, 130, 4);
        let mut ws_jit = ws_cpu.clone();
        let mut ctx = Context::new(NodeCalib::default());
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::jit();
        for id in [BufferId::Signal, BufferId::AmpOut] {
            store.ensure_device(&mut ctx, &ws_jit, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws_jit).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_jit, BufferId::AmpOut);
        for (a, b) in ws_cpu.amp_out.iter().zip(&ws_jit.amp_out) {
            assert!((a - b).abs() < 1e-10 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn padded_path_matches_cpu_when_step_does_not_divide() {
        let mut ws_cpu = test_workspace(2, 130, 4);
        ws_cpu.step_length = 17; // 130 % 17 != 0 -> gather/pad path
        ws_cpu.n_amp = 130usize.div_ceil(17);
        let n = ws_cpu.obs.n_det * ws_cpu.n_amp;
        ws_cpu.amplitudes = vec![0.25; n];
        ws_cpu.amp_out = vec![0.0; n];
        ws_cpu.precond = vec![1.0; n];
        let mut ws_jit = ws_cpu.clone();
        let mut ctx = Context::new(NodeCalib::default());
        super::super::cpu::run(&mut ctx, 2, &mut ws_cpu);

        let mut store = AccelStore::jit();
        for id in [BufferId::Signal, BufferId::AmpOut] {
            store.ensure_device(&mut ctx, &ws_jit, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws_jit).unwrap();
        }
        store.update_host(&mut ctx, &mut ws_jit, BufferId::AmpOut);
        for (a, b) in ws_cpu.amp_out.iter().zip(&ws_jit.amp_out) {
            assert!((a - b).abs() < 1e-10 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn compiler_hits_the_library_dot_path() {
        let ws = test_workspace(2, 100, 4);
        let mut ctx = Context::new(NodeCalib::default());
        let mut store = AccelStore::jit();
        for id in [BufferId::Signal, BufferId::AmpOut] {
            store.ensure_device(&mut ctx, &ws, id).unwrap();
        }
        let mut jit = build();
        if let AccelStore::Jit(s) = &mut store {
            run(&mut ctx, Backend::Device, s, &mut jit, &ws).unwrap();
        }
        assert!(
            ctx.stats().keys().any(|k| k.contains("librarydot")),
            "stats: {:?}",
            ctx.stats().keys().collect::<Vec<_>>()
        );
    }
}
