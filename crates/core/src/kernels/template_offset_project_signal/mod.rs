//! `template_offset_project_signal` — dot product between noise offset
//! steps and a timestream.
//!
//! The transpose of `template_offset_add_to_signal`:
//!
//! ```text
//! amp_out[d, j] += Σ_{s in step j, s in intervals} signal[d, s]
//! ```
//!
//! The paper's most interesting divergence between the two ports: the XLA
//! compiler recognises the padded per-step reduction as a batched dot
//! product and hits a library path (45× speedup), while the offload
//! version's straight loop — one thread per amplitude serially reducing
//! its step — exposes less parallelism and strided reads (19×). The
//! arrayjit compiler's `LibraryDot` pattern and the offload port's
//! serial-reduction penalty reproduce both behaviours.

pub mod cpu;
pub mod jit;
pub mod omp;

use crate::dispatch::KernelId;

/// Flops per *sample* (one add).
pub(crate) const FLOPS_PER_ITEM: f64 = 2.0;
/// Bytes per sample: signal read + amortised amplitude write.
pub(crate) const BYTES_PER_ITEM: f64 = 16.0;
/// Offload inefficiency: each thread serially reduces `step_length`
/// samples with strided partial sums, under-filling the device relative to
/// the library GEMV (paper § 4.2).
pub(crate) const OMP_SERIAL_REDUCTION_PENALTY: f64 = 2.4;

crate::kernels::dispatch_impl!(
    KernelId::TemplateOffsetProjectSignal,
    template_offset_project_signal
);
