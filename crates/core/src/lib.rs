//! TOAST-like time-ordered-data framework: the system under study.
//!
//! This crate reimplements, in Rust, the slice of TOAST (Time Ordered
//! Astrophysics Scalable Tools) that the paper ports and measures:
//!
//! * the data model ([`data`], [`workspace`]): focal planes, observations,
//!   variable-length science intervals, pixelised sky maps;
//! * quaternion pointing math ([`quat`]);
//! * the ten kernels ([`kernels`]), each in three implementations — the
//!   rayon-parallel CPU baseline, the OpenMP-Target-style offload port and
//!   the JAX-style traced/JIT port;
//! * the framework-agnostic abstraction layers of the paper's § 3.2:
//!   runtime kernel dispatch ([`dispatch`]), accelerator memory
//!   ([`memory`]), hybrid pipelines with residency-tracked data movement
//!   ([`pipeline`]), and per-function timing with CSV export/merge
//!   ([`timing`]).
//!
//! Execution is real (all kernels compute actual numbers, cross-checked
//! between implementations) while device timing is charged to the
//! [`accel_sim`] cost model — see the workspace DESIGN.md.

#![forbid(unsafe_code)]

pub mod data;
pub mod dispatch;
pub mod kernels;
pub mod memory;
pub mod pipeline;
pub mod quat;
pub mod testutil;
pub mod timing;
pub mod workspace;

pub use data::{Detector, FocalPlane, Interval, Observation, SkyGeometry};
pub use dispatch::{ImplKind, ImplSelection, KernelId};
pub use kernels::{run_kernel, ExecCtx, JitKernels};
pub use memory::{AccelStore, ResidencyError};
pub use pipeline::{benchmark_pipeline, MovementPolicy, OpKind, Pipeline, PipelineError};
pub use timing::Timers;
pub use workspace::{BufferId, Workspace};
