//! Hybrid CPU/GPU pipelines with residency-tracked data movement
//! (paper § 3.2.2).
//!
//! A [`Pipeline`] is a sequence of operators: ported kernels plus
//! [`OpKind::HostWork`] stand-ins for the serial Python layer and the
//! "more than 30 kernels \[that\] have yet to be ported to GPU" which bound
//! the paper's overall speedup through Amdahl's law.
//!
//! Under [`MovementPolicy::Tracked`] the executor consults each operator's
//! declared inputs/outputs, uploads lazily, leaves products resident
//! between GPU kernels, copies requested outputs back once at the end and
//! deletes device data — the design the paper credits with a ~40% speedup
//! over [`MovementPolicy::Naive`], which transfers every kernel's data in
//! and out around each call (what both frameworks would do unaided).

use accel_sim::Context;

use crate::dispatch::KernelId;
use crate::kernels::{kernel_inputs, kernel_outputs, run_kernel, ExecCtx};
use crate::workspace::{BufferId, Workspace};

/// A pipeline step failed, with enough context to name the culprit.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Device memory ran out while staging `buffer` for `kernel` (the
    /// paper's JAX OOM runs surface here).
    Memory {
        kernel: String,
        buffer: BufferId,
        /// The movement policy in force — Naive keeps less resident, so
        /// the same problem can OOM under one policy and fit under the
        /// other; the error names which one failed.
        policy: MovementPolicy,
        source: accel_sim::MemoryError,
    },
    /// `kernel` was dispatched but `buffer` was not resident on the
    /// device — a movement-policy bug, reported instead of panicking.
    NotResident { kernel: String, buffer: BufferId },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Memory {
                kernel,
                buffer,
                policy,
                source,
            } => write!(
                f,
                "staging {buffer:?} for {kernel} ({policy} movement): {source}"
            ),
            PipelineError::NotResident { kernel, buffer } => {
                write!(
                    f,
                    "{kernel}: {buffer:?} not resident on device (pipeline bug)"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// One pipeline step.
#[derive(Debug, Clone)]
pub enum OpKind {
    /// A ported kernel, dispatched through the runtime selection.
    Kernel(KernelId),
    /// Unported/serial host work of `seconds(threads)` duration — the
    /// Amdahl term. The duration is per-rank simulated time.
    HostWork { name: String, seconds: f64 },
    /// Device-side zeroing of a buffer (`accel_data_reset` in Fig. 6).
    ResetDevice(BufferId),
}

/// How the pipeline moves data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MovementPolicy {
    /// Residency tracking across kernels (the paper's design).
    #[default]
    Tracked,
    /// Per-kernel in/out transfers (the ablation baseline).
    Naive,
}

impl std::fmt::Display for MovementPolicy {
    /// Stable lowercase name; the vocabulary of trace phase labels
    /// (`pipeline[tracked]`) and error messages.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MovementPolicy::Tracked => "tracked",
            MovementPolicy::Naive => "naive",
        })
    }
}

impl std::str::FromStr for MovementPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tracked" => Ok(MovementPolicy::Tracked),
            "naive" => Ok(MovementPolicy::Naive),
            other => Err(format!(
                "unknown movement policy '{other}' (expected tracked or naive)"
            )),
        }
    }
}

/// A sequence of operators over one workspace.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    ops: Vec<OpKind>,
    /// Buffers whose final values the caller needs on the host.
    outputs: Vec<BufferId>,
    policy: MovementPolicy,
}

impl Pipeline {
    /// Empty pipeline with tracked movement.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the data-movement policy.
    pub fn with_policy(mut self, policy: MovementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Append a kernel step.
    pub fn kernel(mut self, kernel: KernelId) -> Self {
        self.ops.push(OpKind::Kernel(kernel));
        self
    }

    /// Append host-side (unported/serial) work.
    pub fn host_work(mut self, name: impl Into<String>, seconds: f64) -> Self {
        self.ops.push(OpKind::HostWork {
            name: name.into(),
            seconds,
        });
        self
    }

    /// Append a device-side buffer reset.
    pub fn reset(mut self, id: BufferId) -> Self {
        self.ops.push(OpKind::ResetDevice(id));
        self
    }

    /// Declare a buffer the caller needs back on the host at the end.
    pub fn output(mut self, id: BufferId) -> Self {
        self.outputs.push(id);
        self
    }

    /// The operator sequence (read-only).
    pub fn ops(&self) -> &[OpKind] {
        &self.ops
    }

    /// Execute against `ws`, charging `ctx`. Device-memory exhaustion and
    /// residency bugs surface as a [`PipelineError`] naming the kernel and
    /// buffer involved (the paper's JAX OOM runs).
    pub fn run(
        &self,
        ctx: &mut Context,
        exec: &mut ExecCtx,
        ws: &mut Workspace,
    ) -> Result<(), PipelineError> {
        // Scope every charge under a movement-policy phase; truncate on the
        // way out so `?`-propagation cannot leave dangling scopes.
        let depth = ctx.phase_depth();
        ctx.push_phase(format!("pipeline[{}]", self.policy));
        let result = self.run_ops(ctx, exec, ws);
        ctx.truncate_phases(depth);
        result
    }

    fn run_ops(
        &self,
        ctx: &mut Context,
        exec: &mut ExecCtx,
        ws: &mut Workspace,
    ) -> Result<(), PipelineError> {
        for op in &self.ops {
            match op {
                OpKind::HostWork { name, seconds } => ctx.host_compute(name.clone(), *seconds),
                OpKind::ResetDevice(id) => {
                    // Only meaningful when the buffer is resident; zero the
                    // host copy too so host/device views stay coherent.
                    ws.f64_slice_mut(*id).fill(0.0);
                    if exec.store.resident(*id) {
                        self.reset_resident(ctx, exec, ws, *id).map_err(|e| {
                            PipelineError::NotResident {
                                kernel: format!("reset[{id:?}]"),
                                buffer: e.buffer,
                            }
                        })?;
                    }
                }
                OpKind::Kernel(kernel) => {
                    let kernel_depth = ctx.phase_depth();
                    ctx.push_phase(format!("kernel[{kernel:?}]"));
                    let step = self.run_kernel_op(ctx, exec, ws, *kernel);
                    ctx.truncate_phases(kernel_depth);
                    step?;
                }
            }
        }

        // Pipeline epilogue: copy requested outputs home, drop the rest.
        for &id in &self.outputs {
            if exec.store.resident(id) {
                exec.store.update_host(ctx, ws, id);
            }
        }
        exec.store.clear(ctx);
        Ok(())
    }

    fn run_kernel_op(
        &self,
        ctx: &mut Context,
        exec: &mut ExecCtx,
        ws: &mut Workspace,
        kernel: KernelId,
    ) -> Result<(), PipelineError> {
        let kind = exec.selection.resolve(kernel);
        let moves = kind.uses_device() || matches!(kind, crate::dispatch::ImplKind::JitCpu);
        if moves {
            for &id in kernel_inputs(kernel).iter().chain(kernel_outputs(kernel)) {
                exec.store
                    .ensure_device(ctx, ws, id)
                    .map_err(|source| PipelineError::Memory {
                        kernel: format!("{kernel:?}"),
                        buffer: id,
                        policy: self.policy,
                        source,
                    })?;
            }
        } else {
            // A host kernel in a hybrid pipeline: refresh its
            // inputs from the device, and invalidate device
            // copies of what it writes (§ 3.2.2: "we ensure
            // that the required data is in the correct
            // location").
            for &id in kernel_inputs(kernel) {
                if exec.store.resident(id) {
                    exec.store.update_host(ctx, ws, id);
                }
            }
            for &id in kernel_outputs(kernel) {
                if exec.store.resident(id) {
                    exec.store.update_host(ctx, ws, id);
                    exec.store.delete(ctx, id);
                }
            }
        }
        run_kernel(ctx, exec, ws, kernel).map_err(|e| PipelineError::NotResident {
            kernel: format!("{kernel:?}"),
            buffer: e.buffer,
        })?;
        if moves && self.policy == MovementPolicy::Naive {
            // Naive mode: bounce everything this kernel touched.
            for &id in kernel_outputs(kernel) {
                exec.store.update_host(ctx, ws, id);
            }
            for &id in kernel_inputs(kernel) {
                exec.store.delete(ctx, id);
            }
            for &id in kernel_outputs(kernel) {
                exec.store.delete(ctx, id);
            }
        }
        Ok(())
    }

    fn reset_resident(
        &self,
        ctx: &mut Context,
        exec: &mut ExecCtx,
        ws: &Workspace,
        id: BufferId,
    ) -> Result<(), crate::memory::ResidencyError> {
        use crate::memory::AccelStore;
        match &mut exec.store {
            AccelStore::Omp(s) => {
                let mut buf = s.take(id)?;
                offload::map::reset_device(ctx, &mut buf);
                s.put_back(id, buf);
            }
            AccelStore::Jit(s) => {
                // Functional zeroing: replace with a zero array; charged as
                // a reset (cheaper than a PCIe transfer — Fig. 6 shows JAX
                // spending little in accel_data_reset).
                let n = ws.f64_slice(id).len();
                if !s.host_mode {
                    let ratio = ctx.calib.gpu.pcie_bw / ctx.calib.gpu.hbm_bw;
                    ctx.transfer_labeled(
                        (n * 8) as f64 * ratio * 0.5,
                        accel_sim::TransferDir::HostToDevice,
                        "accel_data_reset",
                    );
                }
                s.replace(id, arrayjit::Array::zeros(vec![n]))?;
            }
            AccelStore::None => {}
        }
        Ok(())
    }
}

/// The paper's benchmark pipeline: pointing expansion → pixelisation →
/// Stokes weights → sky scan → noise weighting → map accumulation →
/// template offset operations, with the unported host fraction attached.
///
/// `host_seconds` is the per-rank serial/unported work charged alongside
/// the kernels (the Amdahl term of § 4).
pub fn benchmark_pipeline(host_seconds: f64) -> Pipeline {
    benchmark_pipeline_passes(host_seconds, 1)
}

/// [`benchmark_pipeline`] with the kernel block iterated `passes` times
/// over resident data — the map-making solver's repeated passes, which is
/// what amortises the once-per-observation transfers in the paper's
/// Fig. 6 ("most of the data operations barely register").
pub fn benchmark_pipeline_passes(host_seconds: f64, passes: usize) -> Pipeline {
    let passes = passes.max(1);
    let per_pass = host_seconds / passes as f64;
    let mut pipe = Pipeline::new().host_work("load_and_setup", host_seconds * 0.4);
    for _ in 0..passes {
        pipe = pipe
            .kernel(KernelId::PointingDetector)
            .kernel(KernelId::PixelsHealpix)
            .kernel(KernelId::StokesWeightsIqu)
            .kernel(KernelId::ScanMap)
            .host_work("unported_operators", per_pass * 0.45)
            .kernel(KernelId::TemplateOffsetAddToSignal)
            .kernel(KernelId::NoiseWeight)
            .reset(crate::workspace::BufferId::ZMap)
            .kernel(KernelId::BuildNoiseWeighted)
            .kernel(KernelId::TemplateOffsetProjectSignal);
    }
    pipe.host_work("reductions_and_output", host_seconds * 0.15)
        .output(BufferId::Signal)
        .output(BufferId::ZMap)
        .output(BufferId::AmpOut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::ImplKind;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    fn run_with(kind: ImplKind, policy: MovementPolicy) -> (Workspace, Context) {
        let mut ws = test_workspace(3, 120, 8);
        let mut ctx = Context::new(NodeCalib::default());
        let mut exec = ExecCtx::new(kind, 4);
        let pipe = benchmark_pipeline(0.1).with_policy(policy);
        pipe.run(&mut ctx, &mut exec, &mut ws).unwrap();
        (ws, ctx)
    }

    #[test]
    fn all_implementations_agree() {
        let (cpu, _) = run_with(ImplKind::Cpu, MovementPolicy::Tracked);
        let (omp, _) = run_with(ImplKind::OmpTarget, MovementPolicy::Tracked);
        let (jit, _) = run_with(ImplKind::Jit, MovementPolicy::Tracked);
        let (jit_cpu, _) = run_with(ImplKind::JitCpu, MovementPolicy::Tracked);

        assert_eq!(cpu.obs.signal.len(), omp.obs.signal.len());
        for (i, (a, b)) in cpu.obs.signal.iter().zip(&omp.obs.signal).enumerate() {
            assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "omp signal[{i}]");
        }
        for (i, (a, b)) in cpu.obs.signal.iter().zip(&jit.obs.signal).enumerate() {
            assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "jit signal[{i}]");
        }
        for (i, (a, b)) in cpu.zmap.iter().zip(&jit.zmap).enumerate() {
            assert!((a - b).abs() < 1e-8 * a.abs().max(1.0), "jit zmap[{i}]");
        }
        for (i, (a, b)) in cpu.zmap.iter().zip(&omp.zmap).enumerate() {
            assert!((a - b).abs() < 1e-8 * a.abs().max(1.0), "omp zmap[{i}]");
        }
        for (i, (a, b)) in cpu.amp_out.iter().zip(&jit.amp_out).enumerate() {
            assert!((a - b).abs() < 1e-8 * a.abs().max(1.0), "jit amp[{i}]");
        }
        // The CPU backend computes the same numbers as the device backend.
        assert_eq!(jit.obs.signal, jit_cpu.obs.signal);
    }

    #[test]
    fn tracked_movement_transfers_less_than_naive() {
        let (_, tracked) = run_with(ImplKind::OmpTarget, MovementPolicy::Tracked);
        let (_, naive) = run_with(ImplKind::OmpTarget, MovementPolicy::Naive);
        let bytes = |c: &Context| c.trace().transfer_bytes();
        assert!(
            bytes(&naive) > 1.5 * bytes(&tracked),
            "naive {} vs tracked {}",
            bytes(&naive),
            bytes(&tracked)
        );
    }

    #[test]
    fn device_is_empty_after_the_pipeline() {
        let (_, ctx) = run_with(ImplKind::Jit, MovementPolicy::Tracked);
        assert_eq!(ctx.device_in_use(), 0);
        let (_, ctx) = run_with(ImplKind::OmpTarget, MovementPolicy::Tracked);
        assert_eq!(ctx.device_in_use(), 0);
    }

    #[test]
    fn cpu_pipeline_never_touches_the_device() {
        let (_, ctx) = run_with(ImplKind::Cpu, MovementPolicy::Tracked);
        assert_eq!(ctx.trace().kernel_count(), 0);
        assert_eq!(ctx.trace().transfer_bytes(), 0.0);
    }

    #[test]
    fn mixed_dispatch_syncs_residency_both_ways() {
        // Everything offloaded except pixels_healpix on the CPU: the
        // pipeline must copy quats back for the host kernel and re-upload
        // the pixels it produces (the paper's debugging workflow).
        let (cpu, _) = run_with(ImplKind::Cpu, MovementPolicy::Tracked);

        let mut ws = test_workspace(3, 120, 8);
        let mut ctx = Context::new(NodeCalib::default());
        let mut exec = ExecCtx::new(ImplKind::OmpTarget, 4);
        exec.selection = crate::dispatch::ImplSelection::all(ImplKind::OmpTarget)
            .with_override(crate::dispatch::KernelId::PixelsHealpix, ImplKind::Cpu);
        benchmark_pipeline(0.1)
            .run(&mut ctx, &mut exec, &mut ws)
            .unwrap();

        for (i, (a, b)) in cpu.obs.signal.iter().zip(&ws.obs.signal).enumerate() {
            assert!(
                (a - b).abs() < 1e-9 * a.abs().max(1.0),
                "signal[{i}]: {a} vs {b}"
            );
        }
        for (i, (a, b)) in cpu.zmap.iter().zip(&ws.zmap).enumerate() {
            assert!((a - b).abs() < 1e-8 * a.abs().max(1.0), "zmap[{i}]");
        }
    }

    #[test]
    fn host_work_is_charged() {
        let (_, ctx) = run_with(ImplKind::Cpu, MovementPolicy::Tracked);
        assert!(ctx.stats().contains_key("unported_operators"));
        assert!(ctx.stats().contains_key("load_and_setup"));
    }

    #[test]
    fn oom_is_reported_with_kernel_and_buffer() {
        let mut ws = test_workspace(3, 120, 8);
        let mut calib = NodeCalib::default();
        calib.gpu.mem_bytes = 1024; // far too small for any buffer
        let mut ctx = Context::new(calib);
        let mut exec = ExecCtx::new(ImplKind::OmpTarget, 4);
        let err = benchmark_pipeline(0.1)
            .run(&mut ctx, &mut exec, &mut ws)
            .unwrap_err();
        match &err {
            PipelineError::Memory { kernel, .. } => {
                assert_eq!(kernel, "PointingDetector");
            }
            other => panic!("expected Memory error, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("PointingDetector"), "{msg}");
        assert!(msg.contains("tracked movement"), "{msg}");
    }

    #[test]
    fn movement_policy_displays_its_phase_vocabulary() {
        assert_eq!(MovementPolicy::Tracked.to_string(), "tracked");
        assert_eq!(MovementPolicy::Naive.to_string(), "naive");
        // The phase label is derived from Display, so the vocabulary the
        // trace viewers key on must not drift.
        assert_eq!(
            format!("pipeline[{}]", MovementPolicy::Naive),
            "pipeline[naive]"
        );
    }

    #[test]
    fn oom_mid_pipeline_leaves_no_dangling_phases() {
        let mut ws = test_workspace(3, 120, 8);
        let mut calib = NodeCalib::default();
        calib.gpu.mem_bytes = 1024;
        let mut ctx = Context::new(calib);
        let mut exec = ExecCtx::new(ImplKind::OmpTarget, 4);
        assert!(benchmark_pipeline(0.1)
            .run(&mut ctx, &mut exec, &mut ws)
            .is_err());
        assert_eq!(ctx.phase_depth(), 0);
    }

    #[test]
    fn missing_residency_surfaces_as_typed_error() {
        // Dispatch a device kernel without staging its buffers: the old
        // code panicked here; now it names the kernel and the buffer.
        let mut ws = test_workspace(2, 60, 8);
        let mut ctx = Context::new(NodeCalib::default());
        let mut exec = ExecCtx::new(ImplKind::OmpTarget, 4);
        let err = run_kernel(&mut ctx, &mut exec, &mut ws, KernelId::ScanMap).unwrap_err();
        assert_eq!(err.buffer, BufferId::SkyMap);
    }

    #[test]
    fn phases_scope_pipeline_charges() {
        let (_, ctx) = run_with(ImplKind::OmpTarget, MovementPolicy::Tracked);
        let events = &ctx.trace().events;
        // Movement-policy and kernel phase events are emitted...
        assert!(events
            .iter()
            .any(|e| e.kind == accel_sim::SpanKind::Phase && e.label == "pipeline[tracked]"));
        assert!(events
            .iter()
            .any(|e| e.kind == accel_sim::SpanKind::Phase && e.label == "kernel[ScanMap]"));
        // ...and kernel launches carry the nested scope.
        assert!(events.iter().any(|e| e.kind == accel_sim::SpanKind::Kernel
            && e.label == "scan_map"
            && e.scope == "pipeline[tracked]/kernel[ScanMap]"));
        assert_eq!(ctx.phase_depth(), 0);
    }
}
