//! Runtime kernel dispatch (paper § 3.2.1).
//!
//! "We designed a runtime dispatch system over kernels, enabling the
//! selection of specific implementations for the entire code, individual
//! pipelines, or kernels." [`ImplSelection`] is that system: a global
//! default plus per-kernel overrides, resolved at each kernel call.

use std::collections::HashMap;

/// The ten benchmark kernels (paper § 3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelId {
    BuildNoiseWeighted,
    NoiseWeight,
    PixelsHealpix,
    PointingDetector,
    ScanMap,
    StokesWeightsI,
    StokesWeightsIqu,
    TemplateOffsetAddToSignal,
    TemplateOffsetProjectSignal,
    TemplateOffsetApplyDiagPrecond,
}

impl KernelId {
    /// All kernels, in the paper's listing order.
    pub const ALL: [KernelId; 10] = [
        KernelId::BuildNoiseWeighted,
        KernelId::NoiseWeight,
        KernelId::PixelsHealpix,
        KernelId::PointingDetector,
        KernelId::ScanMap,
        KernelId::StokesWeightsI,
        KernelId::StokesWeightsIqu,
        KernelId::TemplateOffsetAddToSignal,
        KernelId::TemplateOffsetProjectSignal,
        KernelId::TemplateOffsetApplyDiagPrecond,
    ];

    /// The eight kernels exercised by the paper's benchmark (all but
    /// `stokes_weights_I` and `template_offset_apply_diag_precond`,
    /// footnote 6).
    pub const BENCHMARK: [KernelId; 8] = [
        KernelId::BuildNoiseWeighted,
        KernelId::NoiseWeight,
        KernelId::PixelsHealpix,
        KernelId::PointingDetector,
        KernelId::ScanMap,
        KernelId::StokesWeightsIqu,
        KernelId::TemplateOffsetAddToSignal,
        KernelId::TemplateOffsetProjectSignal,
    ];

    /// The kernel's name as the paper's figures label it.
    pub fn name(self) -> &'static str {
        match self {
            KernelId::BuildNoiseWeighted => "build_noise_weighted",
            KernelId::NoiseWeight => "noise_weight",
            KernelId::PixelsHealpix => "pixels_healpix",
            KernelId::PointingDetector => "pointing_detector",
            KernelId::ScanMap => "scan_map",
            KernelId::StokesWeightsI => "stokes_weights_I",
            KernelId::StokesWeightsIqu => "stokes_weights_IQU",
            KernelId::TemplateOffsetAddToSignal => "template_offset_add_to_signal",
            KernelId::TemplateOffsetProjectSignal => "template_offset_project_signal",
            KernelId::TemplateOffsetApplyDiagPrecond => "template_offset_apply_diag_precond",
        }
    }
}

/// Which implementation of a kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ImplKind {
    /// The rayon-parallel host baseline (the paper's "OpenMP CPU").
    #[default]
    Cpu,
    /// The directive-style offload port ("OpenMP Target Offload").
    OmpTarget,
    /// The traced/JIT port on the device backend ("JAX").
    Jit,
    /// The traced/JIT port forced onto its CPU backend (§ 4.2).
    JitCpu,
}

impl ImplKind {
    /// Whether this implementation runs on the (simulated) accelerator and
    /// therefore needs device-resident data.
    pub fn uses_device(self) -> bool {
        matches!(self, ImplKind::OmpTarget | ImplKind::Jit)
    }
}

impl std::fmt::Display for ImplKind {
    /// Stable lowercase name — the vocabulary of scenario files and the
    /// `whatif --impl` flag.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ImplKind::Cpu => "cpu",
            ImplKind::OmpTarget => "omp",
            ImplKind::Jit => "jax",
            ImplKind::JitCpu => "jaxcpu",
        })
    }
}

impl std::str::FromStr for ImplKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cpu" => Ok(ImplKind::Cpu),
            "omp" | "omptarget" => Ok(ImplKind::OmpTarget),
            "jax" | "jit" => Ok(ImplKind::Jit),
            "jaxcpu" | "jitcpu" => Ok(ImplKind::JitCpu),
            other => Err(format!(
                "unknown implementation '{other}' (expected cpu, omp, jax or jaxcpu)"
            )),
        }
    }
}

/// Global default + per-kernel overrides.
#[derive(Debug, Clone, Default)]
pub struct ImplSelection {
    default: ImplKind,
    overrides: HashMap<KernelId, ImplKind>,
}

impl ImplSelection {
    /// Every kernel uses `default`.
    pub fn all(default: ImplKind) -> Self {
        Self {
            default,
            overrides: HashMap::new(),
        }
    }

    /// Override one kernel (e.g. run only `scan_map` on the GPU "for
    /// testing and debugging purposes", § 3.2.2).
    pub fn with_override(mut self, kernel: KernelId, kind: ImplKind) -> Self {
        self.overrides.insert(kernel, kind);
        self
    }

    /// Resolve the implementation for `kernel`.
    pub fn resolve(&self, kernel: KernelId) -> ImplKind {
        self.overrides.get(&kernel).copied().unwrap_or(self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_set_matches_footnote_6() {
        assert_eq!(KernelId::BENCHMARK.len(), 8);
        assert!(!KernelId::BENCHMARK.contains(&KernelId::StokesWeightsI));
        assert!(!KernelId::BENCHMARK.contains(&KernelId::TemplateOffsetApplyDiagPrecond));
        for k in KernelId::BENCHMARK {
            assert!(KernelId::ALL.contains(&k));
        }
    }

    #[test]
    fn overrides_win_over_default() {
        let sel = ImplSelection::all(ImplKind::Jit)
            .with_override(KernelId::ScanMap, ImplKind::Cpu)
            .with_override(KernelId::PixelsHealpix, ImplKind::OmpTarget);
        assert_eq!(sel.resolve(KernelId::ScanMap), ImplKind::Cpu);
        assert_eq!(sel.resolve(KernelId::PixelsHealpix), ImplKind::OmpTarget);
        assert_eq!(sel.resolve(KernelId::NoiseWeight), ImplKind::Jit);
    }

    #[test]
    fn device_usage_flags() {
        assert!(ImplKind::OmpTarget.uses_device());
        assert!(ImplKind::Jit.uses_device());
        assert!(!ImplKind::Cpu.uses_device());
        assert!(!ImplKind::JitCpu.uses_device());
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(KernelId::StokesWeightsIqu.name(), "stokes_weights_IQU");
        assert_eq!(
            KernelId::TemplateOffsetProjectSignal.name(),
            "template_offset_project_signal"
        );
    }
}
