//! Function-level timing with CSV export and comparison (paper § 3.2.3).
//!
//! TOAST ships a Python decorator that accumulates coarse per-function
//! wall times, dumps them to CSV, and — the authors' "most significant
//! productivity boost" — merges several CSVs into a comparative
//! spreadsheet to spot operations where a port spends a suspect amount of
//! time. This module is that tool: [`Timers`] accumulates named
//! durations (wall-clock or simulated), [`Timers::to_csv`] exports, and
//! [`compare`] merges runs side by side.

use std::collections::BTreeMap;
use std::time::Instant;

/// Accumulated timings for one run / one implementation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timers {
    entries: BTreeMap<String, TimerEntry>,
}

/// One timer's accumulated state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimerEntry {
    /// Number of start/stop cycles.
    pub calls: u64,
    /// Total seconds.
    pub seconds: f64,
}

impl Timers {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `seconds` under `name` (for simulated durations).
    pub fn add(&mut self, name: &str, seconds: f64) {
        let e = self.entries.entry(name.to_string()).or_default();
        e.calls += 1;
        e.seconds += seconds;
    }

    /// Time a closure with the wall clock.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(name, start.elapsed().as_secs_f64());
        out
    }

    /// Import every per-label second from a simulation context.
    pub fn absorb_context(&mut self, ctx: &accel_sim::Context) {
        for (label, stat) in ctx.stats() {
            let e = self.entries.entry(label.clone()).or_default();
            e.calls += stat.calls;
            e.seconds += stat.seconds;
        }
    }

    /// Look up one entry.
    pub fn get(&self, name: &str) -> Option<TimerEntry> {
        self.entries.get(name).copied()
    }

    /// All entries, sorted by name.
    pub fn entries(&self) -> &BTreeMap<String, TimerEntry> {
        &self.entries
    }

    /// Sum of all timers.
    pub fn total_seconds(&self) -> f64 {
        self.entries.values().map(|e| e.seconds).sum()
    }

    /// Serialise as `name,calls,seconds` CSV (the TOAST dump format).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,calls,seconds\n");
        for (name, e) in &self.entries {
            out.push_str(&format!("{name},{},{:.9}\n", e.calls, e.seconds));
        }
        out
    }

    /// Parse the CSV format produced by [`Timers::to_csv`].
    pub fn from_csv(csv: &str) -> Result<Self, String> {
        let mut timers = Timers::new();
        for (i, line) in csv.lines().enumerate() {
            if i == 0 || line.trim().is_empty() {
                continue;
            }
            let mut parts = line.rsplitn(3, ',');
            let seconds: f64 = parts
                .next()
                .ok_or_else(|| format!("line {i}: missing seconds"))?
                .trim()
                .parse()
                .map_err(|e| format!("line {i}: bad seconds: {e}"))?;
            let calls: u64 = parts
                .next()
                .ok_or_else(|| format!("line {i}: missing calls"))?
                .trim()
                .parse()
                .map_err(|e| format!("line {i}: bad calls: {e}"))?;
            let name = parts
                .next()
                .ok_or_else(|| format!("line {i}: missing name"))?;
            let e = timers.entries.entry(name.to_string()).or_default();
            e.calls += calls;
            e.seconds += seconds;
        }
        Ok(timers)
    }
}

/// Merge several runs into a comparative table: one row per timer name,
/// one column per run, missing values empty — the "comparative
/// spreadsheet" of § 3.2.3.
pub fn compare(runs: &[(&str, &Timers)]) -> String {
    let mut names: Vec<&String> = Vec::new();
    for (_, t) in runs {
        for name in t.entries().keys() {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    names.sort();

    let mut out = String::from("name");
    for (label, _) in runs {
        out.push_str(&format!(",{label}"));
    }
    out.push('\n');
    for name in names {
        out.push_str(name);
        for (_, t) in runs {
            match t.get(name) {
                Some(e) => out.push_str(&format!(",{:.9}", e.seconds)),
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_lookup() {
        let mut t = Timers::new();
        t.add("scan_map", 1.5);
        t.add("scan_map", 0.5);
        t.add("io", 3.0);
        let e = t.get("scan_map").unwrap();
        assert_eq!(e.calls, 2);
        assert_eq!(e.seconds, 2.0);
        assert_eq!(t.total_seconds(), 5.0);
    }

    #[test]
    fn wall_clock_timing_is_positive() {
        let mut t = Timers::new();
        let v = t.time("spin", || {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(v > 0);
        assert!(t.get("spin").unwrap().seconds > 0.0);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Timers::new();
        t.add("a", 1.25);
        t.add("b,with,commas", 2.5); // names may contain commas (rsplit)
        let csv = t.to_csv();
        let back = Timers::from_csv(&csv).unwrap();
        assert_eq!(back.get("a").unwrap().seconds, 1.25);
        assert_eq!(back.get("b,with,commas").unwrap().seconds, 2.5);
    }

    #[test]
    fn from_csv_rejects_garbage() {
        assert!(Timers::from_csv("name,calls,seconds\nx,notanumber,1.0").is_err());
        assert!(Timers::from_csv("name,calls,seconds\nx,1,notanumber").is_err());
    }

    #[test]
    fn comparison_aligns_rows() {
        let mut cpu = Timers::new();
        cpu.add("scan_map", 10.0);
        cpu.add("io", 1.0);
        let mut gpu = Timers::new();
        gpu.add("scan_map", 0.5);
        gpu.add("accel_data_update_device", 0.2);
        let table = compare(&[("cpu", &cpu), ("gpu", &gpu)]);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines[0], "name,cpu,gpu");
        assert!(lines.iter().any(|l| l.starts_with("scan_map,10.0")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("accel_data_update_device,,0.2")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("io,1.0") && l.ends_with(',')));
    }

    #[test]
    fn absorbs_simulation_stats() {
        let mut ctx = accel_sim::Context::new(accel_sim::NodeCalib::default());
        ctx.host_compute("serial", 2.0);
        let mut t = Timers::new();
        t.absorb_context(&ctx);
        assert_eq!(t.get("serial").unwrap().seconds, 2.0);
    }
}
