//! The time-ordered data model: focal planes, observations, intervals,
//! sky maps.
//!
//! Mirrors TOAST's layout: an [`Observation`] holds a contiguous span of
//! samples for a set of detectors; per-detector timestreams are flat
//! `[n_det × n_samples]` arrays; pointing products are `[n_det × n_samples
//! × k]`; science happens only inside [`Interval`]s (valid scan spans of
//! *varying* length — the property that collides with arrayjit's static
//! shapes and forces padding).

use toast_healpix::Nside;

/// One detector of the focal plane.
#[derive(Debug, Clone)]
pub struct Detector {
    /// Detector name (e.g. `"D017A"`).
    pub name: String,
    /// Focal-plane offset quaternion (rotation from boresight frame),
    /// `[x, y, z, w]`.
    pub quat: [f64; 4],
    /// Polarisation efficiency `η ∈ [0, 1]` (1 = ideal polarimeter).
    pub pol_efficiency: f64,
    /// Inverse noise variance weight used by the map-making kernels.
    pub noise_weight: f64,
    /// White-noise level (NET) in arbitrary units per √Hz.
    pub net: f64,
    /// 1/f knee frequency in Hz.
    pub fknee: f64,
    /// 1/f spectral slope.
    pub alpha: f64,
}

/// The set of detectors observing together.
#[derive(Debug, Clone, Default)]
pub struct FocalPlane {
    pub detectors: Vec<Detector>,
}

impl FocalPlane {
    /// Number of detectors.
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// Whether the focal plane is empty.
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }

    /// The flat `[n_det × 4]` array of offset quaternions the kernels
    /// consume.
    pub fn quat_array(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(4 * self.detectors.len());
        for d in &self.detectors {
            out.extend_from_slice(&d.quat);
        }
        out
    }

    /// Per-detector noise weights as a flat array.
    pub fn noise_weights(&self) -> Vec<f64> {
        self.detectors.iter().map(|d| d.noise_weight).collect()
    }
}

/// A half-open span of valid samples `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub start: usize,
    pub end: usize,
}

impl Interval {
    /// Construct, checking ordering.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "interval [{start}, {end}) reversed");
        Self { start, end }
    }

    /// Number of samples covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the interval is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The longest interval — the static padding size for the arrayjit port
/// and the collapsed loop bound for the offload port.
pub fn max_interval_len(intervals: &[Interval]) -> usize {
    intervals.iter().map(Interval::len).max().unwrap_or(0)
}

/// Geometry of a pixelised sky for this run.
#[derive(Debug, Clone, Copy)]
pub struct SkyGeometry {
    /// HEALPix resolution.
    pub nside: Nside,
    /// Whether pixel indices use NESTED ordering (TOAST's default).
    pub nest: bool,
    /// Non-zeros per pixel: 1 for intensity-only, 3 for I/Q/U.
    pub nnz: usize,
}

impl SkyGeometry {
    /// Total pixels.
    pub fn n_pix(&self) -> usize {
        self.nside.npix() as usize
    }

    /// Flat length of a map array.
    pub fn map_len(&self) -> usize {
        self.n_pix() * self.nnz
    }
}

/// One observation: a contiguous block of samples for every detector, with
/// all of the buffers the ten kernels read and write.
///
/// Buffers are plain flat `Vec`s (host truth); device residency is managed
/// by [`crate::memory`].
#[derive(Debug, Clone)]
pub struct Observation {
    /// Samples per detector.
    pub n_samples: usize,
    /// Number of detectors.
    pub n_det: usize,
    /// Sampling rate in Hz.
    pub sample_rate: f64,
    /// Valid-science intervals (varying lengths).
    pub intervals: Vec<Interval>,
    /// Boresight attitude quaternions, `[n_samples × 4]`.
    pub boresight: Vec<f64>,
    /// Detector offset quaternions, `[n_det × 4]`.
    pub fp_quats: Vec<f64>,
    /// Per-detector noise weights, `[n_det]`.
    pub det_weights: Vec<f64>,
    /// Detector pol efficiencies, `[n_det]`.
    pub det_epsilon: Vec<f64>,
    /// Detector timestreams (signal), `[n_det × n_samples]`.
    pub signal: Vec<f64>,
    /// Expanded detector pointing, `[n_det × n_samples × 4]`.
    pub quats: Vec<f64>,
    /// HEALPix pixel per sample, `[n_det × n_samples]` (-1 = unflagged).
    pub pixels: Vec<i64>,
    /// Stokes weights, `[n_det × n_samples × nnz]`.
    pub weights: Vec<f64>,
}

impl Observation {
    /// Allocate an observation's buffers for `focal_plane` over
    /// `n_samples` samples with `nnz` Stokes weights.
    pub fn new(
        focal_plane: &FocalPlane,
        n_samples: usize,
        sample_rate: f64,
        intervals: Vec<Interval>,
        nnz: usize,
    ) -> Self {
        for iv in &intervals {
            assert!(iv.end <= n_samples, "interval {iv:?} beyond {n_samples}");
        }
        let n_det = focal_plane.len();
        Self {
            n_samples,
            n_det,
            sample_rate,
            intervals,
            boresight: vec![0.0; n_samples * 4],
            fp_quats: focal_plane.quat_array(),
            det_weights: focal_plane.noise_weights(),
            det_epsilon: focal_plane
                .detectors
                .iter()
                .map(|d| d.pol_efficiency)
                .collect(),
            signal: vec![0.0; n_det * n_samples],
            quats: vec![0.0; n_det * n_samples * 4],
            pixels: vec![-1; n_det * n_samples],
            weights: vec![0.0; n_det * n_samples * nnz],
        }
    }

    /// Samples actually covered by intervals (per detector).
    pub fn science_samples(&self) -> usize {
        self.intervals.iter().map(Interval::len).sum()
    }

    /// The longest interval (padding bound).
    pub fn max_interval_len(&self) -> usize {
        max_interval_len(&self.intervals)
    }

    /// Mutable view of one detector's timestream.
    pub fn signal_det_mut(&mut self, det: usize) -> &mut [f64] {
        let n = self.n_samples;
        &mut self.signal[det * n..(det + 1) * n]
    }

    /// View of one detector's timestream.
    pub fn signal_det(&self, det: usize) -> &[f64] {
        let n = self.n_samples;
        &self.signal[det * n..(det + 1) * n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn small_focal_plane(n: usize) -> FocalPlane {
        FocalPlane {
            detectors: (0..n)
                .map(|i| Detector {
                    name: format!("D{i:03}"),
                    quat: crate::quat::from_axis_angle([1.0, 0.0, 0.0], 0.01 * i as f64),
                    pol_efficiency: 0.95,
                    noise_weight: 1.0 + i as f64,
                    net: 1.0,
                    fknee: 0.1,
                    alpha: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn observation_buffer_sizes() {
        let fp = small_focal_plane(3);
        let obs = Observation::new(&fp, 100, 10.0, vec![Interval::new(0, 100)], 3);
        assert_eq!(obs.signal.len(), 300);
        assert_eq!(obs.quats.len(), 1200);
        assert_eq!(obs.pixels.len(), 300);
        assert_eq!(obs.weights.len(), 900);
        assert_eq!(obs.boresight.len(), 400);
        assert_eq!(obs.fp_quats.len(), 12);
        assert_eq!(obs.science_samples(), 100);
    }

    #[test]
    fn interval_properties() {
        let iv = Interval::new(10, 25);
        assert_eq!(iv.len(), 15);
        assert!(!iv.is_empty());
        assert!(Interval::new(5, 5).is_empty());
        let ivs = vec![
            Interval::new(0, 10),
            Interval::new(10, 45),
            Interval::new(50, 51),
        ];
        assert_eq!(max_interval_len(&ivs), 35);
        assert_eq!(max_interval_len(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "reversed")]
    fn reversed_interval_panics() {
        Interval::new(5, 3);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn interval_outside_observation_panics() {
        let fp = small_focal_plane(1);
        Observation::new(&fp, 10, 1.0, vec![Interval::new(0, 11)], 1);
    }

    #[test]
    fn detector_signal_views() {
        let fp = small_focal_plane(2);
        let mut obs = Observation::new(&fp, 4, 1.0, vec![Interval::new(0, 4)], 1);
        obs.signal_det_mut(1)[2] = 7.0;
        assert_eq!(obs.signal_det(0), &[0.0; 4]);
        assert_eq!(obs.signal_det(1), &[0.0, 0.0, 7.0, 0.0]);
        assert_eq!(obs.signal[6], 7.0);
    }

    #[test]
    fn sky_geometry() {
        let g = SkyGeometry {
            nside: Nside::new(16).unwrap(),
            nest: true,
            nnz: 3,
        };
        assert_eq!(g.n_pix(), 3072);
        assert_eq!(g.map_len(), 9216);
    }
}
