//! Quaternion math for telescope pointing.
//!
//! TOAST represents all pointing as unit quaternions: the boresight
//! attitude is a quaternion per sample, and each detector's placement on
//! the focal plane is a fixed offset quaternion. `pointing_detector`
//! composes the two; `pixels_healpix` and `stokes_weights_IQU` rotate the
//! z-axis (line of sight) and x-axis (polarisation orientation) through
//! the result.
//!
//! Convention: `[x, y, z, w]` component order (TOAST's), Hamilton product.

/// The identity rotation `[0, 0, 0, 1]`.
pub const IDENTITY: [f64; 4] = [0.0, 0.0, 0.0, 1.0];

/// Hamilton product `a ⊗ b` (apply `b`'s rotation, then `a`'s).
#[inline]
pub fn mul(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
    let [ax, ay, az, aw] = a;
    let [bx, by, bz, bw] = b;
    [
        aw * bx + ax * bw + ay * bz - az * by,
        aw * by - ax * bz + ay * bw + az * bx,
        aw * bz + ax * by - ay * bx + az * bw,
        aw * bw - ax * bx - ay * by - az * bz,
    ]
}

/// Conjugate (inverse for unit quaternions).
#[inline]
pub fn conj(q: [f64; 4]) -> [f64; 4] {
    [-q[0], -q[1], -q[2], q[3]]
}

/// Euclidean norm.
#[inline]
pub fn norm(q: [f64; 4]) -> f64 {
    (q[0] * q[0] + q[1] * q[1] + q[2] * q[2] + q[3] * q[3]).sqrt()
}

/// Normalise to unit length.
#[inline]
pub fn normalize(q: [f64; 4]) -> [f64; 4] {
    let n = norm(q);
    assert!(n > 0.0, "cannot normalise a zero quaternion");
    [q[0] / n, q[1] / n, q[2] / n, q[3] / n]
}

/// Rotation of `angle` radians about the unit `axis`.
#[inline]
pub fn from_axis_angle(axis: [f64; 3], angle: f64) -> [f64; 4] {
    let half = 0.5 * angle;
    let s = half.sin();
    [axis[0] * s, axis[1] * s, axis[2] * s, half.cos()]
}

/// Rotate vector `v` by unit quaternion `q` (computes `q v q*` expanded to
/// avoid building intermediate quaternions).
#[inline]
pub fn rotate(q: [f64; 4], v: [f64; 3]) -> [f64; 3] {
    let [qx, qy, qz, qw] = q;
    // t = 2 q_vec × v
    let tx = 2.0 * (qy * v[2] - qz * v[1]);
    let ty = 2.0 * (qz * v[0] - qx * v[2]);
    let tz = 2.0 * (qx * v[1] - qy * v[0]);
    // v' = v + qw t + q_vec × t
    [
        v[0] + qw * tx + (qy * tz - qz * ty),
        v[1] + qw * ty + (qz * tx - qx * tz),
        v[2] + qw * tz + (qx * ty - qy * tx),
    ]
}

/// The rotated z-axis (telescope line of sight) — the hot path of
/// `pixels_healpix`.
#[inline]
pub fn rotate_z(q: [f64; 4]) -> [f64; 3] {
    let [qx, qy, qz, qw] = q;
    [
        2.0 * (qx * qz + qw * qy),
        2.0 * (qy * qz - qw * qx),
        1.0 - 2.0 * (qx * qx + qy * qy),
    ]
}

/// The rotated x-axis (polarisation sensitive direction) used by
/// `stokes_weights_IQU`.
#[inline]
pub fn rotate_x(q: [f64; 4]) -> [f64; 3] {
    let [qx, qy, qz, qw] = q;
    [
        1.0 - 2.0 * (qy * qy + qz * qz),
        2.0 * (qx * qy + qw * qz),
        2.0 * (qx * qz - qw * qy),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn assert_vec_eq(a: [f64; 3], b: [f64; 3]) {
        for i in 0..3 {
            assert!((a[i] - b[i]).abs() < 1e-12, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let q = from_axis_angle([0.0, 0.0, 1.0], 0.7);
        let p = mul(IDENTITY, q);
        for i in 0..4 {
            assert!((p[i] - q[i]).abs() < 1e-15);
        }
        assert_vec_eq(rotate(IDENTITY, [1.0, 2.0, 3.0]), [1.0, 2.0, 3.0]);
    }

    #[test]
    fn quarter_turn_about_z() {
        let q = from_axis_angle([0.0, 0.0, 1.0], PI / 2.0);
        assert_vec_eq(rotate(q, [1.0, 0.0, 0.0]), [0.0, 1.0, 0.0]);
        assert_vec_eq(rotate(q, [0.0, 1.0, 0.0]), [-1.0, 0.0, 0.0]);
        assert_vec_eq(rotate(q, [0.0, 0.0, 1.0]), [0.0, 0.0, 1.0]);
    }

    #[test]
    fn composition_matches_sequential_rotation() {
        let a = from_axis_angle([0.0, 1.0, 0.0], 0.3);
        let b = from_axis_angle([1.0, 0.0, 0.0], 1.1);
        let v = [0.2, -0.5, 0.8];
        let once = rotate(mul(a, b), v);
        let twice = rotate(a, rotate(b, v));
        assert_vec_eq(once, twice);
    }

    #[test]
    fn conjugate_inverts() {
        let q = normalize([0.1, 0.2, 0.3, 0.9]);
        let v = [1.0, -2.0, 0.5];
        assert_vec_eq(rotate(conj(q), rotate(q, v)), v);
        let qq = mul(q, conj(q));
        assert!((qq[3] - 1.0).abs() < 1e-12);
        assert!(qq[0].abs() + qq[1].abs() + qq[2].abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_length() {
        let q = normalize([0.4, -0.1, 0.7, 0.2]);
        let v = [3.0, -4.0, 12.0];
        let r = rotate(q, v);
        let len = |u: [f64; 3]| (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]).sqrt();
        assert!((len(r) - len(v)).abs() < 1e-12);
    }

    #[test]
    fn fast_axis_rotations_match_general() {
        let q = normalize([0.3, -0.5, 0.1, 0.8]);
        assert_vec_eq(rotate_z(q), rotate(q, [0.0, 0.0, 1.0]));
        assert_vec_eq(rotate_x(q), rotate(q, [1.0, 0.0, 0.0]));
    }

    #[test]
    fn axis_angle_unit_norm() {
        let q = from_axis_angle([0.0, 1.0, 0.0], 2.1);
        assert!((norm(q) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "zero quaternion")]
    fn zero_normalise_panics() {
        normalize([0.0; 4]);
    }
}
