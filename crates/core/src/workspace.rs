//! The per-rank workspace: every buffer the benchmark kernels touch.
//!
//! TOAST scopes kernel data to observations plus pipeline-level products
//! (sky maps, template amplitudes). A [`Workspace`] bundles one rank's
//! share of all of it, so kernels and the hybrid pipeline have a single
//! well-typed root instead of a string-keyed blackboard.

use crate::data::{Observation, SkyGeometry};

/// Identifier of every buffer the kernels read or write — the vocabulary
/// of the pipeline's data-movement layer (paper § 3.2.2: "each operator
/// includes … a list of input and output data it handles").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BufferId {
    /// Boresight quaternions `[n_samp × 4]`.
    Boresight,
    /// Focal-plane offset quaternions `[n_det × 4]`.
    FpQuats,
    /// Per-detector inverse-variance weights `[n_det]`.
    DetWeights,
    /// Per-detector polarisation efficiencies `[n_det]`.
    DetEpsilon,
    /// Detector timestreams `[n_det × n_samp]`.
    Signal,
    /// Expanded detector pointing `[n_det × n_samp × 4]`.
    Quats,
    /// Pixel indices `[n_det × n_samp]`.
    Pixels,
    /// Stokes weights `[n_det × n_samp × nnz]`.
    Weights,
    /// Input sky map `[n_pix × nnz]`.
    SkyMap,
    /// Accumulated noise-weighted map `[n_pix × nnz]`.
    ZMap,
    /// Template offset amplitudes `[n_det × n_amp]`.
    Amplitudes,
    /// Projected amplitudes `[n_det × n_amp]`.
    AmpOut,
    /// Diagonal preconditioner `[n_det × n_amp]`.
    Precond,
}

impl BufferId {
    /// All buffer ids, for iteration.
    pub const ALL: [BufferId; 13] = [
        BufferId::Boresight,
        BufferId::FpQuats,
        BufferId::DetWeights,
        BufferId::DetEpsilon,
        BufferId::Signal,
        BufferId::Quats,
        BufferId::Pixels,
        BufferId::Weights,
        BufferId::SkyMap,
        BufferId::ZMap,
        BufferId::Amplitudes,
        BufferId::AmpOut,
        BufferId::Precond,
    ];

    /// Whether the buffer holds i64 data.
    pub fn is_integer(self) -> bool {
        matches!(self, BufferId::Pixels)
    }
}

/// One rank's complete kernel working set.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// The observation (timestreams, pointing, intervals).
    pub obs: Observation,
    /// Sky pixelisation.
    pub geom: SkyGeometry,
    /// Input sky map, `[n_pix × nnz]`.
    pub sky_map: Vec<f64>,
    /// Noise-weighted output map, `[n_pix × nnz]`.
    pub zmap: Vec<f64>,
    /// Samples per template offset step.
    pub step_length: usize,
    /// Offset amplitudes per detector.
    pub n_amp: usize,
    /// Template amplitudes, `[n_det × n_amp]`.
    pub amplitudes: Vec<f64>,
    /// Projection output, `[n_det × n_amp]`.
    pub amp_out: Vec<f64>,
    /// Diagonal preconditioner, `[n_det × n_amp]`.
    pub precond: Vec<f64>,
}

impl Workspace {
    /// Allocate a workspace for `obs` with `step_length` samples per
    /// template offset step.
    pub fn new(obs: Observation, geom: SkyGeometry, step_length: usize) -> Self {
        assert!(step_length > 0, "step_length must be positive");
        let n_amp = obs.n_samples.div_ceil(step_length);
        let n_det = obs.n_det;
        Self {
            obs,
            geom,
            sky_map: vec![0.0; geom.map_len()],
            zmap: vec![0.0; geom.map_len()],
            step_length,
            n_amp,
            amplitudes: vec![0.0; n_det * n_amp],
            amp_out: vec![0.0; n_det * n_amp],
            precond: vec![1.0; n_det * n_amp],
        }
    }

    /// Byte size of a buffer (for transfer/residency accounting).
    pub fn byte_len(&self, id: BufferId) -> u64 {
        let elems = match id {
            BufferId::Boresight => self.obs.boresight.len(),
            BufferId::FpQuats => self.obs.fp_quats.len(),
            BufferId::DetWeights => self.obs.det_weights.len(),
            BufferId::DetEpsilon => self.obs.det_epsilon.len(),
            BufferId::Signal => self.obs.signal.len(),
            BufferId::Quats => self.obs.quats.len(),
            BufferId::Pixels => self.obs.pixels.len(),
            BufferId::Weights => self.obs.weights.len(),
            BufferId::SkyMap => self.sky_map.len(),
            BufferId::ZMap => self.zmap.len(),
            BufferId::Amplitudes => self.amplitudes.len(),
            BufferId::AmpOut => self.amp_out.len(),
            BufferId::Precond => self.precond.len(),
        };
        (elems * 8) as u64
    }

    /// f64 view of a buffer; panics for [`BufferId::Pixels`].
    pub fn f64_slice(&self, id: BufferId) -> &[f64] {
        match id {
            BufferId::Boresight => &self.obs.boresight,
            BufferId::FpQuats => &self.obs.fp_quats,
            BufferId::DetWeights => &self.obs.det_weights,
            BufferId::DetEpsilon => &self.obs.det_epsilon,
            BufferId::Signal => &self.obs.signal,
            BufferId::Quats => &self.obs.quats,
            BufferId::Weights => &self.obs.weights,
            BufferId::SkyMap => &self.sky_map,
            BufferId::ZMap => &self.zmap,
            BufferId::Amplitudes => &self.amplitudes,
            BufferId::AmpOut => &self.amp_out,
            BufferId::Precond => &self.precond,
            BufferId::Pixels => panic!("Pixels is an i64 buffer"),
        }
    }

    /// Mutable f64 view of a buffer; panics for [`BufferId::Pixels`].
    pub fn f64_slice_mut(&mut self, id: BufferId) -> &mut [f64] {
        match id {
            BufferId::Boresight => &mut self.obs.boresight,
            BufferId::FpQuats => &mut self.obs.fp_quats,
            BufferId::DetWeights => &mut self.obs.det_weights,
            BufferId::DetEpsilon => &mut self.obs.det_epsilon,
            BufferId::Signal => &mut self.obs.signal,
            BufferId::Quats => &mut self.obs.quats,
            BufferId::Weights => &mut self.obs.weights,
            BufferId::SkyMap => &mut self.sky_map,
            BufferId::ZMap => &mut self.zmap,
            BufferId::Amplitudes => &mut self.amplitudes,
            BufferId::AmpOut => &mut self.amp_out,
            BufferId::Precond => &mut self.precond,
            BufferId::Pixels => panic!("Pixels is an i64 buffer"),
        }
    }

    /// Total bytes of all buffers (a rank's data footprint).
    pub fn total_bytes(&self) -> u64 {
        BufferId::ALL.iter().map(|&id| self.byte_len(id)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{FocalPlane, Interval};
    use crate::testutil::small_focal_plane;
    use toast_healpix::Nside;

    fn ws(n_det: usize, n_samp: usize) -> Workspace {
        let fp: FocalPlane = small_focal_plane(n_det);
        let obs = Observation::new(&fp, n_samp, 10.0, vec![Interval::new(0, n_samp)], 3);
        let geom = SkyGeometry {
            nside: Nside::new(8).unwrap(),
            nest: false,
            nnz: 3,
        };
        Workspace::new(obs, geom, 10)
    }

    #[test]
    fn amplitude_count_rounds_up() {
        let w = ws(2, 95);
        assert_eq!(w.n_amp, 10);
        assert_eq!(w.amplitudes.len(), 20);
    }

    #[test]
    fn byte_lengths_match_slices() {
        let w = ws(3, 50);
        for id in BufferId::ALL {
            if id.is_integer() {
                assert_eq!(w.byte_len(id), (w.obs.pixels.len() * 8) as u64);
            } else {
                assert_eq!(w.byte_len(id), (w.f64_slice(id).len() * 8) as u64);
            }
        }
        assert!(w.total_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "i64 buffer")]
    fn pixels_is_not_f64() {
        ws(1, 10).f64_slice(BufferId::Pixels);
    }

    #[test]
    fn precond_defaults_to_identity() {
        let w = ws(2, 30);
        assert!(w.precond.iter().all(|&p| p == 1.0));
    }
}
