//! The framework-agnostic accelerator-memory abstraction (paper § 3.2.1).
//!
//! The hybrid pipeline tracks where each [`BufferId`] currently lives and
//! moves data lazily. What "on the device" means differs per framework —
//! an [`offload::DeviceBuffer`] for the OpenMP-style port, an immutable
//! [`arrayjit::Array`] for the JIT port — so this module hides both behind
//! [`AccelStore`], "an abstraction layer for memory operations, including
//! allocation, deallocation, and data transfer between devices".

use std::collections::HashMap;

use accel_sim::{Context, MemoryError, TransferDir};
use arrayjit::Array;
use offload::{DeviceBuffer, Pool};

use crate::workspace::{BufferId, Workspace};

/// A kernel asked for a buffer that is not resident on the device — a
/// pipeline sequencing bug, surfaced as a typed error so the pipeline can
/// report which kernel touched which buffer instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencyError {
    /// The buffer that was not resident.
    pub buffer: BufferId,
}

impl std::fmt::Display for ResidencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} not resident on device", self.buffer)
    }
}

impl std::error::Error for ResidencyError {}

/// Device-side storage for one rank, in one of the framework styles.
pub enum AccelStore {
    /// No accelerator (the CPU baseline).
    None,
    /// OpenMP-target-style explicit buffers with a memory pool.
    Omp(OmpStore),
    /// arrayjit arrays (the framework keeps its own pool; buffers are
    /// immutable and replaced functionally).
    Jit(JitStore),
}

/// Device buffers for the offload port.
#[derive(Default)]
pub struct OmpStore {
    pub pool_f64: Pool<f64>,
    pub pool_i64: Pool<i64>,
    pub f64_bufs: HashMap<BufferId, DeviceBuffer<f64>>,
    pub i64_bufs: HashMap<BufferId, DeviceBuffer<i64>>,
}

/// Device arrays for the arrayjit port, plus the cached sample mask the
/// padded kernels share.
#[derive(Default)]
pub struct JitStore {
    pub arrays: HashMap<BufferId, Array>,
    /// `[n_samp]` 0/1 mask of samples inside any interval (the padding
    /// mask), plus its registered device footprint.
    pub sample_mask: Option<Array>,
    mask_bytes: u64,
    /// arrayjit allocations are inflated by the framework's pool-slack
    /// factor; remember what was charged per buffer so frees balance.
    charged: HashMap<BufferId, u64>,
    /// True for the arrayjit *CPU backend* (§ 4.2): arrays live in host
    /// memory, so staging charges no device memory or PCIe time.
    pub host_mode: bool,
}

impl AccelStore {
    /// Construct a store for the given style.
    pub fn omp() -> Self {
        AccelStore::Omp(OmpStore {
            pool_f64: Pool::new(),
            pool_i64: Pool::new(),
            f64_bufs: HashMap::new(),
            i64_bufs: HashMap::new(),
        })
    }

    /// Construct the arrayjit store (device backend).
    pub fn jit() -> Self {
        AccelStore::Jit(JitStore::default())
    }

    /// Construct the arrayjit store for the CPU backend: arrays stay in
    /// host memory and staging is free.
    pub fn jit_host() -> Self {
        AccelStore::Jit(JitStore {
            host_mode: true,
            ..JitStore::default()
        })
    }

    /// Whether `id` is resident on the device.
    pub fn resident(&self, id: BufferId) -> bool {
        match self {
            AccelStore::None => false,
            AccelStore::Omp(s) => s.f64_bufs.contains_key(&id) || s.i64_bufs.contains_key(&id),
            AccelStore::Jit(s) => s.arrays.contains_key(&id),
        }
    }

    /// Ensure `id` is on the device, uploading from the workspace if not.
    pub fn ensure_device(
        &mut self,
        ctx: &mut Context,
        ws: &Workspace,
        id: BufferId,
    ) -> Result<(), MemoryError> {
        if self.resident(id) {
            return Ok(());
        }
        match self {
            AccelStore::None => Ok(()),
            AccelStore::Omp(s) => {
                if id.is_integer() {
                    let buf = offload::map_to(ctx, &mut s.pool_i64, &ws.obs.pixels)?;
                    s.i64_bufs.insert(id, buf);
                } else {
                    let buf = offload::map_to(ctx, &mut s.pool_f64, ws.f64_slice(id))?;
                    s.f64_bufs.insert(id, buf);
                }
                Ok(())
            }
            AccelStore::Jit(s) => {
                if !s.host_mode {
                    let bytes =
                        (ws.byte_len(id) as f64 * ctx.calib.framework.jit_mem_overhead) as u64;
                    ctx.device_alloc(bytes, true)?;
                    ctx.transfer(ws.byte_len(id) as f64, TransferDir::HostToDevice);
                    s.charged.insert(id, bytes);
                }
                let array = if id.is_integer() {
                    Array::from_i64(ws.obs.pixels.clone())
                } else {
                    Array::from_f64(ws.f64_slice(id).to_vec())
                };
                s.arrays.insert(id, array);
                Ok(())
            }
        }
    }

    /// Copy `id` back into the workspace (device stays resident).
    pub fn update_host(&mut self, ctx: &mut Context, ws: &mut Workspace, id: BufferId) {
        match self {
            AccelStore::None => {}
            AccelStore::Omp(s) => {
                if id.is_integer() {
                    if let Some(buf) = s.i64_bufs.get(&id) {
                        offload::update_host(ctx, buf, &mut ws.obs.pixels);
                    }
                } else if let Some(buf) = s.f64_bufs.get(&id) {
                    offload::update_host(ctx, buf, ws.f64_slice_mut(id));
                }
            }
            AccelStore::Jit(s) => {
                if let Some(array) = s.arrays.get(&id) {
                    if !s.host_mode {
                        ctx.transfer(ws.byte_len(id) as f64, TransferDir::DeviceToHost);
                    }
                    if id.is_integer() {
                        ws.obs.pixels.copy_from_slice(array.as_i64());
                    } else {
                        ws.f64_slice_mut(id).copy_from_slice(array.as_f64());
                    }
                }
            }
        }
    }

    /// Drop `id` from the device without copying back.
    pub fn delete(&mut self, ctx: &mut Context, id: BufferId) {
        match self {
            AccelStore::None => {}
            AccelStore::Omp(s) => {
                if let Some(buf) = s.f64_bufs.remove(&id) {
                    s.pool_f64.free(ctx, buf);
                }
                if let Some(buf) = s.i64_bufs.remove(&id) {
                    s.pool_i64.free(ctx, buf);
                }
            }
            AccelStore::Jit(s) => {
                if s.arrays.remove(&id).is_some() {
                    if let Some(bytes) = s.charged.remove(&id) {
                        ctx.device_free(bytes);
                    }
                }
            }
        }
    }

    /// End of pipeline: delete everything and release pooled capacity.
    pub fn clear(&mut self, ctx: &mut Context) {
        for id in BufferId::ALL {
            self.delete(ctx, id);
        }
        match self {
            AccelStore::Omp(s) => {
                s.pool_f64.trim(ctx);
                s.pool_i64.trim(ctx);
            }
            AccelStore::Jit(s) => {
                if s.sample_mask.take().is_some() {
                    ctx.device_free(s.mask_bytes);
                    s.mask_bytes = 0;
                }
            }
            AccelStore::None => {}
        }
    }
}

impl JitStore {
    /// The 0/1 in-interval mask `[n_samp]`, built (and uploaded) once per
    /// residency period.
    pub fn sample_mask(&mut self, ctx: &mut Context, ws: &Workspace) -> Array {
        if let Some(m) = &self.sample_mask {
            return m.clone();
        }
        let mut mask = vec![0.0f64; ws.obs.n_samples];
        for iv in &ws.obs.intervals {
            mask[iv.start..iv.end].fill(1.0);
        }
        let bytes = (mask.len() * 8) as u64;
        if !self.host_mode {
            // Best effort accounting: the mask is small relative to data.
            if ctx.device_alloc(bytes, true).is_ok() {
                self.mask_bytes = bytes;
            }
            ctx.transfer(bytes as f64, TransferDir::HostToDevice);
        }
        let array = Array::from_f64(mask);
        self.sample_mask = Some(array.clone());
        array
    }

    /// Fetch an array; [`ResidencyError`] when the pipeline never staged
    /// it (a sequencing bug, reported rather than panicking).
    pub fn array(&self, id: BufferId) -> Result<&Array, ResidencyError> {
        self.arrays.get(&id).ok_or(ResidencyError { buffer: id })
    }

    /// Replace an array functionally (the JIT kernels' write path). The
    /// buffer must already be resident, so capacity accounting stays
    /// balanced.
    pub fn replace(&mut self, id: BufferId, array: Array) -> Result<(), ResidencyError> {
        if !self.arrays.contains_key(&id) {
            return Err(ResidencyError { buffer: id });
        }
        self.arrays.insert(id, array);
        Ok(())
    }
}

impl OmpStore {
    /// Fetch an f64 device buffer (must be resident).
    pub fn f64_buf(&self, id: BufferId) -> Result<&DeviceBuffer<f64>, ResidencyError> {
        self.f64_bufs.get(&id).ok_or(ResidencyError { buffer: id })
    }

    /// Fetch an f64 device buffer mutably.
    pub fn f64_buf_mut(&mut self, id: BufferId) -> Result<&mut DeviceBuffer<f64>, ResidencyError> {
        self.f64_bufs
            .get_mut(&id)
            .ok_or(ResidencyError { buffer: id })
    }

    /// Fetch the pixels buffer (must be resident).
    pub fn pixels(&self) -> Result<&DeviceBuffer<i64>, ResidencyError> {
        self.i64_bufs.get(&BufferId::Pixels).ok_or(ResidencyError {
            buffer: BufferId::Pixels,
        })
    }

    /// Fetch the pixels buffer mutably.
    pub fn pixels_mut(&mut self) -> Result<&mut DeviceBuffer<i64>, ResidencyError> {
        self.i64_bufs
            .get_mut(&BufferId::Pixels)
            .ok_or(ResidencyError {
                buffer: BufferId::Pixels,
            })
    }

    /// Take several f64 buffers out at once to satisfy the borrow checker
    /// when a kernel reads some and writes others; returns them afterwards
    /// with [`OmpStore::put_back`].
    pub fn take(&mut self, id: BufferId) -> Result<DeviceBuffer<f64>, ResidencyError> {
        self.f64_bufs
            .remove(&id)
            .ok_or(ResidencyError { buffer: id })
    }

    /// Return a buffer taken with [`OmpStore::take`].
    pub fn put_back(&mut self, id: BufferId, buf: DeviceBuffer<f64>) {
        self.f64_bufs.insert(id, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_workspace;
    use accel_sim::NodeCalib;

    fn ctx() -> Context {
        Context::new(NodeCalib::default())
    }

    #[test]
    fn omp_roundtrip_preserves_data() {
        let mut ws = test_workspace(2, 64, 8);
        let mut c = ctx();
        let mut store = AccelStore::omp();
        store.ensure_device(&mut c, &ws, BufferId::Signal).unwrap();
        assert!(store.resident(BufferId::Signal));
        let original = ws.obs.signal.clone();
        ws.obs.signal.fill(0.0);
        store.update_host(&mut c, &mut ws, BufferId::Signal);
        assert_eq!(ws.obs.signal, original);
    }

    #[test]
    fn jit_roundtrip_preserves_data() {
        let mut ws = test_workspace(2, 64, 8);
        let mut c = ctx();
        let mut store = AccelStore::jit();
        store.ensure_device(&mut c, &ws, BufferId::Pixels).unwrap();
        let original = ws.obs.pixels.clone();
        ws.obs.pixels.fill(0);
        store.update_host(&mut c, &mut ws, BufferId::Pixels);
        assert_eq!(ws.obs.pixels, original);
    }

    #[test]
    fn ensure_device_is_idempotent() {
        let ws = test_workspace(1, 32, 4);
        let mut c = ctx();
        let mut store = AccelStore::omp();
        store.ensure_device(&mut c, &ws, BufferId::Signal).unwrap();
        let uploaded = c.stats()["accel_data_update_device"].calls;
        store.ensure_device(&mut c, &ws, BufferId::Signal).unwrap();
        assert_eq!(c.stats()["accel_data_update_device"].calls, uploaded);
    }

    #[test]
    fn jit_charges_pool_overhead() {
        let ws = test_workspace(1, 1024, 4);
        let mut c = ctx();
        let mut store = AccelStore::jit();
        store.ensure_device(&mut c, &ws, BufferId::Signal).unwrap();
        let expected =
            (ws.byte_len(BufferId::Signal) as f64 * c.calib.framework.jit_mem_overhead) as u64;
        assert_eq!(c.device_in_use(), expected);
        store.clear(&mut c);
        assert_eq!(c.device_in_use(), 0);
    }

    #[test]
    fn omp_clear_releases_everything() {
        let ws = test_workspace(2, 128, 8);
        let mut c = ctx();
        let mut store = AccelStore::omp();
        for id in [BufferId::Signal, BufferId::Quats, BufferId::Pixels] {
            store.ensure_device(&mut c, &ws, id).unwrap();
        }
        assert!(c.device_in_use() > 0);
        store.clear(&mut c);
        assert_eq!(c.device_in_use(), 0);
        assert!(!store.resident(BufferId::Signal));
    }

    #[test]
    fn jit_sample_mask_matches_intervals() {
        let ws = test_workspace(2, 100, 4);
        let mut c = ctx();
        let mut store = JitStore::default();
        let mask = store.sample_mask(&mut c, &ws);
        let m = mask.as_f64();
        let mut expected = vec![0.0; 100];
        for iv in &ws.obs.intervals {
            expected[iv.start..iv.end].fill(1.0);
        }
        assert_eq!(m, expected.as_slice());
        // Cached on second use.
        let transfers = c.stats()["accel_data_update_device"].calls;
        store.sample_mask(&mut c, &ws);
        assert_eq!(c.stats()["accel_data_update_device"].calls, transfers);
    }

    #[test]
    fn none_store_is_inert() {
        let mut ws = test_workspace(1, 16, 4);
        let mut c = ctx();
        let mut store = AccelStore::None;
        store.ensure_device(&mut c, &ws, BufferId::Signal).unwrap();
        assert!(!store.resident(BufferId::Signal));
        store.update_host(&mut c, &mut ws, BufferId::Signal);
        store.clear(&mut c);
        assert_eq!(c.device_in_use(), 0);
        assert!(c.stats().is_empty());
    }
}
