//! Shared test fixtures (also used by the workspace's integration tests
//! and benches, hence a normal public module).

use crate::data::{Detector, FocalPlane, Interval, Observation, SkyGeometry};
use crate::quat;
use crate::workspace::Workspace;
use toast_healpix::Nside;

/// A small focal plane with detectors fanned out around the boresight.
pub fn small_focal_plane(n: usize) -> FocalPlane {
    FocalPlane {
        detectors: (0..n)
            .map(|i| {
                let fan = quat::from_axis_angle([1.0, 0.0, 0.0], 0.02 * i as f64);
                let pol = quat::from_axis_angle([0.0, 0.0, 1.0], 0.5 * i as f64);
                Detector {
                    name: format!("D{i:03}"),
                    quat: quat::mul(fan, pol),
                    pol_efficiency: 0.9 + 0.01 * (i % 10) as f64,
                    noise_weight: 1.0 + 0.1 * i as f64,
                    net: 1.0,
                    fknee: 0.1,
                    alpha: 1.0,
                }
            })
            .collect(),
    }
}

/// A deterministic observation with a slowly precessing boresight, varied
/// interval lengths (including a gap), and pseudo-random signal.
pub fn test_workspace(n_det: usize, n_samp: usize, nside: u64) -> Workspace {
    let fp = small_focal_plane(n_det);
    // Varying interval lengths with gaps, exercising the padding paths.
    let mut intervals = Vec::new();
    let mut s = 0usize;
    let mut len = n_samp / 7 + 1;
    while s < n_samp {
        let end = (s + len).min(n_samp);
        intervals.push(Interval::new(s, end));
        s = end + 3; // 3-sample gap
        len = (len * 2 + 1) % (n_samp / 3 + 2) + 1;
    }
    let mut obs = Observation::new(&fp, n_samp, 19.0, intervals, 3);

    // Precessing boresight: spin about z composed with a tilted cone.
    for i in 0..n_samp {
        let t = i as f64 / n_samp as f64;
        let spin = quat::from_axis_angle([0.0, 0.0, 1.0], 20.0 * t);
        let prec = quat::from_axis_angle([0.0, 1.0, 0.0], 0.9 + 0.3 * (2.0 * t).sin());
        let q = quat::mul(prec, spin);
        obs.boresight[4 * i..4 * i + 4].copy_from_slice(&q);
    }
    // Deterministic irregular signal.
    for (i, v) in obs.signal.iter_mut().enumerate() {
        *v = ((i as f64 * 0.734).sin() * 13.0).fract() + (i % 11) as f64 * 0.1;
    }

    let geom = SkyGeometry {
        nside: Nside::new(nside).unwrap(),
        nest: false,
        nnz: 3,
    };
    let mut ws = Workspace::new(obs, geom, (n_samp / 10).max(1));
    // A structured input sky map.
    for (p, v) in ws.sky_map.iter_mut().enumerate() {
        *v = ((p % 17) as f64 - 8.0) * 0.25;
    }
    // Non-trivial amplitudes and preconditioner.
    for (i, a) in ws.amplitudes.iter_mut().enumerate() {
        *a = ((i * 7) % 13) as f64 * 0.3 - 1.0;
    }
    for (i, p) in ws.precond.iter_mut().enumerate() {
        *p = 0.5 + ((i * 3) % 5) as f64 * 0.2;
    }
    ws
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_has_varied_intervals_and_gaps() {
        let ws = test_workspace(3, 200, 8);
        assert!(ws.obs.intervals.len() >= 2);
        let lens: Vec<usize> = ws.obs.intervals.iter().map(|iv| iv.len()).collect();
        assert!(
            lens.windows(2).any(|w| w[0] != w[1]),
            "interval lengths must vary: {lens:?}"
        );
        assert!(ws.obs.science_samples() < ws.obs.n_samples, "needs gaps");
    }

    #[test]
    fn boresight_quats_are_unit() {
        let ws = test_workspace(1, 64, 4);
        for i in 0..64 {
            let q = &ws.obs.boresight[4 * i..4 * i + 4];
            let n = crate::quat::norm([q[0], q[1], q[2], q[3]]);
            assert!((n - 1.0).abs() < 1e-12);
        }
    }
}
