//! Property-based tests for the HEALPix pixelisation.

use proptest::prelude::*;
use std::f64::consts::PI;
use toast_healpix::{ang, convert, nest, ring, Nside};

fn arb_nside() -> impl Strategy<Value = Nside> {
    (0u32..=10).prop_map(|order| Nside::new(1 << order).unwrap())
}

fn arb_angles() -> impl Strategy<Value = (f64, f64)> {
    // Stay epsilon away from the poles where phi degenerates.
    (1e-6..(PI - 1e-6), 0.0..(2.0 * PI))
}

proptest! {
    /// Every angle maps to a valid pixel index in both orderings.
    #[test]
    fn pixel_in_range(ns in arb_nside(), (theta, phi) in arb_angles()) {
        prop_assert!(ring::ang2pix_ring(ns, theta, phi) < ns.npix());
        prop_assert!(nest::ang2pix_nest(ns, theta, phi) < ns.npix());
    }

    /// The independently implemented RING and NESTED ang2pix algorithms
    /// agree through the ordering conversion.
    #[test]
    fn orderings_agree(ns in arb_nside(), (theta, phi) in arb_angles()) {
        let r = ring::ang2pix_ring(ns, theta, phi);
        let n = nest::ang2pix_nest(ns, theta, phi);
        prop_assert_eq!(convert::nest2ring(ns, n), r);
        prop_assert_eq!(convert::ring2nest(ns, r), n);
    }

    /// nest2ring and ring2nest are mutual inverses on arbitrary pixels.
    #[test]
    fn conversion_roundtrip(ns in arb_nside(), raw: u64) {
        let pix = raw % ns.npix();
        prop_assert_eq!(convert::ring2nest(ns, convert::nest2ring(ns, pix)), pix);
        prop_assert_eq!(convert::nest2ring(ns, convert::ring2nest(ns, pix)), pix);
    }

    /// A pixel centre maps back to the same pixel (both orderings).
    #[test]
    fn centre_roundtrip(ns in arb_nside(), raw: u64) {
        let pix = raw % ns.npix();
        let (theta, phi) = ring::pix2ang_ring(ns, pix);
        prop_assert_eq!(ring::ang2pix_ring(ns, theta, phi), pix);
        let (theta, phi) = nest::pix2ang_nest(ns, pix);
        prop_assert_eq!(nest::ang2pix_nest(ns, theta, phi), pix);
    }

    /// The query point always lies within ~2 pixel radii of the centre of
    /// the pixel it is assigned to (no wild mis-assignments).
    #[test]
    fn assignment_is_local(ns in arb_nside(), (theta, phi) in arb_angles()) {
        let pix = ring::ang2pix_ring(ns, theta, phi);
        let centre = ring::pix2vec_ring(ns, pix);
        let query = ang::ang2vec(theta, phi);
        let limit = 2.0 * (ns.pixel_area() / PI).sqrt();
        prop_assert!(ang::angdist(query, centre) < limit);
    }

    /// Vector and angle entry points agree.
    #[test]
    fn vec_matches_ang(ns in arb_nside(), (theta, phi) in arb_angles()) {
        let v = ang::ang2vec(theta, phi);
        prop_assert_eq!(ring::vec2pix_ring(ns, v), ring::ang2pix_ring(ns, theta, phi));
        prop_assert_eq!(nest::vec2pix_nest(ns, v), nest::ang2pix_nest(ns, theta, phi));
    }

    /// z-order encode/decode round-trips for arbitrary face coordinates.
    #[test]
    fn zorder_roundtrip(ix in 0u64..(1 << 29), iy in 0u64..(1 << 29)) {
        let z = nest::xy2zorder(ix, iy);
        prop_assert_eq!(nest::zorder2xy(z), (ix, iy));
    }
}
