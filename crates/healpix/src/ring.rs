//! RING-ordered pixelisation: pixels are numbered along iso-latitude rings
//! from north to south, which is the ordering map-making codes use because
//! spherical-harmonic transforms walk rings.

use crate::ang::phi_to_tt;
use crate::{isqrt, Nside};

/// Angles `(theta, phi)` → RING pixel index.
///
/// `theta` is the colatitude in `[0, π]`; `phi` is unrestricted (wrapped).
pub fn ang2pix_ring(nside: Nside, theta: f64, phi: f64) -> u64 {
    debug_assert!((0.0..=std::f64::consts::PI).contains(&theta));
    zphi2pix_ring(nside, theta.cos(), phi)
}

/// `(z = cos θ, phi)` → RING pixel index.
///
/// The primitive entry point (the HEALPix C library's `vec2pix` also works
/// in `z` directly): callers that already have a unit vector avoid the
/// `acos`/`cos` round-trip, and the traced arrayjit reimplementation of
/// `pixels_healpix` mirrors this function's operations one-for-one so the
/// two agree bit-exactly.
pub fn zphi2pix_ring(nside: Nside, z: f64, phi: f64) -> u64 {
    debug_assert!((-1.0..=1.0).contains(&z));
    let n = nside.get() as i64;
    let za = z.abs();
    let tt = phi_to_tt(phi);

    if za <= 2.0 / 3.0 {
        // Equatorial region: rings of constant length 4*nside.
        let temp1 = n as f64 * (0.5 + tt);
        let temp2 = n as f64 * (z * 0.75);
        let jp = (temp1 - temp2) as i64; // ascending edge line index
        let jm = (temp1 + temp2) as i64; // descending edge line index
        let ir = n + 1 + jp - jm; // ring number, 1 ..= 2n+1
        let kshift = 1 - (ir & 1);
        // Floor division (not truncation): the sum can be -1 at the region
        // boundary, and the traced arrayjit reimplementation of this kernel
        // uses f64 floor — the two must agree bit-for-bit.
        let mut ip = (jp + jm - n + kshift + 1).div_euclid(2);
        ip = ip.rem_euclid(4 * n);
        (nside.ncap() as i64 + (ir - 1) * 4 * n + ip) as u64
    } else {
        // Polar caps: ring `ir` (counted from the nearest pole) holds 4*ir
        // pixels.
        let tp = tt.fract();
        let tmp = n as f64 * (3.0 * (1.0 - za)).sqrt();
        let jp = (tp * tmp) as i64;
        let jm = ((1.0 - tp) * tmp) as i64;
        let ir = jp + jm + 1;
        let mut ip = (tt * ir as f64) as i64;
        ip = ip.rem_euclid(4 * ir);
        if z > 0.0 {
            (2 * ir * (ir - 1) + ip) as u64
        } else {
            (nside.npix() as i64 - 2 * ir * (ir + 1) + ip) as u64
        }
    }
}

/// Unit vector → RING pixel index (works in `z` directly, no `acos`).
#[inline]
pub fn vec2pix_ring(nside: Nside, v: [f64; 3]) -> u64 {
    let norm = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    let z = (v[2] / norm).clamp(-1.0, 1.0);
    let mut phi = v[1].atan2(v[0]);
    if phi < 0.0 {
        phi += 2.0 * std::f64::consts::PI;
    }
    zphi2pix_ring(nside, z, phi)
}

/// RING pixel index → centre `(theta, phi)`.
pub fn pix2ang_ring(nside: Nside, pix: u64) -> (f64, f64) {
    debug_assert!(pix < nside.npix());
    let n = nside.get();
    let npix = nside.npix();
    let ncap = nside.ncap();
    use std::f64::consts::PI;

    if pix < ncap {
        // North polar cap.
        let iring = (1 + isqrt(1 + 2 * pix)) >> 1;
        let iphi = (pix + 1) - 2 * iring * (iring - 1);
        let z = 1.0 - (iring * iring) as f64 * (4.0 / npix as f64);
        let phi = (iphi as f64 - 0.5) * PI / (2.0 * iring as f64);
        (z.acos(), phi)
    } else if pix < npix - ncap {
        // Equatorial belt.
        let ip = pix - ncap;
        let iring = ip / (4 * n) + n;
        let iphi = ip % (4 * n) + 1;
        // Odd rings are shifted by half a pixel width.
        let fodd = if (iring + n) & 1 == 1 { 1.0 } else { 0.5 };
        let z = (2.0 * n as f64 - iring as f64) * 2.0 / (3.0 * n as f64);
        let phi = (iphi as f64 - fodd) * PI / (2.0 * n as f64);
        (z.acos(), phi)
    } else {
        // South polar cap.
        let ip = npix - pix;
        let iring = (1 + isqrt(2 * ip - 1)) >> 1;
        let iphi = 4 * iring + 1 - (ip - 2 * iring * (iring - 1));
        let z = -1.0 + (iring * iring) as f64 * (4.0 / npix as f64);
        let phi = (iphi as f64 - 0.5) * PI / (2.0 * iring as f64);
        (z.acos(), phi)
    }
}

/// RING pixel index → unit vector at the pixel centre.
#[inline]
pub fn pix2vec_ring(nside: Nside, pix: u64) -> [f64; 3] {
    let (theta, phi) = pix2ang_ring(nside, pix);
    crate::ang::ang2vec(theta, phi)
}

/// Which iso-latitude ring (1-based, from the north pole) a RING pixel is
/// on, plus its index within the ring and the ring length.
pub fn ring_of(nside: Nside, pix: u64) -> RingInfo {
    let n = nside.get();
    let npix = nside.npix();
    let ncap = nside.ncap();
    if pix < ncap {
        let iring = (1 + isqrt(1 + 2 * pix)) >> 1;
        RingInfo {
            ring: iring,
            index: pix - 2 * iring * (iring - 1),
            length: 4 * iring,
        }
    } else if pix < npix - ncap {
        let ip = pix - ncap;
        RingInfo {
            ring: ip / (4 * n) + n,
            index: ip % (4 * n),
            length: 4 * n,
        }
    } else {
        let ip = npix - pix;
        let iring = (1 + isqrt(2 * ip - 1)) >> 1;
        RingInfo {
            ring: 4 * n - iring,
            index: 4 * iring - (ip - 2 * iring * (iring - 1)),
            length: 4 * iring,
        }
    }
}

/// Location of a pixel on its iso-latitude ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingInfo {
    /// Ring number, 1-based from the north pole (`1 ..= 4*nside - 1`).
    pub ring: u64,
    /// Zero-based index within the ring.
    pub index: u64,
    /// Number of pixels on the ring.
    pub length: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ang::ang2vec;
    use std::f64::consts::PI;

    fn nside(n: u64) -> Nside {
        Nside::new(n).unwrap()
    }

    #[test]
    fn poles_land_in_first_and_last_rings() {
        for n in [1u64, 2, 4, 16, 256] {
            let ns = nside(n);
            for k in 0..8 {
                let phi = k as f64 * PI / 4.0 + 0.01;
                let p_north = ang2pix_ring(ns, 1e-12, phi);
                assert!(p_north < 4, "nside {n} north pix {p_north}");
                let p_south = ang2pix_ring(ns, PI - 1e-12, phi);
                assert!(p_south >= ns.npix() - 4, "nside {n} south pix {p_south}");
            }
        }
    }

    #[test]
    fn all_pixels_reachable_nside_small() {
        // Pixel centres map back to themselves, covering every pixel.
        for n in [1u64, 2, 4, 8] {
            let ns = nside(n);
            for pix in 0..ns.npix() {
                let (theta, phi) = pix2ang_ring(ns, pix);
                assert_eq!(ang2pix_ring(ns, theta, phi), pix, "nside {n} pix {pix}");
            }
        }
    }

    #[test]
    fn equator_ring_is_centered() {
        // Query the *centre* of the first equator-ring pixel: (θ = π/2,
        // phi = half a pixel width). phi = 0 would sit exactly on a pixel
        // boundary where FP fuzz legitimately picks either neighbour.
        let ns = nside(8);
        let phi = 0.5 * PI / (2.0 * 8.0);
        let pix = ang2pix_ring(ns, PI / 2.0, phi);
        let info = ring_of(ns, pix);
        assert_eq!(info.ring, 2 * 8); // the equator ring is ring 2*nside
        assert_eq!(info.length, 4 * 8);
        assert_eq!(info.index, 0);
    }

    #[test]
    fn ring_of_partitions_all_pixels() {
        let ns = nside(4);
        let mut count_per_ring = vec![0u64; ns.nrings() as usize + 1];
        for pix in 0..ns.npix() {
            let info = ring_of(ns, pix);
            assert!(info.ring >= 1 && info.ring <= ns.nrings());
            assert!(info.index < info.length, "pix {pix}: {info:?}");
            count_per_ring[info.ring as usize] += 1;
        }
        for ring in 1..=ns.nrings() {
            let expected = if ring < ns.get() {
                4 * ring
            } else if ring <= 3 * ns.get() {
                4 * ns.get()
            } else {
                4 * (4 * ns.get() - ring)
            };
            assert_eq!(count_per_ring[ring as usize], expected, "ring {ring}");
        }
    }

    #[test]
    fn pixel_centers_are_close_to_query_points() {
        // A point and the centre of the pixel it falls in should be within
        // ~2 pixel radii of each other.
        let ns = nside(64);
        let max_dist = 2.0 * (ns.pixel_area() / PI).sqrt();
        let mut theta = 0.05;
        while theta < PI {
            let mut phi = 0.0;
            while phi < 2.0 * PI {
                let pix = ang2pix_ring(ns, theta, phi);
                let c = pix2vec_ring(ns, pix);
                let d = crate::ang::angdist(ang2vec(theta, phi), c);
                assert!(d < max_dist, "theta {theta} phi {phi}: dist {d}");
                phi += 0.37;
            }
            theta += 0.23;
        }
    }

    #[test]
    fn vec_and_ang_agree() {
        let ns = nside(32);
        for i in 0..200 {
            let theta = 0.01 + 3.12 * (i as f64 / 200.0);
            let phi = 6.2 * ((i * 37 % 200) as f64 / 200.0);
            assert_eq!(
                ang2pix_ring(ns, theta, phi),
                vec2pix_ring(ns, ang2vec(theta, phi))
            );
        }
    }

    #[test]
    fn nside_one_has_twelve_base_pixels() {
        let ns = nside(1);
        let mut seen = std::collections::HashSet::new();
        let mut theta = 0.05;
        while theta < PI {
            let mut phi = 0.01;
            while phi < 2.0 * PI {
                seen.insert(ang2pix_ring(ns, theta, phi));
                phi += 0.05;
            }
            theta += 0.02;
        }
        assert_eq!(seen.len(), 12);
        assert!(seen.iter().all(|&p| p < 12));
    }
}
