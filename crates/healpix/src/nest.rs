//! NESTED-ordered pixelisation: the sphere is divided into 12 base faces,
//! each recursively quartered; a pixel index interleaves the bits of its
//! in-face `(x, y)` coordinates (a z-order curve). NESTED keeps spatially
//! close pixels numerically close, which is why TOAST's pointing kernel
//! defaults to it.

use crate::ang::{phi_to_tt, vec2ang};
use crate::Nside;

/// Spread the low 32 bits of `v` so bit `i` moves to bit `2i`.
#[inline]
pub fn spread_bits(v: u64) -> u64 {
    let mut x = v & 0xffff_ffff;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread_bits`]: gather even-position bits back together.
#[inline]
pub fn compress_bits(v: u64) -> u64 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
    x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
    x
}

/// In-face coordinates `(ix, iy)` → z-order index within the face.
#[inline]
pub fn xy2zorder(ix: u64, iy: u64) -> u64 {
    spread_bits(ix) | (spread_bits(iy) << 1)
}

/// z-order index within a face → in-face coordinates `(ix, iy)`.
#[inline]
pub fn zorder2xy(z: u64) -> (u64, u64) {
    (compress_bits(z), compress_bits(z >> 1))
}

/// Decompose a NESTED pixel into `(face, ix, iy)`.
#[inline]
pub fn nest2fxy(nside: Nside, pix: u64) -> (u64, u64, u64) {
    let face_area = nside.get() * nside.get();
    let face = pix / face_area;
    let (ix, iy) = zorder2xy(pix % face_area);
    (face, ix, iy)
}

/// Compose a NESTED pixel from `(face, ix, iy)`.
#[inline]
pub fn fxy2nest(nside: Nside, face: u64, ix: u64, iy: u64) -> u64 {
    face * nside.get() * nside.get() + xy2zorder(ix, iy)
}

/// Angles `(theta, phi)` → NESTED pixel index.
///
/// Independent of the RING algorithm; the test suite cross-checks the two
/// through [`crate::convert::nest2ring`].
pub fn ang2pix_nest(nside: Nside, theta: f64, phi: f64) -> u64 {
    debug_assert!((0.0..=std::f64::consts::PI).contains(&theta));
    let n = nside.get() as i64;
    let z = theta.cos();
    let za = z.abs();
    let tt = phi_to_tt(phi);

    let (face, ix, iy) = if za <= 2.0 / 3.0 {
        // Equatorial region: locate between the ascending/descending edge
        // lines, then pick the face from the quotients.
        let temp1 = n as f64 * (0.5 + tt);
        let temp2 = n as f64 * (z * 0.75);
        let jp = (temp1 - temp2) as i64;
        let jm = (temp1 + temp2) as i64;
        let ifp = jp >> nside.order();
        let ifm = jm >> nside.order();
        let face = if ifp == ifm {
            (ifp & 3) + 4
        } else if ifp < ifm {
            ifp & 3
        } else {
            (ifm & 3) + 8
        };
        let ix = jm & (n - 1);
        let iy = n - (jp & (n - 1)) - 1;
        (face as u64, ix as u64, iy as u64)
    } else {
        // Polar caps.
        let ntt = (tt as i64).min(3);
        let tp = tt - ntt as f64;
        let tmp = n as f64 * (3.0 * (1.0 - za)).sqrt();
        let jp = ((tp * tmp) as i64).min(n - 1);
        let jm = (((1.0 - tp) * tmp) as i64).min(n - 1);
        if z >= 0.0 {
            (ntt as u64, (n - jm - 1) as u64, (n - jp - 1) as u64)
        } else {
            ((ntt + 8) as u64, jp as u64, jm as u64)
        }
    };
    fxy2nest(nside, face, ix, iy)
}

/// Unit vector → NESTED pixel index.
#[inline]
pub fn vec2pix_nest(nside: Nside, v: [f64; 3]) -> u64 {
    let (theta, phi) = vec2ang(v);
    ang2pix_nest(nside, theta, phi)
}

/// NESTED pixel index → centre `(theta, phi)`.
///
/// Implemented by converting to RING ordering and delegating, which the
/// test suite validates against `ang2pix_nest` round-trips.
pub fn pix2ang_nest(nside: Nside, pix: u64) -> (f64, f64) {
    crate::ring::pix2ang_ring(nside, crate::convert::nest2ring(nside, pix))
}

/// NESTED pixel index → unit vector at the pixel centre.
#[inline]
pub fn pix2vec_nest(nside: Nside, pix: u64) -> [f64; 3] {
    let (theta, phi) = pix2ang_nest(nside, pix);
    crate::ang::ang2vec(theta, phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn nside(n: u64) -> Nside {
        Nside::new(n).unwrap()
    }

    #[test]
    fn bit_spread_roundtrip() {
        for v in [0u64, 1, 2, 0xff, 0x1234, 0xffff_ffff] {
            assert_eq!(compress_bits(spread_bits(v)), v);
        }
    }

    #[test]
    fn zorder_roundtrip() {
        for ix in 0..32u64 {
            for iy in 0..32u64 {
                let z = xy2zorder(ix, iy);
                assert_eq!(zorder2xy(z), (ix, iy));
            }
        }
    }

    #[test]
    fn zorder_is_dense_within_face() {
        // For nside = 8, the 64 (ix, iy) pairs must map onto exactly 0..64.
        let mut seen = [false; 64];
        for ix in 0..8u64 {
            for iy in 0..8u64 {
                let z = xy2zorder(ix, iy) as usize;
                assert!(z < 64);
                assert!(!seen[z]);
                seen[z] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fxy_roundtrip() {
        let ns = nside(16);
        for face in 0..12 {
            for ix in [0u64, 3, 15] {
                for iy in [0u64, 7, 15] {
                    let pix = fxy2nest(ns, face, ix, iy);
                    assert!(pix < ns.npix());
                    assert_eq!(nest2fxy(ns, pix), (face, ix, iy));
                }
            }
        }
    }

    #[test]
    fn pixel_centres_roundtrip() {
        for n in [1u64, 2, 4, 8] {
            let ns = nside(n);
            for pix in 0..ns.npix() {
                let (theta, phi) = pix2ang_nest(ns, pix);
                assert_eq!(ang2pix_nest(ns, theta, phi), pix, "nside {n} pix {pix}");
            }
        }
    }

    #[test]
    fn poles_land_on_polar_faces() {
        let ns = nside(64);
        for k in 0..8 {
            let phi = 0.1 + k as f64 * PI / 4.0;
            let pn = ang2pix_nest(ns, 1e-12, phi);
            let (face, _, _) = nest2fxy(ns, pn);
            assert!(face < 4, "north face {face}");
            let ps = ang2pix_nest(ns, PI - 1e-12, phi);
            let (face, _, _) = nest2fxy(ns, ps);
            assert!((8..12).contains(&face), "south face {face}");
        }
    }

    #[test]
    fn equator_lands_on_equatorial_faces() {
        let ns = nside(64);
        let mut phi = 0.0;
        while phi < 2.0 * PI {
            let pix = ang2pix_nest(ns, PI / 2.0, phi);
            let (face, _, _) = nest2fxy(ns, pix);
            assert!((4..8).contains(&face), "phi {phi} face {face}");
            phi += 0.1;
        }
    }
}
