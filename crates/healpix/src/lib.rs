//! HEALPix (Hierarchical Equal Area isoLatitude Pixelisation) of the sphere.
//!
//! From-scratch implementation of the pixelisation of Górski et al. (2005),
//! covering what the TOAST `pixels_healpix` kernel and the map-making
//! pipeline need:
//!
//! * [`ring::ang2pix_ring`] / [`nest::ang2pix_nest`] — angles → pixel index
//!   in RING and NESTED ordering (two independent algorithms, cross-checked
//!   against each other in the test suite),
//! * [`ring::pix2ang_ring`] / [`nest::pix2ang_nest`] — pixel centres,
//! * [`convert::nest2ring`] / [`convert::ring2nest`] — ordering conversion,
//! * vector forms ([`ang::ang2vec`], [`ring::vec2pix_ring`], …).
//!
//! The resolution parameter `nside` must be a power of two; the sphere is
//! divided into `12 * nside^2` equal-area pixels arranged on `4*nside - 1`
//! iso-latitude rings.
//!
//! # Example
//!
//! ```
//! use toast_healpix::{Nside, ring::ang2pix_ring};
//!
//! let nside = Nside::new(64).unwrap();
//! // North pole lands in one of the four first-ring pixels.
//! let pix = ang2pix_ring(nside, 1e-9, 0.3);
//! assert!(pix < 4);
//! ```

#![forbid(unsafe_code)]

pub mod ang;
pub mod convert;
pub mod nest;
pub mod ring;

/// Largest supported resolution parameter (matches the HEALPix C++ library:
/// pixel indices stay well within `i64`).
pub const NSIDE_MAX: u64 = 1 << 29;

/// A validated HEALPix resolution parameter.
///
/// `Nside` is a power of two in `[1, 2^29]`. Constructing one up front lets
/// the hot pixelisation kernels assume validity without re-checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Nside {
    nside: u64,
    /// log2(nside), cached for the NESTED bit arithmetic.
    order: u32,
}

impl Nside {
    /// Validate and wrap a resolution parameter.
    pub fn new(nside: u64) -> Result<Self, InvalidNside> {
        if nside == 0 || nside > NSIDE_MAX || !nside.is_power_of_two() {
            return Err(InvalidNside(nside));
        }
        Ok(Self {
            nside,
            order: nside.trailing_zeros(),
        })
    }

    /// The raw resolution parameter.
    #[inline]
    pub fn get(self) -> u64 {
        self.nside
    }

    /// `log2(nside)`.
    #[inline]
    pub fn order(self) -> u32 {
        self.order
    }

    /// Total number of pixels, `12 * nside^2`.
    #[inline]
    pub fn npix(self) -> u64 {
        12 * self.nside * self.nside
    }

    /// Pixels in the (closed) north polar cap, `2 * nside * (nside - 1)`.
    #[inline]
    pub fn ncap(self) -> u64 {
        2 * self.nside * (self.nside - 1)
    }

    /// Solid angle of one pixel in steradians (all pixels are equal-area).
    #[inline]
    pub fn pixel_area(self) -> f64 {
        4.0 * std::f64::consts::PI / self.npix() as f64
    }

    /// Number of iso-latitude rings, `4 * nside - 1`.
    #[inline]
    pub fn nrings(self) -> u64 {
        4 * self.nside - 1
    }
}

/// Error returned by [`Nside::new`] for a non-power-of-two or out-of-range
/// resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidNside(pub u64);

impl std::fmt::Display for InvalidNside {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid nside {}: must be a power of two in [1, 2^29]",
            self.0
        )
    }
}

impl std::error::Error for InvalidNside {}

/// Integer square root of a `u64`, exact.
#[inline]
pub(crate) fn isqrt(v: u64) -> u64 {
    let mut r = (v as f64).sqrt() as u64;
    // Correct the float estimate (can be off by one either way near 2^53).
    while r > 0 && r.checked_mul(r).is_none_or(|sq| sq > v) {
        r -= 1;
    }
    while (r + 1).checked_mul(r + 1).is_some_and(|sq| sq <= v) {
        r += 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nside_validation() {
        assert!(Nside::new(0).is_err());
        assert!(Nside::new(3).is_err());
        assert!(Nside::new(6).is_err());
        assert!(Nside::new(NSIDE_MAX * 2).is_err());
        for order in 0..=29 {
            let n = Nside::new(1 << order).unwrap();
            assert_eq!(n.order(), order);
            assert_eq!(n.npix(), 12u64 << (2 * order));
        }
    }

    #[test]
    fn pixel_area_covers_sphere() {
        let n = Nside::new(16).unwrap();
        let total = n.pixel_area() * n.npix() as f64;
        assert!((total - 4.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn isqrt_exact() {
        for v in 0..10_000u64 {
            let r = isqrt(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "v={v} r={r}");
        }
        assert_eq!(isqrt(u64::MAX), (1u64 << 32) - 1);
    }
}
