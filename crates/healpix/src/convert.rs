//! Conversions between NESTED and RING pixel orderings.
//!
//! Both directions use the face-geometry tables of the reference HEALPix
//! implementation: `JRLL` gives each base face's ring offset, `JPLL` its
//! longitude offset in units of π/4.

use crate::{isqrt, Nside};

/// Ring offset of each base face (rings counted from the north pole in
/// units of `nside`).
const JRLL: [u64; 12] = [2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4];

/// Longitude offset of each base face in units of π/4.
const JPLL: [i64; 12] = [1, 3, 5, 7, 0, 2, 4, 6, 1, 3, 5, 7];

/// Convert a NESTED pixel index to the equivalent RING index.
pub fn nest2ring(nside: Nside, pix: u64) -> u64 {
    debug_assert!(pix < nside.npix());
    let n = nside.get() as i64;
    let (face, ix, iy) = crate::nest::nest2fxy(nside, pix);
    let (ix, iy) = (ix as i64, iy as i64);

    // Ring number counted from the north pole, 1 ..= 4*nside - 1.
    let jr = JRLL[face as usize] as i64 * n - ix - iy - 1;

    let (nr, start, kshift) = if jr < n {
        // North polar cap.
        let nr = jr;
        (nr, 2 * nr * (nr - 1), 0)
    } else if jr > 3 * n {
        // South polar cap.
        let nr = 4 * n - jr;
        (nr, nside.npix() as i64 - 2 * nr * (nr + 1), 0)
    } else {
        // Equatorial belt.
        (n, nside.ncap() as i64 + (jr - n) * 4 * n, (jr - n) & 1)
    };

    let mut jp = (JPLL[face as usize] * nr + ix - iy + 1 + kshift) / 2;
    if jp > 4 * nr {
        jp -= 4 * nr;
    }
    if jp < 1 {
        jp += 4 * nr;
    }
    (start + jp - 1) as u64
}

/// Convert a RING pixel index to the equivalent NESTED index.
pub fn ring2nest(nside: Nside, pix: u64) -> u64 {
    debug_assert!(pix < nside.npix());
    let n = nside.get() as i64;
    let npix = nside.npix() as i64;
    let ncap = nside.ncap() as i64;
    let p = pix as i64;

    // Recover (ring from north, longitude index 1-based, ring length unit,
    // shift, face).
    let (iring, iphi, kshift, nr, face): (i64, i64, i64, i64, i64);
    if p < ncap {
        // North polar cap.
        let ir = ((1 + isqrt(1 + 2 * pix)) >> 1) as i64;
        iring = ir;
        iphi = p + 1 - 2 * ir * (ir - 1);
        kshift = 0;
        nr = ir;
        face = (iphi - 1) / nr;
    } else if p < npix - ncap {
        // Equatorial belt.
        let ip = p - ncap;
        let ir = ip / (4 * n) + n;
        iring = ir;
        iphi = ip % (4 * n) + 1;
        kshift = (ir + n) & 1;
        nr = n;
        let ire = ir - n + 1;
        let irm = 2 * n + 2 - ire;
        let ifm = (iphi - ire / 2 + n - 1) / n;
        let ifp = (iphi - irm / 2 + n - 1) / n;
        face = if ifp == ifm {
            ifp | 4
        } else if ifp < ifm {
            ifp
        } else {
            ifm + 8
        };
    } else {
        // South polar cap.
        let ip = npix - p;
        let ir = ((1 + isqrt((2 * ip - 1) as u64)) >> 1) as i64;
        iring = 4 * n - ir;
        iphi = 4 * ir + 1 - (ip - 2 * ir * (ir - 1));
        kshift = 0;
        nr = ir;
        face = 8 + (iphi - 1) / nr;
    }

    let irt = iring - JRLL[face as usize] as i64 * n + 1; // in [-nside+1, 0]
    let mut ipt = 2 * iphi - JPLL[face as usize] * nr - kshift - 1;
    if ipt >= 2 * n {
        ipt -= 8 * n;
    }
    let ix = (ipt - irt) >> 1;
    let iy = (-ipt - irt) >> 1;
    crate::nest::fxy2nest(nside, face as u64, ix as u64, iy as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::ang2pix_nest;
    use crate::ring::ang2pix_ring;
    use std::f64::consts::PI;

    fn nside(n: u64) -> Nside {
        Nside::new(n).unwrap()
    }

    #[test]
    fn nest2ring_is_a_bijection() {
        for n in [1u64, 2, 4, 8, 16] {
            let ns = nside(n);
            let mut seen = vec![false; ns.npix() as usize];
            for pix in 0..ns.npix() {
                let r = nest2ring(ns, pix) as usize;
                assert!(!seen[r], "nside {n}: ring pixel {r} hit twice");
                seen[r] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn ring2nest_inverts_nest2ring() {
        for n in [1u64, 2, 4, 8, 16, 32] {
            let ns = nside(n);
            for pix in 0..ns.npix() {
                assert_eq!(
                    ring2nest(ns, nest2ring(ns, pix)),
                    pix,
                    "nside {n} pix {pix}"
                );
            }
        }
    }

    #[test]
    fn the_two_ang2pix_algorithms_agree() {
        // ang2pix_ring and ang2pix_nest are implemented independently;
        // chained through nest2ring they must coincide everywhere.
        for n in [1u64, 4, 16, 128] {
            let ns = nside(n);
            let mut theta: f64 = 0.001;
            while theta < PI {
                let mut phi = 0.0;
                while phi < 2.0 * PI {
                    let via_ring = ang2pix_ring(ns, theta, phi);
                    let via_nest = nest2ring(ns, ang2pix_nest(ns, theta, phi));
                    assert_eq!(via_ring, via_nest, "nside {n} theta {theta} phi {phi}");
                    phi += 0.1731;
                }
                theta += 0.0917;
            }
        }
    }

    #[test]
    fn nside_one_orderings_coincide() {
        // At nside = 1 the two orderings are identical by construction.
        let ns = nside(1);
        for pix in 0..12 {
            assert_eq!(nest2ring(ns, pix), pix);
            assert_eq!(ring2nest(ns, pix), pix);
        }
    }
}
