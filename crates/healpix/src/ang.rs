//! Spherical-coordinate helpers shared by both pixelisation orderings.
//!
//! Conventions follow the HEALPix primer: colatitude `theta` in `[0, π]`
//! measured from the north pole, longitude `phi` in `[0, 2π)` increasing
//! eastward.

use std::f64::consts::{FRAC_PI_2, PI};

/// Convert `(theta, phi)` to a unit vector `(x, y, z)`.
#[inline]
pub fn ang2vec(theta: f64, phi: f64) -> [f64; 3] {
    let st = theta.sin();
    [st * phi.cos(), st * phi.sin(), theta.cos()]
}

/// Convert a (not necessarily normalised) vector to `(theta, phi)` with
/// `phi` wrapped into `[0, 2π)`.
#[inline]
pub fn vec2ang(v: [f64; 3]) -> (f64, f64) {
    let norm = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    let theta = if norm == 0.0 {
        0.0
    } else {
        (v[2] / norm).clamp(-1.0, 1.0).acos()
    };
    let mut phi = v[1].atan2(v[0]);
    if phi < 0.0 {
        phi += 2.0 * PI;
    }
    (theta, phi)
}

/// Reduce `phi` to `tt = phi / (π/2) mod 4`, the longitude coordinate both
/// `ang2pix` algorithms work in.
#[inline]
pub(crate) fn phi_to_tt(phi: f64) -> f64 {
    let mut tt = phi / FRAC_PI_2;
    tt %= 4.0;
    if tt < 0.0 {
        tt += 4.0;
    }
    tt
}

/// Great-circle angular distance between two unit vectors, in radians.
#[inline]
pub fn angdist(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dot = (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]).clamp(-1.0, 1.0);
    dot.acos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ang_vec() {
        for &(theta, phi) in &[
            (0.0, 0.0),
            (PI / 2.0, 0.0),
            (PI / 2.0, PI),
            (1.0, 2.0),
            (2.5, 5.9),
            (PI, 0.0),
        ] {
            let v = ang2vec(theta, phi);
            let (t2, p2) = vec2ang(v);
            assert!((theta - t2).abs() < 1e-12, "theta {theta} -> {t2}");
            // phi is undefined at the poles.
            if theta > 1e-9 && theta < PI - 1e-9 {
                let dp = (phi - p2).rem_euclid(2.0 * PI);
                assert!(dp < 1e-9 || (2.0 * PI - dp) < 1e-9, "phi {phi} -> {p2}");
            }
        }
    }

    #[test]
    fn unit_norm() {
        let v = ang2vec(1.1, 4.4);
        let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
        assert!((n - 1.0).abs() < 1e-14);
    }

    #[test]
    fn tt_wraps_into_zero_four() {
        assert!((phi_to_tt(0.0) - 0.0).abs() < 1e-15);
        assert!((phi_to_tt(FRAC_PI_2) - 1.0).abs() < 1e-12);
        assert!((phi_to_tt(-FRAC_PI_2) - 3.0).abs() < 1e-12);
        assert!((phi_to_tt(2.0 * PI + 0.1) - 0.1 / FRAC_PI_2).abs() < 1e-12);
        for i in -20..20 {
            let tt = phi_to_tt(i as f64);
            assert!((0.0..4.0).contains(&tt), "{tt}");
        }
    }

    #[test]
    fn angdist_basics() {
        let x = [1.0, 0.0, 0.0];
        let y = [0.0, 1.0, 0.0];
        assert!((angdist(x, y) - PI / 2.0).abs() < 1e-14);
        assert!(angdist(x, x) < 1e-7);
        assert!((angdist(x, [-1.0, 0.0, 0.0]) - PI).abs() < 1e-14);
    }
}
