//! An OpenMP-Target-Offload-like directive API over the simulated
//! accelerator.
//!
//! This crate is the workspace's stand-in for `#pragma omp target` code
//! compiled with NVHPC, reproducing the programming model of the paper's
//! OpenMP port:
//!
//! * **Explicit device memory**: [`buffer::DeviceBuffer`] is device-resident
//!   storage allocated through [`pool::Pool`], the manually implemented
//!   memory pool the paper built on top of `omp_target_alloc` (§ 3.1.2).
//! * **Map clauses** ([`map`]): `map(to:)`, `map(from:)`, `map(tofrom:)`
//!   and `update` transfers, each charged PCIe time.
//! * **Target regions** ([`target`]): `target teams distribute parallel
//!   for` with `collapse`, executing the loop body eagerly on host data
//!   while charging the device cost model. Work descriptors carry the
//!   per-item flops/bytes and a divergence factor — the paper's
//!   max-interval iteration guard is exactly such a divergent conditional.
//!
//! Unlike [`arrayjit`](../arrayjit/index.html), nothing is traced or
//! fused: what you launch is what runs, with low per-region overhead but
//! manual data movement — the trade-off the paper measures.

#![forbid(unsafe_code)]

pub mod buffer;
pub mod map;
pub mod pool;
pub mod target;

pub use buffer::DeviceBuffer;
pub use map::{map_from, map_to, map_tofrom, update_device, update_host};
pub use pool::{Pool, PoolStats};
pub use target::{target_parallel_for, target_parallel_for_collapse3, KernelSpec};
