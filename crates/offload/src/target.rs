//! Target regions: the `#pragma omp target teams distribute parallel for`
//! equivalent.
//!
//! A launch names its work with a [`KernelSpec`] (the information the
//! compiler + runtime would derive from the loop body), executes the body
//! eagerly on device buffers, and charges the simulated device. The
//! collapse-3 variant mirrors the paper's canonical kernel shape: a triple
//! loop over detectors × intervals × samples, collapsed for parallelism,
//! iterating to the precomputed *maximum* interval size with an in-body
//! guard — the guard's divergence cost is what `divergence` describes.

use accel_sim::{Context, KernelProfile};

/// Static description of a target region's per-item work.
#[derive(Debug, Clone, Copy)]
pub struct KernelSpec {
    /// Kernel name for per-kernel accounting (paper Fig. 6).
    pub name: &'static str,
    /// FP64 operations per loop iteration.
    pub flops_per_item: f64,
    /// Device-memory bytes touched per iteration.
    pub bytes_per_item: f64,
    /// SIMT divergence multiplier (≥ 1): 1.0 for straight-line bodies,
    /// higher for branch-heavy bodies like `pixels_healpix`.
    pub divergence: f64,
}

impl KernelSpec {
    /// A straight-line (non-divergent) kernel.
    pub const fn uniform(name: &'static str, flops_per_item: f64, bytes_per_item: f64) -> Self {
        Self {
            name,
            flops_per_item,
            bytes_per_item,
            divergence: 1.0,
        }
    }

    /// Same kernel with a divergence factor.
    pub const fn divergent(
        name: &'static str,
        flops_per_item: f64,
        bytes_per_item: f64,
        divergence: f64,
    ) -> Self {
        Self {
            name,
            flops_per_item,
            bytes_per_item,
            divergence,
        }
    }

    fn profile(&self, items: usize) -> KernelProfile {
        KernelProfile {
            name: self.name.to_string(),
            items: items as f64,
            flops_per_item: self.flops_per_item,
            bytes_per_item: self.bytes_per_item,
            divergence: self.divergence,
        }
    }
}

/// `#pragma omp target teams distribute parallel for` over `items`
/// iterations.
///
/// The body runs on the host against device buffers; the launch is charged
/// the OpenMP region-entry overhead plus the modelled device time.
pub fn target_parallel_for(
    ctx: &mut Context,
    spec: &KernelSpec,
    items: usize,
    mut body: impl FnMut(usize),
) {
    let region_overhead = ctx.calib.framework.omp_region;
    ctx.launch(spec.profile(items), region_overhead);
    for i in 0..items {
        body(i);
    }
}

/// The collapsed triple loop of the paper's kernels:
/// `collapse(3)` over `(n0, n1, n2)` — detectors × intervals × max
/// samples-per-interval, with the out-of-interval guard inside the body.
pub fn target_parallel_for_collapse3(
    ctx: &mut Context,
    spec: &KernelSpec,
    bounds: (usize, usize, usize),
    mut body: impl FnMut(usize, usize, usize),
) {
    let (n0, n1, n2) = bounds;
    let items = n0 * n1 * n2;
    let region_overhead = ctx.calib.framework.omp_region;
    ctx.launch(spec.profile(items), region_overhead);
    for i in 0..n0 {
        for j in 0..n1 {
            for k in 0..n2 {
                body(i, j, k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::NodeCalib;

    fn ctx() -> Context {
        Context::new(NodeCalib::default())
    }

    #[test]
    fn body_runs_for_every_item() {
        let mut c = ctx();
        let spec = KernelSpec::uniform("count", 1.0, 8.0);
        let mut sum = 0usize;
        target_parallel_for(&mut c, &spec, 100, |i| sum += i);
        assert_eq!(sum, 99 * 100 / 2);
        assert_eq!(c.stats()["count"].calls, 1);
    }

    #[test]
    fn collapse3_visits_the_full_cartesian_product() {
        let mut c = ctx();
        let spec = KernelSpec::uniform("c3", 1.0, 8.0);
        let mut visits = [0u32; 2 * 3 * 4];
        target_parallel_for_collapse3(&mut c, &spec, (2, 3, 4), |i, j, k| {
            visits[(i * 3 + j) * 4 + k] += 1;
        });
        assert!(visits.iter().all(|&v| v == 1));
        // Items reported to the device = collapsed product.
        let trace = c.trace();
        assert_eq!(trace.kernel_count(), 1);
    }

    #[test]
    fn divergence_inflates_device_time() {
        let mut c1 = ctx();
        let straight = KernelSpec::uniform("s", 100.0, 8.0);
        target_parallel_for(&mut c1, &straight, 1_000_000, |_| {});
        let mut c2 = ctx();
        let divergent = KernelSpec::divergent("s", 100.0, 8.0, 4.0);
        target_parallel_for(&mut c2, &divergent, 1_000_000, |_| {});
        assert!(c2.stats()["s"].seconds > 2.0 * c1.stats()["s"].seconds);
    }

    #[test]
    fn region_overhead_is_cheaper_than_jit_dispatch() {
        // The structural reason OpenMP offload is "consistently 20% faster"
        // in the paper's Fig. 4: lower per-launch overhead.
        let c = ctx();
        assert!(c.calib.framework.omp_region < c.calib.framework.jit_dispatch);
    }

    #[test]
    fn empty_launch_is_legal() {
        let mut c = ctx();
        let spec = KernelSpec::uniform("empty", 1.0, 8.0);
        target_parallel_for(&mut c, &spec, 0, |_| unreachable!());
        assert_eq!(c.stats()["empty"].calls, 1);
    }
}
