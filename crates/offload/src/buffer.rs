//! Device-resident buffers.
//!
//! A [`DeviceBuffer`] models memory allocated with `omp_target_alloc`: it
//! lives on the device, is only touched by target regions and transfer
//! operations, and its capacity counts against the device (and is tracked
//! in the simulation [`accel_sim::Context`] by the [`crate::pool::Pool`]
//! that produced it).
//!
//! The simulator executes numerics on the host, so the "device" storage is
//! a host `Vec` — but the API boundary is the real one: host code never
//! reads a `DeviceBuffer` directly, it goes through `update_host`.

/// Element types that can live in device buffers.
pub trait DeviceElem: Copy + Default + 'static {
    /// Bytes per element.
    const SIZE: usize;
}

impl DeviceElem for f64 {
    const SIZE: usize = 8;
}

impl DeviceElem for i64 {
    const SIZE: usize = 8;
}

impl DeviceElem for u8 {
    const SIZE: usize = 1;
}

/// A device allocation of `len` elements (capacity may be larger: pools
/// hand out size-class blocks).
#[derive(Debug)]
pub struct DeviceBuffer<T: DeviceElem> {
    pub(crate) storage: Vec<T>,
    len: usize,
    /// Bytes of device capacity this buffer holds (its size class).
    pub(crate) class_bytes: u64,
}

impl<T: DeviceElem> DeviceBuffer<T> {
    pub(crate) fn from_storage(storage: Vec<T>, len: usize, class_bytes: u64) -> Self {
        debug_assert!(storage.len() >= len);
        Self {
            storage,
            len,
            class_bytes,
        }
    }

    /// Logical length in elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical size in bytes.
    pub fn byte_len(&self) -> u64 {
        (self.len * T::SIZE) as u64
    }

    /// Device capacity held (size class), in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.class_bytes
    }

    /// Device-side view, for target-region bodies only.
    ///
    /// Host code outside a target region must use
    /// [`crate::map::update_host`] instead — reading this directly would be
    /// dereferencing a device pointer on the host.
    pub fn device_slice(&self) -> &[T] {
        &self.storage[..self.len]
    }

    /// Mutable device-side view, for target-region bodies only.
    pub fn device_slice_mut(&mut self) -> &mut [T] {
        &mut self.storage[..self.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_geometry() {
        let b = DeviceBuffer::from_storage(vec![0.0f64; 16], 10, 128);
        assert_eq!(b.len(), 10);
        assert_eq!(b.byte_len(), 80);
        assert_eq!(b.capacity_bytes(), 128);
        assert_eq!(b.device_slice().len(), 10);
        assert!(!b.is_empty());
    }

    #[test]
    fn device_slice_bounds_to_logical_len() {
        let mut b = DeviceBuffer::from_storage(vec![1i64; 8], 4, 64);
        b.device_slice_mut()[3] = 9;
        assert_eq!(b.device_slice(), &[1, 1, 1, 9]);
    }
}
