//! Map clauses: explicit host↔device data movement.
//!
//! OpenMP target regions name their data environment with `map(to:)`,
//! `map(from:)`, `map(tofrom:)` and `target update` directives. These
//! functions are their direct equivalents; every call charges PCIe
//! transfer time to the simulation context under the `accel_data_*`
//! labels of the paper's Fig. 6.

use accel_sim::{Context, MemoryError, TransferDir};

use crate::buffer::{DeviceBuffer, DeviceElem};
use crate::pool::Pool;

/// `map(to: host)` — allocate a device buffer and copy host data into it.
pub fn map_to<T: DeviceElem>(
    ctx: &mut Context,
    pool: &mut Pool<T>,
    host: &[T],
) -> Result<DeviceBuffer<T>, MemoryError> {
    let mut buf = pool.alloc(ctx, host.len())?;
    update_device(ctx, &mut buf, host);
    Ok(buf)
}

/// `map(alloc:)` followed by `map(tofrom:)` entry — same as [`map_to`] but
/// named for call sites where the buffer will also be read back.
pub fn map_tofrom<T: DeviceElem>(
    ctx: &mut Context,
    pool: &mut Pool<T>,
    host: &[T],
) -> Result<DeviceBuffer<T>, MemoryError> {
    map_to(ctx, pool, host)
}

/// `map(from:)` region exit — copy a device buffer back to host storage
/// and release it to the pool.
pub fn map_from<T: DeviceElem>(
    ctx: &mut Context,
    pool: &mut Pool<T>,
    buf: DeviceBuffer<T>,
    host: &mut [T],
) {
    update_host(ctx, &buf, host);
    pool.free(ctx, buf);
}

/// `target update to(...)` — refresh device data from the host.
pub fn update_device<T: DeviceElem>(ctx: &mut Context, buf: &mut DeviceBuffer<T>, host: &[T]) {
    assert_eq!(
        host.len(),
        buf.len(),
        "update_device size mismatch: host {} vs device {}",
        host.len(),
        buf.len()
    );
    buf.device_slice_mut().copy_from_slice(host);
    ctx.transfer(buf.byte_len() as f64, TransferDir::HostToDevice);
}

/// `target update from(...)` — refresh host data from the device.
pub fn update_host<T: DeviceElem>(ctx: &mut Context, buf: &DeviceBuffer<T>, host: &mut [T]) {
    assert_eq!(
        host.len(),
        buf.len(),
        "update_host size mismatch: host {} vs device {}",
        host.len(),
        buf.len()
    );
    host.copy_from_slice(buf.device_slice());
    ctx.transfer(buf.byte_len() as f64, TransferDir::DeviceToHost);
}

/// Device-side zeroing of a buffer (a small kernel, charged under the
/// paper's `accel_data_reset` label).
pub fn reset_device<T: DeviceElem>(ctx: &mut Context, buf: &mut DeviceBuffer<T>) {
    for v in buf.device_slice_mut() {
        *v = T::default();
    }
    // A memset kernel writes the buffer once at HBM speed; the paper
    // accounts it with the data operations, so we label it accordingly.
    ctx.transfer_labeled(
        buf.byte_len() as f64 * accel_reset_cost_ratio(ctx),
        TransferDir::HostToDevice,
        "accel_data_reset",
    );
}

/// A device-side memset moves bytes at HBM speed rather than PCIe speed;
/// express it as an equivalent fraction of PCIe bytes so it can share the
/// transfer accounting path.
fn accel_reset_cost_ratio(ctx: &Context) -> f64 {
    ctx.calib.gpu.pcie_bw / ctx.calib.gpu.hbm_bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::NodeCalib;

    fn ctx() -> Context {
        Context::new(NodeCalib::default())
    }

    #[test]
    fn roundtrip_preserves_data() {
        let mut c = ctx();
        let mut pool: Pool<f64> = Pool::new();
        let host: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let buf = map_to(&mut c, &mut pool, &host).unwrap();
        let mut back = vec![0.0; 100];
        map_from(&mut c, &mut pool, buf, &mut back);
        assert_eq!(host, back);
    }

    #[test]
    fn transfers_are_charged_with_figure_labels() {
        let mut c = ctx();
        let mut pool: Pool<i64> = Pool::new();
        let host = vec![1i64; 1000];
        let buf = map_to(&mut c, &mut pool, &host).unwrap();
        let mut out = vec![0i64; 1000];
        update_host(&mut c, &buf, &mut out);
        let up = c.stats()["accel_data_update_device"];
        let down = c.stats()["accel_data_update_host"];
        assert_eq!(up.bytes, 8000.0);
        assert_eq!(down.bytes, 8000.0);
        assert!(up.seconds > 0.0 && down.seconds > 0.0);
        pool.free(&mut c, buf);
    }

    #[test]
    fn reset_is_cheaper_than_a_transfer() {
        let mut c = ctx();
        let mut pool: Pool<f64> = Pool::new();
        let host = vec![3.0f64; 1 << 20];
        let mut buf = map_to(&mut c, &mut pool, &host).unwrap();
        reset_device(&mut c, &mut buf);
        assert!(buf.device_slice().iter().all(|&x| x == 0.0));
        let reset = c.stats()["accel_data_reset"].seconds;
        let upload = c.stats()["accel_data_update_device"].seconds;
        assert!(reset < upload, "reset {reset} upload {upload}");
        pool.free(&mut c, buf);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_is_a_bug() {
        let mut c = ctx();
        let mut pool: Pool<f64> = Pool::new();
        let mut buf = pool.alloc(&mut c, 4).unwrap();
        update_device(&mut c, &mut buf, &[1.0; 5]);
    }
}
