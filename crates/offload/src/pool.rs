//! The manually implemented device memory pool.
//!
//! Raw `omp_target_alloc` calls cost ~100 µs each (a driver round-trip),
//! which is ruinous for pipelines that allocate per kernel call. The
//! paper's OpenMP port therefore manages device memory through "a C++
//! singleton class … which uses a manually implemented memory pool"
//! (§ 3.1.2); this module is that pool.
//!
//! Freed buffers return to per-size-class free lists and are reused without
//! touching the (simulated) driver; their capacity stays resident on the
//! device until [`Pool::trim`]. Size classes are powers of two, trading
//! up to 2× internal fragmentation for O(1) reuse — the same trade JAX's
//! allocator makes, which is why the paper observes JAX's higher memory
//! footprint.

use std::collections::HashMap;

use accel_sim::{Context, MemoryError};

use crate::buffer::{DeviceBuffer, DeviceElem};

/// Allocation statistics, for the pool ablation bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from a free list.
    pub hits: u64,
    /// Allocations that had to go to the device allocator.
    pub misses: u64,
    /// Buffers currently parked in free lists.
    pub cached: u64,
    /// Device bytes held by the pool (live + cached).
    pub held_bytes: u64,
}

/// A size-class pool of device buffers of element type `T`.
#[derive(Debug, Default)]
pub struct Pool<T: DeviceElem> {
    /// Free lists keyed by capacity class (element count, power of two).
    free: HashMap<usize, Vec<Vec<T>>>,
    stats: PoolStats,
    /// When false, every allocation goes to the device allocator and every
    /// free returns capacity immediately — the "no pool" ablation.
    enabled: bool,
}

impl<T: DeviceElem> Pool<T> {
    /// A pooling allocator (the production configuration).
    pub fn new() -> Self {
        Self {
            free: HashMap::new(),
            stats: PoolStats::default(),
            enabled: true,
        }
    }

    /// A pass-through allocator for the ablation bench.
    pub fn disabled() -> Self {
        Self {
            free: HashMap::new(),
            stats: PoolStats::default(),
            enabled: false,
        }
    }

    /// Allocate a buffer of `len` elements, zero-initialised.
    pub fn alloc(&mut self, ctx: &mut Context, len: usize) -> Result<DeviceBuffer<T>, MemoryError> {
        let class = len.next_power_of_two().max(1);
        let class_bytes = (class * T::SIZE) as u64;

        if self.enabled {
            if let Some(mut storage) = self.free.get_mut(&class).and_then(Vec::pop) {
                self.stats.hits += 1;
                self.stats.cached -= 1;
                // Capacity already resident: charge nothing, just zero.
                storage[..len].fill(T::default());
                return Ok(DeviceBuffer::from_storage(storage, len, class_bytes));
            }
        }
        ctx.device_alloc(class_bytes, false)?;
        self.stats.misses += 1;
        self.stats.held_bytes += class_bytes;
        Ok(DeviceBuffer::from_storage(
            vec![T::default(); class],
            len,
            class_bytes,
        ))
    }

    /// Return a buffer to the pool (or to the device when pooling is
    /// disabled).
    pub fn free(&mut self, ctx: &mut Context, buffer: DeviceBuffer<T>) {
        let class = buffer.storage.len();
        if self.enabled {
            self.free.entry(class).or_default().push(buffer.storage);
            self.stats.cached += 1;
        } else {
            ctx.device_free(buffer.class_bytes);
            self.stats.held_bytes -= buffer.class_bytes;
        }
    }

    /// Release all cached capacity back to the device.
    pub fn trim(&mut self, ctx: &mut Context) {
        for (class, list) in self.free.drain() {
            for storage in list {
                debug_assert_eq!(storage.len(), class);
                let bytes = (class * T::SIZE) as u64;
                ctx.device_free(bytes);
                self.stats.held_bytes -= bytes;
                self.stats.cached -= 1;
            }
        }
    }

    /// Allocation statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::NodeCalib;

    fn ctx() -> Context {
        Context::new(NodeCalib::default())
    }

    #[test]
    fn reuse_avoids_device_allocations() {
        let mut c = ctx();
        let mut pool: Pool<f64> = Pool::new();
        let a = pool.alloc(&mut c, 100).unwrap();
        let in_use_after_first = c.device_in_use();
        pool.free(&mut c, a);
        // Freed capacity stays resident...
        assert_eq!(c.device_in_use(), in_use_after_first);
        // ...and the next same-class alloc is a hit with no new capacity.
        let b = pool.alloc(&mut c, 90).unwrap();
        assert_eq!(c.device_in_use(), in_use_after_first);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
        pool.free(&mut c, b);
    }

    #[test]
    fn pool_hits_skip_alloc_latency() {
        let mut c = ctx();
        let mut pool: Pool<f64> = Pool::new();
        let a = pool.alloc(&mut c, 64).unwrap();
        pool.free(&mut c, a);
        let charged_after_miss = c.stats().get("accel_data_alloc").map(|s| s.calls);
        let b = pool.alloc(&mut c, 64).unwrap();
        assert_eq!(
            c.stats().get("accel_data_alloc").map(|s| s.calls),
            charged_after_miss,
            "pool hit must not touch the device allocator"
        );
        pool.free(&mut c, b);
    }

    #[test]
    fn reused_buffers_are_zeroed() {
        let mut c = ctx();
        let mut pool: Pool<f64> = Pool::new();
        let mut a = pool.alloc(&mut c, 8).unwrap();
        a.device_slice_mut().fill(7.0);
        pool.free(&mut c, a);
        let b = pool.alloc(&mut c, 8).unwrap();
        assert!(b.device_slice().iter().all(|&x| x == 0.0));
        pool.free(&mut c, b);
    }

    #[test]
    fn size_classes_are_powers_of_two() {
        let mut c = ctx();
        let mut pool: Pool<f64> = Pool::new();
        let a = pool.alloc(&mut c, 100).unwrap();
        assert_eq!(a.capacity_bytes(), 128 * 8);
        assert_eq!(a.len(), 100);
        // A 120-element request reuses the 128-class buffer.
        pool.free(&mut c, a);
        let b = pool.alloc(&mut c, 120).unwrap();
        assert_eq!(pool.stats().hits, 1);
        pool.free(&mut c, b);
    }

    #[test]
    fn disabled_pool_returns_capacity_immediately() {
        let mut c = ctx();
        let mut pool: Pool<f64> = Pool::disabled();
        let a = pool.alloc(&mut c, 64).unwrap();
        assert!(c.device_in_use() > 0);
        pool.free(&mut c, a);
        assert_eq!(c.device_in_use(), 0);
        // Second alloc is a miss again (pays latency again).
        let b = pool.alloc(&mut c, 64).unwrap();
        assert_eq!(pool.stats().misses, 2);
        assert_eq!(pool.stats().hits, 0);
        pool.free(&mut c, b);
    }

    #[test]
    fn trim_releases_cached_capacity() {
        let mut c = ctx();
        let mut pool: Pool<i64> = Pool::new();
        let a = pool.alloc(&mut c, 32).unwrap();
        let b = pool.alloc(&mut c, 32).unwrap();
        pool.free(&mut c, a);
        pool.free(&mut c, b);
        assert!(c.device_in_use() > 0);
        pool.trim(&mut c);
        assert_eq!(c.device_in_use(), 0);
        assert_eq!(pool.stats().cached, 0);
        assert_eq!(pool.stats().held_bytes, 0);
    }

    #[test]
    fn oom_propagates() {
        let mut c = Context::with_capacity(NodeCalib::default(), 1024);
        let mut pool: Pool<f64> = Pool::new();
        assert!(pool.alloc(&mut c, 64).is_ok()); // 512 B
        assert!(pool.alloc(&mut c, 64).is_ok()); // 1024 B total
        let err = pool.alloc(&mut c, 1).unwrap_err();
        assert_eq!(err.capacity, 1024);
    }
}
