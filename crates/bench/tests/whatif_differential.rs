//! The what-if repricer's differential oracle: a run recorded and then
//! replayed under the *identical* calibration must reproduce the live run
//! exactly — same makespan, same per-rank charges — because repricing
//! under identity rescales every baked-in cost by exactly 1.0 and the
//! discrete-event engine is deterministic. The recording goes through the
//! full serialization path (capture → JSONL → parse → replay), so any
//! precision loss or dropped charge anywhere in the chain breaks the
//! equality. Checked for the legacy single-node replay and the 2-node
//! cluster replay, across every schedule policy.

use accel_sim::sweep::{sweep, SweepCalib, SweepSpec};
use accel_sim::whatif::RecordedWorkload;
use accel_sim::SchedulePolicyKind;
use repro_bench::{recorded_workload, run_config, RunConfig};
use scenario::{ProblemSize, Scenario};
use toast_core::dispatch::ImplKind;
use toast_satsim::Problem;

fn tiny_problem() -> Problem {
    let mut p = Problem::medium(2e-3);
    p.total_samples *= 64.0 / p.n_det_total as f64;
    p.n_det_total = 64;
    p.n_obs = 2;
    p
}

/// [`tiny_problem`] expressed as a scenario; the overrides reproduce the
/// mutation above bit for bit.
fn tiny_scenario(kind: ImplKind, procs: u32) -> Scenario {
    let mut s = Scenario::new("tiny", ProblemSize::Medium, 2e-3)
        .with_kind(kind)
        .with_procs(procs);
    s.problem.total_samples = Some(5e9 * (64.0 / 2048.0));
    s.problem.n_det_total = Some(64);
    s.problem.n_obs = Some(2);
    s
}

const POLICIES: [SchedulePolicyKind; 5] = [
    SchedulePolicyKind::Auto,
    SchedulePolicyKind::MpsFluid,
    SchedulePolicyKind::TimeSliced,
    SchedulePolicyKind::Fifo,
    SchedulePolicyKind::Priority,
];

/// Record a run, push it through JSONL and back, replay under identity,
/// and assert the replay reproduces the live run to 1e-9.
fn assert_identity_replay(nodes: Option<u32>, schedule: SchedulePolicyKind) {
    let what = format!("nodes {nodes:?} schedule {schedule}");
    let mut cfg = RunConfig::new(tiny_problem(), ImplKind::OmpTarget, 4).expect("valid procs");
    cfg.nodes = nodes;
    cfg.schedule = schedule;
    let out = run_config(&cfg).expect("valid config");
    let live_wall = *out.node_wall.as_ref().expect("run fits");

    let recorded = recorded_workload(&cfg, &out, &what, None).expect("recordable");
    let parsed = RecordedWorkload::parse_jsonl(&recorded.to_jsonl()).expect("parses");
    assert_eq!(parsed.meta.live_wall_seconds, live_wall, "{what}");
    assert_eq!(parsed.nodes.len(), nodes.unwrap_or(1) as usize, "{what}");

    let replayed = parsed.replay_identity().expect("replay fits");
    let delta = (replayed.cluster.wall_seconds - live_wall).abs();
    assert!(
        delta < 1e-9,
        "{what}: replayed {:.17e} vs live {live_wall:.17e} (|Δ| = {delta:.3e})",
        replayed.cluster.wall_seconds
    );

    // Per-rank charges survive the round trip: host seconds, kernel
    // counts and transfer bytes of every recorded rank match the live
    // trace they were captured from.
    for node_traces in &parsed.nodes {
        assert_eq!(node_traces.len(), out.traces.len(), "{what}");
        for (rank, (rec, live)) in node_traces.iter().zip(&out.traces).enumerate() {
            let who = format!("{what} rank {rank}");
            assert!(
                (rec.host_seconds() - live.host_seconds()).abs() < 1e-9,
                "{who}: host {} vs {}",
                rec.host_seconds(),
                live.host_seconds()
            );
            assert_eq!(rec.kernel_count(), live.kernel_count(), "{who}");
            assert!(
                (rec.transfer_bytes() - live.transfer_bytes()).abs() < 1e-9,
                "{who}: bytes {} vs {}",
                rec.transfer_bytes(),
                live.transfer_bytes()
            );
        }
    }
}

#[test]
fn identity_replay_reproduces_single_node_runs() {
    for policy in POLICIES {
        assert_identity_replay(None, policy);
    }
}

#[test]
fn identity_replay_reproduces_two_node_cluster_runs() {
    for policy in POLICIES {
        assert_identity_replay(Some(2), policy);
    }
}

#[test]
fn scenario_driven_recording_replays_identically_and_embeds_its_scenario() {
    // The identity oracle through the scenario path: a run configured via
    // a Scenario must record, round-trip through JSONL, and replay to the
    // *same bits* as the flag-configured run — and the recording carries
    // the scenario it came from.
    let s = tiny_scenario(ImplKind::OmpTarget, 4).with_nodes(2);
    let via_scenario = RunConfig::from_scenario(&s).expect("valid scenario");
    let out = run_config(&via_scenario).expect("valid config");
    let live_wall = *out.node_wall.as_ref().expect("run fits");

    let mut flag_cfg = RunConfig::new(tiny_problem(), ImplKind::OmpTarget, 4).expect("valid procs");
    flag_cfg.nodes = Some(2);
    let flag_wall = *run_config(&flag_cfg)
        .expect("valid config")
        .node_wall
        .as_ref()
        .expect("run fits");
    assert_eq!(
        live_wall.to_bits(),
        flag_wall.to_bits(),
        "scenario path diverges from RunConfig path before recording"
    );

    let recorded =
        recorded_workload(&via_scenario, &out, "scenario oracle", Some(&s)).expect("recordable");
    let parsed = RecordedWorkload::parse_jsonl(&recorded.to_jsonl()).expect("parses");
    let embedded = parsed.meta.scenario.as_deref().expect("scenario embedded");
    assert_eq!(Scenario::parse(embedded).expect("parses back"), s);

    let replayed = parsed.replay_identity().expect("replay fits");
    assert_eq!(
        replayed.cluster.wall_seconds.to_bits(),
        live_wall.to_bits(),
        "identity replay of a scenario-driven recording moved the makespan"
    );
}

#[test]
fn non_identity_preset_changes_only_hardware_priced_charges() {
    // The acceptance check for the repricer itself: an H100-like preset
    // replays the *recorded* charges (no kernel numerics re-run — the
    // workload is parsed from JSONL, nothing else is available to it)
    // and speeds up device kernels without touching host-bound labels.
    let mut cfg = RunConfig::new(tiny_problem(), ImplKind::OmpTarget, 4).expect("valid procs");
    cfg.nodes = Some(2);
    let out = run_config(&cfg).expect("valid config");
    let recorded = recorded_workload(&cfg, &out, "h100 probe", None).expect("recordable");
    let parsed = RecordedWorkload::parse_jsonl(&recorded.to_jsonl()).expect("parses");

    let p = accel_sim::whatif::preset("h100").expect("preset");
    let node = p.node.rescaled(parsed.meta.work_scale);
    let repriced = parsed.replay(&node, &p.net, None).expect("fits");
    let live = parsed.live_label_stats();

    // Device kernels get faster, host labels keep their cost (same CPU).
    let faster = repriced.per_label["scan_map"].seconds;
    assert!(
        faster < live["scan_map"].seconds,
        "scan_map {faster} vs {}",
        live["scan_map"].seconds
    );
    let host = "unported_operators";
    assert!(
        (repriced.per_label[host].seconds - live[host].seconds).abs() < 1e-12,
        "host label moved"
    );
    // Transfers speed up with the PCIe gen5 link, but the bytes moved are
    // the recorded ones.
    let h2d = "accel_data_update_device";
    assert!(repriced.per_label[h2d].seconds < live[h2d].seconds);
    assert_eq!(repriced.per_label[h2d].bytes, live[h2d].bytes);
}

#[test]
fn sweep_identity_point_reproduces_the_live_run() {
    // The differential oracle extended to the batched path: a sweep grid
    // containing the identity calibration at the recorded gpus/schedule
    // must reproduce the live makespan to 1e-9 — and must be bit-identical
    // to the point-by-point replay_identity it replaces.
    let mut cfg = RunConfig::new(tiny_problem(), ImplKind::OmpTarget, 4).expect("valid procs");
    cfg.nodes = Some(2);
    let out = run_config(&cfg).expect("valid config");
    let live_wall = *out.node_wall.as_ref().expect("run fits");
    let recorded = recorded_workload(&cfg, &out, "sweep oracle", None).expect("recordable");
    let parsed = RecordedWorkload::parse_jsonl(&recorded.to_jsonl()).expect("parses");

    let result = sweep(&parsed, &SweepSpec::default_grid(&parsed.meta)).expect("sweep");
    let point = result
        .points
        .iter()
        .find(|p| {
            p.calib == "identity"
                && p.gpus == parsed.meta.gpus
                && p.schedule == parsed.meta.schedule
        })
        .expect("identity point in default grid");
    let makespan = point.makespan.expect("identity point evaluates");
    assert!(
        (makespan - live_wall).abs() < 1e-9,
        "sweep identity {makespan:.17e} vs live {live_wall:.17e}"
    );

    let oracle = parsed.replay_identity().expect("fits").cluster.wall_seconds;
    assert_eq!(
        makespan.to_bits(),
        oracle.to_bits(),
        "sweep identity point diverges from replay_identity: {makespan:.17e} vs {oracle:.17e}"
    );
}

#[test]
fn sweep_preset_points_match_standalone_replays_bitwise() {
    // Every sweep point must equal what `whatif --replay --calib <p>
    // --gpus <n>` computes for the same recording: the batched cost-table
    // path and the trace-level repricer are term-for-term identical.
    let mut cfg = RunConfig::new(tiny_problem(), ImplKind::OmpTarget, 4).expect("valid procs");
    cfg.nodes = Some(2);
    let out = run_config(&cfg).expect("valid config");
    let recorded = recorded_workload(&cfg, &out, "sweep vs replay", None).expect("recordable");
    let parsed = RecordedWorkload::parse_jsonl(&recorded.to_jsonl()).expect("parses");

    let spec = SweepSpec {
        calibs: vec![
            SweepCalib::resolve("h100", &parsed.meta).expect("preset"),
            SweepCalib::resolve("a100-nvlink", &parsed.meta).expect("preset"),
            SweepCalib::resolve("slingshot11", &parsed.meta).expect("preset"),
        ],
        gpus: vec![2, 4],
        schedules: vec![parsed.meta.schedule],
        deadline: None,
    };
    let result = sweep(&parsed, &spec).expect("sweep");
    assert_eq!(result.evaluated, 6);
    for (point, calib) in result.points.iter().zip(
        spec.calibs
            .iter()
            .flat_map(|c| std::iter::repeat_n(c, spec.gpus.len())),
    ) {
        let standalone = parsed
            .replay(&calib.node, &calib.net, Some(point.gpus))
            .expect("fits")
            .cluster
            .wall_seconds;
        assert_eq!(
            point.makespan.expect("evaluates").to_bits(),
            standalone.to_bits(),
            "{} x{}: sweep {:?} vs standalone {standalone:?}",
            point.calib,
            point.gpus,
            point.makespan,
        );
    }
}
