//! Golden-path regression: the discrete-event engine must reproduce the
//! pre-refactor analytic replay's makespans exactly (within 1e-9) for the
//! seed configurations. The expected values below were recorded from the
//! pre-engine `simulate_node` at commit 77615ce and are intentionally
//! inlined rather than snapshotted: a change that moves them is a change
//! to the simulator's physics and must be made deliberately.

use accel_sim::{
    simulate_node, KernelProfile, NodeConfig, RankTrace, SchedulePolicyKind, Segment, TransferDir,
};
use repro_bench::{run_config, RunConfig};
use scenario::{ProblemSize, Scenario};
use toast_core::dispatch::ImplKind;
use toast_satsim::Problem;

fn host(seconds: f64) -> Segment {
    Segment::Host {
        seconds,
        label: "h".into(),
    }
}

fn kernel(items: f64, flops: f64, bytes: f64, dispatch: f64) -> Segment {
    Segment::Kernel {
        profile: KernelProfile::uniform("k", items, flops, bytes),
        dispatch,
    }
}

fn transfer(bytes: f64, dir: TransferDir) -> Segment {
    Segment::Transfer {
        bytes,
        dir,
        label: dir.label().into(),
    }
}

fn trace(segments: Vec<Segment>) -> RankTrace {
    RankTrace {
        segments,
        ..RankTrace::default()
    }
}

/// A mixed workload: every rank interleaves host work, kernels of varying
/// occupancy, and transfers; rank `r`'s durations are skewed by its index
/// so the replay exercises asymmetric contention.
fn mixed_traces(ranks: usize) -> Vec<RankTrace> {
    (0..ranks)
        .map(|r| {
            let f = 1.0 + 0.25 * r as f64;
            trace(vec![
                host(0.01 * f),
                transfer(1e8 * f, TransferDir::HostToDevice),
                kernel(1e9, 40.0 * f, 8.0, 1e-5),
                host(0.002 * f),
                kernel(2e4, 100.0, 16.0, 1e-5),
                transfer(5e7 * f, TransferDir::DeviceToHost),
            ])
        })
        .collect()
}

fn tiny_problem() -> Problem {
    let mut p = Problem::medium(2e-3);
    p.total_samples *= 64.0 / p.n_det_total as f64;
    p.n_det_total = 64;
    p.n_obs = 2;
    p
}

/// The same configuration as [`tiny_problem`], expressed as a scenario
/// (the overrides reproduce the mutation above bit for bit).
fn tiny_scenario(kind: ImplKind, procs: u32) -> Scenario {
    let mut s = Scenario::new("tiny", ProblemSize::Medium, 2e-3)
        .with_kind(kind)
        .with_procs(procs);
    s.problem.total_samples = Some(5e9 * (64.0 / 2048.0));
    s.problem.n_det_total = Some(64);
    s.problem.n_obs = Some(2);
    s
}

fn assert_close(actual: f64, expected: f64, what: &str) {
    assert!(
        (actual - expected).abs() < 1e-9,
        "{what}: got {actual:.17e}, expected {expected:.17e} (|Δ| = {:.3e})",
        (actual - expected).abs()
    );
}

#[test]
fn synthetic_node_makespans_match_pre_engine_values() {
    let cases: [(&str, NodeConfig, usize, f64); 5] = [
        (
            "1 rank / 4 gpus / mps",
            NodeConfig::default(),
            1,
            GOLDEN_SYN_1,
        ),
        (
            "8 ranks / 4 gpus / mps",
            NodeConfig::default(),
            8,
            GOLDEN_SYN_8,
        ),
        (
            "8 ranks / 4 gpus / no mps",
            NodeConfig {
                mps: false,
                ..NodeConfig::default()
            },
            8,
            GOLDEN_SYN_8_NOMPS,
        ),
        (
            "6 ranks / 1 gpu / mps",
            NodeConfig {
                gpus: 1,
                ..NodeConfig::default()
            },
            6,
            GOLDEN_SYN_6_1GPU,
        ),
        (
            "4 ranks / 2 gpus / no mps",
            NodeConfig {
                gpus: 2,
                mps: false,
                ..NodeConfig::default()
            },
            4,
            GOLDEN_SYN_4_2GPU_NOMPS,
        ),
    ];
    for (what, cfg, ranks, expected) in cases {
        let res = simulate_node(&mixed_traces(ranks), &cfg).unwrap();
        assert_close(res.wall_seconds, expected, what);
    }
}

#[test]
fn pipeline_node_makespans_match_pre_engine_values() {
    let cases: [(&str, ImplKind, u32, bool, f64); 4] = [
        ("cpu x4", ImplKind::Cpu, 4, true, GOLDEN_PIPE_CPU4),
        ("omp x16", ImplKind::OmpTarget, 16, true, GOLDEN_PIPE_OMP16),
        ("jit x8", ImplKind::Jit, 8, true, GOLDEN_PIPE_JIT8),
        (
            "omp x8 no-mps",
            ImplKind::OmpTarget,
            8,
            false,
            GOLDEN_PIPE_OMP8_NOMPS,
        ),
    ];
    for (what, kind, procs, mps, expected) in cases {
        let mut cfg = RunConfig::new(tiny_problem(), kind, procs).expect("valid procs");
        cfg.mps = mps;
        let out = run_config(&cfg).expect("valid config");
        let wall = out.node_wall.as_ref().expect("fits").to_owned();
        assert_close(wall, expected, what);

        // Differential guard: the same configuration expressed as a
        // scenario must land on the *same bits*, not merely within 1e-9 —
        // the golden path and the scenario path are one code path.
        let s = tiny_scenario(kind, procs).with_mps(mps);
        let via_scenario = run_config(&RunConfig::from_scenario(&s).expect("valid scenario"))
            .expect("valid config");
        assert_eq!(
            via_scenario.node_wall.expect("fits").to_bits(),
            wall.to_bits(),
            "{what}: scenario path diverges from RunConfig path"
        );
    }
}

/// The 2-node cluster configurations locked below: OmpTarget, 4 procs,
/// one schedule policy each (PR 2's goldens covered single-node paths
/// only).
fn cluster_cases() -> [(&'static str, SchedulePolicyKind); 3] {
    [
        ("GOLDEN_CLUSTER_AUTO", SchedulePolicyKind::Auto),
        ("GOLDEN_CLUSTER_FIFO", SchedulePolicyKind::Fifo),
        ("GOLDEN_CLUSTER_PRIORITY", SchedulePolicyKind::Priority),
    ]
}

fn cluster_wall(schedule: SchedulePolicyKind) -> f64 {
    // 8 procs on 4 GPUs: two ranks per device, so the arbitration policy
    // actually shapes the makespan (at one rank per GPU all policies
    // coincide).
    let mut cfg = RunConfig::new(tiny_problem(), ImplKind::OmpTarget, 8).expect("valid procs");
    cfg.nodes = Some(2);
    cfg.schedule = schedule;
    let out = run_config(&cfg).expect("valid config");
    *out.node_wall.as_ref().expect("fits")
}

#[test]
fn cluster_makespans_match_locked_values() {
    let expected = [
        GOLDEN_CLUSTER_AUTO,
        GOLDEN_CLUSTER_FIFO,
        GOLDEN_CLUSTER_PRIORITY,
    ];
    for ((what, schedule), want) in cluster_cases().into_iter().zip(expected) {
        assert_close(cluster_wall(schedule), want, what);

        // Same cluster configuration through the scenario path: the
        // locked makespans must come out bit-identical.
        let s = tiny_scenario(ImplKind::OmpTarget, 8)
            .with_nodes(2)
            .with_schedule(schedule);
        let out = run_config(&RunConfig::from_scenario(&s).expect("valid scenario"))
            .expect("valid config");
        assert_eq!(
            out.node_wall.expect("fits").to_bits(),
            cluster_wall(schedule).to_bits(),
            "{what}: scenario path diverges from RunConfig path"
        );
    }
}

// Pre-refactor makespans, recorded from the analytic replay (see module
// docs). Full f64 precision.
const GOLDEN_SYN_1: f64 = 0.024483712977491967;
const GOLDEN_SYN_8: f64 = 0.06656496234587464;
const GOLDEN_SYN_8_NOMPS: f64 = 0.21694650199171286;
const GOLDEN_SYN_6_1GPU: f64 = 0.17895561202214336;
const GOLDEN_SYN_4_2GPU_NOMPS: f64 = 0.19070907931130046;
const GOLDEN_PIPE_CPU4: f64 = 0.015180281788974554;
const GOLDEN_PIPE_OMP16: f64 = 0.004323438244431148;
const GOLDEN_PIPE_JIT8: f64 = 0.0072396279724240365;
const GOLDEN_PIPE_OMP8_NOMPS: f64 = 0.00725656151065077;
// 2-node cluster makespans, recorded from the discrete-event cluster
// engine at the commit introducing the what-if repricer.
const GOLDEN_CLUSTER_AUTO: f64 = 0.005050661876582861;
const GOLDEN_CLUSTER_FIFO: f64 = 0.004817435966790251;
const GOLDEN_CLUSTER_PRIORITY: f64 = 0.0048042810883336595;

/// Temporary capture helper: prints the current values so they can be
/// inlined above. Run with `cargo test -p repro-bench --test golden_replay
/// -- --ignored --nocapture`.
#[test]
#[ignore]
fn capture_golden_values() {
    for (name, cfg, ranks) in [
        ("GOLDEN_SYN_1", NodeConfig::default(), 1usize),
        ("GOLDEN_SYN_8", NodeConfig::default(), 8),
        (
            "GOLDEN_SYN_8_NOMPS",
            NodeConfig {
                mps: false,
                ..NodeConfig::default()
            },
            8,
        ),
        (
            "GOLDEN_SYN_6_1GPU",
            NodeConfig {
                gpus: 1,
                ..NodeConfig::default()
            },
            6,
        ),
        (
            "GOLDEN_SYN_4_2GPU_NOMPS",
            NodeConfig {
                gpus: 2,
                mps: false,
                ..NodeConfig::default()
            },
            4,
        ),
    ] {
        let res = simulate_node(&mixed_traces(ranks), &cfg).unwrap();
        println!("const {name}: f64 = {:?};", res.wall_seconds);
    }
    for (name, kind, procs, mps) in [
        ("GOLDEN_PIPE_CPU4", ImplKind::Cpu, 4u32, true),
        ("GOLDEN_PIPE_OMP16", ImplKind::OmpTarget, 16, true),
        ("GOLDEN_PIPE_JIT8", ImplKind::Jit, 8, true),
        ("GOLDEN_PIPE_OMP8_NOMPS", ImplKind::OmpTarget, 8, false),
    ] {
        let mut cfg = RunConfig::new(tiny_problem(), kind, procs).expect("valid procs");
        cfg.mps = mps;
        let out = run_config(&cfg).expect("valid config");
        println!("const {name}: f64 = {:?};", out.node_wall.as_ref().unwrap());
    }
    for (name, schedule) in cluster_cases() {
        println!("const {name}: f64 = {:?};", cluster_wall(schedule));
    }
}
