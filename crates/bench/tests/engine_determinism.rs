//! Determinism contract of the sharded discrete-event engine.
//!
//! The engine steps nodes as independent shards between collective
//! barriers (through the rayon facade) and merges their results in node
//! order, so a replay must be a pure function of its inputs: running the
//! same scenario twice — or under different worker-thread counts — must
//! produce *byte-identical* exported traces, not merely close makespans.
//! These tests lock that contract with the strictest comparison
//! available: bitwise equality of every accounting number and string
//! equality of the rendered trace exports.

use accel_sim::{
    simulate_cluster_traced, ClusterResult, KernelProfile, NodeConfig, NodeTimeline, RankTrace,
    Segment, TransferDir,
};
use repro_bench::traceout::{render_trace, TraceFormat};

fn host(seconds: f64) -> Segment {
    Segment::Host {
        seconds,
        label: "h".into(),
    }
}

fn kernel(items: f64, flops: f64, dispatch: f64) -> Segment {
    Segment::Kernel {
        profile: KernelProfile::uniform("k", items, flops, 8.0),
        dispatch,
    }
}

fn transfer(bytes: f64, dir: TransferDir) -> Segment {
    Segment::Transfer {
        bytes,
        dir,
        label: dir.label().into(),
    }
}

fn coll(seconds: f64, label: &str) -> Segment {
    Segment::Collective {
        seconds,
        bytes: 1e6,
        label: label.into(),
    }
}

/// A deliberately awkward 2-node scenario: asymmetric rank durations,
/// kernels of different occupancies, overlapped transfers, and skewed
/// per-rank collective charges (barriers follow MPI semantics, so every
/// rank performs the same *count* of collectives but arrives at wildly
/// different times), so barrier release, stream synchronisation and
/// shard merging all execute.
fn scenario() -> Vec<Vec<RankTrace>> {
    let mk = |node: usize, local: usize| {
        let f = 1.0 + 0.3 * (node * 3 + local) as f64;
        let segs = vec![
            host(0.004 * f),
            transfer(8e7 * f, TransferDir::HostToDevice),
            kernel(1e9, 30.0 * f, 1e-5),
            coll(0.002, "mpi_allreduce_zmap"),
            host(0.001 * f),
            kernel(3e4, 80.0, 1e-5),
            transfer(4e7 * f, TransferDir::DeviceToHost),
            coll(0.001, "mpi_allreduce_amp"),
            coll(0.0015 * f, "mpi_allreduce_extra"),
        ];
        RankTrace {
            segments: segs,
            ..RankTrace::default()
        }
    };
    (0..2)
        .map(|node| (0..3).map(|local| mk(node, local)).collect())
        .collect()
}

fn cfg() -> NodeConfig {
    NodeConfig {
        gpus: 2,
        overlap_transfers: true,
        ..NodeConfig::default()
    }
}

fn run() -> (ClusterResult, NodeTimeline) {
    simulate_cluster_traced(&scenario(), &cfg()).expect("scenario fits")
}

/// Bitwise comparison of every number the replay produced: `==` on f64
/// would already fail on a ulp, but `to_bits` also distinguishes
/// -0.0/0.0 and rules out NaN sneaking through.
fn assert_bitwise_equal(a: &ClusterResult, b: &ClusterResult) {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&a.rank_seconds), bits(&b.rank_seconds));
    assert_eq!(bits(&a.gpu_busy), bits(&b.gpu_busy));
    assert_eq!(bits(&a.switch_seconds), bits(&b.switch_seconds));
    assert_eq!(bits(&a.nic_busy), bits(&b.nic_busy));
    assert_eq!(a.wall_seconds.to_bits(), b.wall_seconds.to_bits());
    assert_eq!(
        a.collective_seconds.to_bits(),
        b.collective_seconds.to_bits()
    );
    assert_eq!(
        a.collective_wait_seconds.to_bits(),
        b.collective_wait_seconds.to_bits()
    );
}

fn rendered(timeline: &NodeTimeline) -> (String, String) {
    (
        render_trace(&[], Some(timeline), TraceFormat::Jsonl),
        render_trace(&[], Some(timeline), TraceFormat::Chrome),
    )
}

#[test]
fn same_scenario_twice_exports_byte_identical_traces() {
    let (res_a, tl_a) = run();
    let (res_b, tl_b) = run();
    assert_bitwise_equal(&res_a, &res_b);
    let (jsonl_a, chrome_a) = rendered(&tl_a);
    let (jsonl_b, chrome_b) = rendered(&tl_b);
    assert!(!jsonl_a.is_empty() && jsonl_a.contains("mpi_allreduce_zmap"));
    assert_eq!(jsonl_a, jsonl_b, "JSONL exports diverged between runs");
    assert_eq!(chrome_a, chrome_b, "Chrome exports diverged between runs");
}

#[test]
fn thread_count_does_not_change_the_exported_trace() {
    // The engine parallelises over per-node shards via the rayon facade
    // and merges shard results in node order, so worker-thread count must
    // not leak into results. RAYON_NUM_THREADS is the knob real rayon
    // honours (the offline facade runs sequentially either way); the
    // contract this test locks is that nothing in the engine observes it.
    let baseline = {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        run()
    };
    for threads in ["2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let (res, tl) = run();
        assert_bitwise_equal(&baseline.0, &res);
        let (jsonl_a, chrome_a) = rendered(&baseline.1);
        let (jsonl_b, chrome_b) = rendered(&tl);
        assert_eq!(jsonl_a, jsonl_b, "JSONL diverged at {threads} threads");
        assert_eq!(chrome_a, chrome_b, "Chrome diverged at {threads} threads");
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn determinism_holds_without_collectives_and_across_node_counts() {
    // Shards that never synchronise run free to completion; their merge
    // must still be ordered. 1-node and 4-node replays of disjoint
    // workloads exercise the no-barrier path.
    let node: Vec<RankTrace> = (0..4)
        .map(|r| {
            let f = 1.0 + 0.5 * r as f64;
            RankTrace {
                segments: vec![
                    host(0.003 * f),
                    kernel(5e8 * f, 25.0, 1e-5),
                    transfer(6e7, TransferDir::DeviceToHost),
                ],
                ..RankTrace::default()
            }
        })
        .collect();
    for nodes in [1usize, 4] {
        let traces: Vec<Vec<RankTrace>> = vec![node.clone(); nodes];
        let (a, tl_a) = simulate_cluster_traced(&traces, &cfg()).unwrap();
        let (b, tl_b) = simulate_cluster_traced(&traces, &cfg()).unwrap();
        assert_bitwise_equal(&a, &b);
        assert_eq!(rendered(&tl_a), rendered(&tl_b), "{nodes}-node diverged");
    }
}
