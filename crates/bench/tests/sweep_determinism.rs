//! Sweep determinism: the batched evaluator fans grid points out across
//! the rayon facade, but every point writes only its own pre-allocated
//! slot and every reduction (Pareto front, best-under-deadline, counters)
//! walks points in grid order — so the serialized result must be
//! byte-identical whatever `RAYON_NUM_THREADS` says. This is the same
//! contract the engine determinism suite locks for a single replay,
//! lifted to the whole sweep.

use accel_sim::sweep::{sweep, SweepResult, SweepSpec};
use accel_sim::{
    KernelProfile, RankTrace, RecordMeta, RecordedWorkload, SchedulePolicyKind, Segment,
    TransferDir,
};

/// An asymmetric two-node workload: ragged per-rank segment counts and
/// skewed kernel sizes so schedules actually contend.
fn workload() -> RecordedWorkload {
    let rank = |f: f64, extra: usize| {
        let mut segments = vec![
            Segment::Host {
                seconds: 3e-4 * f,
                label: "serial".into(),
            },
            Segment::Transfer {
                bytes: 6e6 * f,
                dir: TransferDir::HostToDevice,
                label: "accel_data_update_device".into(),
            },
            Segment::Kernel {
                profile: KernelProfile::uniform("k_big", 1.5e7, 30.0 * f, 8.0),
                dispatch: 1e-5,
            },
            Segment::Collective {
                seconds: 4e-4,
                bytes: 2e6,
                label: "mpi_allreduce".into(),
            },
        ];
        for i in 0..extra {
            segments.push(Segment::Kernel {
                profile: KernelProfile::uniform("k_small", 3e4, 80.0 + i as f64, 16.0),
                dispatch: 1e-5,
            });
        }
        RankTrace {
            segments,
            ..RankTrace::default()
        }
    };
    let node_a = vec![rank(1.0, 0), rank(1.3, 2), rank(1.7, 1)];
    let node_b = vec![rank(0.8, 3), rank(1.1, 0), rank(2.0, 2)];
    let meta = RecordMeta {
        label: "sweep determinism".into(),
        total_ranks: 6,
        ..RecordMeta::default()
    };
    RecordedWorkload::capture(vec![node_a, node_b], meta)
}

fn run() -> SweepResult {
    let w = workload();
    // The default grid already spans identity plus every preset.
    let mut spec = SweepSpec::default_grid(&w.meta);
    spec.gpus = vec![1, 2, 4];
    spec.schedules = vec![
        SchedulePolicyKind::Auto,
        SchedulePolicyKind::TimeSliced,
        SchedulePolicyKind::Fifo,
    ];
    // A deadline in the middle of the grid so the pruner fires on some
    // points and not others — pruning decisions must be deterministic too.
    let probe = sweep(&w, &spec).expect("probe sweep");
    let max_lb = probe
        .points
        .iter()
        .map(|p| p.lower_bound)
        .fold(0.0, f64::max);
    spec.deadline = Some(max_lb * 0.99);
    sweep(&w, &spec).expect("sweep")
}

#[test]
fn sweep_output_is_byte_identical_across_thread_counts() {
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let baseline = run();
    let baseline_jsonl = baseline.to_jsonl();
    assert!(baseline.evaluated > 0);
    assert!(baseline.pruned > 0, "deadline should prune something");

    for threads in ["2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let other = run();
        assert_eq!(
            other.to_jsonl(),
            baseline_jsonl,
            "sweep JSONL diverged at RAYON_NUM_THREADS={threads}"
        );
        assert_eq!(other.pareto, baseline.pareto, "threads={threads}");
        assert_eq!(
            other.best_under_deadline, baseline.best_under_deadline,
            "threads={threads}"
        );
        for (a, b) in baseline.points.iter().zip(&other.points) {
            assert_eq!(
                a.makespan.map(f64::to_bits),
                b.makespan.map(f64::to_bits),
                "{} x{} {} makespan bits (threads={threads})",
                a.calib,
                a.gpus,
                a.schedule
            );
            assert_eq!(
                a.cost.map(f64::to_bits),
                b.cost.map(f64::to_bits),
                "{} x{} {} cost bits (threads={threads})",
                a.calib,
                a.gpus,
                a.schedule
            );
            assert_eq!(a.lower_bound.to_bits(), b.lower_bound.to_bits());
            assert_eq!(a.pruned, b.pruned);
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}
