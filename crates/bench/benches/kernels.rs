//! Criterion benchmarks of the ten kernels' host execution cost across the
//! three implementation styles (real wall time of our code, complementary
//! to the simulator's virtual-time figures).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use toast_core::dispatch::{ImplKind, KernelId};
use toast_core::kernels::{run_kernel, ExecCtx};
use toast_core::testutil::test_workspace;
use toast_core::workspace::BufferId;

fn ctx() -> accel_sim::Context {
    accel_sim::Context::new(accel_sim::NodeCalib::default())
}

fn bench_impl(c: &mut Criterion, kernel: KernelId, kind: ImplKind, label: &str) {
    let ws = test_workspace(8, 512, 16);
    let samples = (ws.obs.n_det * ws.obs.n_samples) as u64;
    let mut group = c.benchmark_group(kernel.name());
    group.throughput(Throughput::Elements(samples));
    group.bench_function(label, |b| {
        let mut exec = ExecCtx::new(kind, 4);
        let mut ws = ws.clone();
        let mut context = ctx();
        // Device impls need resident data; do it once (the ensure is
        // idempotent so re-running inside the loop is cheap).
        b.iter(|| {
            for id in BufferId::ALL {
                if kind.uses_device() {
                    exec.store.ensure_device(&mut context, &ws, id).unwrap();
                }
            }
            run_kernel(&mut context, &mut exec, &mut ws, kernel).expect("buffers resident");
        });
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    // One representative compute-heavy, one gather, one scatter kernel in
    // all three styles; the remaining kernels in the CPU style (the full
    // per-kernel matrix lives in the figure binaries).
    for kind in [ImplKind::Cpu, ImplKind::OmpTarget, ImplKind::Jit] {
        let label = match kind {
            ImplKind::Cpu => "cpu",
            ImplKind::OmpTarget => "omp",
            ImplKind::Jit => "jit",
            ImplKind::JitCpu => unreachable!(),
        };
        bench_impl(c, KernelId::StokesWeightsIqu, kind, label);
        bench_impl(c, KernelId::ScanMap, kind, label);
        bench_impl(c, KernelId::BuildNoiseWeighted, kind, label);
        bench_impl(c, KernelId::PixelsHealpix, kind, label);
    }
    for kernel in [
        KernelId::PointingDetector,
        KernelId::NoiseWeight,
        KernelId::TemplateOffsetAddToSignal,
        KernelId::TemplateOffsetProjectSignal,
        KernelId::TemplateOffsetApplyDiagPrecond,
        KernelId::StokesWeightsI,
    ] {
        bench_impl(c, kernel, ImplKind::Cpu, "cpu");
    }
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_kernels
);

/// Short measurement windows: the benches cover many targets on a
/// single-core CI-like box; Criterion's defaults would take tens of
/// minutes for no extra insight at this granularity.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_main!(benches);
