//! Criterion microbenchmarks of the substrate crates: counter RNG,
//! HEALPix pixelisation, FFT, quaternion math. These measure *real host
//! throughput* of our implementations (not simulated device time).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use toast_fft::{fft, Complex};
use toast_healpix::{ring, Nside};
use toast_rng::CounterRng;

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    let n = 4096usize;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("threefry_words", |b| {
        let rng = CounterRng::new(1, 2);
        let mut out = vec![0u64; n];
        b.iter(|| {
            rng.fill_words(0, &mut out);
            black_box(&out);
        });
    });
    g.bench_function("gaussians", |b| {
        let rng = CounterRng::new(3, 4);
        let mut out = vec![0.0f64; n];
        b.iter(|| {
            rng.fill_gaussian(0, &mut out);
            black_box(&out);
        });
    });
    g.finish();
}

fn bench_healpix(c: &mut Criterion) {
    let mut g = c.benchmark_group("healpix");
    let nside = Nside::new(512).unwrap();
    let points: Vec<(f64, f64)> = (0..4096)
        .map(|i| {
            let t = 0.01 + 3.12 * ((i * 37 % 4096) as f64 / 4096.0);
            let p = std::f64::consts::TAU * (i as f64 / 4096.0);
            (t, p)
        })
        .collect();
    g.throughput(Throughput::Elements(points.len() as u64));
    g.bench_function("ang2pix_ring", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(t, p) in &points {
                acc = acc.wrapping_add(ring::ang2pix_ring(nside, t, p));
            }
            black_box(acc)
        });
    });
    g.bench_function("ang2pix_nest", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(t, p) in &points {
                acc = acc.wrapping_add(toast_healpix::nest::ang2pix_nest(nside, t, p));
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for &n in &[1024usize, 8192] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("fft_{n}"), |b| {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i % 17) as f64, (i % 5) as f64))
                .collect();
            b.iter(|| {
                let mut d = data.clone();
                fft(&mut d);
                black_box(&d);
            });
        });
    }
    g.finish();
}

fn bench_quat(c: &mut Criterion) {
    use toast_core::quat;
    let mut g = c.benchmark_group("quat");
    let n = 4096;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("mul_rotate_z", |b| {
        let qs: Vec<[f64; 4]> = (0..n)
            .map(|i| quat::from_axis_angle([0.0, 1.0, 0.0], i as f64 * 1e-3))
            .collect();
        let off = quat::from_axis_angle([1.0, 0.0, 0.0], 0.01);
        b.iter(|| {
            let mut acc = 0.0;
            for &q in &qs {
                let d = quat::rotate_z(quat::mul(q, off));
                acc += d[2];
            }
            black_box(acc)
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_rng, bench_healpix, bench_fft, bench_quat
);

/// Short measurement windows: the benches cover many targets on a
/// single-core CI-like box; Criterion's defaults would take tens of
/// minutes for no extra insight at this granularity.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_main!(benches);
