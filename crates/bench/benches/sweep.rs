//! Sweep-throughput bench: batched (compile-once / reprice-many) vs naive
//! (re-parse + re-compile per point) evaluation of the same what-if grid.
//!
//! The unit is *sweep points per second*: one point is one
//! (calibration, gpus, schedule) replay of the recorded workload, so the
//! number is comparable across engine rewrites and directly answers "how
//! fast can we search the hardware space?". The naive path is exactly
//! what a script looping `whatif --replay --calib X --gpus N` pays per
//! point: parse the JSONL recording, reprice the traces, rebuild the
//! segment arena, replay. The batched path is `accel_sim::sweep::sweep`,
//! which compiles once and materializes only a per-calibration cost
//! vector per point.
//!
//! Results are written as JSON (`BENCH_sweep.json` at the workspace root
//! unless `BENCH_SWEEP_OUT` overrides it) with the batched-vs-naive
//! speedup and a bit-identity flag: the grid's identity point must equal
//! `replay_identity` down to the last mantissa bit, or the batched path
//! is disqualified. `BENCH_SWEEP_SMOKE=1` shrinks the workload and budget
//! (keeping the full 120-point grid) so `ci.sh` can validate the harness
//! and JSON shape in seconds.

use std::time::{Duration, Instant};

use accel_sim::sweep::{sweep, SweepCalib, SweepSpec};
use accel_sim::whatif::presets;
use accel_sim::{
    KernelProfile, RankTrace, RecordMeta, RecordedWorkload, SchedulePolicyKind, Segment,
    TransferDir,
};
use criterion::black_box;

const RANKS_PER_NODE: usize = 8;
const NODES: usize = 4;

/// A mixed recorded workload in the style of the engine bench: host work,
/// kernels of varying occupancy, transfers and periodic collectives,
/// skewed per rank so contention is asymmetric.
fn synth_workload(segments_per_rank: usize) -> RecordedWorkload {
    let node: Vec<RankTrace> = (0..RANKS_PER_NODE)
        .map(|r| {
            let f = 1.0 + 0.2 * r as f64;
            let mut segs = Vec::with_capacity(segments_per_rank);
            let mut i = 0usize;
            while segs.len() < segments_per_rank {
                match i % 5 {
                    0 => segs.push(Segment::Host {
                        seconds: 2e-4 * f,
                        label: "h".into(),
                    }),
                    1 => segs.push(Segment::Transfer {
                        bytes: 4e6 * f,
                        dir: TransferDir::HostToDevice,
                        label: "accel_data_update_device".into(),
                    }),
                    2 => segs.push(Segment::Kernel {
                        profile: KernelProfile::uniform("k_big", 2e7, 40.0 * f, 8.0),
                        dispatch: 1e-5,
                    }),
                    3 => segs.push(Segment::Kernel {
                        profile: KernelProfile::uniform("k_small", 2e4, 100.0, 16.0),
                        dispatch: 1e-5,
                    }),
                    _ => segs.push(Segment::Transfer {
                        bytes: 2e6 * f,
                        dir: TransferDir::DeviceToHost,
                        label: "accel_data_update_host".into(),
                    }),
                }
                i += 1;
                if i.is_multiple_of(13) && segs.len() < segments_per_rank {
                    segs.push(Segment::Collective {
                        seconds: 5e-4,
                        bytes: 1e6,
                        label: "mpi_allreduce".into(),
                    });
                }
            }
            RankTrace {
                segments: segs,
                ..RankTrace::default()
            }
        })
        .collect();
    let meta = RecordMeta {
        label: "sweep bench".into(),
        total_ranks: (NODES * RANKS_PER_NODE) as u32,
        ..RecordMeta::default()
    };
    RecordedWorkload::capture(vec![node; NODES], meta)
}

/// The 120-point grid: identity + every preset, four GPU counts, every
/// schedule policy.
fn bench_grid(meta: &RecordMeta) -> SweepSpec {
    let mut calibs = vec![SweepCalib::resolve("identity", meta).expect("identity")];
    for p in presets() {
        calibs.push(SweepCalib::resolve(p.name, meta).expect("preset"));
    }
    SweepSpec {
        calibs,
        gpus: vec![1, 2, 4, 8],
        schedules: vec![
            SchedulePolicyKind::Auto,
            SchedulePolicyKind::MpsFluid,
            SchedulePolicyKind::TimeSliced,
            SchedulePolicyKind::Fifo,
            SchedulePolicyKind::Priority,
        ],
        deadline: None,
    }
}

struct Measurement {
    path: &'static str,
    points: u64,
    iters: u64,
    seconds: f64,
    points_per_sec: f64,
}

/// Time `per_iter` repeatedly until the budget closes (at least once),
/// after one untimed warm-up.
fn measure(
    path: &'static str,
    points_per_iter: u64,
    budget: Duration,
    mut per_iter: impl FnMut(),
) -> Measurement {
    per_iter();
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        per_iter();
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    Measurement {
        path,
        points: points_per_iter * iters,
        iters,
        seconds,
        points_per_sec: points_per_iter as f64 * iters as f64 / seconds,
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SWEEP_SMOKE").is_ok_and(|v| v == "1");
    let (mode, segments_per_rank, budget) = if smoke {
        ("smoke", 12, Duration::from_millis(60))
    } else {
        ("full", 60, Duration::from_millis(1500))
    };

    let workload = synth_workload(segments_per_rank);
    let spec = bench_grid(&workload.meta);
    let grid_points = spec.point_count() as u64;
    let jsonl = workload.to_jsonl();

    // Correctness gate: the batched identity point at the recorded
    // gpus/schedule must equal the trace-level oracle bit for bit.
    let result = sweep(&workload, &spec).expect("sweep");
    let identity = result
        .points
        .iter()
        .find(|p| {
            p.calib == "identity"
                && p.gpus == workload.meta.gpus
                && p.schedule == workload.meta.schedule
        })
        .expect("identity point in grid");
    let oracle = workload
        .replay_identity()
        .expect("replay")
        .cluster
        .wall_seconds;
    let identity_bit_identical =
        identity.makespan.expect("identity evaluates").to_bits() == oracle.to_bits();

    let batched = measure("batched", grid_points, budget, || {
        black_box(sweep(&workload, &spec).expect("sweep"));
    });
    println!(
        "sweep/batched: {} iters, {:.3}s, {:.3e} points/s",
        batched.iters, batched.seconds, batched.points_per_sec
    );

    // The naive path pays the full per-point cost: re-parse the recording,
    // reprice the traces, rebuild the arena, replay.
    let naive = measure("naive", grid_points, budget, || {
        for calib in &spec.calibs {
            for &gpus in &spec.gpus {
                for &schedule in &spec.schedules {
                    let mut w = RecordedWorkload::parse_jsonl(&jsonl).expect("parse");
                    w.meta.schedule = schedule;
                    black_box(
                        w.replay(&calib.node, &calib.net, Some(gpus))
                            .expect("replay"),
                    );
                }
            }
        }
    });
    println!(
        "sweep/naive: {} iters, {:.3}s, {:.3e} points/s",
        naive.iters, naive.seconds, naive.points_per_sec
    );

    let speedup = batched.points_per_sec / naive.points_per_sec;
    println!("batched vs naive: {speedup:.1}x, identity_bit_identical {identity_bit_identical}");

    let rows: Vec<String> = [&batched, &naive]
        .iter()
        .map(|m| {
            format!(
                concat!(
                    "    {{\"path\":\"{}\",\"points\":{},\"iters\":{},",
                    "\"seconds\":{:.6},\"points_per_sec\":{:.1}}}"
                ),
                m.path, m.points, m.iters, m.seconds, m.points_per_sec
            )
        })
        .collect();
    let out = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sweep_throughput\",\n",
            "  \"unit\": \"sweep points per second\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"grid_points\": {grid},\n",
            "  \"identity_bit_identical\": {bit},\n",
            "  \"results\": [\n{rows}\n  ],\n",
            "  \"speedup_batched_vs_naive\": {speedup:.2}\n",
            "}}\n"
        ),
        mode = mode,
        grid = grid_points,
        bit = identity_bit_identical,
        rows = rows.join(",\n"),
        speedup = speedup,
    );

    let default = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json").to_string();
    let path = std::env::var("BENCH_SWEEP_OUT").unwrap_or(default);
    std::fs::write(&path, out).expect("write BENCH_sweep.json");
    println!("wrote {path}");
}
