//! Criterion benchmarks of the framework layers themselves: tracing,
//! compilation, JIT-cache dispatch, fusion benefit, memory-pool reuse.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn ctx() -> accel_sim::Context {
    accel_sim::Context::new(accel_sim::NodeCalib::default())
}

fn bench_trace_compile(c: &mut Criterion) {
    use arrayjit::{compile::compile, DType, TraceContext};
    let mut g = c.benchmark_group("arrayjit");
    g.bench_function("trace_pixels_like_program", |b| {
        b.iter(|| {
            let tc = TraceContext::new();
            let x = tc.param(vec![64, 128], DType::F64);
            let y = tc.param(vec![64, 128], DType::F64);
            let z = (&x * &y).sin().cos().sqrt().atan2(&x).mul_s(2.0);
            let m = z.gt_s(0.5).select(&z, &(&x + &y));
            black_box(tc.finish(&[&m]))
        });
    });
    g.bench_function("compile_passes", |b| {
        let tc = TraceContext::new();
        let x = tc.param(vec![64, 128], DType::F64);
        let dup = x.sin() + x.sin(); // CSE fodder
        let _dead = x.exp().log();
        let g_ = tc.finish(&[&dup]);
        b.iter(|| black_box(compile("bench", &g_)));
    });
    g.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    use arrayjit::{Array, Backend, Jit};
    let mut g = c.benchmark_group("arrayjit_dispatch");
    g.bench_function("cached_call_small", |b| {
        let mut f = Jit::new("d", |_tc, p, _| vec![&p[0] * &p[1]]);
        let mut context = ctx();
        let args = [
            Array::from_f64(vec![1.0; 64]),
            Array::from_f64(vec![2.0; 64]),
        ];
        f.call(&mut context, Backend::Device, &args); // compile once
        b.iter(|| {
            black_box(f.call(&mut context, Backend::Device, &args));
        });
    });
    g.finish();
}

fn bench_pool(c: &mut Criterion) {
    use offload::Pool;
    let mut g = c.benchmark_group("offload_pool");
    for (label, pooled) in [("pool", true), ("raw", false)] {
        g.bench_function(label, |b| {
            let mut context = ctx();
            let mut pool: Pool<f64> = if pooled {
                Pool::new()
            } else {
                Pool::disabled()
            };
            b.iter(|| {
                let buf = pool.alloc(&mut context, 4096).unwrap();
                pool.free(&mut context, buf);
            });
        });
    }
    g.finish();
}

fn bench_target_region(c: &mut Criterion) {
    use offload::{target_parallel_for, KernelSpec};
    let mut g = c.benchmark_group("offload_region");
    g.bench_function("saxpy_64k", |b| {
        let mut context = ctx();
        let spec = KernelSpec::uniform("saxpy", 2.0, 24.0);
        let x = vec![1.0f64; 65536];
        let mut y = vec![0.0f64; 65536];
        b.iter(|| {
            target_parallel_for(&mut context, &spec, 65536, |i| {
                y[i] += 2.5 * x[i];
            });
            black_box(&y);
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets =
    bench_trace_compile,
    bench_dispatch,
    bench_pool,
    bench_target_region
);

/// Short measurement windows: the benches cover many targets on a
/// single-core CI-like box; Criterion's defaults would take tens of
/// minutes for no extra insight at this granularity.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_main!(benches);
