//! Engine-throughput bench: replayed segments per second through the
//! discrete-event engine at 1/8/64 nodes, with and without overlapped
//! transfer streams.
//!
//! The throughput unit is deliberately *code-independent*: one "event" is
//! one recorded [`Segment`] replayed, so numbers are comparable across
//! engine rewrites (a faster engine replays the same workload in less
//! wall time; it cannot inflate its own score by redefining the unit).
//! Results are written as JSON (`BENCH_engine.json` at the workspace root
//! unless `BENCH_ENGINE_OUT` overrides it) so every PR records the perf
//! trajectory; `BENCH_ENGINE_BASELINE` may point at a previous run of the
//! same bench to embed it and compute the 64-node speedup.
//!
//! `BENCH_ENGINE_SMOKE=1` shrinks the workload and measurement budget so
//! `ci.sh` can validate the harness and the JSON shape in seconds.

use std::time::{Duration, Instant};

use accel_sim::engine::simulate_cluster;
use accel_sim::{KernelProfile, NodeConfig, RankTrace, Segment, TransferDir};
use criterion::black_box;

const RANKS_PER_NODE: usize = 8;

/// One node's worth of rank traces: a mixed workload interleaving host
/// work, kernels of varying occupancy, synchronous/streamable transfers
/// and periodic collectives, skewed per rank so contention is asymmetric.
fn synth_node(segments_per_rank: usize, collective_every: usize) -> Vec<RankTrace> {
    (0..RANKS_PER_NODE)
        .map(|r| {
            let f = 1.0 + 0.2 * r as f64;
            let mut segs = Vec::with_capacity(segments_per_rank);
            let mut i = 0usize;
            while segs.len() < segments_per_rank {
                match i % 5 {
                    0 => segs.push(Segment::Host {
                        seconds: 2e-4 * f,
                        label: "h".into(),
                    }),
                    1 => segs.push(Segment::Transfer {
                        bytes: 4e6 * f,
                        dir: TransferDir::HostToDevice,
                        label: "accel_data_update_device".into(),
                    }),
                    2 => segs.push(Segment::Kernel {
                        profile: KernelProfile::uniform("k_big", 2e7, 40.0 * f, 8.0),
                        dispatch: 1e-5,
                    }),
                    3 => segs.push(Segment::Kernel {
                        profile: KernelProfile::uniform("k_small", 2e4, 100.0, 16.0),
                        dispatch: 1e-5,
                    }),
                    _ => segs.push(Segment::Transfer {
                        bytes: 2e6 * f,
                        dir: TransferDir::DeviceToHost,
                        label: "accel_data_update_host".into(),
                    }),
                }
                i += 1;
                if i.is_multiple_of(collective_every) && segs.len() < segments_per_rank {
                    segs.push(Segment::Collective {
                        seconds: 5e-4,
                        bytes: 1e6,
                        label: "mpi_allreduce".into(),
                    });
                }
            }
            RankTrace {
                segments: segs,
                ..RankTrace::default()
            }
        })
        .collect()
}

struct Measurement {
    nodes: usize,
    overlap: bool,
    events: u64,
    iters: u64,
    seconds: f64,
    events_per_sec: f64,
}

/// Run one configuration repeatedly until the budget closes (at least
/// once), after a single untimed warm-up replay.
fn measure(node_traces: &[Vec<RankTrace>], overlap: bool, budget: Duration) -> Measurement {
    let cfg = NodeConfig {
        overlap_transfers: overlap,
        ..NodeConfig::default()
    };
    let events: u64 = node_traces
        .iter()
        .flatten()
        .map(|t| t.segments.len() as u64)
        .sum();
    black_box(simulate_cluster(node_traces, &cfg).expect("bench workload must fit"));

    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        black_box(simulate_cluster(node_traces, &cfg).expect("bench workload must fit"));
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    Measurement {
        nodes: node_traces.len(),
        overlap,
        events: events * iters,
        iters,
        seconds,
        events_per_sec: events as f64 * iters as f64 / seconds,
    }
}

fn results_json(mode: &str, results: &[Measurement]) -> String {
    let rows: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                concat!(
                    "    {{\"nodes\":{},\"overlap\":{},\"events\":{},\"iters\":{},",
                    "\"seconds\":{:.6},\"events_per_sec\":{:.1}}}"
                ),
                m.nodes, m.overlap, m.events, m.iters, m.seconds, m.events_per_sec
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"engine_throughput\",\n  \"unit\": \"replayed segments per second\",\n  \"mode\": \"{mode}\",\n  \"ranks_per_node\": {RANKS_PER_NODE},\n  \"results\": [\n{}\n  ]",
        rows.join(",\n")
    )
}

/// Pull `events_per_sec` for a `(nodes, overlap=false)` row out of a
/// previous run's JSON (hand-rolled like the whatif JSONL parser — the
/// workspace builds without registry dependencies).
fn baseline_events_per_sec(text: &str, nodes: usize) -> Option<f64> {
    let key = format!("\"nodes\":{nodes},\"overlap\":false");
    let row_start = text.find(&key)?;
    let rest = &text[row_start..];
    let field = "\"events_per_sec\":";
    let v_start = rest.find(field)? + field.len();
    let tail = &rest[v_start..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || ".+-eE".contains(c)))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let smoke = std::env::var("BENCH_ENGINE_SMOKE").is_ok_and(|v| v == "1");
    let (mode, segments_per_rank, budget) = if smoke {
        ("smoke", 30, Duration::from_millis(50))
    } else {
        ("full", 120, Duration::from_millis(1500))
    };

    let node = synth_node(segments_per_rank, 13);
    let mut results = Vec::new();
    for nodes in [1usize, 8, 64] {
        let node_traces: Vec<Vec<RankTrace>> = vec![node.clone(); nodes];
        for overlap in [false, true] {
            let m = measure(&node_traces, overlap, budget);
            println!(
                "engine/{}nodes{}: {} iters, {:.3}s, {:.3e} events/s",
                m.nodes,
                if m.overlap { "/overlap" } else { "" },
                m.iters,
                m.seconds,
                m.events_per_sec
            );
            results.push(m);
        }
    }

    let mut out = results_json(mode, &results);
    if let Ok(path) = std::env::var("BENCH_ENGINE_BASELINE") {
        if let Ok(text) = std::fs::read_to_string(&path) {
            let speedup = baseline_events_per_sec(&text, 64).map(|base| {
                let cur = results
                    .iter()
                    .find(|m| m.nodes == 64 && !m.overlap)
                    .map(|m| m.events_per_sec)
                    .unwrap_or(0.0);
                cur / base
            });
            // Embed the baseline's results array verbatim for trajectory
            // reports.
            if let (Some(s), Some(e)) = (text.find("\"results\": ["), text.rfind(']')) {
                let arr = &text[s + "\"results\": ".len()..=e];
                out.push_str(&format!(",\n  \"baseline_results\": {arr}"));
            }
            if let Some(sp) = speedup {
                out.push_str(&format!(",\n  \"speedup_vs_baseline_64_nodes\": {sp:.2}"));
            }
        }
    }
    out.push_str("\n}\n");

    let default = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json").to_string();
    let path = std::env::var("BENCH_ENGINE_OUT").unwrap_or(default);
    std::fs::write(&path, out).expect("write BENCH_engine.json");
    println!("wrote {path}");
}
