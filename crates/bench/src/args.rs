//! Shared CLI handling for the fig binaries, built on the scenario spec.
//!
//! Every binary follows the same contract:
//!
//! 1. it declares a *default* [`Scenario`] (the configuration its figure
//!    was defined with — the same values the golden file under
//!    `scenarios/` holds);
//! 2. `--scenario <file>` replaces those defaults wholesale;
//! 3. individual flags (`--scale`, `--procs`, `--impl`, …) override on
//!    top, whichever base was chosen, so existing invocations keep
//!    working — the flags now *parse into* the scenario rather than
//!    bypassing it;
//! 4. `--dump-scenario` prints the resolved scenario as canonical JSON
//!    and exits, which is both the way golden files are generated and the
//!    CI round-trip check (`fig… --scenario f --dump-scenario | diff - f`).
//!
//! Malformed values abort with exit code 2 rather than silently running
//! the wrong experiment.

use scenario::{ProblemSize, Scenario};

/// The value following `--<flag>` in argv, if present.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether a bare `--<flag>` is present in argv.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn bail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Parse the value of `--<flag>`, aborting on malformed input.
fn parsed_value<T>(flag: &str) -> Option<T>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    arg_value(flag).map(|v| {
        v.parse()
            .unwrap_or_else(|e| bail(format!("{flag} '{v}': {e}")))
    })
}

/// Resolve the run's scenario: the binary's `default`, replaced by
/// `--scenario <file>` when given, with flag overrides applied on top.
/// Handles `--dump-scenario` (print canonical JSON, exit 0). The result
/// is validated — an invalid combination aborts before any work runs.
pub fn scenario_from_args(default: Scenario) -> Scenario {
    let mut s = match arg_value("--scenario") {
        Some(path) => Scenario::read(&path).unwrap_or_else(|e| bail(format!("{path}: {e}"))),
        None => default,
    };
    apply_overrides(&mut s);
    if let Err(e) = s.validate() {
        bail(e);
    }
    if has_flag("--dump-scenario") {
        print!("{}", s.to_json());
        std::process::exit(0);
    }
    s
}

fn apply_overrides(s: &mut Scenario) {
    if let Some(size) = arg_value("--size") {
        s.problem.size = match size.as_str() {
            "medium" => ProblemSize::Medium,
            "large" => ProblemSize::Large,
            other => bail(format!("--size '{other}': expected medium or large")),
        };
    }
    if let Some(v) = parsed_value("--scale") {
        s.problem.scale = v;
    }
    if let Some(v) = parsed_value("--impl") {
        s.kind = v;
    }
    if let Some(v) = parsed_value("--procs") {
        s.procs_per_node = v;
    }
    if let Some(v) = parsed_value("--gpus") {
        s.gpus = v;
    }
    if let Some(v) = parsed_value("--nodes") {
        s.nodes = Some(v);
    }
    if let Some(v) = parsed_value("--schedule") {
        s.schedule = v;
    }
    if let Some(v) = parsed_value("--movement") {
        s.movement = v;
    }
    if has_flag("--mps") {
        s.mps = true;
    }
    if has_flag("--no-mps") {
        s.mps = false;
    }
    if has_flag("--overlap") {
        s.overlap_transfers = true;
    }
    if has_flag("--no-overlap") {
        s.overlap_transfers = false;
    }
    if let Some(v) = arg_value("--trace-out") {
        s.output.trace_out = Some(v);
    }
    if let Some(v) = arg_value("--record") {
        s.output.record_out = Some(v);
    }
}

/// Parse `--scale <f64>` from argv, with a default. Retained for the
/// binaries that have no run configuration at all (LoC counts, the
/// allocator ablation); everything else goes through
/// [`scenario_from_args`].
pub fn scale_from_args(default: f64) -> f64 {
    parsed_value("--scale").unwrap_or(default)
}

/// Parse `--nodes <n>` from argv: replay `n` whole nodes through the
/// cluster engine. `None` (flag absent) keeps the legacy single-node
/// replay with analytic comm pricing.
pub fn nodes_from_args() -> Option<u32> {
    let n: u32 = parsed_value("--nodes")?;
    if n < 1 {
        bail("--nodes expects a positive integer");
    }
    Some(n)
}

/// Parse `--schedule <policy>` from argv
/// (auto | mps | timeslice | fifo | priority); defaults to `auto`,
/// which follows the MPS flag.
pub fn schedule_from_args() -> accel_sim::SchedulePolicyKind {
    parsed_value("--schedule").unwrap_or(accel_sim::SchedulePolicyKind::Auto)
}
