//! Trace export: Chrome trace-event JSON or JSONL, selected by extension.
//!
//! The `fig*` binaries take `--trace-out <path>`; a `.jsonl` path writes
//! one JSON object per line (easy to grep and post-process), anything
//! else writes the Chrome trace-event array format loadable in
//! `chrome://tracing` / Perfetto. Virtual per-rank spans go under pid 0,
//! the contention-resolved node timeline under pid 1, and per-GPU
//! occupancy as counter events under pid 2.
//!
//! The module also parses its own output ([`span_seconds_from_file`]) so
//! tests can prove the export round-trips: summed per-label durations of
//! the timed spans equal the simulator's per-label `LabelStats::seconds`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use accel_sim::{NodeTimeline, RankTrace, TimelineKind};

/// On-disk trace flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome trace-event JSON array (`chrome://tracing`, Perfetto).
    Chrome,
    /// One JSON object per line.
    Jsonl,
}

impl TraceFormat {
    /// Pick the format from a path's extension: `.jsonl` selects
    /// [`TraceFormat::Jsonl`], everything else the Chrome format.
    pub fn from_path(path: &Path) -> Self {
        match path.extension().and_then(|e| e.to_str()) {
            Some("jsonl") => TraceFormat::Jsonl,
            _ => TraceFormat::Chrome,
        }
    }
}

/// Minimal JSON string escape (labels are plain ASCII identifiers, but be
/// safe about quotes and backslashes).
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn secs_to_us(s: f64) -> f64 {
    s * 1e6
}

/// Render the trace in `format`.
pub fn render_trace(
    traces: &[RankTrace],
    timeline: Option<&NodeTimeline>,
    format: TraceFormat,
) -> String {
    match format {
        TraceFormat::Chrome => render_chrome(traces, timeline),
        TraceFormat::Jsonl => render_jsonl(traces, timeline),
    }
}

fn render_chrome(traces: &[RankTrace], timeline: Option<&NodeTimeline>) -> String {
    let mut lines: Vec<String> = Vec::new();
    for (rank, trace) in traces.iter().enumerate() {
        for e in &trace.events {
            let ph = if e.dur > 0.0 || e.kind.is_timed() {
                r#""ph":"X""#.to_string() + &format!(r#","dur":{}"#, secs_to_us(e.dur))
            } else {
                r#""ph":"i","s":"t""#.to_string()
            };
            lines.push(format!(
                r#"{{"name":"{}","cat":"{}",{},"ts":{},"pid":0,"tid":{rank},"args":{{"scope":"{}","bytes":{}}}}}"#,
                esc(&e.label),
                e.kind.name(),
                ph,
                secs_to_us(e.start),
                esc(&e.scope),
                e.bytes,
            ));
        }
    }
    if let Some(tl) = timeline {
        for e in &tl.events {
            let gpu = e.gpu.map_or("null".to_string(), |g| g.to_string());
            let ph = if e.kind == TimelineKind::ContextSwitch {
                r#""ph":"i","s":"t""#.to_string()
            } else {
                format!(r#""ph":"X","dur":{}"#, secs_to_us(e.end - e.start))
            };
            lines.push(format!(
                r#"{{"name":"{}","cat":"{}",{},"ts":{},"pid":1,"tid":{},"args":{{"gpu":{gpu}}}}}"#,
                esc(&e.label),
                e.kind.name(),
                ph,
                secs_to_us(e.start),
                e.rank,
            ));
        }
        for s in &tl.occupancy {
            lines.push(format!(
                r#"{{"name":"gpu{} occupancy","ph":"C","ts":{},"pid":2,"tid":0,"args":{{"load":{}}}}}"#,
                s.gpu,
                secs_to_us(s.t),
                s.load,
            ));
        }
    }
    let mut out = String::from("[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n");
    out
}

fn render_jsonl(traces: &[RankTrace], timeline: Option<&NodeTimeline>) -> String {
    let mut out = String::new();
    for (rank, trace) in traces.iter().enumerate() {
        for e in &trace.events {
            writeln!(
                out,
                r#"{{"type":"span","rank":{rank},"kind":"{}","label":"{}","scope":"{}","start":{},"dur":{},"bytes":{}}}"#,
                e.kind.name(),
                esc(&e.label),
                esc(&e.scope),
                e.start,
                e.dur,
                e.bytes,
            )
            .unwrap();
        }
    }
    if let Some(tl) = timeline {
        for e in &tl.events {
            let gpu = e.gpu.map_or("null".to_string(), |g| g.to_string());
            writeln!(
                out,
                r#"{{"type":"timeline","rank":{},"gpu":{gpu},"kind":"{}","label":"{}","start":{},"end":{}}}"#,
                e.rank,
                e.kind.name(),
                esc(&e.label),
                e.start,
                e.end,
            )
            .unwrap();
        }
        for s in &tl.occupancy {
            writeln!(
                out,
                r#"{{"type":"occupancy","gpu":{},"t":{},"load":{}}}"#,
                s.gpu, s.t, s.load,
            )
            .unwrap();
        }
    }
    out
}

/// Write the trace to `path`, format chosen from the extension.
pub fn write_trace(
    path: &Path,
    traces: &[RankTrace],
    timeline: Option<&NodeTimeline>,
) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    fs::write(
        path,
        render_trace(traces, timeline, TraceFormat::from_path(path)),
    )
}

/// Pull a `"field":"value"` string out of one JSON line. Line-based on
/// purpose: both exporters emit one event per line, which keeps the
/// round-trip parser free of a JSON dependency.
fn json_str_field(line: &str, field: &str) -> Option<String> {
    let key = format!(r#""{field}":""#);
    let start = line.find(&key)? + key.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Pull a `"field":number` out of one JSON line.
fn json_num_field(line: &str, field: &str) -> Option<f64> {
    let key = format!(r#""{field}":"#);
    let start = line.find(&key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

const TIMED_KINDS: [&str; 5] = ["host", "kernel", "transfer", "alloc", "collective"];

/// Parse a written trace back into summed per-label seconds over the
/// timed virtual-rank spans — the round-trip check against
/// `Context::stats()`. Handles both formats.
pub fn span_seconds_from_file(path: &Path) -> io::Result<BTreeMap<String, f64>> {
    let text = fs::read_to_string(path)?;
    let mut out: BTreeMap<String, f64> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let (label, kind, dur_s) = if line.contains(r#""type":"span""#) {
            // JSONL span record: start/dur in seconds.
            let (Some(label), Some(kind), Some(dur)) = (
                json_str_field(line, "label"),
                json_str_field(line, "kind"),
                json_num_field(line, "dur"),
            ) else {
                continue;
            };
            (label, kind, dur)
        } else if line.contains(r#""pid":0"#) && line.contains(r#""ph":"X""#) {
            // Chrome complete event on the virtual-rank track: µs.
            let (Some(label), Some(kind), Some(dur)) = (
                json_str_field(line, "name"),
                json_str_field(line, "cat"),
                json_num_field(line, "dur"),
            ) else {
                continue;
            };
            (label, kind, dur / 1e6)
        } else {
            continue;
        };
        if TIMED_KINDS.contains(&kind.as_str()) {
            *out.entry(label).or_insert(0.0) += dur_s;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{Context, NodeCalib};

    fn traced_context() -> Context {
        let mut ctx = Context::new(NodeCalib::default());
        ctx.push_phase("test");
        ctx.host_compute("setup", 0.25);
        ctx.transfer_labeled(1048576.0, accel_sim::TransferDir::HostToDevice, "upload");
        ctx.pop_phase();
        ctx
    }

    #[test]
    fn format_follows_extension() {
        assert_eq!(
            TraceFormat::from_path(Path::new("a/b.jsonl")),
            TraceFormat::Jsonl
        );
        assert_eq!(
            TraceFormat::from_path(Path::new("a/b.json")),
            TraceFormat::Chrome
        );
        assert_eq!(
            TraceFormat::from_path(Path::new("trace")),
            TraceFormat::Chrome
        );
    }

    #[test]
    fn both_formats_round_trip_per_label_seconds() {
        let ctx = traced_context();
        let stats: BTreeMap<String, f64> = ctx
            .stats()
            .iter()
            .map(|(k, v)| (k.clone(), v.seconds))
            .collect();
        let traces = vec![ctx.into_trace()];

        for name in ["roundtrip.json", "roundtrip.jsonl"] {
            let path = std::env::temp_dir().join(format!("repro_bench_{name}"));
            write_trace(&path, &traces, None).unwrap();
            let parsed = span_seconds_from_file(&path).unwrap();
            for (label, secs) in &stats {
                let got = parsed.get(label).copied().unwrap_or(0.0);
                assert!(
                    (got - secs).abs() < 1e-9 * secs.max(1.0),
                    "{name} {label}: {got} vs {secs}"
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn chrome_output_is_a_json_array_with_phase_events() {
        let ctx = traced_context();
        let out = render_chrome(&[ctx.into_trace()], None);
        assert!(out.starts_with("[\n"));
        assert!(out.trim_end().ends_with(']'));
        assert!(out.contains(r#""cat":"phase""#));
        assert!(out.contains(r#""name":"setup""#));
    }

    #[test]
    fn escaped_labels_survive_the_round_trip() {
        assert_eq!(
            json_str_field(r#"{"label":"a\"b"}"#, "label").unwrap(),
            "a\"b"
        );
        assert_eq!(json_num_field(r#"{"dur":2.5e-3}"#, "dur").unwrap(), 2.5e-3);
    }
}
