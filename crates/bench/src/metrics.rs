//! Per-label metrics aggregated from the span traces of a run.
//!
//! [`summarize_events`] walks every rank's [`accel_sim::SpanEvent`] stream and
//! reduces the timed spans into per-label counters and duration
//! percentiles — the harness-side complement of the simulator's
//! [`accel_sim::context::LabelStats`] totals, adding distribution shape
//! (p50/p95/max) that totals alone cannot show.

use std::collections::BTreeMap;

use accel_sim::RankTrace;

/// Summary of every timed span sharing one accounting label.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LabelSummary {
    /// Number of spans.
    pub calls: u64,
    /// Summed duration, seconds. Matches the simulator's per-label
    /// `LabelStats::seconds` for the same run.
    pub total_s: f64,
    /// Mean span duration, seconds.
    pub mean_s: f64,
    /// Median span duration (nearest-rank), seconds.
    pub p50_s: f64,
    /// 95th-percentile span duration (nearest-rank), seconds.
    pub p95_s: f64,
    /// Longest span, seconds.
    pub max_s: f64,
    /// Summed payload bytes (transfers; zero otherwise).
    pub bytes: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Reduce the timed spans of `traces` into per-label summaries.
///
/// Untimed events (phases, frees, OOM markers) are skipped, so for every
/// label `total_s` agrees with the per-label seconds the simulator
/// accumulated in `Context::stats()`.
pub fn summarize_events(traces: &[RankTrace]) -> BTreeMap<String, LabelSummary> {
    let mut durs: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut bytes: BTreeMap<String, f64> = BTreeMap::new();
    for trace in traces {
        for e in &trace.events {
            if !e.kind.is_timed() {
                continue;
            }
            durs.entry(e.label.clone()).or_default().push(e.dur);
            *bytes.entry(e.label.clone()).or_default() += e.bytes;
        }
    }
    durs.into_iter()
        .map(|(label, mut ds)| {
            ds.sort_by(|a, b| a.total_cmp(b));
            let total: f64 = ds.iter().sum();
            let summary = LabelSummary {
                calls: ds.len() as u64,
                total_s: total,
                mean_s: total / ds.len() as f64,
                p50_s: percentile(&ds, 50.0),
                p95_s: percentile(&ds, 95.0),
                max_s: *ds.last().unwrap(),
                bytes: bytes.remove(&label).unwrap_or(0.0),
            };
            (label, summary)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{SpanEvent, SpanKind};

    fn span(kind: SpanKind, label: &str, dur: f64, bytes: f64) -> SpanEvent {
        SpanEvent {
            kind,
            label: label.to_string(),
            scope: String::new(),
            start: 0.0,
            dur,
            bytes,
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let ds: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&ds, 50.0), 50.0);
        assert_eq!(percentile(&ds, 95.0), 95.0);
        assert_eq!(percentile(&[42.0], 95.0), 42.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn summaries_aggregate_across_ranks_and_skip_untimed() {
        let mut a = RankTrace::default();
        a.events.push(span(SpanKind::Kernel, "scan_map", 2.0, 0.0));
        a.events.push(span(SpanKind::Phase, "pipeline", 9.0, 0.0));
        let mut b = RankTrace::default();
        b.events.push(span(SpanKind::Kernel, "scan_map", 4.0, 0.0));
        b.events.push(span(
            SpanKind::Transfer,
            "accel_data_update_device",
            1.0,
            8.0,
        ));

        let m = summarize_events(&[a, b]);
        assert!(!m.contains_key("pipeline"));
        let k = &m["scan_map"];
        assert_eq!(k.calls, 2);
        assert_eq!(k.total_s, 6.0);
        assert_eq!(k.mean_s, 3.0);
        assert_eq!(k.max_s, 4.0);
        assert_eq!(m["accel_data_update_device"].bytes, 8.0);
    }
}
