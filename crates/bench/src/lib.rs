//! The figure-regeneration harness.
//!
//! One module per concern:
//!
//! * [`args`] — shared CLI handling: every binary resolves a
//!   [`scenario::Scenario`] (its figure's defaults, `--scenario <file>`,
//!   flag overrides, `--dump-scenario`) through one parser;
//! * [`runner`] — execute one benchmark configuration (problem ×
//!   implementation × processes × MPS × movement policy): build every
//!   rank's workload, run the pipelines recording traces, replay them
//!   through the node-level discrete-event simulation, and price the
//!   inter-node collectives. [`RunConfig`] is the runner-facing
//!   projection of a scenario;
//! * [`metrics`] — per-label counters and duration percentiles reduced
//!   from the span traces;
//! * [`traceout`] — Chrome-trace-event / JSONL export behind the
//!   binaries' `--trace-out <path>` flag, plus the round-trip parser;
//! * [`report`] — aligned text tables and CSV emission under
//!   `target/figures/`.
//!
//! Each binary under `src/bin/` regenerates one of the paper's figures or
//! one of the DESIGN.md ablations; `EXPERIMENTS.md` records paper-vs-
//! measured for all of them, and `scenarios/` holds the golden scenario
//! file behind each one.

#![forbid(unsafe_code)]

pub mod args;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod traceout;

pub use args::{arg_value, has_flag, scenario_from_args};
pub use metrics::{summarize_events, LabelSummary};
pub use runner::{record_run, recorded_workload, run_config, RunConfig, RunOutcome};
pub use traceout::{span_seconds_from_file, write_trace, TraceFormat};

/// Shared trace-dump handling for the fig binaries: when the scenario
/// requests a trace (`output.trace_out`, usually set by `--trace-out`),
/// write `out`'s span trace (plus the node timeline, if the run fit) to
/// that path with `label` inserted before the extension — `trace.json`
/// becomes `trace-<label>.json`, one file per configuration of a sweep —
/// and print the per-label span metrics.
pub fn dump_trace_if_requested(out: &RunOutcome, label: &str, trace_out: Option<&str>) {
    let Some(base) = trace_out else {
        return;
    };
    let path = report::trace_path_for(base, label);
    match traceout::write_trace(&path, &out.traces, out.timeline.as_ref()) {
        Ok(()) => println!("wrote trace {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
    println!(
        "\nper-label span metrics — {label}\n{}",
        report::metrics_table(&out.metrics).render()
    );
}
