//! The figure-regeneration harness.
//!
//! One module per concern:
//!
//! * [`runner`] — execute one benchmark configuration (problem ×
//!   implementation × processes × MPS × movement policy): build every
//!   rank's workload, run the pipelines recording traces, replay them
//!   through the node-level discrete-event simulation, and price the
//!   inter-node collectives;
//! * [`report`] — aligned text tables and CSV emission under
//!   `target/figures/`.
//!
//! Each binary under `src/bin/` regenerates one of the paper's figures or
//! one of the DESIGN.md ablations; `EXPERIMENTS.md` records paper-vs-
//! measured for all of them.

pub mod report;
pub mod runner;

pub use runner::{run_config, RunConfig, RunOutcome};
