//! What-if repricing: record a benchmark run's charges, then replay them
//! under a different hardware calibration without re-running any kernel
//! numerics.
//!
//! Record (runs the benchmark once, writes the workload JSONL):
//!
//! ```text
//! whatif --record <path> [--scenario <file>] [--size medium|large]
//!        [--impl cpu|jax|omp|jaxcpu] [--procs <n>] [--scale <f>]
//!        [--nodes <n>] [--schedule <policy>] [--no-mps] [--dump-scenario]
//! ```
//!
//! The run is described by a [`Scenario`] (defaults:
//! `scenarios/whatif_record.json`'s values); the originating scenario is
//! embedded in the recording's metadata, so a replay knows exactly which
//! configuration produced the charges.
//!
//! Replay (no benchmark run — only the recorded charges are re-priced):
//!
//! ```text
//! whatif --replay <path> [--calib <preset>] [--gpus <n>]
//! ```
//!
//! `--calib identity` (the default) replays under the recorded
//! calibration; the resulting makespan must reproduce the live run's
//! exactly — the differential oracle, printed as a `delta 0.000000000`
//! line that `ci.sh` greps. Named presets (`a100`, `h100`, `a100-nvlink`,
//! `h100-nvlink`, `slingshot11`) answer the paper-motivated questions:
//! would JAX still trail OpenMP on H100-class FP64, or with NVLink
//! instead of PCIe? The report shows per-kernel original-vs-repriced
//! deltas and the makespan shift.
//!
//! Sweep (compile once, reprice many — batched Pareto search):
//!
//! ```text
//! whatif sweep --record <path> [--grid gpus=2..8;calib=identity,h100;schedule=mps,fifo]
//!              [--gpus 2..8] [--calib a100,h100] [--schedule mps,fifo]
//!              [--deadline <seconds>] [--out <jsonl>] [--dump-scenarios]
//!              [--preflight]
//! ```
//!
//! One workload compile serves the whole grid; each point only
//! materializes a per-calibration cost vector before replay. Points whose
//! analytic lower bound already exceeds `--deadline` are pruned without a
//! replay. The report ranks evaluated points by makespan, marks the
//! Pareto front over (makespan, hardware-cost proxy) and names the
//! cheapest point that meets the deadline. Passing a comma list or `..`
//! range to `--replay`'s `--calib`/`--gpus` routes to the same sweep.
//! `--dump-scenarios` prints the grid as one scenario per line (compact
//! JSON, derived from the recording's embedded scenario) instead of
//! replaying anything. `--preflight` runs the static analyzer's exact
//! OOM/deadlock predictors on each point first and skips the replay of
//! statically-rejected points; the output (including `--out` JSONL) is
//! bit-identical to the unpruned sweep because the predicted errors are
//! the very errors the replays would have produced.

use std::path::Path;
use std::process::exit;

use repro_bench::report::{fmt_ratio, Table};
use repro_bench::{arg_value, has_flag, record_run, scenario_from_args, RunConfig};

use accel_sim::sweep::{parse_calibs, parse_gpus, parse_schedules, SweepResult, SweepSpec};
use accel_sim::whatif::{preset, presets, RecordMeta, RecordedWorkload, Replayed};
use accel_sim::{NetCalib, NodeCalib};
use scenario::{ImplKind, ProblemSize, Scenario};

fn main() {
    if std::env::args().nth(1).as_deref() == Some("sweep") {
        let path = arg_value("--record").or_else(|| arg_value("--replay"));
        let Some(path) = path else {
            eprintln!(
                "usage: whatif sweep --record <workload.jsonl> [--grid ...] [--deadline <s>] [--preflight]"
            );
            exit(2);
        };
        sweep_cmd(&path);
        return;
    }
    if let Some(path) = arg_value("--replay") {
        replay(&path);
        return;
    }
    if arg_value("--record").is_some() || arg_value("--scenario").is_some() {
        record();
        return;
    }
    eprintln!(
        "usage: whatif --record <path> | --replay <path> [--calib <preset>] | whatif sweep --record <path>"
    );
    eprintln!("presets:");
    eprintln!("  identity — the recorded calibration (differential oracle)");
    for p in presets() {
        eprintln!("  {} — {}", p.name, p.about);
    }
    exit(2);
}

fn record() {
    let s = scenario_from_args(
        Scenario::new("whatif_record", ProblemSize::Medium, 1e-3).with_kind(ImplKind::OmpTarget),
    );
    let Some(path) = s.output.record_out.clone() else {
        eprintln!("error: recording needs an output path (--record <path> or output.record_out)");
        exit(2);
    };
    let cfg = RunConfig::from_scenario(&s).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(2);
    });
    let size = match s.problem.size {
        ProblemSize::Medium => "medium",
        ProblemSize::Large => "large",
    };
    let label = format!(
        "{size} {} x{} scale {} nodes {} schedule {} mps {}",
        s.kind,
        s.procs_per_node,
        s.problem.scale,
        cfg.nodes.map_or("-".into(), |n| n.to_string()),
        cfg.schedule,
        cfg.mps,
    );

    println!("recording: {label}");
    let (_out, workload) = record_run(&cfg, &label, Some(&s)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1);
    });
    if let Err(e) = workload.write(Path::new(&path)) {
        eprintln!("error: cannot write {path}: {e}");
        exit(1);
    }
    let segments: usize = workload
        .nodes
        .iter()
        .flatten()
        .map(|t| t.segments.len())
        .sum();
    println!(
        "wrote {path}: {} node(s) x {} rank(s), {segments} segments, live makespan {:?} s",
        workload.nodes.len(),
        workload.nodes.first().map_or(0, |n| n.len()),
        workload.meta.live_wall_seconds,
    );
}

fn replay(path: &str) {
    // A comma list or `..` range on either axis means the user asked a
    // sweep question; route it to the batched path.
    let multi = |v: &Option<String>| {
        v.as_deref()
            .is_some_and(|s| s.contains(',') || s.contains(".."))
    };
    if multi(&arg_value("--calib")) || multi(&arg_value("--gpus")) {
        sweep_cmd(path);
        return;
    }
    let workload = RecordedWorkload::read(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1);
    });
    let gpus: Option<u32> = arg_value("--gpus").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --gpus expects a positive integer, got '{v}'");
            exit(2);
        })
    });
    let calib_name = arg_value("--calib").unwrap_or_else(|| "identity".into());
    println!(
        "replaying {path} [{}] under calib '{calib_name}'",
        workload.meta.label
    );

    // The differential oracle always runs: under the recorded calibration
    // the engine must reproduce the live makespan bit for bit.
    let identity = run_replay(
        &workload,
        &workload.meta.node_calib,
        &workload.meta.net_calib,
        None,
    );
    println!(
        "identity check: recorded makespan {:?} s, replayed {:?} s, delta {:.9}",
        workload.meta.live_wall_seconds,
        identity.cluster.wall_seconds,
        identity.cluster.wall_seconds - workload.meta.live_wall_seconds,
    );

    let (node, net) = if calib_name == "identity" {
        (workload.meta.node_calib, workload.meta.net_calib)
    } else {
        let p = preset(&calib_name).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(2);
        });
        // Presets are defined at paper scale; the recording ran with its
        // latencies and capacities scaled alongside the data.
        (p.node.rescaled(workload.meta.work_scale), p.net)
    };
    let repriced = run_replay(&workload, &node, &net, gpus);

    let live_stats = workload.live_label_stats();
    let mut table = Table::new(&["label", "calls", "orig_s", "new_s", "delta_s", "ratio"]);
    for (label, new) in &repriced.per_label {
        let orig = live_stats.get(label).copied().unwrap_or_default();
        table.row(vec![
            label.clone(),
            new.calls.to_string(),
            format!("{:.6}", orig.seconds),
            format!("{:.6}", new.seconds),
            format!("{:+.6}", new.seconds - orig.seconds),
            if orig.seconds > 0.0 {
                fmt_ratio(orig.seconds / new.seconds)
            } else {
                "-".into()
            },
        ]);
    }
    println!("\nper-label solo estimates — original vs '{calib_name}'");
    println!("{}", table.render());

    let orig_wall = identity.cluster.wall_seconds;
    let new_wall = repriced.cluster.wall_seconds;
    println!(
        "makespan: original {orig_wall:?} s, repriced {new_wall:?} s, delta {:.9}",
        new_wall - orig_wall
    );
    if (new_wall - orig_wall).abs() > f64::EPSILON * orig_wall {
        let shift = if new_wall < orig_wall {
            format!("{} faster", fmt_ratio(orig_wall / new_wall))
        } else {
            format!("{} slower", fmt_ratio(new_wall / orig_wall))
        };
        println!("under '{calib_name}' this configuration finishes {shift}");
    }
}

fn run_replay(
    workload: &RecordedWorkload,
    node: &NodeCalib,
    net: &NetCalib,
    gpus: Option<u32>,
) -> Replayed {
    workload.replay(node, net, gpus).unwrap_or_else(|oom| {
        eprintln!("replay does not fit: {oom}");
        exit(1);
    })
}

/// The scenario a recording originated from: the embedded one when the
/// recording carries it, otherwise a reconstruction from the metadata
/// fields (pre-scenario recordings).
fn base_scenario(meta: &RecordMeta) -> Scenario {
    if let Some(text) = &meta.scenario {
        match Scenario::parse(text) {
            Ok(s) => return s,
            Err(e) => eprintln!("warning: embedded scenario unreadable ({e}); reconstructing"),
        }
    }
    let mut s = Scenario::new(&meta.label, ProblemSize::Medium, meta.work_scale);
    s.gpus = meta.gpus;
    s.mps = meta.mps;
    s.schedule = meta.schedule;
    s.overlap_transfers = meta.overlap_transfers;
    s
}

fn sweep_cmd(path: &str) {
    let workload = RecordedWorkload::read(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1);
    });
    let meta = &workload.meta;

    let mut spec = match arg_value("--grid") {
        Some(grid) => SweepSpec::parse_grid(&grid, meta),
        None => Ok(SweepSpec::default_grid(meta)),
    }
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(2);
    });
    // Individual axis flags override the grid string (and are the short
    // form for small sweeps: `--calib a100,h100 --gpus 2..8`).
    fn bail(e: String) -> ! {
        eprintln!("error: {e}");
        exit(2);
    }
    if let Some(v) = arg_value("--gpus") {
        spec.gpus = parse_gpus(&v).unwrap_or_else(|e| bail(e));
    }
    if let Some(v) = arg_value("--calib") {
        spec.calibs = parse_calibs(&v, meta).unwrap_or_else(|e| bail(e));
    }
    if let Some(v) = arg_value("--schedule") {
        spec.schedules = parse_schedules(&v).unwrap_or_else(|e| bail(e));
    }
    spec.deadline = arg_value("--deadline").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --deadline expects seconds, got '{v}'");
            exit(2);
        })
    });

    if has_flag("--dump-scenarios") {
        // Print the grid as runnable scenarios, one compact JSON per line,
        // without replaying anything.
        let base = base_scenario(meta);
        for s in scenario::expand_sweep(&base, &spec) {
            println!("{}", s.to_json_compact());
        }
        return;
    }

    println!(
        "sweeping {path} [{}]: {} point(s) ({} calib x {} gpus x {} schedule){}",
        meta.label,
        spec.point_count(),
        spec.calibs.len(),
        spec.gpus.len(),
        spec.schedules.len(),
        spec.deadline
            .map_or(String::new(), |d| format!(", deadline {d:?} s")),
    );

    let preflight = has_flag("--preflight");
    let run = if preflight {
        accel_sim::sweep::sweep_preflight
    } else {
        accel_sim::sweep::sweep
    };
    let result = run(&workload, &spec).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1);
    });
    report_sweep(&result, meta.live_wall_seconds);
    if preflight {
        println!(
            "{} point(s) rejected by preflight without a replay",
            result.rejected
        );
    }

    if let Some(out) = arg_value("--out") {
        if let Err(e) = std::fs::write(&out, result.to_jsonl()) {
            eprintln!("error: cannot write {out}: {e}");
            exit(1);
        }
        println!("wrote {out}");
    }
}

fn report_sweep(result: &SweepResult, live_wall: f64) {
    // Rank evaluated points fastest-first; pruned/errored rows follow so
    // the report stays a complete account of the grid.
    let mut order: Vec<usize> = (0..result.points.len()).collect();
    order.sort_by(|&a, &b| {
        let key = |i: usize| {
            let p = &result.points[i];
            (p.makespan.is_none(), p.makespan.unwrap_or(f64::INFINITY), i)
        };
        key(a).partial_cmp(&key(b)).expect("total order")
    });

    let mut table = Table::new(&[
        "rank",
        "calib",
        "gpus",
        "schedule",
        "makespan_s",
        "cost",
        "bound_s",
        "vs_live",
        "status",
    ]);
    for (rank, &i) in order.iter().enumerate() {
        let p = &result.points[i];
        let status = if let Some(e) = &p.error {
            format!("error: {e}")
        } else if p.pruned {
            "pruned".into()
        } else if result.pareto.contains(&i) {
            "pareto".into()
        } else {
            String::new()
        };
        table.row(vec![
            (rank + 1).to_string(),
            p.calib.clone(),
            p.gpus.to_string(),
            p.schedule.to_string(),
            p.makespan.map_or("-".into(), |m| format!("{m:.6}")),
            p.cost.map_or("-".into(), |c| format!("{c:.6}")),
            format!("{:.6}", p.lower_bound),
            p.makespan.map_or("-".into(), |m| fmt_ratio(live_wall / m)),
            status,
        ]);
    }
    println!("{}", table.render());

    println!(
        "sweep: {} point(s), {} evaluated, {} pruned by lower bound, {} compiled segment(s) shared",
        result.points.len(),
        result.evaluated,
        result.pruned,
        result.compiled_segments,
    );
    println!("pareto front: {} point(s)", result.pareto.len());
    if let Some(deadline) = result.deadline {
        match result.best_under_deadline {
            Some(i) => {
                let p = &result.points[i];
                println!(
                    "best under deadline {deadline:?} s: {} x{} {} (makespan {:.6} s, cost {:.6})",
                    p.calib,
                    p.gpus,
                    p.schedule,
                    p.makespan.unwrap_or(f64::NAN),
                    p.cost.unwrap_or(f64::NAN),
                );
            }
            None => println!("best under deadline {deadline:?} s: none feasible"),
        }
    }
}
