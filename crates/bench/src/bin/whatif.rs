//! What-if repricing: record a benchmark run's charges, then replay them
//! under a different hardware calibration without re-running any kernel
//! numerics.
//!
//! Record (runs the benchmark once, writes the workload JSONL):
//!
//! ```text
//! whatif --record <path> [--size medium|large] [--impl cpu|jax|omp|jaxcpu]
//!        [--procs <n>] [--scale <f>] [--nodes <n>] [--schedule <policy>]
//!        [--no-mps]
//! ```
//!
//! Replay (no benchmark run — only the recorded charges are re-priced):
//!
//! ```text
//! whatif --replay <path> [--calib <preset>] [--gpus <n>]
//! ```
//!
//! `--calib identity` (the default) replays under the recorded
//! calibration; the resulting makespan must reproduce the live run's
//! exactly — the differential oracle, printed as a `delta 0.000000000`
//! line that `ci.sh` greps. Named presets (`a100`, `h100`, `a100-nvlink`,
//! `h100-nvlink`, `slingshot11`) answer the paper-motivated questions:
//! would JAX still trail OpenMP on H100-class FP64, or with NVLink
//! instead of PCIe? The report shows per-kernel original-vs-repriced
//! deltas and the makespan shift.

use std::path::Path;
use std::process::exit;

use repro_bench::report::{
    arg_value, fmt_ratio, nodes_from_args, scale_from_args, schedule_from_args, Table,
};
use repro_bench::{recorded_workload, run_config, RunConfig};
use toast_core::dispatch::ImplKind;
use toast_satsim::Problem;

use accel_sim::whatif::{preset, presets, RecordedWorkload, Replayed};
use accel_sim::{NetCalib, NodeCalib};

fn main() {
    match (arg_value("--record"), arg_value("--replay")) {
        (Some(path), None) => record(&path),
        (None, Some(path)) => replay(&path),
        _ => {
            eprintln!("usage: whatif --record <path> | --replay <path> [--calib <preset>]");
            eprintln!("presets:");
            eprintln!("  identity — the recorded calibration (differential oracle)");
            for p in presets() {
                eprintln!("  {} — {}", p.name, p.about);
            }
            exit(2);
        }
    }
}

fn record(path: &str) {
    let size = arg_value("--size").unwrap_or_else(|| "medium".into());
    let scale = scale_from_args(1e-3);
    let problem = match size.as_str() {
        "medium" => Problem::medium(scale),
        "large" => Problem::large(scale),
        other => {
            eprintln!("error: --size expects medium|large, got '{other}'");
            exit(2);
        }
    };
    let impl_name = arg_value("--impl").unwrap_or_else(|| "omp".into());
    let kind = match impl_name.as_str() {
        "cpu" => ImplKind::Cpu,
        "jax" => ImplKind::Jit,
        "omp" => ImplKind::OmpTarget,
        "jaxcpu" => ImplKind::JitCpu,
        other => {
            eprintln!("error: --impl expects cpu|jax|omp|jaxcpu, got '{other}'");
            exit(2);
        }
    };
    let procs: u32 = match arg_value("--procs").map(|v| v.parse()) {
        None => 16,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("error: --procs expects an integer");
            exit(2);
        }
    };

    let mut cfg = RunConfig::new(problem, kind, procs);
    cfg.nodes = nodes_from_args();
    cfg.schedule = schedule_from_args();
    cfg.mps = !std::env::args().any(|a| a == "--no-mps");
    let label = format!(
        "{size} {impl_name} x{procs} scale {scale} nodes {} schedule {} mps {}",
        cfg.nodes.map_or("-".into(), |n| n.to_string()),
        cfg.schedule,
        cfg.mps,
    );

    println!("recording: {label}");
    let out = run_config(&cfg);
    let workload = recorded_workload(&cfg, &out, &label).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1);
    });
    if let Err(e) = workload.write(Path::new(path)) {
        eprintln!("error: cannot write {path}: {e}");
        exit(1);
    }
    let segments: usize = workload
        .nodes
        .iter()
        .flatten()
        .map(|t| t.segments.len())
        .sum();
    println!(
        "wrote {path}: {} node(s) x {} rank(s), {segments} segments, live makespan {:?} s",
        workload.nodes.len(),
        workload.nodes.first().map_or(0, |n| n.len()),
        workload.meta.live_wall_seconds,
    );
}

fn replay(path: &str) {
    let workload = RecordedWorkload::read(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1);
    });
    let gpus: Option<u32> = arg_value("--gpus").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --gpus expects a positive integer, got '{v}'");
            exit(2);
        })
    });
    let calib_name = arg_value("--calib").unwrap_or_else(|| "identity".into());
    println!(
        "replaying {path} [{}] under calib '{calib_name}'",
        workload.meta.label
    );

    // The differential oracle always runs: under the recorded calibration
    // the engine must reproduce the live makespan bit for bit.
    let identity = run_replay(
        &workload,
        &workload.meta.node_calib,
        &workload.meta.net_calib,
        None,
    );
    println!(
        "identity check: recorded makespan {:?} s, replayed {:?} s, delta {:.9}",
        workload.meta.live_wall_seconds,
        identity.cluster.wall_seconds,
        identity.cluster.wall_seconds - workload.meta.live_wall_seconds,
    );

    let (node, net) = if calib_name == "identity" {
        (workload.meta.node_calib, workload.meta.net_calib)
    } else {
        let Some(p) = preset(&calib_name) else {
            eprintln!("error: unknown calib preset '{calib_name}'; known presets:");
            eprintln!("  identity");
            for p in presets() {
                eprintln!("  {} — {}", p.name, p.about);
            }
            exit(2);
        };
        // Presets are defined at paper scale; the recording ran with its
        // latencies and capacities scaled alongside the data.
        (p.node.rescaled(workload.meta.work_scale), p.net)
    };
    let repriced = run_replay(&workload, &node, &net, gpus);

    let live_stats = workload.live_label_stats();
    let mut table = Table::new(&["label", "calls", "orig_s", "new_s", "delta_s", "ratio"]);
    for (label, new) in &repriced.per_label {
        let orig = live_stats.get(label).copied().unwrap_or_default();
        table.row(vec![
            label.clone(),
            new.calls.to_string(),
            format!("{:.6}", orig.seconds),
            format!("{:.6}", new.seconds),
            format!("{:+.6}", new.seconds - orig.seconds),
            if orig.seconds > 0.0 {
                fmt_ratio(orig.seconds / new.seconds)
            } else {
                "-".into()
            },
        ]);
    }
    println!("\nper-label solo estimates — original vs '{calib_name}'");
    println!("{}", table.render());

    let orig_wall = identity.cluster.wall_seconds;
    let new_wall = repriced.cluster.wall_seconds;
    println!(
        "makespan: original {orig_wall:?} s, repriced {new_wall:?} s, delta {:.9}",
        new_wall - orig_wall
    );
    if (new_wall - orig_wall).abs() > f64::EPSILON * orig_wall {
        let shift = if new_wall < orig_wall {
            format!("{} faster", fmt_ratio(orig_wall / new_wall))
        } else {
            format!("{} slower", fmt_ratio(new_wall / orig_wall))
        };
        println!("under '{calib_name}' this configuration finishes {shift}");
    }
}

fn run_replay(
    workload: &RecordedWorkload,
    node: &NodeCalib,
    net: &NetCalib,
    gpus: Option<u32>,
) -> Replayed {
    workload.replay(node, net, gpus).unwrap_or_else(|oom| {
        eprintln!("replay does not fit: {oom}");
        exit(1);
    })
}
