//! `simd` — the long-running batched simulation service.
//!
//! ```text
//! simd [--socket <path>] [--queue-bound <n>] [--checkpoint-dir <dir>]
//!      [--checkpoint-every <points>] [--resume]
//! ```
//!
//! Speaks the newline-delimited JSON protocol documented in the
//! `simd-serve` crate: over stdin/stdout by default (one session,
//! batch-friendly for shells and pipes), or over a Unix socket with
//! `--socket` (many sequential client connections, shared queue and
//! counters). Jobs are admitted through `simlint`, batched per drain,
//! and long sweeps checkpoint to `--checkpoint-dir` so a killed process
//! restarted with `--resume` finishes the grid with output
//! byte-identical to an uninterrupted run.
//!
//! This binary is only glue: it parses flags, plugs the real scenario
//! runner (the same [`repro_bench::run_config`] path every figure binary
//! uses, so a served makespan is bit-identical to a standalone run) into
//! the service as its executor, and picks the transport.
//!
//! `SIMD_SERVE_CHUNK_SLEEP_MS` (env) inserts a pause after each
//! non-final sweep checkpoint — a test hook giving kill/resume harnesses
//! a deterministic window to land the kill in; unset means no pause.

use std::io::{self, BufReader};
use std::path::PathBuf;
use std::process::exit;

use repro_bench::{arg_value, has_flag, run_config, runner::RunConfig};
use scenario::Scenario;
use simd_serve::{ScenarioExec, ScenarioOutcome, ServeConfig, Service};

/// The real executor: scenario → [`RunConfig`] → engine, exactly the
/// standalone `--scenario` path.
struct Runner;

impl ScenarioExec for Runner {
    fn run_scenario(&mut self, s: &Scenario) -> Result<ScenarioOutcome, String> {
        let cfg = RunConfig::from_scenario(s).map_err(|e| e.to_string())?;
        let out = run_config(&cfg).map_err(|e| e.to_string())?;
        let node_wall = out.node_wall.as_ref().map_err(Clone::clone)?;
        Ok(ScenarioOutcome {
            makespan: node_wall + out.comm_seconds,
            node_wall: *node_wall,
            comm_seconds: out.comm_seconds,
            transfer_bytes: out.transfer_bytes,
            segments: out.traces.iter().map(|t| t.segments.len()).sum(),
        })
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: simd [--socket <path>] [--queue-bound <n>] \
         [--checkpoint-dir <dir>] [--checkpoint-every <points>] [--resume]"
    );
    exit(2);
}

fn parsed<T: std::str::FromStr>(flag: &str) -> Option<T> {
    arg_value(flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: malformed value '{v}' for {flag}");
            exit(2)
        })
    })
}

fn main() {
    if has_flag("--help") || has_flag("-h") {
        usage();
    }
    let mut cfg = ServeConfig::default();
    if let Some(bound) = parsed::<usize>("--queue-bound") {
        if bound == 0 {
            eprintln!("error: --queue-bound must be at least 1");
            exit(2);
        }
        cfg.queue_bound = bound;
    }
    if let Some(dir) = arg_value("--checkpoint-dir") {
        let dir = PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            exit(2);
        }
        cfg.checkpoint_dir = Some(dir);
    }
    if let Some(every) = parsed::<usize>("--checkpoint-every") {
        cfg.checkpoint_every = every.max(1);
    }
    cfg.resume = has_flag("--resume");
    if let Ok(ms) = std::env::var("SIMD_SERVE_CHUNK_SLEEP_MS") {
        cfg.chunk_sleep_ms = ms.parse().unwrap_or(0);
    }

    let mut service = Service::new(cfg, Runner);
    let result = match arg_value("--socket") {
        Some(path) => simd_serve::serve_unix(&mut service, std::path::Path::new(&path)),
        None => {
            let stdin = io::stdin();
            service
                .serve(BufReader::new(stdin.lock()), io::stdout().lock())
                .map(|_| ())
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}
