//! Figure 4: runtime as a function of the number of processes.
//!
//! Medium problem, one node (64 cores, 4 GPUs); processes × threads = 64
//! throughout. Reproduces the paper's curves:
//!
//! * OpenMP CPU falls roughly proportionally with processes (serial
//!   per-process work is parallelised by adding ranks);
//! * JAX peaks at 8 processes (2 per GPU, the oversubscription benefit),
//!   ~2.4× over CPU, and reports OOM at 1 and 64 processes;
//! * OpenMP Target Offload tracks JAX but consistently ~20% faster,
//!   peaking ~2.9×, fits at 1 process, OOMs at 64.
//!
//! Usage: `fig4_process_scaling [--scale <f>] [--trace-out <path>]
//! [--nodes <n>] [--schedule <policy>]` (default scale 1e-3). With
//! `--trace-out`, each configuration writes a Chrome-trace (`.json`) or
//! JSONL (`.jsonl`) file named after it. With `--nodes`, every
//! configuration is replayed as an `n`-node cluster through the
//! discrete-event engine (collectives become simulated network events);
//! `--schedule` picks the kernel arbitration policy
//! (auto | mps | timeslice | fifo | priority).

use repro_bench::report::{
    fmt_ratio, fmt_secs, nodes_from_args, scale_from_args, schedule_from_args, write_csv, Table,
};
use repro_bench::{run_config, RunConfig};
use toast_core::dispatch::ImplKind;
use toast_satsim::Problem;

fn main() {
    let scale = scale_from_args(1e-3);
    let nodes = nodes_from_args();
    let schedule = schedule_from_args();
    match nodes {
        Some(n) => println!(
            "Figure 4 — runtime vs process count (medium, {n}-node cluster replay, \
             schedule {schedule}, scale {scale})\n"
        ),
        None => println!(
            "Figure 4 — runtime vs process count (medium, 1 node, schedule {schedule}, \
             scale {scale})\n"
        ),
    }

    let mut table = Table::new(&[
        "procs",
        "threads",
        "cpu_s",
        "jax_s",
        "omp_s",
        "jax_speedup",
        "omp_speedup",
    ]);

    let configure = |problem: Problem, kind: ImplKind, procs: u32| {
        let mut cfg = RunConfig::new(problem, kind, procs);
        cfg.nodes = nodes;
        cfg.schedule = schedule;
        cfg
    };
    for procs in [1u32, 2, 4, 8, 16, 32, 64] {
        let problem = Problem::medium(scale);
        let cpu = run_config(&configure(problem.clone(), ImplKind::Cpu, procs));
        let jax = run_config(&configure(problem.clone(), ImplKind::Jit, procs));
        let omp = run_config(&configure(problem, ImplKind::OmpTarget, procs));
        repro_bench::dump_trace_if_requested(&cpu, &format!("cpu{procs}"));
        repro_bench::dump_trace_if_requested(&jax, &format!("jax{procs}"));
        repro_bench::dump_trace_if_requested(&omp, &format!("omp{procs}"));

        let cpu_t = cpu.runtime();
        let fmt = |r: &repro_bench::RunOutcome| match r.runtime() {
            Some(t) => fmt_secs(t),
            None => "OOM".to_string(),
        };
        let speedup = |r: &repro_bench::RunOutcome| match (cpu_t, r.runtime()) {
            (Some(c), Some(t)) => fmt_ratio(c / t),
            _ => "-".to_string(),
        };
        table.row(vec![
            procs.to_string(),
            (64 / procs).to_string(),
            fmt(&cpu),
            fmt(&jax),
            fmt(&omp),
            speedup(&jax),
            speedup(&omp),
        ]);
    }

    println!("{}", table.render());
    if let Some(path) = write_csv("fig4_process_scaling", &table) {
        println!("wrote {}", path.display());
    }
}
