//! Figure 4: runtime as a function of the number of processes.
//!
//! Medium problem, one node (64 cores, 4 GPUs); processes × threads = 64
//! throughout. Reproduces the paper's curves:
//!
//! * OpenMP CPU falls roughly proportionally with processes (serial
//!   per-process work is parallelised by adding ranks);
//! * JAX peaks at 8 processes (2 per GPU, the oversubscription benefit),
//!   ~2.4× over CPU, and reports OOM at 1 and 64 processes;
//! * OpenMP Target Offload tracks JAX but consistently ~20% faster,
//!   peaking ~2.9×, fits at 1 process, OOMs at 64.
//!
//! Usage: `fig4_process_scaling [--scenario <file>] [--scale <f>]
//! [--trace-out <path>] [--nodes <n>] [--schedule <policy>]
//! [--dump-scenario]` (defaults: the values in
//! `scenarios/fig4_process_scaling.json`). The scenario is the *base*
//! configuration — this figure sweeps the process-count and
//! implementation axes on top of it, so the scenario's own
//! `impl`/`procs_per_node` name the reference point rather than limit the
//! sweep. With `--trace-out`, each configuration writes a Chrome-trace
//! (`.json`) or JSONL (`.jsonl`) file named after it. With `--nodes`,
//! every configuration is replayed as an `n`-node cluster through the
//! discrete-event engine (collectives become simulated network events);
//! `--schedule` picks the kernel arbitration policy
//! (auto | mps | timeslice | fifo | priority).

use repro_bench::report::{fmt_ratio, fmt_secs, write_csv, Table};
use repro_bench::{run_config, scenario_from_args, RunConfig};
use scenario::{ProblemSize, Scenario};
use toast_core::dispatch::ImplKind;

fn main() {
    let base = scenario_from_args(Scenario::new(
        "fig4_process_scaling",
        ProblemSize::Medium,
        1e-3,
    ));
    let scale = base.problem.scale;
    match base.nodes {
        Some(n) => println!(
            "Figure 4 — runtime vs process count (medium, {n}-node cluster replay, \
             schedule {}, scale {scale})\n",
            base.schedule
        ),
        None => println!(
            "Figure 4 — runtime vs process count (medium, 1 node, schedule {}, \
             scale {scale})\n",
            base.schedule
        ),
    }

    let mut table = Table::new(&[
        "procs",
        "threads",
        "cpu_s",
        "jax_s",
        "omp_s",
        "jax_speedup",
        "omp_speedup",
    ]);

    let run = |kind: ImplKind, procs: u32| {
        let point = base.clone().with_kind(kind).with_procs(procs);
        let cfg = RunConfig::from_scenario(&point).expect("validated scenario");
        run_config(&cfg).expect("validated config")
    };
    let trace_out = base.output.trace_out.as_deref();
    for procs in [1u32, 2, 4, 8, 16, 32, 64] {
        let cpu = run(ImplKind::Cpu, procs);
        let jax = run(ImplKind::Jit, procs);
        let omp = run(ImplKind::OmpTarget, procs);
        repro_bench::dump_trace_if_requested(&cpu, &format!("cpu{procs}"), trace_out);
        repro_bench::dump_trace_if_requested(&jax, &format!("jax{procs}"), trace_out);
        repro_bench::dump_trace_if_requested(&omp, &format!("omp{procs}"), trace_out);

        let cpu_t = cpu.runtime();
        let fmt = |r: &repro_bench::RunOutcome| match r.runtime() {
            Some(t) => fmt_secs(t),
            None => "OOM".to_string(),
        };
        let speedup = |r: &repro_bench::RunOutcome| match (cpu_t, r.runtime()) {
            (Some(c), Some(t)) => fmt_ratio(c / t),
            _ => "-".to_string(),
        };
        table.row(vec![
            procs.to_string(),
            (64 / procs).to_string(),
            fmt(&cpu),
            fmt(&jax),
            fmt(&omp),
            speedup(&jax),
            speedup(&omp),
        ]);
    }

    println!("{}", table.render());
    if let Some(path) = write_csv("fig4_process_scaling", &table) {
        println!("wrote {}", path.display());
    }
}
