//! `lint` — static pre-flight analysis of scenarios and recordings.
//!
//! ```text
//! lint --scenario <scenario.json>    [--format json]
//! lint --recording <workload.jsonl>  [--format json]
//! ```
//!
//! Runs `simlint` (the analyzer family in `accel_sim::analyze` and
//! `scenario::check_scenario`) over the input without executing a single
//! event, and prints the findings as a human table or as JSONL
//! (`--format json`, one diagnostic object per line). See `DESIGN.md`
//! § 7 for the diagnostic codes and each pass's soundness contract.
//!
//! Exit status is the admission decision, so the binary works as a CI
//! gate: `0` — clean or warnings only (the engine will accept the
//! input), `1` — at least one error-severity finding (the run is proven
//! or presumed unable to complete), `2` — usage or unreadable input.

use std::path::Path;
use std::process::exit;

use accel_sim::whatif::RecordedWorkload;
use accel_sim::{check_workload, Report};
use repro_bench::arg_value;
use repro_bench::report::Table;
use scenario::{check_scenario, Scenario};

fn main() {
    let report = match (arg_value("--scenario"), arg_value("--recording")) {
        (Some(path), None) => {
            let s = Scenario::read(Path::new(&path)).unwrap_or_else(|e| {
                eprintln!("error: cannot load {path}: {e}");
                exit(2);
            });
            println!("linting scenario {path} ('{}')", s.name);
            check_scenario(&s)
        }
        (None, Some(path)) => {
            let w = RecordedWorkload::read(Path::new(&path)).unwrap_or_else(|e| {
                eprintln!("error: cannot load {path}: {e}");
                exit(2);
            });
            println!(
                "linting recording {path} ('{}', {} rank(s))",
                w.meta.label,
                w.nodes.iter().map(Vec::len).sum::<usize>()
            );
            check_workload(&w)
        }
        _ => {
            eprintln!("usage: lint --scenario <file> | --recording <file> [--format json]");
            exit(2);
        }
    };

    match arg_value("--format").as_deref() {
        Some("json") => print!("{}", report.to_jsonl()),
        Some(other) => {
            eprintln!("error: unknown --format '{other}' (expected 'json')");
            exit(2);
        }
        None => print_human(&report),
    }

    exit(if report.is_clean() { 0 } else { 1 });
}

fn print_human(report: &Report) {
    if report.diagnostics.is_empty() {
        println!("clean: no findings");
        return;
    }
    let mut table = Table::new(&["code", "severity", "where", "message", "suggestion"]);
    for d in &report.diagnostics {
        table.row(vec![
            d.code.to_string(),
            d.severity.to_string(),
            d.locus.render(),
            d.message.clone(),
            d.suggestion.clone().unwrap_or_default(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "{} error(s), {} warning(s)",
        report.errors().count(),
        report.warnings().count()
    );
}
