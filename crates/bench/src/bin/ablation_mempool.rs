//! Ablation (paper § 3.1.2 / § 4.1): the manually implemented device
//! memory pool vs raw per-allocation `omp_target_alloc`.
//!
//! The paper built a pool because raw device allocations are driver round
//! trips; JAX ships one by default. This ablation allocates/frees the
//! benchmark buffers through both paths and reports the charged
//! allocation time and pool statistics.
//!
//! Usage: `ablation_mempool [--scenario <file>] [--dump-scenario]`
//! (defaults: the values in `scenarios/ablation_mempool.json`, a
//! paper-scale scenario whose resolved node calibration prices the
//! allocations).

use accel_sim::Context;
use offload::Pool;
use repro_bench::report::{write_csv, Table};
use repro_bench::scenario_from_args;
use scenario::{ProblemSize, Scenario};

fn main() {
    let s = scenario_from_args(Scenario::new("ablation_mempool", ProblemSize::Medium, 1.0));
    let (calib, _net) = s.resolved_calib().expect("validated scenario");
    println!("Ablation — device memory pool vs raw allocation\n");

    let sizes: Vec<usize> = (0..200).map(|i| 1000 + (i * 7919) % 100_000).collect();
    let rounds = 20;

    let mut table = Table::new(&["allocator", "alloc_calls", "driver_seconds", "pool_hits"]);
    for pooled in [true, false] {
        let mut ctx = Context::new(calib);
        let mut pool: Pool<f64> = if pooled {
            Pool::new()
        } else {
            Pool::disabled()
        };
        for _ in 0..rounds {
            let mut held = Vec::new();
            for &s in &sizes {
                held.push(pool.alloc(&mut ctx, s).expect("fits"));
            }
            for b in held {
                pool.free(&mut ctx, b);
            }
        }
        let stats = pool.stats();
        let driver = ctx
            .stats()
            .get("accel_data_alloc")
            .map(|s| s.seconds)
            .unwrap_or(0.0);
        table.row(vec![
            if pooled { "pool" } else { "raw" }.to_string(),
            (rounds * sizes.len()).to_string(),
            format!("{driver:.5}"),
            stats.hits.to_string(),
        ]);
        pool.trim(&mut ctx);
    }
    println!("{}", table.render());
    println!("the pool amortises the driver cost to the first round of misses.");
    if let Some(path) = write_csv("ablation_mempool", &table) {
        println!("wrote {}", path.display());
    }
}
