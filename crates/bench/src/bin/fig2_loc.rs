//! Figure 2: lines of code per implementation.
//!
//! Two bars per implementation: *lines of kernel code* (the kernel bodies
//! under `toast-core/src/kernels/*/{cpu,omp,jit}.rs`, tests stripped) and
//! total *lines of code* (kernels + the implementation's framework and
//! accelerator plumbing). The paper found JAX kernels ~1.2× *shorter* than
//! the CPU baseline and OpenMP Target Offload ~1.8× *longer*.
//!
//! Usage: `fig2_loc [--scenario <file>] [--dump-scenario]`. The LoC count
//! has no run configuration; the scenario
//! (`scenarios/fig2_loc.json`) exists so every binary speaks the same
//! contract.

use loc_count::{find_workspace_root, implementation_totals, Implementation};
use repro_bench::report::{write_csv, Table};
use repro_bench::scenario_from_args;
use scenario::{ProblemSize, Scenario};

fn main() {
    let _scenario = scenario_from_args(Scenario::new("fig2_loc", ProblemSize::Medium, 1.0));
    let root = find_workspace_root().expect("run inside the workspace");
    println!("Figure 2 — lines of code per implementation\n");

    let (cpu_kernel, _) = implementation_totals(&root, Implementation::Cpu);
    let mut table = Table::new(&["implementation", "kernel_loc", "total_loc", "kernel_vs_cpu"]);
    for imp in Implementation::ALL {
        let (kernel, total) = implementation_totals(&root, imp);
        table.row(vec![
            imp.label().to_string(),
            kernel.to_string(),
            total.to_string(),
            format!("{:.2}x", kernel as f64 / cpu_kernel as f64),
        ]);
    }
    println!("{}", table.render());
    println!("paper: JAX kernels ~0.8x the CPU baseline, OpenMP Target ~1.8x;");
    println!("       device ports add framework code on top of kernel lines.");
    if let Some(path) = write_csv("fig2_loc", &table) {
        println!("wrote {}", path.display());
    }
}
