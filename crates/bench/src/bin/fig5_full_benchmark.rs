//! Figure 5: the full benchmark — large problem, 8 nodes, 16 processes per
//! node, 4 threads per process.
//!
//! Paper: JAX 2.28x and OpenMP Target Offload 2.58x faster than the CPU
//! baseline; the JAX *CPU backend* (same infrastructure, XLA CPU) is 7.4x
//! *slower* than the baseline and is quoted in text because it would dwarf
//! the plot.
//!
//! Usage: `fig5_full_benchmark [--scenario <file>] [--scale <f>]
//! [--trace-out <path>] [--nodes <n>] [--schedule <policy>]
//! [--dump-scenario]` (defaults: the values in
//! `scenarios/fig5_full_benchmark.json`). The scenario is the *base*
//! configuration — this figure sweeps the implementation axis on top of
//! it, so the scenario's own `impl` names the reference CPU baseline.
//! With `--trace-out`, each implementation writes a Chrome-trace
//! (`.json`) or JSONL (`.jsonl`) file named after it. By default the 8
//! nodes are priced with the analytic comm model; with `--nodes <n>` (or
//! `nodes` in the scenario — see `scenarios/fig5_4node.json`), `n` whole
//! nodes are replayed through the discrete-event cluster engine and the
//! MPI allreduces become simulated network events (NIC congestion
//! included). `--schedule` picks the kernel arbitration policy
//! (auto | mps | timeslice | fifo | priority).

use repro_bench::report::{fmt_ratio, fmt_secs, write_csv, Table};
use repro_bench::{run_config, scenario_from_args, RunConfig};
use scenario::{ProblemSize, Scenario};
use toast_core::dispatch::ImplKind;

fn main() {
    let base = scenario_from_args(
        Scenario::new("fig5_full_benchmark", ProblemSize::Large, 1e-3).with_procs(16),
    );
    let scale = base.problem.scale;
    match base.nodes {
        Some(n) => println!(
            "Figure 5 — full benchmark (large, {n}-node cluster replay x {} procs, \
             schedule {}, scale {scale})\n",
            base.procs_per_node, base.schedule
        ),
        None => println!(
            "Figure 5 — full benchmark (large, 8 nodes x {} procs x {} threads, \
             analytic comm, scale {scale})\n",
            base.procs_per_node,
            base.threads().expect("validated scenario")
        ),
    }

    let runs = [
        ("OpenMP CPU", "cpu", ImplKind::Cpu),
        ("JAX", "jax", ImplKind::Jit),
        ("OpenMP Target Offload", "omp", ImplKind::OmpTarget),
        ("JAX (CPU backend)", "jaxcpu", ImplKind::JitCpu),
    ];

    let mut results = Vec::new();
    for (label, slug, kind) in runs {
        let point = base.clone().with_kind(kind);
        let cfg = RunConfig::from_scenario(&point).expect("validated scenario");
        let out = run_config(&cfg).expect("validated config");
        repro_bench::dump_trace_if_requested(&out, slug, base.output.trace_out.as_deref());
        results.push((label, out));
    }
    let cpu_t = results[0].1.runtime().expect("cpu baseline fits");

    let mut table = Table::new(&["implementation", "runtime_s", "vs_cpu"]);
    for (label, out) in &results {
        match out.runtime() {
            Some(t) => {
                let r = cpu_t / t;
                let vs = if r >= 1.0 {
                    format!("{} faster", fmt_ratio(r))
                } else {
                    format!("{} slower", fmt_ratio(1.0 / r))
                };
                table.row(vec![label.to_string(), fmt_secs(t), vs]);
            }
            None => table.row(vec![label.to_string(), "OOM".into(), "-".into()]),
        }
    }
    println!("{}", table.render());
    println!("paper: JAX 2.28x, OpenMP Target 2.58x faster; JAX CPU backend 7.4x slower.");
    if let Some(path) = write_csv("fig5_full_benchmark", &table) {
        println!("wrote {}", path.display());
    }
}
