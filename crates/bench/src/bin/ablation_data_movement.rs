//! Ablation (paper § 3.2.2): residency-tracked pipeline data movement vs
//! the naive transfer-everything-per-kernel policy.
//!
//! "In early tests, this optimization resulted in a 40% speedup compared
//! to a naive implementation."
//!
//! Usage: `ablation_data_movement [--scale <f>] [--trace-out <path>]`.

use repro_bench::report::{fmt_secs, scale_from_args, write_csv, Table};
use repro_bench::{run_config, RunConfig};
use toast_core::dispatch::ImplKind;
use toast_core::pipeline::MovementPolicy;
use toast_satsim::Problem;

fn main() {
    let scale = scale_from_args(1e-3);
    println!("Ablation — tracked vs naive data movement (medium, 16 procs, scale {scale})\n");

    let mut table = Table::new(&["implementation", "policy", "runtime_s", "pcie_bytes"]);
    for kind in [ImplKind::OmpTarget, ImplKind::Jit] {
        let mut speedup = (0.0, 0.0);
        for policy in [MovementPolicy::Tracked, MovementPolicy::Naive] {
            let mut cfg = RunConfig::new(Problem::medium(scale), kind, 16);
            cfg.movement = policy;
            let out = run_config(&cfg);
            repro_bench::dump_trace_if_requested(
                &out,
                &format!("{kind:?}-{policy:?}").to_lowercase(),
            );
            let t = out.runtime().expect("fits at 16 procs");
            if policy == MovementPolicy::Tracked {
                speedup.0 = t;
            } else {
                speedup.1 = t;
            }
            table.row(vec![
                format!("{kind:?}"),
                format!("{policy:?}"),
                fmt_secs(t),
                format!("{:.3e}", out.transfer_bytes),
            ]);
        }
        println!(
            "{kind:?}: naive is {:.0}% slower than tracked (paper: ~40%)",
            (speedup.1 / speedup.0 - 1.0) * 100.0
        );
    }
    println!();
    println!("{}", table.render());
    if let Some(path) = write_csv("ablation_data_movement", &table) {
        println!("wrote {}", path.display());
    }
}
