//! Ablation (paper § 3.2.2): residency-tracked pipeline data movement vs
//! the naive transfer-everything-per-kernel policy.
//!
//! "In early tests, this optimization resulted in a 40% speedup compared
//! to a naive implementation."
//!
//! Usage: `ablation_data_movement [--scenario <file>] [--scale <f>]
//! [--trace-out <path>] [--dump-scenario]` (defaults: the values in
//! `scenarios/ablation_data_movement.json`). The scenario is the *base*
//! configuration — this ablation sweeps the implementation and movement-
//! policy axes on top of it.

use repro_bench::report::{fmt_secs, write_csv, Table};
use repro_bench::{run_config, scenario_from_args, RunConfig};
use scenario::{ProblemSize, Scenario};
use toast_core::dispatch::ImplKind;
use toast_core::pipeline::MovementPolicy;

fn main() {
    let base = scenario_from_args(
        Scenario::new("ablation_data_movement", ProblemSize::Medium, 1e-3).with_procs(16),
    );
    let scale = base.problem.scale;
    println!(
        "Ablation — tracked vs naive data movement (medium, {} procs, scale {scale})\n",
        base.procs_per_node
    );

    let mut table = Table::new(&["implementation", "policy", "runtime_s", "pcie_bytes"]);
    for kind in [ImplKind::OmpTarget, ImplKind::Jit] {
        let mut speedup = (0.0, 0.0);
        for policy in [MovementPolicy::Tracked, MovementPolicy::Naive] {
            let point = base.clone().with_kind(kind).with_movement(policy);
            let cfg = RunConfig::from_scenario(&point).expect("validated scenario");
            let out = run_config(&cfg).expect("validated config");
            repro_bench::dump_trace_if_requested(
                &out,
                &format!("{kind:?}-{policy:?}").to_lowercase(),
                base.output.trace_out.as_deref(),
            );
            let t = out.runtime().expect("fits at 16 procs");
            if policy == MovementPolicy::Tracked {
                speedup.0 = t;
            } else {
                speedup.1 = t;
            }
            table.row(vec![
                format!("{kind:?}"),
                format!("{policy:?}"),
                fmt_secs(t),
                format!("{:.3e}", out.transfer_bytes),
            ]);
        }
        println!(
            "{kind:?}: naive is {:.0}% slower than tracked (paper: ~40%)",
            (speedup.1 / speedup.0 - 1.0) * 100.0
        );
    }
    println!();
    println!("{}", table.render());
    if let Some(path) = write_csv("ablation_data_movement", &table) {
        println!("wrote {}", path.display());
    }
}
