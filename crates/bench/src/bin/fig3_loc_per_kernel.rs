//! Figure 3: lines of code per kernel, per implementation.
//!
//! Usage: `fig3_loc_per_kernel [--scenario <file>] [--dump-scenario]`.
//! The LoC count has no run configuration; the scenario
//! (`scenarios/fig3_loc_per_kernel.json`) exists so every binary speaks
//! the same contract.

use loc_count::{find_workspace_root, kernel_loc_table};
use repro_bench::report::{write_csv, Table};
use repro_bench::scenario_from_args;
use scenario::{ProblemSize, Scenario};

fn main() {
    let _scenario = scenario_from_args(Scenario::new(
        "fig3_loc_per_kernel",
        ProblemSize::Medium,
        1.0,
    ));
    let root = find_workspace_root().expect("run inside the workspace");
    println!("Figure 3 — lines of code per kernel\n");

    let mut table = Table::new(&["kernel", "cpu", "omp_target", "jax", "omp/cpu", "jax/cpu"]);
    let rows = kernel_loc_table(&root);
    let (mut tc, mut to, mut tj) = (0usize, 0usize, 0usize);
    for k in &rows {
        tc += k.cpu;
        to += k.omp;
        tj += k.jit;
        table.row(vec![
            k.kernel.clone(),
            k.cpu.to_string(),
            k.omp.to_string(),
            k.jit.to_string(),
            format!("{:.2}x", k.omp as f64 / k.cpu as f64),
            format!("{:.2}x", k.jit as f64 / k.cpu as f64),
        ]);
    }
    table.row(vec![
        "TOTAL".into(),
        tc.to_string(),
        to.to_string(),
        tj.to_string(),
        format!("{:.2}x", to as f64 / tc as f64),
        format!("{:.2}x", tj as f64 / tc as f64),
    ]);
    println!("{}", table.render());
    println!("paper: offload kernels average ~1.8x the CPU lines; JAX ~0.8x.");
    if let Some(path) = write_csv("fig3_loc_per_kernel", &table) {
        println!("wrote {}", path.display());
    }
}
