//! Ablation (paper § 3.1.2): the CUDA Multi-Process Service.
//!
//! "The code *needs* to be run with NVIDIA MPS for optimal performance …
//! previous attempts without MPS saw the CUDA driver context-switch
//! between processes, effectively capping our performance to one process
//! per device."
//!
//! Usage: `ablation_mps [--scale <f>] [--trace-out <path>]`.

use repro_bench::report::{fmt_secs, scale_from_args, write_csv, Table};
use repro_bench::{run_config, RunConfig};
use toast_core::dispatch::ImplKind;
use toast_satsim::Problem;

fn main() {
    let scale = scale_from_args(1e-3);
    println!("Ablation — MPS on/off for the offload port (medium, scale {scale})\n");

    let mut table = Table::new(&["procs", "mps_on_s", "mps_off_s", "penalty"]);
    for procs in [4u32, 8, 16, 32] {
        let mut on = RunConfig::new(Problem::medium(scale), ImplKind::OmpTarget, procs);
        on.mps = true;
        let mut off = on.clone();
        off.mps = false;
        let out_on = run_config(&on);
        let out_off = run_config(&off);
        repro_bench::dump_trace_if_requested(&out_on, &format!("omp{procs}-mps"));
        repro_bench::dump_trace_if_requested(&out_off, &format!("omp{procs}-nomps"));
        let t_on = out_on.runtime().expect("fits");
        let t_off = out_off.runtime().expect("fits");
        table.row(vec![
            procs.to_string(),
            fmt_secs(t_on),
            fmt_secs(t_off),
            format!("{:.2}x", t_off / t_on),
        ]);
    }
    println!("{}", table.render());
    println!("paper: without MPS, >1 process per device stops paying off.");
    if let Some(path) = write_csv("ablation_mps", &table) {
        println!("wrote {}", path.display());
    }
}
