//! Ablation (paper § 3.1.2): the CUDA Multi-Process Service.
//!
//! "The code *needs* to be run with NVIDIA MPS for optimal performance …
//! previous attempts without MPS saw the CUDA driver context-switch
//! between processes, effectively capping our performance to one process
//! per device."
//!
//! Usage: `ablation_mps [--scenario <file>] [--scale <f>]
//! [--trace-out <path>] [--dump-scenario]` (defaults: the values in
//! `scenarios/ablation_mps.json`). The scenario is the *base*
//! configuration — this ablation sweeps the process-count and MPS axes on
//! top of it.

use repro_bench::report::{fmt_secs, write_csv, Table};
use repro_bench::{run_config, scenario_from_args, RunConfig};
use scenario::{ImplKind, ProblemSize, Scenario};

fn main() {
    let base = scenario_from_args(
        Scenario::new("ablation_mps", ProblemSize::Medium, 1e-3).with_kind(ImplKind::OmpTarget),
    );
    let scale = base.problem.scale;
    println!("Ablation — MPS on/off for the offload port (medium, scale {scale})\n");

    let mut table = Table::new(&["procs", "mps_on_s", "mps_off_s", "penalty"]);
    for procs in [4u32, 8, 16, 32] {
        let point = base.clone().with_procs(procs);
        let on =
            RunConfig::from_scenario(&point.clone().with_mps(true)).expect("validated scenario");
        let off = RunConfig::from_scenario(&point.with_mps(false)).expect("validated scenario");
        let out_on = run_config(&on).expect("validated config");
        let out_off = run_config(&off).expect("validated config");
        let trace_out = base.output.trace_out.as_deref();
        repro_bench::dump_trace_if_requested(&out_on, &format!("omp{procs}-mps"), trace_out);
        repro_bench::dump_trace_if_requested(&out_off, &format!("omp{procs}-nomps"), trace_out);
        let t_on = out_on.runtime().expect("fits");
        let t_off = out_off.runtime().expect("fits");
        table.row(vec![
            procs.to_string(),
            fmt_secs(t_on),
            fmt_secs(t_off),
            format!("{:.2}x", t_off / t_on),
        ]);
    }
    println!("{}", table.render());
    println!("paper: without MPS, >1 process per device stops paying off.");
    if let Some(path) = write_csv("ablation_mps", &table) {
        println!("wrote {}", path.display());
    }
}
