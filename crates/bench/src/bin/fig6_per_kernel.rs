//! Figure 6: total runtime per kernel — medium problem, 16 processes,
//! 4 threads each, with the `accel_data_*` data-movement operations.
//!
//! Paper headline numbers: JAX speedups range 1.5x
//! (`template_offset_add_to_signal`) to 45x
//! (`template_offset_project_signal`); offload 5x to 61x
//! (`stokes_weights_IQU`); `pixels_healpix` splits them (offload 41x vs
//! JAX 11x, branch divergence); offload ~2.4x faster than JAX per kernel
//! on average; data movement barely registers, with JAX cheaper on device
//! updates and resets.
//!
//! Usage: `fig6_per_kernel [--scenario <file>] [--scale <f>]
//! [--trace-out <path>] [--dump-scenario]` (defaults: the values in
//! `scenarios/fig6_per_kernel.json`). The scenario is the *base*
//! configuration — this figure sweeps the implementation axis on top of
//! it. With `--trace-out`, each implementation writes a Chrome-trace
//! (`.json`) or JSONL (`.jsonl`) file named after it.

use std::collections::BTreeMap;

use repro_bench::report::{write_csv, Table};
use repro_bench::{run_config, scenario_from_args, RunConfig, RunOutcome};
use scenario::{ProblemSize, Scenario};
use toast_core::dispatch::{ImplKind, KernelId};

/// Sum every per-label second belonging to one kernel (the arrayjit port
/// splits a kernel into `name/stage` labels). One-time JIT compilation is
/// excluded here — the paper's run amortises it over ~10^9 samples — and
/// reported on its own row.
fn kernel_seconds(out: &RunOutcome, kernel: &str) -> f64 {
    out.per_label
        .iter()
        .filter(|(label, _)| {
            (*label == kernel || label.starts_with(&format!("{kernel}/")))
                && !label.ends_with("/jit_compile")
        })
        .map(|(_, s)| s.seconds)
        .sum()
}

fn compile_seconds(out: &RunOutcome) -> f64 {
    out.per_label
        .iter()
        .filter(|(label, _)| label.ends_with("/jit_compile"))
        .map(|(_, s)| s.seconds)
        .sum()
}

fn movement_seconds(out: &RunOutcome) -> BTreeMap<String, f64> {
    out.per_label
        .iter()
        .filter(|(label, _)| label.starts_with("accel_data"))
        .map(|(label, s)| (label.clone(), s.seconds))
        .collect()
}

fn main() {
    let base = scenario_from_args(
        Scenario::new("fig6_per_kernel", ProblemSize::Medium, 1e-3).with_procs(16),
    );
    let scale = base.problem.scale;
    let procs = base.procs_per_node;
    println!("Figure 6 — per-kernel runtime (medium, {procs} procs, scale {scale})\n");

    let run = |kind: ImplKind| {
        let point = base.clone().with_kind(kind);
        let cfg = RunConfig::from_scenario(&point).expect("validated scenario");
        run_config(&cfg).expect("validated config")
    };
    let cpu = run(ImplKind::Cpu);
    let jax = run(ImplKind::Jit);
    let omp = run(ImplKind::OmpTarget);
    let trace_out = base.output.trace_out.as_deref();
    repro_bench::dump_trace_if_requested(&cpu, "cpu", trace_out);
    repro_bench::dump_trace_if_requested(&jax, "jax", trace_out);
    repro_bench::dump_trace_if_requested(&omp, "omp", trace_out);

    let mut table = Table::new(&[
        "kernel",
        "cpu_s",
        "jax_s",
        "omp_s",
        "jax_speedup",
        "omp_speedup",
    ]);
    let (mut sum_ratio, mut n_ratio) = (0.0, 0);
    // Device kernels share a GPU with the other ranks assigned to it; the
    // per-label times are solo estimates, so inflate them by the sharing
    // factor to report what a process actually observes.
    let sharing = (procs as f64 / base.gpus as f64).max(1.0);
    for k in KernelId::BENCHMARK {
        let c = kernel_seconds(&cpu, k.name());
        let j = kernel_seconds(&jax, k.name()) * sharing;
        let o = kernel_seconds(&omp, k.name()) * sharing;
        if j > 0.0 && o > 0.0 {
            sum_ratio += j / o;
            n_ratio += 1;
        }
        table.row(vec![
            k.name().to_string(),
            format!("{c:.5}"),
            format!("{j:.5}"),
            format!("{o:.5}"),
            format!("{:.1}x", c / j),
            format!("{:.1}x", c / o),
        ]);
    }
    // Data movement rows.
    let jm = movement_seconds(&jax);
    let om = movement_seconds(&omp);
    let mut keys: Vec<&String> = jm.keys().chain(om.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        table.row(vec![
            key.clone(),
            "-".into(),
            format!("{:.5}", jm.get(key).copied().unwrap_or(0.0)),
            format!("{:.5}", om.get(key).copied().unwrap_or(0.0)),
            "-".into(),
            "-".into(),
        ]);
    }
    table.row(vec![
        "jit_compile (one-time)".into(),
        "-".into(),
        format!("{:.5}", compile_seconds(&jax)),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    println!("{}", table.render());
    println!(
        "offload vs JAX per-kernel average: omp faster by {:.2}x (paper: ~2.4x)",
        sum_ratio / n_ratio.max(1) as f64
    );
    if let Some(path) = write_csv("fig6_per_kernel", &table) {
        println!("wrote {}", path.display());
    }
}
