//! Figure output: aligned text tables and CSV files.

use std::fs;
use std::path::PathBuf;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Write a figure's CSV under `target/figures/<name>.csv`, creating the
/// directory; returns the path written (best effort — failures are
/// reported but do not abort figure printing).
pub fn write_csv(name: &str, table: &Table) -> Option<PathBuf> {
    let dir = PathBuf::from("target/figures");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.csv"));
    match fs::write(&path, table.to_csv()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Format seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

/// Format a speedup ratio.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// A per-label metrics summary table (Observability section of the
/// README): calls, total and p50/p95/max span durations, bytes.
pub fn metrics_table(metrics: &std::collections::BTreeMap<String, crate::LabelSummary>) -> Table {
    let mut t = Table::new(&["label", "calls", "total_s", "p50_s", "p95_s", "max_s", "MB"]);
    for (label, m) in metrics {
        t.row(vec![
            label.clone(),
            m.calls.to_string(),
            fmt_secs(m.total_s),
            fmt_secs(m.p50_s),
            fmt_secs(m.p95_s),
            fmt_secs(m.max_s),
            format!("{:.1}", m.bytes / 1e6),
        ]);
    }
    t
}

/// Insert `label` before the extension of `path` so each configuration of
/// a sweep gets its own trace file (`trace.json` → `trace-omp16.json`).
pub fn trace_path_for(base: &str, label: &str) -> std::path::PathBuf {
    let path = std::path::Path::new(base);
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let name = match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}-{label}.{ext}"),
        None => format!("{stem}-{label}"),
    };
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
        // All rows the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn csv_roundtrips_header_and_rows() {
        let mut t = Table::new(&["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn trace_paths_get_per_config_labels() {
        assert_eq!(
            trace_path_for("out/trace.json", "omp16"),
            PathBuf::from("out/trace-omp16.json")
        );
        assert_eq!(
            trace_path_for("trace.jsonl", "jit8"),
            PathBuf::from("trace-jit8.jsonl")
        );
        assert_eq!(trace_path_for("trace", "x"), PathBuf::from("trace-x"));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(123.4), "123");
        assert_eq!(fmt_secs(1.234), "1.23");
        assert_eq!(fmt_secs(0.01234), "0.0123");
        assert_eq!(fmt_ratio(2.578), "2.58x");
    }
}
