//! Executing one benchmark configuration end to end.

use std::collections::BTreeMap;

use accel_sim::calib::{NetCalib, NodeCalib};
use accel_sim::comm::allreduce_seconds;
use accel_sim::context::LabelStats;
use accel_sim::engine::{simulate_cluster_traced, ClusterResult, SchedulePolicyKind};
use accel_sim::node::{simulate_node_traced, NodeConfig};
use accel_sim::whatif::{RecordMeta, RecordedWorkload};
use accel_sim::Context;
use accel_sim::EngineError;
use rayon::prelude::*;
use scenario::{CalibSpec, Scenario, ScenarioError};
use toast_core::dispatch::ImplKind;
use toast_core::kernels::ExecCtx;
use toast_core::pipeline::{benchmark_pipeline_passes, MovementPolicy};
use toast_satsim::Problem;

/// One benchmark configuration — the runner-facing projection of a
/// [`Scenario`]. Flag-driven entry points build it directly; scenario
/// files reach it through [`RunConfig::from_scenario`], and the two paths
/// are locked bit-identical by the differential tests.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The workload.
    pub problem: Problem,
    /// Which implementation every kernel uses.
    pub kind: ImplKind,
    /// Processes per node (threads per process = cores / this).
    pub procs_per_node: u32,
    /// Whether the CUDA Multi-Process Service is active (paper § 3.1.2:
    /// required for efficient offload oversubscription).
    pub mps: bool,
    /// Data-movement policy (Tracked is the paper's design; Naive is the
    /// 40%-ablation baseline).
    pub movement: MovementPolicy,
    /// Replay this many whole nodes through the cluster engine, with the
    /// inter-node collectives as simulated network events (congestion
    /// emerges from NIC sharing). `None` keeps the legacy single-node
    /// replay plus analytic comm pricing.
    pub nodes: Option<u32>,
    /// Kernel arbitration policy for the replay
    /// ([`SchedulePolicyKind::Auto`] follows `mps`).
    pub schedule: SchedulePolicyKind,
    /// Overlap H2D/D2H transfers with host work on per-rank streams.
    pub overlap_transfers: bool,
    /// GPUs per node (the paper's Perlmutter nodes carry 4).
    pub gpus: u32,
    /// Calibration override; `None` means the problem's own scaled
    /// calibration, exactly as every flag-driven run uses.
    pub calib: Option<NodeCalib>,
    /// Interconnect override; `None` means [`NetCalib::default`].
    pub net: Option<NetCalib>,
}

impl RunConfig {
    /// The standard configuration for an implementation at a process
    /// count. Fails with [`ScenarioError::InvalidProcs`] when
    /// `procs_per_node` does not evenly partition the node's cores — the
    /// old behaviour silently floored non-divisors (e.g. 3 procs → 21
    /// threads, leaving a core idle), making configurations lie about the
    /// hardware they model.
    pub fn new(
        problem: Problem,
        kind: ImplKind,
        procs_per_node: u32,
    ) -> Result<Self, ScenarioError> {
        let cfg = Self {
            problem,
            kind,
            procs_per_node,
            mps: true,
            movement: MovementPolicy::Tracked,
            nodes: None,
            schedule: SchedulePolicyKind::Auto,
            overlap_transfers: false,
            gpus: 4,
            calib: None,
            net: None,
        };
        cfg.threads()?; // validate eagerly
        Ok(cfg)
    }

    /// Project a [`Scenario`] onto the runner. Total: every scenario
    /// field lands in the config (or, for [`Scenario::output`], in the
    /// caller's output handling). An `auto` calibration projects to
    /// `None` so the scenario path shares the flag path's code exactly.
    pub fn from_scenario(s: &Scenario) -> Result<Self, ScenarioError> {
        s.validate()?;
        let (calib, net) = match &s.calib {
            CalibSpec::Auto => (None, None),
            _ => {
                let (node, net) = s.resolved_calib()?;
                (Some(node), Some(net))
            }
        };
        Ok(Self {
            problem: s.build_problem(),
            kind: s.kind,
            procs_per_node: s.procs_per_node,
            mps: s.mps,
            movement: s.movement,
            nodes: s.nodes,
            schedule: s.schedule,
            overlap_transfers: s.overlap_transfers,
            gpus: s.gpus,
            calib,
            net,
        })
    }

    /// Threads per process: the node's cores divided evenly among the
    /// ranks, as in the paper's Fig. 4 sweep. Non-divisors are the typed
    /// [`ScenarioError::InvalidProcs`] (they would idle or oversubscribe
    /// cores).
    pub fn threads(&self) -> Result<u32, ScenarioError> {
        let cores = self.node_calib().cpu.cores;
        if self.procs_per_node == 0 || !cores.is_multiple_of(self.procs_per_node) {
            return Err(ScenarioError::InvalidProcs {
                procs: self.procs_per_node,
                cores,
            });
        }
        Ok(cores / self.procs_per_node)
    }

    /// The node calibration in force: the override, or the problem's own.
    pub fn node_calib(&self) -> NodeCalib {
        self.calib.unwrap_or_else(|| self.problem.calib())
    }

    /// The interconnect calibration in force.
    pub fn net_calib(&self) -> NetCalib {
        self.net.unwrap_or_default()
    }
}

/// What a configuration produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// Simulated node wall seconds (including queueing/contention), or the
    /// out-of-memory condition when the configuration does not fit —
    /// exactly the paper's missing Fig. 4 points.
    pub node_wall: Result<f64, String>,
    /// Inter-node + inter-process collective seconds (map allreduces).
    pub comm_seconds: f64,
    /// Per-label solo-estimate seconds aggregated across ranks (kernel
    /// names, `accel_data_*` operations, host labels) — Fig. 6's rows.
    pub per_label: BTreeMap<String, LabelStats>,
    /// Per-GPU busy seconds from the replay.
    pub gpu_busy: Vec<f64>,
    /// Bytes moved over PCIe, summed over ranks.
    pub transfer_bytes: f64,
    /// Per-label span metrics (counts, total and p50/p95/max durations)
    /// aggregated across ranks from the span traces.
    pub metrics: BTreeMap<String, crate::metrics::LabelSummary>,
    /// The raw per-rank span traces (virtual clocks), for export via
    /// [`crate::traceout::write_trace`].
    pub traces: Vec<accel_sim::RankTrace>,
    /// The contention-resolved node timeline from the replay, when the
    /// run fit on the device. In cluster mode this is the merged
    /// multi-node timeline (global rank/GPU indices).
    pub timeline: Option<accel_sim::NodeTimeline>,
    /// Cluster-wide accounting (NIC busy time, collective stretch and
    /// barrier waits) when the run used [`RunConfig::nodes`].
    pub cluster: Option<ClusterResult>,
}

impl RunOutcome {
    /// Total runtime (node wall + communication), if the run fit.
    pub fn runtime(&self) -> Option<f64> {
        self.node_wall.as_ref().ok().map(|w| w + self.comm_seconds)
    }
}

/// Run one configuration: simulate every rank of one node, replay against
/// the shared GPUs, and price collectives. With [`RunConfig::nodes`]
/// unset, ranks on other nodes are statistically identical and collectives
/// are priced analytically; with it set, every node is replayed through
/// the cluster engine and collectives become simulated network events.
/// Fails only on configuration errors (invalid process counts); workload
/// failures like out-of-memory stay inside [`RunOutcome::node_wall`].
pub fn run_config(cfg: &RunConfig) -> Result<RunOutcome, ScenarioError> {
    let threads = cfg.threads()?;
    let calib = cfg.node_calib();
    let procs = cfg.procs_per_node;
    let fw = calib.framework;

    // Collectives: the zmap is allreduced across every rank of the job
    // once per observation, plus a final amplitude reduce. The analytic
    // formula prices a solo allreduce; in cluster mode it becomes each
    // rank's NIC demand instead of a closed-form addend.
    let total_ranks = cfg.nodes.unwrap_or(cfg.problem.nodes) * procs;
    let map_bytes = (cfg.problem.geometry().map_len() * 8) as f64;
    let net = cfg.net_calib();
    let collective_solo = allreduce_seconds(&net, total_ranks, map_bytes) * cfg.problem.scale;

    // Ranks are independent simulated processes: run them in parallel on
    // the host (the simulation's virtual clocks are per-rank; sharing is
    // resolved afterwards by the node replay).
    let rank_results: Vec<Result<Context, String>> = (0..procs)
        .into_par_iter()
        .map(|rank| {
            let mut ws = cfg.problem.rank_workspace(rank, procs);
            let mut ctx = Context::new(calib);

            // Fixed per-process device footprint (CUDA context, runtime
            // reservations) — held for the life of the process.
            let fixed = match cfg.kind {
                ImplKind::Jit => fw.jit_process_device_bytes as u64,
                ImplKind::OmpTarget => fw.omp_process_device_bytes as u64,
                _ => 0,
            };
            if fixed > 0 {
                ctx.device_alloc(fixed, true)
                    .map_err(|e| format!("rank {rank}: {e}"))?;
            }

            let mut exec = ExecCtx::new(cfg.kind, threads);
            let host = cfg.problem.host_seconds_per_rank(&ws, procs);
            let pipe =
                benchmark_pipeline_passes(host, cfg.problem.passes).with_policy(cfg.movement);
            for _obs in 0..cfg.problem.n_obs {
                pipe.run(&mut ctx, &mut exec, &mut ws)
                    .map_err(|e| format!("rank {rank}: {e}"))?;
                if cfg.nodes.is_some() {
                    ctx.collective("mpi_allreduce_zmap", map_bytes, collective_solo);
                }
            }
            if cfg.nodes.is_some() {
                ctx.collective("mpi_allreduce_amplitudes", map_bytes, collective_solo);
            }
            Ok(ctx)
        })
        .collect();

    let mut traces = Vec::with_capacity(procs as usize);
    let mut per_label: BTreeMap<String, LabelStats> = BTreeMap::new();
    let mut transfer_bytes = 0.0;
    let mut rank_oom: Option<String> = None;
    for result in rank_results {
        match result {
            Err(e) => {
                rank_oom = Some(e);
                break;
            }
            Ok(ctx) => {
                for (label, stat) in ctx.stats() {
                    let e = per_label.entry(label.clone()).or_default();
                    e.calls += stat.calls;
                    e.seconds += stat.seconds;
                    e.bytes += stat.bytes;
                }
                transfer_bytes += ctx.trace().transfer_bytes();
                traces.push(ctx.into_trace());
            }
        }
    }

    // Legacy path: one analytic zmap allreduce per observation plus a
    // final amplitude reduce, scaled into simulated time like everything
    // else. In cluster mode the collectives are *in* the replayed wall
    // time, so nothing is added here.
    let comm_seconds = if cfg.nodes.is_some() {
        0.0
    } else {
        (cfg.problem.n_obs as f64 + 1.0) * collective_solo
    };

    // Engine failures become report-level error strings: OOM keeps the
    // legacy phrasing the report snapshots expect; the other typed
    // variants (non-finite charge, stream underflow, deadlock) surface
    // through their Display form.
    let sim_err_msg = |e: EngineError| match e.as_oom() {
        Some(oom) => format!(
            "GPU {}: ranks demand {} B of {} B",
            oom.gpu, oom.demanded, oom.capacity
        ),
        None => e.to_string(),
    };
    let (node_wall, gpu_busy, timeline, cluster) = match (rank_oom, cfg.nodes) {
        (Some(e), _) => (Err(e), Vec::new(), None, None),
        (None, None) => {
            let node_cfg = node_config(cfg, calib);
            match simulate_node_traced(&traces, &node_cfg) {
                Ok((res, timeline)) => (Ok(res.wall_seconds), res.gpu_busy, Some(timeline), None),
                Err(e) => (Err(sim_err_msg(e)), Vec::new(), None, None),
            }
        }
        (None, Some(n)) => {
            // Every node runs a statistically identical set of ranks:
            // replicate this node's traces across the cluster.
            let node_traces: Vec<Vec<accel_sim::RankTrace>> =
                (0..n.max(1)).map(|_| traces.clone()).collect();
            let node_cfg = node_config(cfg, calib);
            match simulate_cluster_traced(&node_traces, &node_cfg) {
                Ok((res, timeline)) => (
                    Ok(res.wall_seconds),
                    res.gpu_busy.clone(),
                    Some(timeline),
                    Some(res),
                ),
                Err(e) => (Err(sim_err_msg(e)), Vec::new(), None, None),
            }
        }
    };

    Ok(RunOutcome {
        node_wall,
        comm_seconds,
        metrics: crate::metrics::summarize_events(&traces),
        per_label,
        gpu_busy,
        transfer_bytes,
        traces,
        timeline,
        cluster,
    })
}

/// Capture a [`RecordedWorkload`] from a finished run, for what-if
/// repricing (`whatif --record`). The recording holds one node's traces
/// replicated across [`RunConfig::nodes`] (the runner's own cluster
/// convention: every node runs a statistically identical set of ranks), so
/// an identity-calibration replay reproduces `out.node_wall` exactly.
/// When the run came from a scenario, pass it so the recording carries
/// its provenance. Fails when the run itself did not fit on the device —
/// there is no wall time to reprice.
pub fn recorded_workload(
    cfg: &RunConfig,
    out: &RunOutcome,
    label: &str,
    scenario: Option<&Scenario>,
) -> Result<RecordedWorkload, String> {
    let live_wall = *out
        .node_wall
        .as_ref()
        .map_err(|e| format!("cannot record an out-of-memory run ({e})"))?;
    let nodes = cfg.nodes.unwrap_or(1).max(1);
    let node_traces: Vec<Vec<accel_sim::RankTrace>> =
        (0..nodes).map(|_| out.traces.clone()).collect();
    let meta = RecordMeta {
        version: 1,
        label: label.to_string(),
        gpus: cfg.gpus,
        mps: cfg.mps,
        schedule: cfg.schedule,
        overlap_transfers: cfg.overlap_transfers,
        total_ranks: cfg.nodes.unwrap_or(cfg.problem.nodes) * cfg.procs_per_node,
        work_scale: cfg.problem.scale,
        live_wall_seconds: live_wall,
        node_calib: cfg.node_calib(),
        net_calib: cfg.net_calib(),
        scenario: scenario.map(|s| s.to_json_compact()),
    };
    Ok(RecordedWorkload::capture(node_traces, meta))
}

/// Run a configuration and capture its workload in one step — the common
/// "record for later repricing/sweeping" entry (`whatif --record`, the
/// sweep bench). Returns the outcome alongside the recording so callers
/// can still report live numbers.
pub fn record_run(
    cfg: &RunConfig,
    label: &str,
    scenario: Option<&Scenario>,
) -> Result<(RunOutcome, RecordedWorkload), String> {
    let out = run_config(cfg).map_err(|e| e.to_string())?;
    let workload = recorded_workload(cfg, &out, label, scenario)?;
    Ok((out, workload))
}

fn node_config(cfg: &RunConfig, calib: accel_sim::NodeCalib) -> NodeConfig {
    NodeConfig {
        calib,
        gpus: cfg.gpus,
        mps: cfg.mps,
        schedule: cfg.schedule,
        overlap_transfers: cfg.overlap_transfers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario::ProblemSize;

    fn tiny_problem() -> Problem {
        let mut p = Problem::medium(2e-3);
        // Keep the harness tests fast: shrink detectors, total samples and
        // observation count *proportionally* so per-rank footprints keep
        // the medium problem's shape.
        p.total_samples *= 64.0 / p.n_det_total as f64;
        p.n_det_total = 64;
        p.n_obs = 2;
        p
    }

    fn tiny_cfg(kind: ImplKind, procs: u32) -> RunConfig {
        RunConfig::new(tiny_problem(), kind, procs).expect("valid procs")
    }

    /// The same tiny problem expressed as a scenario, for the
    /// flag-vs-scenario differential tests.
    fn tiny_scenario(kind: ImplKind, procs: u32) -> Scenario {
        let mut s = Scenario::new("tiny", ProblemSize::Medium, 2e-3)
            .with_kind(kind)
            .with_procs(procs);
        s.problem.total_samples = Some(5e9 * (64.0 / 2048.0));
        s.problem.n_det_total = Some(64);
        s.problem.n_obs = Some(2);
        s
    }

    #[test]
    fn cpu_run_completes_and_reports_time() {
        let out = run_config(&tiny_cfg(ImplKind::Cpu, 4)).unwrap();
        let t = out.runtime().expect("cpu fits");
        assert!(t > 0.0);
        assert!(out.per_label.contains_key("scan_map"));
        assert_eq!(out.transfer_bytes, 0.0);
    }

    #[test]
    fn gpu_runs_beat_cpu_at_16_procs() {
        // The tiny test problem is far below the paper's size, so one-time
        // JIT compilation (a fixed cost the real benchmark amortises over
        // ~10^9 samples) is subtracted before comparing.
        let cpu = run_config(&tiny_cfg(ImplKind::Cpu, 16))
            .unwrap()
            .runtime()
            .unwrap();
        let omp = run_config(&tiny_cfg(ImplKind::OmpTarget, 16))
            .unwrap()
            .runtime()
            .unwrap();
        let jit_out = run_config(&tiny_cfg(ImplKind::Jit, 16)).unwrap();
        let compile: f64 = jit_out
            .per_label
            .iter()
            .filter(|(k, _)| k.ends_with("/jit_compile"))
            .map(|(_, s)| s.seconds)
            .sum();
        let jit = jit_out.runtime().unwrap() - compile / 16.0;
        assert!(omp < cpu, "omp {omp} vs cpu {cpu}");
        assert!(jit < cpu, "jit {jit} vs cpu {cpu} (compile {compile})");
    }

    #[test]
    fn per_label_includes_data_movement() {
        let out = run_config(&tiny_cfg(ImplKind::OmpTarget, 4)).unwrap();
        assert!(out.per_label.contains_key("accel_data_update_device"));
        assert!(out.transfer_bytes > 0.0);
    }

    #[test]
    fn threads_divides_the_node_evenly() {
        for procs in [1u32, 2, 4, 8, 16, 32, 64] {
            let cfg = tiny_cfg(ImplKind::Cpu, procs);
            assert_eq!(cfg.threads().unwrap() * procs, 64);
        }
    }

    #[test]
    fn invalid_procs_are_typed_errors_not_panics() {
        // 0 (degenerate), non-divisors (would idle cores) and
        // oversubscription (more procs than cores) all surface as
        // `ScenarioError::InvalidProcs` — the replacement for the old
        // "must divide" panic.
        for procs in [0u32, 3, 65, 128] {
            match RunConfig::new(tiny_problem(), ImplKind::Cpu, procs) {
                Err(ScenarioError::InvalidProcs { procs: p, cores }) => {
                    assert_eq!(p, procs);
                    assert_eq!(cores, 64);
                }
                other => panic!("procs {procs}: expected InvalidProcs, got {other:?}"),
            }
        }
        // A config mutated into invalidity after construction fails at
        // run time instead of panicking mid-run.
        let mut cfg = tiny_cfg(ImplKind::Cpu, 4);
        cfg.procs_per_node = 5;
        assert!(matches!(
            run_config(&cfg),
            Err(ScenarioError::InvalidProcs { procs: 5, .. })
        ));
    }

    #[test]
    fn scenario_path_is_bit_identical_to_flag_path() {
        // The differential guard at the runner level: a RunConfig built
        // from a Scenario must reproduce the directly-constructed one's
        // makespan to the bit, for both CPU and device implementations.
        for (kind, procs) in [(ImplKind::Cpu, 4), (ImplKind::OmpTarget, 8)] {
            let direct = run_config(&tiny_cfg(kind, procs)).unwrap();
            let via = RunConfig::from_scenario(&tiny_scenario(kind, procs)).unwrap();
            let scen = run_config(&via).unwrap();
            assert_eq!(
                direct.node_wall.as_ref().unwrap().to_bits(),
                scen.node_wall.as_ref().unwrap().to_bits(),
                "{kind:?} at {procs} procs"
            );
            assert_eq!(direct.comm_seconds.to_bits(), scen.comm_seconds.to_bits());
        }
    }

    #[test]
    fn metrics_totals_agree_with_label_stats() {
        let out = run_config(&tiny_cfg(ImplKind::OmpTarget, 4)).unwrap();
        assert!(out.timeline.is_some());
        assert!(!out.traces.is_empty());
        for (label, stat) in &out.per_label {
            let m = out
                .metrics
                .get(label)
                .unwrap_or_else(|| panic!("no span metrics for {label}"));
            assert!(
                (m.total_s - stat.seconds).abs() < 1e-9 * stat.seconds.max(1.0),
                "{label}: spans {} vs stats {}",
                m.total_s,
                stat.seconds
            );
            assert_eq!(m.calls, stat.calls);
        }
    }

    #[test]
    fn cluster_run_replays_collectives_as_network_events() {
        let mut cfg = tiny_cfg(ImplKind::OmpTarget, 4);
        let legacy = run_config(&cfg).unwrap();
        let legacy_wall = *legacy.node_wall.as_ref().expect("fits");
        assert!(legacy.comm_seconds > 0.0);
        assert!(legacy.cluster.is_none());

        cfg.nodes = Some(2);
        let out = run_config(&cfg).unwrap();
        let wall = *out.node_wall.as_ref().expect("fits");
        // Collectives are inside the replayed wall now, not an addend.
        assert_eq!(out.comm_seconds, 0.0);
        assert!(wall > legacy_wall, "{wall} vs {legacy_wall}");
        let cluster = out.cluster.as_ref().expect("cluster accounting");
        assert_eq!(cluster.nodes, 2);
        assert_eq!(cluster.nic_busy.len(), 2);
        assert!(cluster.nic_busy[0] > 0.0);
        assert_eq!(cluster.gpu_busy.len(), 8);
        assert!(cluster.collective_seconds > 0.0);
        // With 4 ranks sharing each NIC, congestion stretches the summed
        // collective time well past the analytic solo pricing.
        assert!(cluster.collective_seconds > legacy.comm_seconds);
        assert!(out.per_label.contains_key("mpi_allreduce_zmap"));
        assert!(out.per_label.contains_key("mpi_allreduce_amplitudes"));
        // The multi-node timeline carries the collective phases.
        let tl = out.timeline.as_ref().expect("timeline");
        assert!(tl
            .events
            .iter()
            .any(|e| e.kind == accel_sim::TimelineKind::Collective));
    }

    #[test]
    fn overlap_and_schedule_flags_reach_the_replay() {
        let mut cfg = tiny_cfg(ImplKind::OmpTarget, 8);
        let sync_wall = run_config(&cfg).unwrap().runtime().expect("fits");
        cfg.overlap_transfers = true;
        let overlap_wall = run_config(&cfg).unwrap().runtime().expect("fits");
        // Streams can only help (or tie): transfers hide behind host work.
        assert!(
            overlap_wall <= sync_wall + 1e-12,
            "{overlap_wall} vs {sync_wall}"
        );

        cfg.overlap_transfers = false;
        cfg.schedule = accel_sim::SchedulePolicyKind::Fifo;
        let fifo_wall = run_config(&cfg).unwrap().runtime().expect("fits");
        assert!(fifo_wall > 0.0);
        assert!(
            (fifo_wall - sync_wall).abs() > 1e-12,
            "fifo should change the schedule ({fifo_wall} vs {sync_wall})"
        );
    }

    #[test]
    fn recordings_carry_their_scenario() {
        let s = tiny_scenario(ImplKind::OmpTarget, 4);
        let cfg = RunConfig::from_scenario(&s).unwrap();
        let (_, w) = record_run(&cfg, "with scenario", Some(&s)).unwrap();
        let embedded = w.meta.scenario.as_deref().expect("scenario embedded");
        assert_eq!(Scenario::parse(embedded).unwrap(), s);
        assert_eq!(w.meta.gpus, s.gpus);
        // And the embedding survives the JSONL round trip.
        let parsed = RecordedWorkload::parse_jsonl(&w.to_jsonl()).unwrap();
        assert_eq!(parsed.meta.scenario, w.meta.scenario);
        // Flag-driven recordings stay scenario-free.
        let (_, w2) = record_run(&cfg, "no scenario", None).unwrap();
        assert!(w2.meta.scenario.is_none());
    }

    #[test]
    fn written_trace_round_trips_per_label_seconds() {
        // The acceptance check: export the trace a fig binary would write
        // with `--trace-out`, parse it back, and match `run_config`'s
        // per-label seconds.
        let out = run_config(&tiny_cfg(ImplKind::Jit, 4)).unwrap();
        for name in ["runner_roundtrip.json", "runner_roundtrip.jsonl"] {
            let path = std::env::temp_dir().join(format!("repro_bench_{name}"));
            crate::traceout::write_trace(&path, &out.traces, out.timeline.as_ref()).unwrap();
            let parsed = crate::traceout::span_seconds_from_file(&path).unwrap();
            for (label, stat) in &out.per_label {
                let got = parsed.get(label).copied().unwrap_or(0.0);
                assert!(
                    (got - stat.seconds).abs() < 1e-9 * stat.seconds.max(1.0),
                    "{name} {label}: {got} vs {}",
                    stat.seconds
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }
}
