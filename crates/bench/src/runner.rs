//! Executing one benchmark configuration end to end.

use std::collections::BTreeMap;

use accel_sim::calib::NetCalib;
use accel_sim::comm::allreduce_seconds;
use accel_sim::context::LabelStats;
use accel_sim::node::{simulate_node, NodeConfig, NodeOom};
use accel_sim::Context;
use rayon::prelude::*;
use toast_core::dispatch::ImplKind;
use toast_core::kernels::ExecCtx;
use toast_core::pipeline::{benchmark_pipeline_passes, MovementPolicy};
use toast_satsim::Problem;

/// One benchmark configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The workload.
    pub problem: Problem,
    /// Which implementation every kernel uses.
    pub kind: ImplKind,
    /// Processes per node (threads per process = 64 / this).
    pub procs_per_node: u32,
    /// Whether the CUDA Multi-Process Service is active (paper § 3.1.2:
    /// required for efficient offload oversubscription).
    pub mps: bool,
    /// Data-movement policy (Tracked is the paper's design; Naive is the
    /// 40%-ablation baseline).
    pub movement: MovementPolicy,
}

impl RunConfig {
    /// The standard configuration for an implementation at a process
    /// count.
    pub fn new(problem: Problem, kind: ImplKind, procs_per_node: u32) -> Self {
        Self {
            problem,
            kind,
            procs_per_node,
            mps: true,
            movement: MovementPolicy::Tracked,
        }
    }

    fn threads(&self) -> u32 {
        (64 / self.procs_per_node).max(1)
    }
}

/// What a configuration produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// Simulated node wall seconds (including queueing/contention), or the
    /// out-of-memory condition when the configuration does not fit —
    /// exactly the paper's missing Fig. 4 points.
    pub node_wall: Result<f64, String>,
    /// Inter-node + inter-process collective seconds (map allreduces).
    pub comm_seconds: f64,
    /// Per-label solo-estimate seconds aggregated across ranks (kernel
    /// names, `accel_data_*` operations, host labels) — Fig. 6's rows.
    pub per_label: BTreeMap<String, LabelStats>,
    /// Per-GPU busy seconds from the replay.
    pub gpu_busy: Vec<f64>,
    /// Bytes moved over PCIe, summed over ranks.
    pub transfer_bytes: f64,
}

impl RunOutcome {
    /// Total runtime (node wall + communication), if the run fit.
    pub fn runtime(&self) -> Option<f64> {
        self.node_wall.as_ref().ok().map(|w| w + self.comm_seconds)
    }
}

/// Run one configuration: simulate every rank of one node (ranks on other
/// nodes are statistically identical and are priced through the comm
/// model), replay against the shared GPUs, and add collective costs.
pub fn run_config(cfg: &RunConfig) -> RunOutcome {
    let calib = cfg.problem.calib();
    let procs = cfg.procs_per_node;
    let fw = calib.framework;

    // Ranks are independent simulated processes: run them in parallel on
    // the host (the simulation's virtual clocks are per-rank; sharing is
    // resolved afterwards by the node replay).
    let rank_results: Vec<Result<Context, String>> = (0..procs)
        .into_par_iter()
        .map(|rank| {
            let mut ws = cfg.problem.rank_workspace(rank, procs);
            let mut ctx = Context::new(calib);

            // Fixed per-process device footprint (CUDA context, runtime
            // reservations) — held for the life of the process.
            let fixed = match cfg.kind {
                ImplKind::Jit => fw.jit_process_device_bytes as u64,
                ImplKind::OmpTarget => fw.omp_process_device_bytes as u64,
                _ => 0,
            };
            if fixed > 0 {
                ctx.device_alloc(fixed, true)
                    .map_err(|e| format!("rank {rank}: {e}"))?;
            }

            let mut exec = ExecCtx::new(cfg.kind, cfg.threads());
            let host = cfg.problem.host_seconds_per_rank(&ws, procs);
            let pipe = benchmark_pipeline_passes(host, cfg.problem.passes).with_policy(cfg.movement);
            for _obs in 0..cfg.problem.n_obs {
                pipe.run(&mut ctx, &mut exec, &mut ws)
                    .map_err(|e| format!("rank {rank}: {e}"))?;
            }
            Ok(ctx)
        })
        .collect();

    let mut traces = Vec::with_capacity(procs as usize);
    let mut per_label: BTreeMap<String, LabelStats> = BTreeMap::new();
    let mut transfer_bytes = 0.0;
    let mut rank_oom: Option<String> = None;
    for result in rank_results {
        match result {
            Err(e) => {
                rank_oom = Some(e);
                break;
            }
            Ok(ctx) => {
                for (label, stat) in ctx.stats() {
                    let e = per_label.entry(label.clone()).or_default();
                    e.calls += stat.calls;
                    e.seconds += stat.seconds;
                    e.bytes += stat.bytes;
                }
                transfer_bytes += ctx.trace().transfer_bytes();
                traces.push(ctx.into_trace());
            }
        }
    }

    // Collectives: the zmap is allreduced across every rank of the job
    // once per observation, plus a final amplitude reduce.
    let total_ranks = cfg.problem.nodes * procs;
    let map_bytes = (cfg.problem.geometry().map_len() * 8) as f64;
    let net = NetCalib::default();
    // One zmap allreduce per observation plus a final amplitude reduce;
    // scaled into simulated time like everything else.
    let comm_seconds = (cfg.problem.n_obs as f64 + 1.0)
        * allreduce_seconds(&net, total_ranks, map_bytes)
        * cfg.problem.scale;

    let (node_wall, gpu_busy) = match rank_oom {
        Some(e) => (Err(e), Vec::new()),
        None => {
            let node_cfg = NodeConfig {
                calib,
                gpus: 4,
                mps: cfg.mps,
            };
            match simulate_node(&traces, &node_cfg) {
                Ok(res) => (Ok(res.wall_seconds), res.gpu_busy),
                Err(NodeOom {
                    gpu,
                    demanded,
                    capacity,
                }) => (
                    Err(format!(
                        "GPU {gpu}: ranks demand {demanded} B of {capacity} B"
                    )),
                    Vec::new(),
                ),
            }
        }
    };

    RunOutcome {
        node_wall,
        comm_seconds,
        per_label,
        gpu_busy,
        transfer_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_problem() -> Problem {
        let mut p = Problem::medium(2e-3);
        // Keep the harness tests fast: shrink detectors, total samples and
        // observation count *proportionally* so per-rank footprints keep
        // the medium problem's shape.
        p.total_samples *= 64.0 / p.n_det_total as f64;
        p.n_det_total = 64;
        p.n_obs = 2;
        p
    }

    #[test]
    fn cpu_run_completes_and_reports_time() {
        let out = run_config(&RunConfig::new(tiny_problem(), ImplKind::Cpu, 4));
        let t = out.runtime().expect("cpu fits");
        assert!(t > 0.0);
        assert!(out.per_label.contains_key("scan_map"));
        assert_eq!(out.transfer_bytes, 0.0);
    }

    #[test]
    fn gpu_runs_beat_cpu_at_16_procs() {
        // The tiny test problem is far below the paper's size, so one-time
        // JIT compilation (a fixed cost the real benchmark amortises over
        // ~10^9 samples) is subtracted before comparing.
        let p = tiny_problem();
        let cpu = run_config(&RunConfig::new(p.clone(), ImplKind::Cpu, 16))
            .runtime()
            .unwrap();
        let omp = run_config(&RunConfig::new(p.clone(), ImplKind::OmpTarget, 16))
            .runtime()
            .unwrap();
        let jit_out = run_config(&RunConfig::new(p, ImplKind::Jit, 16));
        let compile: f64 = jit_out
            .per_label
            .iter()
            .filter(|(k, _)| k.ends_with("/jit_compile"))
            .map(|(_, s)| s.seconds)
            .sum();
        let jit = jit_out.runtime().unwrap() - compile / 16.0;
        assert!(omp < cpu, "omp {omp} vs cpu {cpu}");
        assert!(jit < cpu, "jit {jit} vs cpu {cpu} (compile {compile})");
    }

    #[test]
    fn per_label_includes_data_movement() {
        let out = run_config(&RunConfig::new(tiny_problem(), ImplKind::OmpTarget, 4));
        assert!(out.per_label.contains_key("accel_data_update_device"));
        assert!(out.transfer_bytes > 0.0);
    }
}
