//! Property-based tests: the compiler must preserve semantics, and the two
//! backends must agree bit-for-bit.

use accel_sim::{Context, NodeCalib};
use arrayjit::{Array, Backend, Jit};
use proptest::prelude::*;

fn ctx() -> Context {
    Context::new(NodeCalib::default())
}

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    /// A redundant traced expression (CSE + DCE fodder) computes the same
    /// values as the plain formula.
    #[test]
    fn compiler_preserves_semantics(xs in finite_vec(32)) {
        let mut f = Jit::new("p", |tc, p, _| {
            let x = &p[0];
            // sin(x) appears twice (CSE), dead exp branch (DCE).
            let _dead = x.abs().exp();
            let s1 = x.sin();
            let s2 = x.sin();
            vec![&s1 + &s2 + tc.constant(1.0)]
        });
        let out = f.call(&mut ctx(), Backend::Device, &[Array::from_f64(xs.clone())]);
        for (o, x) in out[0].as_f64().iter().zip(&xs) {
            let expected = 2.0 * x.sin() + 1.0;
            prop_assert!((o - expected).abs() < 1e-12);
        }
    }

    /// Device and CPU backends produce identical results (only the charged
    /// cost differs).
    #[test]
    fn backends_agree(xs in finite_vec(16), ys in finite_vec(16)) {
        let mut f = Jit::new("b", |tc, p, _| {
            let prod = &p[0] * &p[1];
            let mask = prod.gt(&tc.constant(0.0));
            vec![mask.select(&prod.sqrt(), &prod.neg())]
        });
        let args = [Array::from_f64(xs), Array::from_f64(ys)];
        let dev = f.call(&mut ctx(), Backend::Device, &args);
        let cpu = f.call(&mut ctx(), Backend::Cpu, &args);
        prop_assert_eq!(&dev[0], &cpu[0]);
    }

    /// scatter_add followed by a full reduction conserves the total sum.
    #[test]
    fn scatter_conserves_mass(
        vals in finite_vec(64),
        idx in proptest::collection::vec(0i64..16, 64),
    ) {
        let mut f = Jit::new("sc", |_tc, p, _| {
            vec![p[0].scatter_add(&p[1], 16)]
        });
        let out = f.call(
            &mut ctx(),
            Backend::Device,
            &[Array::from_f64(vals.clone()), Array::from_i64(idx)],
        );
        let total: f64 = out[0].as_f64().iter().sum();
        let expected: f64 = vals.iter().sum();
        prop_assert!((total - expected).abs() < 1e-6_f64.max(expected.abs() * 1e-12));
    }

    /// gather(iota) is the identity.
    #[test]
    fn gather_iota_is_identity(xs in finite_vec(40)) {
        let n = xs.len();
        let mut f = Jit::new("gi", move |tc, p, _| {
            vec![p[0].gather(&tc.iota(n))]
        });
        let out = f.call(&mut ctx(), Backend::Device, &[Array::from_f64(xs.clone())]);
        prop_assert_eq!(out[0].as_f64(), xs.as_slice());
    }

    /// reduce_sum over either axis of a matrix equals the full sum when
    /// chained, and matches a scalar reference.
    #[test]
    fn reductions_match_reference(xs in finite_vec(24)) {
        let mut f = Jit::new("r", |_tc, p, _| {
            vec![p[0].reduce_sum(1).reduce_sum(0), p[0].reduce_sum(0).reduce_sum(0)]
        });
        let m = Array::from_f64_shaped(vec![4, 6], xs.clone());
        let out = f.call(&mut ctx(), Backend::Device, &[m]);
        let expected: f64 = xs.iter().sum();
        prop_assert!((out[0].as_f64()[0] - expected).abs() < 1e-6);
        prop_assert!((out[1].as_f64()[0] - expected).abs() < 1e-6);
    }

    /// The JIT cache never recompiles for a repeated signature, for
    /// arbitrary shapes.
    #[test]
    fn cache_hit_rate(len in 1usize..64, repeats in 1usize..5) {
        let mut f = Jit::new("c", |_tc, p, _| vec![p[0].mul_s(2.0)]);
        let mut c = ctx();
        for _ in 0..repeats {
            f.call(&mut c, Backend::Device, &[Array::zeros(vec![len])]);
        }
        prop_assert_eq!(f.compiled_signatures(), 1);
        prop_assert_eq!(c.stats()["c/jit_compile"].calls, 1);
        prop_assert_eq!(c.stats()["c/dispatch"].calls as usize, repeats);
    }
}
