//! Tracing: building IR graphs by executing Python-style array code.
//!
//! A JIT'd function runs once per input signature against [`Tracer`]
//! values, which record every operation into a [`Graph`] instead of
//! computing — exactly JAX's model, including its constraints: values are
//! unknown during tracing, so data-dependent control flow is impossible
//! and conditionals must be expressed with [`Tracer::select`].
//!
//! Shape and dtype errors surface *at trace time* with descriptive
//! messages — the debugging experience the paper contrasts with OpenMP
//! offload's segfaults.

use std::cell::RefCell;
use std::rc::Rc;

use crate::array::DType;
use crate::ir::{BinaryOp, Graph, Node, NodeId, Op, UnaryOp};
use crate::shape::Shape;

/// The per-trace graph builder.
#[derive(Debug, Clone, Default)]
pub struct TraceContext {
    graph: Rc<RefCell<Graph>>,
}

impl TraceContext {
    /// Fresh, empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the next function parameter with the given signature.
    pub fn param(&self, shape: impl Into<Shape>, dtype: DType) -> Tracer {
        let shape = shape.into();
        let index = self.graph.borrow().params.len();
        self.graph.borrow_mut().params.push((shape.clone(), dtype));
        self.push(Op::Param { index }, shape, dtype)
    }

    /// An f64 constant (scalar).
    pub fn constant(&self, v: f64) -> Tracer {
        self.push(Op::ConstF64(v), Shape::scalar(), DType::F64)
    }

    /// An i64 constant (scalar).
    pub fn constant_i64(&self, v: i64) -> Tracer {
        self.push(Op::ConstI64(v), Shape::scalar(), DType::I64)
    }

    /// `[0, 1, …, len-1]` as i64.
    pub fn iota(&self, len: usize) -> Tracer {
        self.push(Op::Iota { len }, Shape(vec![len]), DType::I64)
    }

    /// Finish the trace: the graph with `outputs` as results.
    pub fn finish(&self, outputs: &[&Tracer]) -> Graph {
        let mut graph = self.graph.borrow().clone();
        graph.outputs = outputs.iter().map(|t| t.id).collect();
        graph
    }

    fn push(&self, op: Op, shape: Shape, dtype: DType) -> Tracer {
        let id = self.graph.borrow_mut().push(Node {
            op,
            shape: shape.clone(),
            dtype,
        });
        Tracer {
            graph: self.graph.clone(),
            id,
            shape,
            dtype,
        }
    }
}

/// A symbolic array value inside a trace.
#[derive(Debug, Clone)]
pub struct Tracer {
    graph: Rc<RefCell<Graph>>,
    id: NodeId,
    shape: Shape,
    dtype: DType,
}

impl Tracer {
    /// The static shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dtype.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// The IR node id (for compiler tests).
    pub fn id(&self) -> NodeId {
        self.id
    }

    fn ctx(&self) -> TraceContext {
        TraceContext {
            graph: self.graph.clone(),
        }
    }

    fn push(&self, op: Op, shape: Shape, dtype: DType) -> Tracer {
        self.ctx().push(op, shape, dtype)
    }

    fn assert_same_graph(&self, other: &Tracer) {
        assert!(
            Rc::ptr_eq(&self.graph, &other.graph),
            "tracers from different traces cannot be combined"
        );
    }

    // ---- elementwise unary ----------------------------------------------

    fn unary(&self, op: UnaryOp) -> Tracer {
        let dtype = if op == UnaryOp::Not {
            assert_eq!(self.dtype, DType::Bool, "logical not needs a Bool input");
            DType::Bool
        } else {
            assert_eq!(
                self.dtype,
                DType::F64,
                "unary {op:?} needs an F64 input, got {:?}",
                self.dtype
            );
            DType::F64
        };
        self.push(Op::Unary { op, a: self.id }, self.shape.clone(), dtype)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tracer {
        self.unary(UnaryOp::Neg)
    }
    /// Elementwise absolute value.
    pub fn abs(&self) -> Tracer {
        self.unary(UnaryOp::Abs)
    }
    /// Elementwise `e^x`.
    pub fn exp(&self) -> Tracer {
        self.unary(UnaryOp::Exp)
    }
    /// Elementwise natural log.
    pub fn log(&self) -> Tracer {
        self.unary(UnaryOp::Log)
    }
    /// Elementwise square root.
    pub fn sqrt(&self) -> Tracer {
        self.unary(UnaryOp::Sqrt)
    }
    /// Elementwise sine.
    pub fn sin(&self) -> Tracer {
        self.unary(UnaryOp::Sin)
    }
    /// Elementwise cosine.
    pub fn cos(&self) -> Tracer {
        self.unary(UnaryOp::Cos)
    }
    /// Elementwise floor.
    pub fn floor(&self) -> Tracer {
        self.unary(UnaryOp::Floor)
    }
    /// Elementwise logical not (Bool only).
    pub fn not(&self) -> Tracer {
        self.unary(UnaryOp::Not)
    }

    // ---- elementwise binary ---------------------------------------------

    fn binary(&self, op: BinaryOp, rhs: &Tracer) -> Tracer {
        self.assert_same_graph(rhs);
        let shape = self.shape.broadcast(&rhs.shape).unwrap_or_else(|| {
            panic!(
                "cannot broadcast {} with {} in {op:?}",
                self.shape, rhs.shape
            )
        });
        let dtype = if op.is_comparison() {
            assert_eq!(
                self.dtype, rhs.dtype,
                "comparison {op:?} between {:?} and {:?}",
                self.dtype, rhs.dtype
            );
            DType::Bool
        } else if matches!(op, BinaryOp::And | BinaryOp::Or) {
            assert_eq!(self.dtype, DType::Bool, "{op:?} needs Bool operands");
            assert_eq!(rhs.dtype, DType::Bool, "{op:?} needs Bool operands");
            DType::Bool
        } else {
            assert_eq!(
                self.dtype, rhs.dtype,
                "dtype mismatch in {op:?}: {:?} vs {:?}",
                self.dtype, rhs.dtype
            );
            self.dtype
        };
        self.push(
            Op::Binary {
                op,
                a: self.id,
                b: rhs.id,
            },
            shape,
            dtype,
        )
    }

    /// Elementwise remainder (Euclidean for i64, fmod-style for f64).
    pub fn rem(&self, rhs: &Tracer) -> Tracer {
        self.binary(BinaryOp::Rem, rhs)
    }
    /// Elementwise minimum.
    pub fn min(&self, rhs: &Tracer) -> Tracer {
        self.binary(BinaryOp::Min, rhs)
    }
    /// Elementwise maximum.
    pub fn max(&self, rhs: &Tracer) -> Tracer {
        self.binary(BinaryOp::Max, rhs)
    }
    /// Elementwise `atan2(self, rhs)`.
    pub fn atan2(&self, rhs: &Tracer) -> Tracer {
        self.binary(BinaryOp::Atan2, rhs)
    }
    /// Elementwise power.
    pub fn pow(&self, rhs: &Tracer) -> Tracer {
        self.binary(BinaryOp::Pow, rhs)
    }
    /// Elementwise `<`.
    pub fn lt(&self, rhs: &Tracer) -> Tracer {
        self.binary(BinaryOp::Lt, rhs)
    }
    /// Elementwise `<=`.
    pub fn le(&self, rhs: &Tracer) -> Tracer {
        self.binary(BinaryOp::Le, rhs)
    }
    /// Elementwise `>`.
    pub fn gt(&self, rhs: &Tracer) -> Tracer {
        self.binary(BinaryOp::Gt, rhs)
    }
    /// Elementwise `>=`.
    pub fn ge(&self, rhs: &Tracer) -> Tracer {
        self.binary(BinaryOp::Ge, rhs)
    }
    /// Elementwise `==`.
    pub fn eq(&self, rhs: &Tracer) -> Tracer {
        self.binary(BinaryOp::Eq, rhs)
    }
    /// Elementwise logical and (Bool).
    pub fn and(&self, rhs: &Tracer) -> Tracer {
        self.binary(BinaryOp::And, rhs)
    }
    /// Elementwise logical or (Bool).
    pub fn or(&self, rhs: &Tracer) -> Tracer {
        self.binary(BinaryOp::Or, rhs)
    }

    /// Elementwise `> scalar`.
    pub fn gt_s(&self, v: f64) -> Tracer {
        self.binary(BinaryOp::Gt, &self.ctx().constant(v))
    }
    /// Elementwise `< scalar`.
    pub fn lt_s(&self, v: f64) -> Tracer {
        self.binary(BinaryOp::Lt, &self.ctx().constant(v))
    }
    /// Elementwise `<= scalar`.
    pub fn le_s(&self, v: f64) -> Tracer {
        self.binary(BinaryOp::Le, &self.ctx().constant(v))
    }
    /// Elementwise `>= scalar`.
    pub fn ge_s(&self, v: f64) -> Tracer {
        self.binary(BinaryOp::Ge, &self.ctx().constant(v))
    }
    /// Elementwise Euclidean remainder by a scalar.
    pub fn rem_s(&self, v: f64) -> Tracer {
        self.binary(BinaryOp::Rem, &self.ctx().constant(v))
    }
    /// Elementwise maximum with a scalar.
    pub fn max_s(&self, v: f64) -> Tracer {
        self.binary(BinaryOp::Max, &self.ctx().constant(v))
    }
    /// Elementwise minimum with a scalar.
    pub fn min_s(&self, v: f64) -> Tracer {
        self.binary(BinaryOp::Min, &self.ctx().constant(v))
    }

    /// Elementwise multiply by an i64 scalar.
    pub fn mul_s_i(&self, v: i64) -> Tracer {
        self.binary(BinaryOp::Mul, &self.ctx().constant_i64(v))
    }
    /// Elementwise add an i64 scalar.
    pub fn add_s_i(&self, v: i64) -> Tracer {
        self.binary(BinaryOp::Add, &self.ctx().constant_i64(v))
    }
    /// Elementwise Euclidean remainder by an i64 scalar.
    pub fn rem_s_i(&self, v: i64) -> Tracer {
        self.binary(BinaryOp::Rem, &self.ctx().constant_i64(v))
    }
    /// Elementwise Euclidean division by an i64 scalar.
    pub fn div_s_i(&self, v: i64) -> Tracer {
        self.binary(BinaryOp::Div, &self.ctx().constant_i64(v))
    }

    /// Convenience: combine with an f64 scalar constant.
    pub fn add_s(&self, v: f64) -> Tracer {
        self.binary(BinaryOp::Add, &self.ctx().constant(v))
    }
    /// Subtract a scalar.
    pub fn sub_s(&self, v: f64) -> Tracer {
        self.binary(BinaryOp::Sub, &self.ctx().constant(v))
    }
    /// Multiply by a scalar.
    pub fn mul_s(&self, v: f64) -> Tracer {
        self.binary(BinaryOp::Mul, &self.ctx().constant(v))
    }
    /// Divide by a scalar.
    pub fn div_s(&self, v: f64) -> Tracer {
        self.binary(BinaryOp::Div, &self.ctx().constant(v))
    }

    // ---- structural -------------------------------------------------------

    /// Elementwise conditional: both branches are evaluated (predication),
    /// matching JAX `where`.
    pub fn select(&self, on_true: &Tracer, on_false: &Tracer) -> Tracer {
        self.assert_same_graph(on_true);
        self.assert_same_graph(on_false);
        assert_eq!(self.dtype, DType::Bool, "select condition must be Bool");
        assert_eq!(
            on_true.dtype, on_false.dtype,
            "select branches disagree: {:?} vs {:?}",
            on_true.dtype, on_false.dtype
        );
        let shape = self
            .shape
            .broadcast(&on_true.shape)
            .and_then(|s| s.broadcast(&on_false.shape))
            .unwrap_or_else(|| {
                panic!(
                    "select shapes incompatible: cond {} / {} / {}",
                    self.shape, on_true.shape, on_false.shape
                )
            });
        self.push(
            Op::Select {
                cond: self.id,
                on_true: on_true.id,
                on_false: on_false.id,
            },
            shape,
            on_true.dtype,
        )
    }

    /// Convert to another dtype (f64↔i64 truncates toward zero; Bool→number
    /// is 0/1).
    pub fn convert(&self, to: DType) -> Tracer {
        if to == self.dtype {
            return self.clone();
        }
        self.push(Op::Convert { a: self.id, to }, self.shape.clone(), to)
    }

    /// Same elements, new shape.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tracer {
        let shape = shape.into();
        assert_eq!(
            shape.elements(),
            self.shape.elements(),
            "reshape {} to {} changes element count",
            self.shape,
            shape
        );
        self.push(Op::Reshape { a: self.id }, shape, self.dtype)
    }

    /// Broadcast to a concrete larger shape.
    pub fn broadcast_to(&self, shape: impl Into<Shape>) -> Tracer {
        let shape = shape.into();
        assert!(
            self.shape.broadcastable_to(&shape),
            "cannot broadcast {} to {}",
            self.shape,
            shape
        );
        self.push(Op::BroadcastTo { a: self.id }, shape, self.dtype)
    }

    /// Contiguous slice `[start, start+len)` along `axis`.
    pub fn slice_axis(&self, axis: usize, start: usize, len: usize) -> Tracer {
        assert!(axis < self.shape.rank(), "slice axis {axis} out of rank");
        assert!(
            start + len <= self.shape.dim(axis),
            "slice [{start}, {}) exceeds axis {axis} of {}",
            start + len,
            self.shape
        );
        let mut shape = self.shape.clone();
        shape.0[axis] = len;
        self.push(
            Op::SliceAxis {
                a: self.id,
                axis,
                start,
                len,
            },
            shape,
            self.dtype,
        )
    }

    /// Extract index `i` of `axis`, dropping the axis.
    pub fn index_axis(&self, axis: usize, i: usize) -> Tracer {
        let sliced = self.slice_axis(axis, i, 1);
        let mut shape = self.shape.clone();
        shape.0.remove(axis);
        sliced.reshape(shape)
    }

    /// `out[i] = self[idx[i]]` with `self` treated as flat 1-D storage;
    /// the output has `idx`'s shape.
    pub fn gather(&self, idx: &Tracer) -> Tracer {
        self.assert_same_graph(idx);
        assert_eq!(idx.dtype, DType::I64, "gather indices must be I64");
        self.push(
            Op::Gather {
                src: self.id,
                idx: idx.id,
            },
            idx.shape.clone(),
            self.dtype,
        )
    }

    /// Scatter-add `self` (values) at positions `idx` into a fresh zeroed
    /// 1-D array of length `size` — the functional `x.at[idx].add(v)`.
    pub fn scatter_add(&self, idx: &Tracer, size: usize) -> Tracer {
        self.assert_same_graph(idx);
        assert_eq!(idx.dtype, DType::I64, "scatter indices must be I64");
        assert_eq!(
            idx.shape, self.shape,
            "scatter indices shape {} must match values {}",
            idx.shape, self.shape
        );
        self.push(
            Op::ScatterAdd {
                size,
                idx: idx.id,
                val: self.id,
            },
            Shape(vec![size]),
            self.dtype,
        )
    }

    /// Stack `self` with `others` along a new trailing axis:
    /// `k` arrays of shape `[..]` become one `[.., k]`.
    pub fn stack_last(&self, others: &[&Tracer]) -> Tracer {
        let mut parts = vec![self.id];
        for o in others {
            self.assert_same_graph(o);
            assert_eq!(
                o.shape(),
                &self.shape,
                "stack_last parts must share a shape: {} vs {}",
                o.shape(),
                self.shape
            );
            assert_eq!(o.dtype(), self.dtype, "stack_last dtype mismatch");
            parts.push(o.id);
        }
        let mut shape = self.shape.clone();
        shape.0.push(parts.len());
        self.push(Op::StackLast { parts }, shape, self.dtype)
    }

    /// Sum over `axis`.
    pub fn reduce_sum(&self, axis: usize) -> Tracer {
        assert!(axis < self.shape.rank(), "reduce axis {axis} out of rank");
        let mut shape = self.shape.clone();
        shape.0.remove(axis);
        self.push(Op::ReduceSum { a: self.id, axis }, shape, self.dtype)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:ident) => {
        impl std::ops::$trait<&Tracer> for &Tracer {
            type Output = Tracer;
            fn $method(self, rhs: &Tracer) -> Tracer {
                self.binary(BinaryOp::$op, rhs)
            }
        }
        impl std::ops::$trait<Tracer> for Tracer {
            type Output = Tracer;
            fn $method(self, rhs: Tracer) -> Tracer {
                self.binary(BinaryOp::$op, &rhs)
            }
        }
        impl std::ops::$trait<&Tracer> for Tracer {
            type Output = Tracer;
            fn $method(self, rhs: &Tracer) -> Tracer {
                self.binary(BinaryOp::$op, rhs)
            }
        }
        impl std::ops::$trait<Tracer> for &Tracer {
            type Output = Tracer;
            fn $method(self, rhs: Tracer) -> Tracer {
                self.binary(BinaryOp::$op, &rhs)
            }
        }
    };
}

impl_binop!(Add, add, Add);
impl_binop!(Sub, sub, Sub);
impl_binop!(Mul, mul, Mul);
impl_binop!(Div, div, Div);

impl std::ops::Neg for &Tracer {
    type Output = Tracer;
    fn neg(self) -> Tracer {
        Tracer::neg(self)
    }
}

impl std::ops::Neg for Tracer {
    type Output = Tracer;
    fn neg(self) -> Tracer {
        Tracer::neg(&self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracing_builds_a_graph() {
        let ctx = TraceContext::new();
        let x = ctx.param(vec![8], DType::F64);
        let y = ctx.param(vec![8], DType::F64);
        let z = (&x + &y).mul_s(2.0).sqrt();
        let g = ctx.finish(&[&z]);
        assert_eq!(g.params.len(), 2);
        assert_eq!(g.outputs.len(), 1);
        // params + add + const + mul + sqrt
        assert_eq!(g.nodes.len(), 6);
    }

    #[test]
    fn broadcasting_shapes_propagate() {
        let ctx = TraceContext::new();
        let m = ctx.param(vec![4, 3], DType::F64);
        let v = ctx.param(vec![3], DType::F64);
        let s = &m + &v;
        assert_eq!(s.shape(), &Shape(vec![4, 3]));
        let r = s.reduce_sum(1);
        assert_eq!(r.shape(), &Shape(vec![4]));
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn incompatible_shapes_fail_at_trace_time() {
        let ctx = TraceContext::new();
        let a = ctx.param(vec![2], DType::F64);
        let b = ctx.param(vec![3], DType::F64);
        let _ = &a + &b;
    }

    #[test]
    #[should_panic(expected = "dtype mismatch")]
    fn dtype_mismatch_fails_at_trace_time() {
        let ctx = TraceContext::new();
        let a = ctx.param(vec![2], DType::F64);
        let b = ctx.param(vec![2], DType::I64);
        let _ = &a + &b;
    }

    #[test]
    fn comparisons_yield_bool_and_select_applies() {
        let ctx = TraceContext::new();
        let a = ctx.param(vec![4], DType::F64);
        let mask = a.gt(&ctx.constant(0.0));
        assert_eq!(mask.dtype(), DType::Bool);
        let clipped = mask.select(&a, &ctx.constant(0.0));
        assert_eq!(clipped.dtype(), DType::F64);
        assert_eq!(clipped.shape(), &Shape(vec![4]));
    }

    #[test]
    fn gather_takes_index_shape() {
        let ctx = TraceContext::new();
        let table = ctx.param(vec![100], DType::F64);
        let idx = ctx.param(vec![5, 2], DType::I64);
        let out = table.gather(&idx);
        assert_eq!(out.shape(), &Shape(vec![5, 2]));
        assert_eq!(out.dtype(), DType::F64);
    }

    #[test]
    fn scatter_add_produces_sized_output() {
        let ctx = TraceContext::new();
        let vals = ctx.param(vec![10], DType::F64);
        let idx = ctx.param(vec![10], DType::I64);
        let out = vals.scatter_add(&idx, 50);
        assert_eq!(out.shape(), &Shape(vec![50]));
    }

    #[test]
    fn index_axis_drops_the_axis() {
        let ctx = TraceContext::new();
        let q = ctx.param(vec![7, 4], DType::F64);
        let col = q.index_axis(1, 2);
        assert_eq!(col.shape(), &Shape(vec![7]));
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn bad_reshape_panics() {
        let ctx = TraceContext::new();
        let a = ctx.param(vec![4], DType::F64);
        a.reshape(vec![3]);
    }

    #[test]
    #[should_panic(expected = "different traces")]
    fn cross_trace_mixing_panics() {
        let c1 = TraceContext::new();
        let c2 = TraceContext::new();
        let a = c1.param(vec![2], DType::F64);
        let b = c2.param(vec![2], DType::F64);
        let _ = &a + &b;
    }

    #[test]
    fn iota_and_convert() {
        let ctx = TraceContext::new();
        let i = ctx.iota(5);
        assert_eq!(i.dtype(), DType::I64);
        let f = i.convert(DType::F64);
        assert_eq!(f.dtype(), DType::F64);
        assert_eq!(f.shape(), &Shape(vec![5]));
        // Converting to the same dtype is a no-op (returns the same node).
        let same = f.convert(DType::F64);
        assert_eq!(same.id(), f.id());
    }
}
