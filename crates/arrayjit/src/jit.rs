//! `jit`: trace-once, compile-once-per-signature function wrappers.
//!
//! Mirrors `jax.jit`: the wrapped function is traced the first time it is
//! called with a new *signature* (argument shapes/dtypes plus any static
//! arguments, like the paper's static maximum interval size); the compiled
//! program is cached and reused for subsequent calls. The one-time compile
//! cost and the per-call dispatch cost are charged to the simulation
//! context, which is how JIT compilation time ends up inside the
//! benchmarks — the paper's runtimes include it too.

use std::collections::HashMap;
use std::sync::Arc;

use accel_sim as accel;

use crate::array::{Array, DType};
use crate::compile::{compile, Program};
use crate::exec::{run, Backend};
use crate::shape::Shape;
use crate::trace::{TraceContext, Tracer};

type Signature = (Vec<(Shape, DType)>, Vec<i64>);
type BuildFn = dyn Fn(&TraceContext, &[Tracer], &[i64]) -> Vec<Tracer> + Send;

/// A JIT-compiled function with a per-signature program cache.
pub struct Jit {
    name: String,
    build: Box<BuildFn>,
    cache: HashMap<Signature, Arc<Program>>,
}

impl Jit {
    /// Wrap `build`, which receives one [`Tracer`] per runtime argument and
    /// the static arguments, and returns the output tracers.
    pub fn new(
        name: impl Into<String>,
        build: impl Fn(&TraceContext, &[Tracer], &[i64]) -> Vec<Tracer> + Send + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            build: Box::new(build),
            cache: HashMap::new(),
        }
    }

    /// The function name (used for accounting labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of distinct signatures compiled so far.
    pub fn compiled_signatures(&self) -> usize {
        self.cache.len()
    }

    /// Call with runtime arguments only.
    pub fn call(
        &mut self,
        ctx: &mut accel::Context,
        backend: Backend,
        args: &[Array],
    ) -> Vec<Array> {
        self.call_static(ctx, backend, args, &[])
    }

    /// Call with runtime arguments and static (trace-time) arguments.
    ///
    /// A new `(shapes, statics)` signature triggers a trace + compile,
    /// charging `FrameworkCalib::jit_compile` host seconds; cached
    /// signatures skip straight to execution.
    pub fn call_static(
        &mut self,
        ctx: &mut accel::Context,
        backend: Backend,
        args: &[Array],
        statics: &[i64],
    ) -> Vec<Array> {
        let sig: Signature = (
            args.iter()
                .map(|a| (a.shape().clone(), a.dtype()))
                .collect(),
            statics.to_vec(),
        );
        let program = match self.cache.get(&sig) {
            Some(p) => p.clone(),
            None => {
                let tc = TraceContext::new();
                let params: Vec<Tracer> = args
                    .iter()
                    .map(|a| tc.param(a.shape().clone(), a.dtype()))
                    .collect();
                let outs = (self.build)(&tc, &params, statics);
                let out_refs: Vec<&Tracer> = outs.iter().collect();
                let graph = tc.finish(&out_refs);
                let program = Arc::new(compile(&self.name, &graph));
                ctx.host_compute(
                    format!("{}/jit_compile", self.name),
                    ctx.calib.framework.jit_compile,
                );
                self.cache.insert(sig, program.clone());
                program
            }
        };
        run(ctx, backend, &program, args)
    }

    /// The compiled program for a signature, if cached (for inspection in
    /// tests and the LoC/fusion analysis).
    pub fn program_for(&self, args: &[Array], statics: &[i64]) -> Option<Arc<Program>> {
        let sig: Signature = (
            args.iter()
                .map(|a| (a.shape().clone(), a.dtype()))
                .collect(),
            statics.to_vec(),
        );
        self.cache.get(&sig).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::NodeCalib;

    fn ctx() -> accel::Context {
        accel::Context::new(NodeCalib::default())
    }

    fn saxpy() -> Jit {
        Jit::new("saxpy", |_tc, params, _statics| {
            let (a, x, y) = (&params[0], &params[1], &params[2]);
            vec![a * x + y]
        })
    }

    #[test]
    fn computes_and_caches() {
        let mut f = saxpy();
        let mut c = ctx();
        let a = Array::scalar_f64(2.0);
        let x = Array::from_f64(vec![1., 2., 3.]);
        let y = Array::from_f64(vec![10., 10., 10.]);
        let out = f.call(&mut c, Backend::Device, &[a.clone(), x.clone(), y.clone()]);
        assert_eq!(out[0].as_f64(), &[12., 14., 16.]);
        assert_eq!(f.compiled_signatures(), 1);

        // Same signature: no recompile.
        f.call(&mut c, Backend::Device, &[a.clone(), x, y]);
        assert_eq!(f.compiled_signatures(), 1);
        assert_eq!(c.stats()["saxpy/jit_compile"].calls, 1);

        // New shape: recompile.
        let x2 = Array::from_f64(vec![1., 2.]);
        let y2 = Array::from_f64(vec![0., 0.]);
        f.call(&mut c, Backend::Device, &[a, x2, y2]);
        assert_eq!(f.compiled_signatures(), 2);
        assert_eq!(c.stats()["saxpy/jit_compile"].calls, 2);
    }

    #[test]
    fn statics_are_part_of_the_key() {
        let mut f = Jit::new("pad", |tc, params, statics| {
            let n = statics[0] as usize;
            let x = &params[0];
            // Gather the first n elements (a static slice via iota).
            let idx = tc.iota(n);
            vec![x.gather(&idx)]
        });
        let mut c = ctx();
        let x = Array::from_f64(vec![1., 2., 3., 4.]);
        let a = f.call_static(&mut c, Backend::Device, std::slice::from_ref(&x), &[2]);
        assert_eq!(a[0].as_f64(), &[1., 2.]);
        let b = f.call_static(&mut c, Backend::Device, std::slice::from_ref(&x), &[3]);
        assert_eq!(b[0].as_f64(), &[1., 2., 3.]);
        assert_eq!(f.compiled_signatures(), 2);
    }

    #[test]
    fn dispatch_charged_every_call() {
        let mut f = saxpy();
        let mut c = ctx();
        let args = [
            Array::scalar_f64(1.0),
            Array::from_f64(vec![1.0; 8]),
            Array::from_f64(vec![2.0; 8]),
        ];
        for _ in 0..5 {
            f.call(&mut c, Backend::Device, &args);
        }
        assert_eq!(c.stats()["saxpy/dispatch"].calls, 5);
    }

    #[test]
    fn multiple_outputs() {
        let mut f = Jit::new("sumdiff", |_tc, p, _| vec![&p[0] + &p[1], &p[0] - &p[1]]);
        let mut c = ctx();
        let out = f.call(
            &mut c,
            Backend::Device,
            &[Array::from_f64(vec![5., 7.]), Array::from_f64(vec![1., 2.])],
        );
        assert_eq!(out[0].as_f64(), &[6., 9.]);
        assert_eq!(out[1].as_f64(), &[4., 5.]);
    }

    #[test]
    fn cpu_and_device_backends_agree_numerically() {
        let mut f = Jit::new("agree", |tc, p, _| {
            let x = &p[0];
            vec![x.sin() * x.cos() + tc.constant(1.0)]
        });
        let x = Array::from_f64((0..64).map(|i| i as f64 * 0.1).collect());
        let mut c1 = ctx();
        let dev = f.call(&mut c1, Backend::Device, std::slice::from_ref(&x));
        let mut c2 = ctx();
        let cpu = f.call(&mut c2, Backend::Cpu, std::slice::from_ref(&x));
        assert_eq!(dev[0], cpu[0]);
    }
}
