//! The arrayjit compiler: graph optimisation and kernel partitioning.
//!
//! Mirrors what XLA does for the paper's JAX port, at reduced fidelity but
//! with the same observable consequences:
//!
//! * **DCE** and **CSE** shrink the traced graph (traced Python recomputes
//!   subexpressions freely; the compiler is what makes that free).
//! * **Elementwise fusion** merges chains of map-like ops into single
//!   kernels, eliding intermediate buffers — the main reason fine-grained
//!   NumPy-style code is viable on a GPU at all.
//! * **Library pattern matching** recognises `reduce_sum(mul(a, b))` as a
//!   dot-product/GEMV and routes it to a "vendor library" stage — the
//!   mechanism the paper suspects behind JAX beating OpenMP offload on
//!   `template_offset_project_signal` ("the XLA compiler finding a way to
//!   express this particular kernel in terms of linear algebra").
//!
//! Because shapes are static, every stage's [`KernelProfile`] (work items,
//! flops, bytes) is computed *at compile time* — the paper's footnote 3
//! observation that HLO carries full tensor-size knowledge.

use std::collections::{HashMap, HashSet};

use accel_sim::KernelProfile;

use crate::ir::{BinaryOp, Graph, Node, NodeId, Op};

/// How a stage executes on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// One fused elementwise kernel.
    Fused,
    /// Random-access gather.
    Gather,
    /// Atomic scatter-add.
    ScatterAdd,
    /// Axis reduction.
    Reduce,
    /// Pattern-matched dot/GEMV routed to the vendor library.
    LibraryDot,
}

/// A compiled device kernel: which IR nodes it covers and its cost profile.
#[derive(Debug, Clone)]
pub struct Stage {
    pub kind: StageKind,
    /// Node ids (in the optimised graph) evaluated by this stage.
    pub nodes: Vec<NodeId>,
    /// Work descriptor handed to the simulator per launch.
    pub profile: KernelProfile,
}

/// A compiled program: optimised graph + kernel partition.
#[derive(Debug, Clone)]
pub struct Program {
    pub name: String,
    pub graph: Graph,
    pub stages: Vec<Stage>,
    /// Largest (input + output) working set of any stage, in bytes — used
    /// for device-memory accounting of intermediates.
    pub peak_stage_bytes: u64,
}

impl Program {
    /// Total flops across all stages (one program invocation).
    pub fn total_flops(&self) -> f64 {
        self.stages.iter().map(|s| s.profile.total_flops()).sum()
    }

    /// Total device-memory traffic across all stages.
    pub fn total_bytes(&self) -> f64 {
        self.stages.iter().map(|s| s.profile.total_bytes()).sum()
    }
}

/// Compile a traced graph into a program.
pub fn compile(name: &str, graph: &Graph) -> Program {
    let graph = dce(&cse(graph));
    let stages = partition(name, &graph);
    let peak_stage_bytes = stages
        .iter()
        .map(|s| s.profile.total_bytes() as u64)
        .max()
        .unwrap_or(0);
    Program {
        name: name.to_string(),
        graph,
        stages,
        peak_stage_bytes,
    }
}

fn node_bytes(node: &Node) -> f64 {
    (node.shape.elements() * node.dtype.size()) as f64
}

/// Common-subexpression elimination: structurally identical nodes collapse
/// to the first occurrence.
fn cse(graph: &Graph) -> Graph {
    let mut out = Graph {
        nodes: Vec::with_capacity(graph.nodes.len()),
        outputs: Vec::new(),
        params: graph.params.clone(),
    };
    let mut remap: Vec<NodeId> = Vec::with_capacity(graph.nodes.len());
    let mut seen: HashMap<String, NodeId> = HashMap::new();

    for node in &graph.nodes {
        let op = remap_op(&node.op, &remap);
        let key = format!("{:?}|{:?}|{:?}", op, node.shape, node.dtype);
        if let Some(&existing) = seen.get(&key) {
            remap.push(existing);
            continue;
        }
        let id = out.push(Node {
            op,
            shape: node.shape.clone(),
            dtype: node.dtype,
        });
        seen.insert(key, id);
        remap.push(id);
    }
    out.outputs = graph.outputs.iter().map(|&o| remap[o]).collect();
    out
}

/// Dead-code elimination: keep nodes reachable from the outputs, plus all
/// params (the calling convention fixes their indices).
fn dce(graph: &Graph) -> Graph {
    let mut live = vec![false; graph.nodes.len()];
    let mut stack: Vec<NodeId> = graph.outputs.clone();
    while let Some(id) = stack.pop() {
        if live[id] {
            continue;
        }
        live[id] = true;
        stack.extend(graph.node(id).op.operands());
    }
    for (i, node) in graph.nodes.iter().enumerate() {
        if matches!(node.op, Op::Param { .. }) {
            live[i] = true;
        }
    }

    let mut out = Graph {
        nodes: Vec::new(),
        outputs: Vec::new(),
        params: graph.params.clone(),
    };
    let mut remap = vec![usize::MAX; graph.nodes.len()];
    for (i, node) in graph.nodes.iter().enumerate() {
        if live[i] {
            remap[i] = out.push(Node {
                op: remap_op(&node.op, &remap),
                shape: node.shape.clone(),
                dtype: node.dtype,
            });
        }
    }
    out.outputs = graph.outputs.iter().map(|&o| remap[o]).collect();
    out
}

fn remap_op(op: &Op, remap: &[NodeId]) -> Op {
    let r = |id: &NodeId| remap[*id];
    match op {
        Op::Param { index } => Op::Param { index: *index },
        Op::ConstF64(v) => Op::ConstF64(*v),
        Op::ConstI64(v) => Op::ConstI64(*v),
        Op::Iota { len } => Op::Iota { len: *len },
        Op::Unary { op, a } => Op::Unary { op: *op, a: r(a) },
        Op::Binary { op, a, b } => Op::Binary {
            op: *op,
            a: r(a),
            b: r(b),
        },
        Op::Select {
            cond,
            on_true,
            on_false,
        } => Op::Select {
            cond: r(cond),
            on_true: r(on_true),
            on_false: r(on_false),
        },
        Op::Convert { a, to } => Op::Convert { a: r(a), to: *to },
        Op::Reshape { a } => Op::Reshape { a: r(a) },
        Op::BroadcastTo { a } => Op::BroadcastTo { a: r(a) },
        Op::SliceAxis {
            a,
            axis,
            start,
            len,
        } => Op::SliceAxis {
            a: r(a),
            axis: *axis,
            start: *start,
            len: *len,
        },
        Op::Gather { src, idx } => Op::Gather {
            src: r(src),
            idx: r(idx),
        },
        Op::ScatterAdd { size, idx, val } => Op::ScatterAdd {
            size: *size,
            idx: r(idx),
            val: r(val),
        },
        Op::ReduceSum { a, axis } => Op::ReduceSum {
            a: r(a),
            axis: *axis,
        },
        Op::StackLast { parts } => Op::StackLast {
            parts: parts.iter().map(r).collect(),
        },
    }
}

/// Partition the optimised graph into device stages.
fn partition(prog_name: &str, graph: &Graph) -> Vec<Stage> {
    let uses = graph.use_counts();
    let output_set: HashSet<NodeId> = graph.outputs.iter().copied().collect();

    // Assign every non-param node to a stage: contiguous runs of fusible
    // nodes share one, everything else gets its own.
    let mut stage_of: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut groups: Vec<(StageKind, Vec<NodeId>)> = Vec::new();
    let mut current_fused: Option<usize> = None;

    for (id, node) in graph.nodes.iter().enumerate() {
        match &node.op {
            Op::Param { .. } => {
                current_fused = None;
            }
            op if op.is_fusible() => {
                let g = match current_fused {
                    Some(g) => g,
                    None => {
                        groups.push((StageKind::Fused, Vec::new()));
                        let g = groups.len() - 1;
                        current_fused = Some(g);
                        g
                    }
                };
                groups[g].1.push(id);
                stage_of[id] = Some(g);
            }
            Op::Gather { .. } => {
                groups.push((StageKind::Gather, vec![id]));
                stage_of[id] = Some(groups.len() - 1);
                current_fused = None;
            }
            Op::ScatterAdd { .. } => {
                groups.push((StageKind::ScatterAdd, vec![id]));
                stage_of[id] = Some(groups.len() - 1);
                current_fused = None;
            }
            Op::ReduceSum { a, axis } => {
                // Library pattern: reduce over the innermost axis of a
                // product ⇒ dot/GEMV. Absorb the multiply into the stage.
                let is_dot = *axis == graph.node(*a).shape.rank() - 1
                    && matches!(
                        graph.node(*a).op,
                        Op::Binary {
                            op: BinaryOp::Mul,
                            ..
                        }
                    );
                if is_dot {
                    groups.push((StageKind::LibraryDot, vec![*a, id]));
                    let g = groups.len() - 1;
                    // The multiply may have been placed in a fused group; it
                    // moves here if this reduce is its only consumer.
                    if uses[*a] == 1 && !output_set.contains(a) {
                        if let Some(old) = stage_of[*a] {
                            groups[old].1.retain(|&n| n != *a);
                        }
                        stage_of[*a] = Some(g);
                    } else {
                        groups[g].1.retain(|&n| n != *a);
                    }
                    stage_of[id] = Some(g);
                } else {
                    groups.push((StageKind::Reduce, vec![id]));
                    stage_of[id] = Some(groups.len() - 1);
                }
                current_fused = None;
            }
            _ => unreachable!("all op kinds handled"),
        }
    }

    // Build profiles.
    let mut stages = Vec::new();
    for (gi, (kind, nodes)) in groups.iter().enumerate() {
        if nodes.is_empty() {
            continue;
        }
        let in_group: HashSet<NodeId> = nodes.iter().copied().collect();

        // Inputs: operands produced outside the group (params included).
        let mut input_ids: HashSet<NodeId> = HashSet::new();
        for &id in nodes {
            for o in graph.node(id).op.operands() {
                if !in_group.contains(&o) {
                    input_ids.insert(o);
                }
            }
        }
        // Outputs: nodes used outside the group or program outputs.
        let mut output_ids: Vec<NodeId> = Vec::new();
        for &id in nodes {
            let used_outside = graph
                .nodes
                .iter()
                .enumerate()
                .any(|(j, n)| !in_group.contains(&j) && n.op.operands().contains(&id));
            if used_outside || output_set.contains(&id) {
                output_ids.push(id);
            }
        }

        let in_bytes: f64 = input_ids.iter().map(|&i| node_bytes(graph.node(i))).sum();
        let out_bytes: f64 = output_ids.iter().map(|&i| node_bytes(graph.node(i))).sum();
        let items = nodes
            .iter()
            .map(|&i| graph.node(i).shape.elements())
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        let flops: f64 = nodes
            .iter()
            .map(|&i| {
                let n = graph.node(i);
                n.op.flops_per_element() * n.shape.elements() as f64
            })
            .sum();

        let (bytes, divergence) = match kind {
            // Gather: the random-access source reads are imperfectly
            // coalesced; charge an extra 1x the output traffic on top of
            // index + output bytes.
            StageKind::Gather => (in_bytes + out_bytes + out_bytes, 1.0),
            // ScatterAdd: read-modify-write with atomic contention.
            StageKind::ScatterAdd => (in_bytes + 2.0 * out_bytes, 2.0),
            _ => (in_bytes + out_bytes, 1.0),
        };

        stages.push(Stage {
            kind: *kind,
            nodes: nodes.clone(),
            profile: KernelProfile {
                name: format!("{prog_name}/{:?}{gi}", kind).to_lowercase(),
                items,
                flops_per_item: (flops / items).max(0.0),
                bytes_per_item: bytes / items,
                divergence,
            },
        });
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::DType;
    use crate::trace::TraceContext;

    #[test]
    fn cse_merges_identical_subexpressions() {
        let ctx = TraceContext::new();
        let x = ctx.param(vec![16], DType::F64);
        // Traced code computes sin(x) twice — the compiler must not.
        let a = x.sin();
        let b = x.sin();
        let y = &a + &b;
        let g = ctx.finish(&[&y]);
        let p = compile("t", &g);
        let sin_count = p
            .graph
            .nodes
            .iter()
            .filter(|n| {
                matches!(
                    n.op,
                    Op::Unary {
                        op: crate::ir::UnaryOp::Sin,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(sin_count, 1);
    }

    #[test]
    fn dce_removes_unused_work() {
        let ctx = TraceContext::new();
        let x = ctx.param(vec![16], DType::F64);
        let _unused = x.exp().log().sqrt();
        let y = x.mul_s(2.0);
        let g = ctx.finish(&[&y]);
        let before = g.nodes.len();
        let p = compile("t", &g);
        assert!(p.graph.nodes.len() < before);
        assert!(!p.graph.nodes.iter().any(|n| matches!(
            n.op,
            Op::Unary {
                op: crate::ir::UnaryOp::Exp,
                ..
            }
        )));
    }

    #[test]
    fn elementwise_chain_fuses_into_one_stage() {
        let ctx = TraceContext::new();
        let x = ctx.param(vec![1000], DType::F64);
        let y = ctx.param(vec![1000], DType::F64);
        let z = ((&x * &y).sin() + x.cos()).mul_s(3.0).sqrt();
        let g = ctx.finish(&[&z]);
        let p = compile("t", &g);
        assert_eq!(p.stages.len(), 1, "stages: {:?}", p.stages);
        assert_eq!(p.stages[0].kind, StageKind::Fused);
        // Bytes: two inputs + one output of 1000 f64 each.
        assert_eq!(p.stages[0].profile.total_bytes(), 3.0 * 8000.0);
        assert_eq!(p.stages[0].profile.items, 1000.0);
    }

    #[test]
    fn gather_breaks_fusion() {
        let ctx = TraceContext::new();
        let table = ctx.param(vec![100], DType::F64);
        let idx = ctx.param(vec![50], DType::I64);
        let out = table.gather(&idx).mul_s(2.0);
        let g = ctx.finish(&[&out]);
        let p = compile("t", &g);
        let kinds: Vec<StageKind> = p.stages.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&StageKind::Gather));
        assert!(kinds.contains(&StageKind::Fused));
    }

    #[test]
    fn dot_pattern_becomes_library_stage() {
        let ctx = TraceContext::new();
        let a = ctx.param(vec![64, 128], DType::F64);
        let b = ctx.param(vec![64, 128], DType::F64);
        let dots = (&a * &b).reduce_sum(1);
        let g = ctx.finish(&[&dots]);
        let p = compile("t", &g);
        assert!(
            p.stages.iter().any(|s| s.kind == StageKind::LibraryDot),
            "stages: {:?}",
            p.stages.iter().map(|s| s.kind).collect::<Vec<_>>()
        );
        // The multiply is absorbed: no fused stage computing it remains.
        assert_eq!(p.stages.len(), 1);
    }

    #[test]
    fn reduce_over_outer_axis_is_not_a_dot() {
        let ctx = TraceContext::new();
        let a = ctx.param(vec![64, 128], DType::F64);
        let b = ctx.param(vec![64, 128], DType::F64);
        let r = (&a * &b).reduce_sum(0);
        let g = ctx.finish(&[&r]);
        let p = compile("t", &g);
        assert!(p.stages.iter().all(|s| s.kind != StageKind::LibraryDot));
    }

    #[test]
    fn scatter_add_has_atomic_penalty() {
        let ctx = TraceContext::new();
        let vals = ctx.param(vec![1000], DType::F64);
        let idx = ctx.param(vec![1000], DType::I64);
        let m = vals.scatter_add(&idx, 100);
        let g = ctx.finish(&[&m]);
        let p = compile("t", &g);
        let st = p
            .stages
            .iter()
            .find(|s| s.kind == StageKind::ScatterAdd)
            .unwrap();
        assert!(st.profile.divergence > 1.0);
    }

    #[test]
    fn select_counts_both_branches_as_work() {
        // The padded-lane "dummy work" of the paper: a select's two branch
        // subgraphs both contribute flops.
        let ctx = TraceContext::new();
        let x = ctx.param(vec![1000], DType::F64);
        let mask = x.gt(&ctx.constant(0.0));
        let expensive = x.sin().cos().sqrt();
        let cheap = x.mul_s(2.0);
        let y = mask.select(&expensive, &cheap);
        let g = ctx.finish(&[&y]);
        let p = compile("t", &g);
        let flops = p.total_flops();
        // sin(10) + cos(10) + sqrt(4) + mul(1) + gt(1) + select(1) = 27/elt.
        assert!(flops >= 27.0 * 1000.0, "flops {flops}");
    }

    #[test]
    fn peak_stage_bytes_is_max_working_set() {
        let ctx = TraceContext::new();
        let x = ctx.param(vec![1000], DType::F64);
        let y = x.mul_s(3.0);
        let g = ctx.finish(&[&y]);
        let p = compile("t", &g);
        assert_eq!(p.peak_stage_bytes, 16_000); // in + out
    }

    #[test]
    fn params_survive_dce_for_calling_convention() {
        let ctx = TraceContext::new();
        let _unused = ctx.param(vec![8], DType::F64);
        let x = ctx.param(vec![8], DType::F64);
        let y = x.mul_s(1.5);
        let g = ctx.finish(&[&y]);
        let p = compile("t", &g);
        let param_count = p
            .graph
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Param { .. }))
            .count();
        assert_eq!(param_count, 2);
        assert_eq!(p.graph.params.len(), 2);
    }
}
