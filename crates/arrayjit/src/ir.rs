//! The HLO-like intermediate representation.
//!
//! A traced function becomes a [`Graph`]: an SSA list of [`Node`]s in
//! topological order, each with a statically known shape and dtype
//! (mirroring XLA's HLO, whose full shape knowledge the paper highlights).
//! The compiler in [`crate::compile`] rewrites and partitions this graph.

use crate::array::DType;
use crate::shape::Shape;

/// Index of a node within its graph.
pub type NodeId = usize;

/// Elementwise unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Neg,
    Abs,
    Exp,
    Log,
    Sqrt,
    Sin,
    Cos,
    Floor,
    Not,
}

impl UnaryOp {
    /// Approximate FP64 operation cost (special-function units are slower
    /// than the FMA pipe).
    pub fn flops(self) -> f64 {
        match self {
            UnaryOp::Neg | UnaryOp::Abs | UnaryOp::Floor | UnaryOp::Not => 1.0,
            UnaryOp::Sqrt => 4.0,
            UnaryOp::Exp | UnaryOp::Log | UnaryOp::Sin | UnaryOp::Cos => 10.0,
        }
    }
}

/// Elementwise binary operations (with broadcasting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    Atan2,
    Pow,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    And,
    Or,
}

impl BinaryOp {
    /// Whether the result dtype is Bool regardless of operand dtype.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge | BinaryOp::Eq
        )
    }

    /// Approximate FP64 operation cost.
    pub fn flops(self) -> f64 {
        match self {
            BinaryOp::Div | BinaryOp::Rem => 4.0,
            BinaryOp::Atan2 => 20.0,
            BinaryOp::Pow => 15.0,
            _ => 1.0,
        }
    }
}

/// One IR operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// The `index`-th function argument.
    Param { index: usize },
    /// A scalar f64 constant.
    ConstF64(f64),
    /// A scalar i64 constant.
    ConstI64(i64),
    /// `[0, 1, ..., len-1]` as i64.
    Iota { len: usize },
    /// Elementwise unary.
    Unary { op: UnaryOp, a: NodeId },
    /// Elementwise binary with broadcasting.
    Binary { op: BinaryOp, a: NodeId, b: NodeId },
    /// Elementwise `cond ? on_true : on_false` — JAX's branch-free
    /// conditional: *both* sides are computed (the "dummy work" the paper
    /// notes for padded lanes and branches).
    Select {
        cond: NodeId,
        on_true: NodeId,
        on_false: NodeId,
    },
    /// Dtype conversion.
    Convert { a: NodeId, to: DType },
    /// Same data, new shape.
    Reshape { a: NodeId },
    /// Materialised broadcast to the node's shape.
    BroadcastTo { a: NodeId },
    /// Contiguous slice along one axis.
    SliceAxis {
        a: NodeId,
        axis: usize,
        start: usize,
        len: usize,
    },
    /// `out[i] = src[idx[i]]` over a flattened 1-D `src`.
    Gather { src: NodeId, idx: NodeId },
    /// `out[idx[i]] += val[i]` into a fresh zeroed 1-D buffer of `size`
    /// (device execution uses atomics).
    ScatterAdd {
        size: usize,
        idx: NodeId,
        val: NodeId,
    },
    /// Sum-reduction over one axis.
    ReduceSum { a: NodeId, axis: usize },
    /// Stack identically shaped parts along a new trailing axis
    /// (`jnp.stack(..., axis=-1)`): shape `[.., k]` from `k` parts `[..]`.
    StackLast { parts: Vec<NodeId> },
}

impl Op {
    /// Operand node ids.
    pub fn operands(&self) -> Vec<NodeId> {
        match self {
            Op::Param { .. } | Op::ConstF64(_) | Op::ConstI64(_) | Op::Iota { .. } => vec![],
            Op::Unary { a, .. }
            | Op::Convert { a, .. }
            | Op::Reshape { a }
            | Op::BroadcastTo { a }
            | Op::SliceAxis { a, .. }
            | Op::ReduceSum { a, .. } => vec![*a],
            Op::Binary { a, b, .. } => vec![*a, *b],
            Op::Select {
                cond,
                on_true,
                on_false,
            } => vec![*cond, *on_true, *on_false],
            Op::Gather { src, idx } => vec![*src, *idx],
            Op::ScatterAdd { idx, val, .. } => vec![*idx, *val],
            Op::StackLast { parts } => parts.clone(),
        }
    }

    /// Whether this op can join an elementwise fusion group.
    pub fn is_fusible(&self) -> bool {
        matches!(
            self,
            Op::ConstF64(_)
                | Op::ConstI64(_)
                | Op::Iota { .. }
                | Op::Unary { .. }
                | Op::Binary { .. }
                | Op::Select { .. }
                | Op::Convert { .. }
                | Op::Reshape { .. }
                | Op::BroadcastTo { .. }
                | Op::SliceAxis { .. }
                | Op::StackLast { .. }
        )
    }

    /// Per-output-element flop cost of this op (0 for data movement).
    pub fn flops_per_element(&self) -> f64 {
        match self {
            Op::Unary { op, .. } => op.flops(),
            Op::Binary { op, .. } => op.flops(),
            Op::Select { .. } => 1.0,
            Op::Convert { .. } => 1.0,
            Op::ReduceSum { .. } => 1.0,
            _ => 0.0,
        }
    }
}

/// One SSA value: an operation plus its inferred result type.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    pub op: Op,
    pub shape: Shape,
    pub dtype: DType,
}

/// A traced function body.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    /// Nodes in topological (construction) order.
    pub nodes: Vec<Node>,
    /// Ids of the function results.
    pub outputs: Vec<NodeId>,
    /// Shape/dtype of each parameter, in order.
    pub params: Vec<(Shape, DType)>,
}

impl Graph {
    /// Append a node, returning its id. Operands must already exist
    /// (construction order is topological by induction).
    pub fn push(&mut self, node: Node) -> NodeId {
        for &o in &node.op.operands() {
            assert!(o < self.nodes.len(), "operand {o} not yet defined");
        }
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// The node with id `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of uses of each node (outputs count as a use).
    pub fn use_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            for o in node.op.operands() {
                counts[o] += 1;
            }
        }
        for &o in &self.outputs {
            counts[o] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64_node(op: Op, shape: Vec<usize>) -> Node {
        Node {
            op,
            shape: Shape(shape),
            dtype: DType::F64,
        }
    }

    #[test]
    fn graph_construction_is_topological() {
        let mut g = Graph::default();
        let a = g.push(f64_node(Op::Param { index: 0 }, vec![4]));
        let b = g.push(f64_node(Op::Param { index: 1 }, vec![4]));
        let c = g.push(f64_node(
            Op::Binary {
                op: BinaryOp::Add,
                a,
                b,
            },
            vec![4],
        ));
        g.outputs.push(c);
        assert_eq!(g.nodes.len(), 3);
        assert_eq!(g.node(c).op.operands(), vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "not yet defined")]
    fn forward_reference_panics() {
        let mut g = Graph::default();
        g.push(f64_node(
            Op::Unary {
                op: UnaryOp::Neg,
                a: 5,
            },
            vec![1],
        ));
    }

    #[test]
    fn use_counts_include_outputs() {
        let mut g = Graph::default();
        let a = g.push(f64_node(Op::Param { index: 0 }, vec![4]));
        let n = g.push(f64_node(
            Op::Unary {
                op: UnaryOp::Neg,
                a,
            },
            vec![4],
        ));
        let m = g.push(f64_node(
            Op::Binary {
                op: BinaryOp::Mul,
                a: n,
                b: n,
            },
            vec![4],
        ));
        g.outputs.push(m);
        g.outputs.push(n);
        let counts = g.use_counts();
        assert_eq!(counts[a], 1);
        assert_eq!(counts[n], 3); // two operand uses + one output use
        assert_eq!(counts[m], 1);
    }

    #[test]
    fn comparison_ops_are_flagged() {
        assert!(BinaryOp::Lt.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
    }

    #[test]
    fn fusibility_classification() {
        assert!(Op::ConstF64(1.0).is_fusible());
        assert!(Op::Binary {
            op: BinaryOp::Add,
            a: 0,
            b: 0
        }
        .is_fusible());
        assert!(!Op::Gather { src: 0, idx: 0 }.is_fusible());
        assert!(!Op::ScatterAdd {
            size: 1,
            idx: 0,
            val: 0
        }
        .is_fusible());
        assert!(!Op::ReduceSum { a: 0, axis: 0 }.is_fusible());
        assert!(!Op::Param { index: 0 }.is_fusible());
    }

    #[test]
    fn special_functions_cost_more() {
        assert!(UnaryOp::Sin.flops() > UnaryOp::Neg.flops());
        assert!(BinaryOp::Atan2.flops() > BinaryOp::Mul.flops());
    }
}
