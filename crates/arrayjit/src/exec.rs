//! Program execution: real numerics on the host, simulated cost on the
//! selected backend.
//!
//! The evaluator interprets the optimised graph node by node over concrete
//! [`Array`]s (so results are exact and testable), then charges the
//! [`accel_sim::Context`] according to the backend:
//!
//! * [`Backend::Device`] — one launch per compiled stage, with the fused
//!   profiles from [`crate::compile`]; intermediates come from the memory
//!   pool and are returned at the end of the call.
//! * [`Backend::Cpu`] — the XLA-CPU analogue: ops run *unfused*, single
//!   threaded, with materialised intermediates, at a calibrated efficiency
//!   (`FrameworkCalib::jit_cpu_backend_eff`). The paper found this backend
//!   7.4× slower than the parallel C++ baseline (§ 4.2).

use accel_sim as accel;

use crate::array::{Array, DType, Data};
use crate::compile::Program;
use crate::ir::{BinaryOp, Node, Op, UnaryOp};
use crate::shape::{broadcast_index, Shape};

/// Which backend a program call is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The simulated accelerator.
    Device,
    /// The deliberately weak CPU backend.
    Cpu,
}

/// Execute `program` on `args`, charging `ctx`.
///
/// Returns the output arrays. Panics on signature mismatches (the same
/// errors JAX raises when a cached executable is called with wrong shapes —
/// the JIT cache in [`crate::jit`] prevents this by re-tracing).
pub fn run(
    ctx: &mut accel::Context,
    backend: Backend,
    program: &Program,
    args: &[Array],
) -> Vec<Array> {
    assert_eq!(
        args.len(),
        program.graph.params.len(),
        "{}: expected {} arguments, got {}",
        program.name,
        program.graph.params.len(),
        args.len()
    );
    for (i, ((shape, dtype), arg)) in program.graph.params.iter().zip(args).enumerate() {
        assert_eq!(
            arg.shape(),
            shape,
            "{}: argument {i} shape {} does not match compiled signature {shape}",
            program.name,
            arg.shape()
        );
        assert_eq!(arg.dtype(), *dtype, "{}: argument {i} dtype", program.name);
    }

    charge(ctx, backend, program);
    evaluate(program, args)
}

/// Charge the simulator for one invocation of `program`.
fn charge(ctx: &mut accel::Context, backend: Backend, program: &Program) {
    let fw = ctx.calib.framework;
    match backend {
        Backend::Device => {
            // Per-call dispatch: cache lookup + argument hashing/staging.
            ctx.host_compute(format!("{}/dispatch", program.name), fw.jit_dispatch);
            // Intermediates live in the pool for the duration of the call,
            // inflated by the pool-slack factor.
            let scratch = (program.peak_stage_bytes as f64 * fw.jit_mem_overhead) as u64;
            let scratch_ok = ctx.device_alloc(scratch, true).is_ok();
            let mut device_seconds = 0.0;
            for stage in &program.stages {
                device_seconds += stage.profile.device_seconds(&ctx.calib.gpu);
                ctx.launch(stage.profile.clone(), 0.0);
            }
            // Runtime-level inefficiency proportional to the work
            // (paper footnote 10).
            let runtime_extra = device_seconds * (fw.jit_runtime_factor - 1.0).max(0.0);
            if runtime_extra > 0.0 {
                ctx.host_compute(format!("{}/runtime", program.name), runtime_extra);
            }
            if scratch_ok {
                ctx.device_free(scratch);
            }
        }
        Backend::Cpu => {
            // Unfused, single-core execution with materialised buffers.
            let cpu = ctx.calib.cpu;
            let eff = fw.jit_cpu_backend_eff;
            let mut seconds = fw.jit_dispatch;
            for node in &program.graph.nodes {
                let elems = node.shape.elements() as f64;
                let flops = node.op.flops_per_element() * elems;
                // Each unfused op reads its operands and writes its result.
                let mut bytes = (node.shape.elements() * node.dtype.size()) as f64;
                for o in node.op.operands() {
                    let n = program.graph.node(o);
                    bytes += (n.shape.elements() * n.dtype.size()) as f64;
                }
                let single_core_bw = cpu.socket_bw * 0.06;
                seconds += flops / (cpu.core_flops * eff) + bytes / single_core_bw;
            }
            ctx.host_compute(format!("{}/cpu_backend", program.name), seconds);
        }
    }
}

/// Interpret the graph over concrete values.
fn evaluate(program: &Program, args: &[Array]) -> Vec<Array> {
    let graph = &program.graph;
    let mut values: Vec<Option<Array>> = vec![None; graph.nodes.len()];

    for (id, node) in graph.nodes.iter().enumerate() {
        let v = eval_node(node, &values, args);
        values[id] = Some(v);
    }

    graph
        .outputs
        .iter()
        .map(|&o| values[o].clone().expect("output evaluated"))
        .collect()
}

fn get(values: &[Option<Array>], id: usize) -> &Array {
    values[id].as_ref().expect("operand evaluated before use")
}

fn eval_node(node: &Node, values: &[Option<Array>], args: &[Array]) -> Array {
    match &node.op {
        Op::Param { index } => args[*index].clone().reshaped(node.shape.clone()),
        Op::ConstF64(v) => Array::scalar_f64(*v),
        Op::ConstI64(v) => Array::scalar_i64(*v),
        Op::Iota { len } => Array::from_i64((0..*len as i64).collect()),
        Op::Unary { op, a } => eval_unary(*op, get(values, *a), &node.shape),
        Op::Binary { op, a, b } => eval_binary(
            *op,
            get(values, *a),
            get(values, *b),
            &node.shape,
            node.dtype,
        ),
        Op::Select {
            cond,
            on_true,
            on_false,
        } => eval_select(
            get(values, *cond),
            get(values, *on_true),
            get(values, *on_false),
            &node.shape,
        ),
        Op::Convert { a, to } => eval_convert(get(values, *a), *to, &node.shape),
        Op::Reshape { a } => get(values, *a).clone().reshaped(node.shape.clone()),
        Op::BroadcastTo { a } => eval_broadcast(get(values, *a), &node.shape),
        Op::SliceAxis {
            a,
            axis,
            start,
            len,
        } => eval_slice(get(values, *a), *axis, *start, *len, &node.shape),
        Op::Gather { src, idx } => eval_gather(get(values, *src), get(values, *idx), &node.shape),
        Op::ScatterAdd { size, idx, val } => {
            eval_scatter_add(*size, get(values, *idx), get(values, *val))
        }
        Op::ReduceSum { a, axis } => eval_reduce_sum(get(values, *a), *axis, &node.shape),
        Op::StackLast { parts } => {
            let arrays: Vec<&Array> = parts.iter().map(|&p| get(values, p)).collect();
            eval_stack_last(&arrays, &node.shape)
        }
    }
}

fn eval_stack_last(parts: &[&Array], shape: &Shape) -> Array {
    let k = parts.len();
    let n = parts[0].elements();
    match parts[0].data() {
        Data::F64(_) => {
            let mut out = vec![0.0f64; n * k];
            for (j, p) in parts.iter().enumerate() {
                for (i, &v) in p.as_f64().iter().enumerate() {
                    out[i * k + j] = v;
                }
            }
            Array::new(shape.clone(), Data::F64(out))
        }
        Data::I64(_) => {
            let mut out = vec![0i64; n * k];
            for (j, p) in parts.iter().enumerate() {
                for (i, &v) in p.as_i64().iter().enumerate() {
                    out[i * k + j] = v;
                }
            }
            Array::new(shape.clone(), Data::I64(out))
        }
        Data::Bool(_) => {
            let mut out = vec![false; n * k];
            for (j, p) in parts.iter().enumerate() {
                for (i, &v) in p.as_bool().iter().enumerate() {
                    out[i * k + j] = v;
                }
            }
            Array::new(shape.clone(), Data::Bool(out))
        }
    }
}

fn eval_unary(op: UnaryOp, a: &Array, shape: &Shape) -> Array {
    if op == UnaryOp::Not {
        let out: Vec<bool> = a.as_bool().iter().map(|&x| !x).collect();
        return Array::new(shape.clone(), Data::Bool(out));
    }
    let f = |x: f64| -> f64 {
        match op {
            UnaryOp::Neg => -x,
            UnaryOp::Abs => x.abs(),
            UnaryOp::Exp => x.exp(),
            UnaryOp::Log => x.ln(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Sin => x.sin(),
            UnaryOp::Cos => x.cos(),
            UnaryOp::Floor => x.floor(),
            UnaryOp::Not => unreachable!(),
        }
    };
    let out: Vec<f64> = a.as_f64().iter().map(|&x| f(x)).collect();
    Array::new(shape.clone(), Data::F64(out))
}

/// Fast index maps for the common operand layouts: same shape as the
/// output (identity), scalar, a single contiguous broadcast block
/// (`(i / div) % modulo` — covers row vectors, column vectors and
/// middle-axis masks), or the general rank-walking fallback.
enum IndexMap<'a> {
    Identity,
    Scalar,
    Strided { div: usize, modulo: usize },
    Broadcast(&'a Shape, &'a Shape),
}

impl IndexMap<'_> {
    #[inline(always)]
    fn get(&self, i: usize) -> usize {
        match self {
            IndexMap::Identity => i,
            IndexMap::Scalar => 0,
            IndexMap::Strided { div, modulo } => (i / div) % modulo,
            IndexMap::Broadcast(out, src) => broadcast_index(i, out, src),
        }
    }
}

fn index_map<'a>(out: &'a Shape, src: &'a Shape) -> IndexMap<'a> {
    if src == out {
        return IndexMap::Identity;
    }
    if src.elements() == 1 {
        return IndexMap::Scalar;
    }
    // Pad the source shape with leading 1s; if its non-1 axes form one
    // contiguous block whose dims match the output, the mapping is
    // `(i / product_of_axes_after_block) % block_elements`.
    let rank = out.rank();
    let pad = rank - src.rank();
    let dim = |j: usize| if j < pad { 1 } else { src.0[j - pad] };
    let first = (0..rank).find(|&j| dim(j) != 1);
    let last = (0..rank).rev().find(|&j| dim(j) != 1);
    if let (Some(first), Some(last)) = (first, last) {
        // Every axis inside the block must exactly match the output (a 1
        // inside the block would need the general walker).
        let exact = (first..=last).all(|j| dim(j) == out.0[j]);
        if exact {
            let div: usize = (last + 1..rank).map(|j| out.0[j]).product();
            let modulo: usize = (first..=last).map(|j| out.0[j]).product();
            return IndexMap::Strided { div, modulo };
        }
    }
    IndexMap::Broadcast(out, src)
}

fn eval_binary(op: BinaryOp, a: &Array, b: &Array, shape: &Shape, dtype: DType) -> Array {
    let n = shape.elements();
    let a_map = index_map(shape, a.shape());
    let b_map = index_map(shape, b.shape());
    let ai = |i: usize| a_map.get(i);
    let bi = |i: usize| b_map.get(i);

    if op.is_comparison() {
        let out: Vec<bool> = match (a.data(), b.data()) {
            (Data::F64(av), Data::F64(bv)) => {
                (0..n).map(|i| cmp_f64(op, av[ai(i)], bv[bi(i)])).collect()
            }
            (Data::I64(av), Data::I64(bv)) => {
                (0..n).map(|i| cmp_i64(op, av[ai(i)], bv[bi(i)])).collect()
            }
            _ => panic!("comparison on unsupported dtype pair"),
        };
        return Array::new(shape.clone(), Data::Bool(out));
    }
    if matches!(op, BinaryOp::And | BinaryOp::Or) {
        let (av, bv) = (a.as_bool(), b.as_bool());
        let out: Vec<bool> = (0..n)
            .map(|i| match op {
                BinaryOp::And => av[ai(i)] && bv[bi(i)],
                BinaryOp::Or => av[ai(i)] || bv[bi(i)],
                _ => unreachable!(),
            })
            .collect();
        return Array::new(shape.clone(), Data::Bool(out));
    }

    match dtype {
        DType::F64 => {
            let (av, bv) = (a.as_f64(), b.as_f64());
            // Specialised loops for the hot layouts: the generic per-element
            // enum dispatch costs ~10x on the interpreter's critical path.
            let out: Vec<f64> = match (&a_map, &b_map) {
                (IndexMap::Identity, IndexMap::Identity) => match op {
                    BinaryOp::Add => av.iter().zip(bv).map(|(x, y)| x + y).collect(),
                    BinaryOp::Sub => av.iter().zip(bv).map(|(x, y)| x - y).collect(),
                    BinaryOp::Mul => av.iter().zip(bv).map(|(x, y)| x * y).collect(),
                    BinaryOp::Div => av.iter().zip(bv).map(|(x, y)| x / y).collect(),
                    BinaryOp::Atan2 => av.iter().zip(bv).map(|(x, y)| x.atan2(*y)).collect(),
                    _ => (0..n).map(|i| arith_f64(op, av[i], bv[i])).collect(),
                },
                (IndexMap::Identity, IndexMap::Scalar) => {
                    let y = bv[0];
                    match op {
                        BinaryOp::Add => av.iter().map(|x| x + y).collect(),
                        BinaryOp::Sub => av.iter().map(|x| x - y).collect(),
                        BinaryOp::Mul => av.iter().map(|x| x * y).collect(),
                        BinaryOp::Div => av.iter().map(|x| x / y).collect(),
                        _ => av.iter().map(|&x| arith_f64(op, x, y)).collect(),
                    }
                }
                (IndexMap::Scalar, IndexMap::Identity) => {
                    let x = av[0];
                    match op {
                        BinaryOp::Add => bv.iter().map(|y| x + y).collect(),
                        BinaryOp::Sub => bv.iter().map(|y| x - y).collect(),
                        BinaryOp::Mul => bv.iter().map(|y| x * y).collect(),
                        BinaryOp::Div => bv.iter().map(|y| x / y).collect(),
                        _ => bv.iter().map(|&y| arith_f64(op, x, y)).collect(),
                    }
                }
                _ => (0..n)
                    .map(|i| arith_f64(op, av[ai(i)], bv[bi(i)]))
                    .collect(),
            };
            Array::new(shape.clone(), Data::F64(out))
        }
        DType::I64 => {
            let (av, bv) = (a.as_i64(), b.as_i64());
            let out: Vec<i64> = (0..n)
                .map(|i| arith_i64(op, av[ai(i)], bv[bi(i)]))
                .collect();
            Array::new(shape.clone(), Data::I64(out))
        }
        DType::Bool => panic!("arithmetic on Bool"),
    }
}

fn arith_f64(op: BinaryOp, x: f64, y: f64) -> f64 {
    match op {
        BinaryOp::Add => x + y,
        BinaryOp::Sub => x - y,
        BinaryOp::Mul => x * y,
        BinaryOp::Div => x / y,
        BinaryOp::Rem => x.rem_euclid(y),
        BinaryOp::Min => x.min(y),
        BinaryOp::Max => x.max(y),
        BinaryOp::Atan2 => x.atan2(y),
        BinaryOp::Pow => x.powf(y),
        _ => unreachable!(),
    }
}

fn arith_i64(op: BinaryOp, x: i64, y: i64) -> i64 {
    match op {
        BinaryOp::Add => x.wrapping_add(y),
        BinaryOp::Sub => x.wrapping_sub(y),
        BinaryOp::Mul => x.wrapping_mul(y),
        BinaryOp::Div => x.div_euclid(y),
        BinaryOp::Rem => x.rem_euclid(y),
        BinaryOp::Min => x.min(y),
        BinaryOp::Max => x.max(y),
        BinaryOp::Pow => x.pow(y as u32),
        BinaryOp::Atan2 => panic!("atan2 on I64"),
        _ => unreachable!(),
    }
}

fn cmp_f64(op: BinaryOp, x: f64, y: f64) -> bool {
    match op {
        BinaryOp::Lt => x < y,
        BinaryOp::Le => x <= y,
        BinaryOp::Gt => x > y,
        BinaryOp::Ge => x >= y,
        BinaryOp::Eq => x == y,
        _ => unreachable!(),
    }
}

fn cmp_i64(op: BinaryOp, x: i64, y: i64) -> bool {
    match op {
        BinaryOp::Lt => x < y,
        BinaryOp::Le => x <= y,
        BinaryOp::Gt => x > y,
        BinaryOp::Ge => x >= y,
        BinaryOp::Eq => x == y,
        _ => unreachable!(),
    }
}

fn eval_select(cond: &Array, t: &Array, f: &Array, shape: &Shape) -> Array {
    let n = shape.elements();
    let cv = cond.as_bool();
    let c_map = index_map(shape, cond.shape());
    let t_map = index_map(shape, t.shape());
    let f_map = index_map(shape, f.shape());
    let ci = |i: usize| c_map.get(i);
    let ti = |i: usize| t_map.get(i);
    let fi = |i: usize| f_map.get(i);
    match (t.data(), f.data()) {
        (Data::F64(tv), Data::F64(fv)) => {
            // Fast path: everything already output-shaped.
            let out: Vec<f64> = if matches!(
                (&c_map, &t_map, &f_map),
                (IndexMap::Identity, IndexMap::Identity, IndexMap::Identity)
            ) {
                (0..n).map(|i| if cv[i] { tv[i] } else { fv[i] }).collect()
            } else {
                (0..n)
                    .map(|i| if cv[ci(i)] { tv[ti(i)] } else { fv[fi(i)] })
                    .collect()
            };
            Array::new(shape.clone(), Data::F64(out))
        }
        (Data::I64(tv), Data::I64(fv)) => {
            let out: Vec<i64> = (0..n)
                .map(|i| if cv[ci(i)] { tv[ti(i)] } else { fv[fi(i)] })
                .collect();
            Array::new(shape.clone(), Data::I64(out))
        }
        (Data::Bool(tv), Data::Bool(fv)) => {
            let out: Vec<bool> = (0..n)
                .map(|i| if cv[ci(i)] { tv[ti(i)] } else { fv[fi(i)] })
                .collect();
            Array::new(shape.clone(), Data::Bool(out))
        }
        _ => panic!("select branch dtype mismatch"),
    }
}

fn eval_convert(a: &Array, to: DType, shape: &Shape) -> Array {
    let data = match (a.data(), to) {
        (Data::F64(v), DType::I64) => Data::I64(v.iter().map(|&x| x as i64).collect()),
        (Data::I64(v), DType::F64) => Data::F64(v.iter().map(|&x| x as f64).collect()),
        (Data::Bool(v), DType::F64) => {
            Data::F64(v.iter().map(|&x| if x { 1.0 } else { 0.0 }).collect())
        }
        (Data::Bool(v), DType::I64) => Data::I64(v.iter().map(|&x| x as i64).collect()),
        (d, t) if d.dtype() == t => d.clone(),
        (d, t) => panic!("unsupported convert {:?} -> {t:?}", d.dtype()),
    };
    Array::new(shape.clone(), data)
}

fn eval_broadcast(a: &Array, shape: &Shape) -> Array {
    let n = shape.elements();
    match a.data() {
        Data::F64(v) => {
            let out: Vec<f64> = (0..n)
                .map(|i| v[broadcast_index(i, shape, a.shape())])
                .collect();
            Array::new(shape.clone(), Data::F64(out))
        }
        Data::I64(v) => {
            let out: Vec<i64> = (0..n)
                .map(|i| v[broadcast_index(i, shape, a.shape())])
                .collect();
            Array::new(shape.clone(), Data::I64(out))
        }
        Data::Bool(v) => {
            let out: Vec<bool> = (0..n)
                .map(|i| v[broadcast_index(i, shape, a.shape())])
                .collect();
            Array::new(shape.clone(), Data::Bool(out))
        }
    }
}

fn eval_slice(a: &Array, axis: usize, start: usize, len: usize, shape: &Shape) -> Array {
    let in_shape = a.shape();
    let outer: usize = in_shape.0[..axis].iter().product();
    let inner: usize = in_shape.0[axis + 1..].iter().product();
    let dim = in_shape.0[axis];

    fn slice_vec<T: Copy>(
        v: &[T],
        outer: usize,
        dim: usize,
        inner: usize,
        start: usize,
        len: usize,
    ) -> Vec<T> {
        let mut out = Vec::with_capacity(outer * len * inner);
        for o in 0..outer {
            for d in start..start + len {
                let base = (o * dim + d) * inner;
                out.extend_from_slice(&v[base..base + inner]);
            }
        }
        out
    }

    let data = match a.data() {
        Data::F64(v) => Data::F64(slice_vec(v, outer, dim, inner, start, len)),
        Data::I64(v) => Data::I64(slice_vec(v, outer, dim, inner, start, len)),
        Data::Bool(v) => Data::Bool(slice_vec(v, outer, dim, inner, start, len)),
    };
    Array::new(shape.clone(), data)
}

fn eval_gather(src: &Array, idx: &Array, shape: &Shape) -> Array {
    let indices = idx.as_i64();
    let pick = |i: i64, len: usize| -> usize {
        assert!(
            i >= 0 && (i as usize) < len,
            "gather index {i} out of bounds for source of {len}"
        );
        i as usize
    };
    let data = match src.data() {
        Data::F64(v) => Data::F64(indices.iter().map(|&i| v[pick(i, v.len())]).collect()),
        Data::I64(v) => Data::I64(indices.iter().map(|&i| v[pick(i, v.len())]).collect()),
        Data::Bool(v) => Data::Bool(indices.iter().map(|&i| v[pick(i, v.len())]).collect()),
    };
    Array::new(shape.clone(), data)
}

fn eval_scatter_add(size: usize, idx: &Array, val: &Array) -> Array {
    let indices = idx.as_i64();
    match val.data() {
        Data::F64(v) => {
            let mut out = vec![0.0f64; size];
            for (&i, &x) in indices.iter().zip(v) {
                assert!(
                    i >= 0 && (i as usize) < size,
                    "scatter index {i} out of bounds for {size}"
                );
                out[i as usize] += x;
            }
            Array::new(vec![size], Data::F64(out))
        }
        Data::I64(v) => {
            let mut out = vec![0i64; size];
            for (&i, &x) in indices.iter().zip(v) {
                assert!(i >= 0 && (i as usize) < size);
                out[i as usize] += x;
            }
            Array::new(vec![size], Data::I64(out))
        }
        Data::Bool(_) => panic!("scatter_add on Bool"),
    }
}

fn eval_reduce_sum(a: &Array, axis: usize, shape: &Shape) -> Array {
    let in_shape = a.shape();
    let outer: usize = in_shape.0[..axis].iter().product();
    let dim = in_shape.0[axis];
    let inner: usize = in_shape.0[axis + 1..].iter().product();

    match a.data() {
        Data::F64(v) => {
            let mut out = vec![0.0f64; outer * inner];
            for o in 0..outer {
                for d in 0..dim {
                    let base = (o * dim + d) * inner;
                    for i in 0..inner {
                        out[o * inner + i] += v[base + i];
                    }
                }
            }
            Array::new(shape.clone(), Data::F64(out))
        }
        Data::I64(v) => {
            let mut out = vec![0i64; outer * inner];
            for o in 0..outer {
                for d in 0..dim {
                    let base = (o * dim + d) * inner;
                    for i in 0..inner {
                        out[o * inner + i] += v[base + i];
                    }
                }
            }
            Array::new(shape.clone(), Data::I64(out))
        }
        Data::Bool(_) => panic!("reduce_sum on Bool"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::trace::TraceContext;
    use accel_sim::NodeCalib;

    fn ctx() -> accel::Context {
        accel::Context::new(NodeCalib::default())
    }

    fn run_one(build: impl Fn(&TraceContext) -> crate::trace::Tracer, args: &[Array]) -> Array {
        let tc = TraceContext::new();
        let out = build(&tc);
        let g = tc.finish(&[&out]);
        let p = compile("test", &g);
        let mut c = ctx();
        run(&mut c, Backend::Device, &p, args).remove(0)
    }

    #[test]
    fn arithmetic_and_broadcast() {
        let out = run_one(
            |tc| {
                let m = tc.param(vec![2, 3], DType::F64);
                let v = tc.param(vec![3], DType::F64);
                (&m + &v).mul_s(2.0)
            },
            &[
                Array::from_f64_shaped(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]),
                Array::from_f64(vec![10., 20., 30.]),
            ],
        );
        assert_eq!(out.as_f64(), &[22., 44., 66., 28., 50., 72.]);
    }

    #[test]
    fn select_and_compare() {
        let out = run_one(
            |tc| {
                let x = tc.param(vec![4], DType::F64);
                x.gt(&tc.constant(0.0)).select(&x, &x.neg())
            },
            &[Array::from_f64(vec![-1., 2., -3., 4.])],
        );
        assert_eq!(out.as_f64(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        // scatter then gather reproduces a permuted vector.
        let out = run_one(
            |tc| {
                let vals = tc.param(vec![4], DType::F64);
                let idx = tc.param(vec![4], DType::I64);
                let scattered = vals.scatter_add(&idx, 4);
                scattered.gather(&idx)
            },
            &[
                Array::from_f64(vec![10., 20., 30., 40.]),
                Array::from_i64(vec![3, 1, 0, 2]),
            ],
        );
        assert_eq!(out.as_f64(), &[10., 20., 30., 40.]);
    }

    #[test]
    fn scatter_add_accumulates_duplicates() {
        let out = run_one(
            |tc| {
                let vals = tc.param(vec![4], DType::F64);
                let idx = tc.param(vec![4], DType::I64);
                vals.scatter_add(&idx, 3)
            },
            &[
                Array::from_f64(vec![1., 2., 3., 4.]),
                Array::from_i64(vec![0, 0, 2, 2]),
            ],
        );
        assert_eq!(out.as_f64(), &[3., 0., 7.]);
    }

    #[test]
    fn reduce_sum_axes() {
        let m = Array::from_f64_shaped(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let rows = run_one(
            |tc| tc.param(vec![2, 3], DType::F64).reduce_sum(1),
            std::slice::from_ref(&m),
        );
        assert_eq!(rows.as_f64(), &[6., 15.]);
        let cols = run_one(|tc| tc.param(vec![2, 3], DType::F64).reduce_sum(0), &[m]);
        assert_eq!(cols.as_f64(), &[5., 7., 9.]);
    }

    #[test]
    fn slice_and_index_axis() {
        let m = Array::from_f64_shaped(vec![2, 4], (0..8).map(|i| i as f64).collect());
        let col = run_one(|tc| tc.param(vec![2, 4], DType::F64).index_axis(1, 2), &[m]);
        assert_eq!(col.as_f64(), &[2., 6.]);
    }

    #[test]
    fn convert_and_floor() {
        let out = run_one(
            |tc| {
                let x = tc.param(vec![3], DType::F64);
                x.floor().convert(DType::I64)
            },
            &[Array::from_f64(vec![1.9, -0.5, 3.0])],
        );
        assert_eq!(out.as_i64(), &[1, -1, 3]);
    }

    #[test]
    fn i64_euclid_rem() {
        let out = run_one(
            |tc| {
                let x = tc.param(vec![3], DType::I64);
                x.rem(&tc.constant_i64(4))
            },
            &[Array::from_i64(vec![-1, 9, -8])],
        );
        assert_eq!(out.as_i64(), &[3, 1, 0]);
    }

    #[test]
    fn device_backend_charges_stages() {
        let tc = TraceContext::new();
        let x = tc.param(vec![1000], DType::F64);
        let y = x.sin().mul_s(2.0);
        let g = tc.finish(&[&y]);
        let p = compile("charged", &g);
        let mut c = ctx();
        run(&mut c, Backend::Device, &p, &[Array::zeros(vec![1000])]);
        assert!(c.stats().keys().any(|k| k.starts_with("charged/fused")));
        assert!(c.stats().contains_key("charged/dispatch"));
        assert_eq!(c.trace().kernel_count(), p.stages.len());
    }

    #[test]
    fn cpu_backend_is_much_slower_than_device() {
        let tc = TraceContext::new();
        let x = tc.param(vec![1_000_000], DType::F64);
        let y = x.sin().cos().sqrt().mul_s(2.0);
        let g = tc.finish(&[&y]);
        let p = compile("slow", &g);

        let mut dev = ctx();
        run(
            &mut dev,
            Backend::Device,
            &p,
            &[Array::zeros(vec![1_000_000])],
        );
        let mut cpu = ctx();
        run(&mut cpu, Backend::Cpu, &p, &[Array::zeros(vec![1_000_000])]);
        assert!(
            cpu.total_seconds() > 5.0 * dev.total_seconds(),
            "cpu {} dev {}",
            cpu.total_seconds(),
            dev.total_seconds()
        );
        // The CPU backend launches nothing on the device.
        assert_eq!(cpu.trace().kernel_count(), 0);
    }

    #[test]
    #[should_panic(expected = "does not match compiled signature")]
    fn wrong_shape_is_rejected() {
        let tc = TraceContext::new();
        let x = tc.param(vec![4], DType::F64);
        let y = x.mul_s(1.0);
        let g = tc.finish(&[&y]);
        let p = compile("sig", &g);
        let mut c = ctx();
        run(&mut c, Backend::Device, &p, &[Array::zeros(vec![5])]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_bounds_checked() {
        run_one(
            |tc| {
                let t = tc.param(vec![3], DType::F64);
                let i = tc.param(vec![1], DType::I64);
                t.gather(&i)
            },
            &[Array::from_f64(vec![1., 2., 3.]), Array::from_i64(vec![7])],
        );
    }
}
