//! A JAX-like tracing/JIT array framework over a simulated accelerator.
//!
//! This crate is the workspace's stand-in for JAX + XLA, reproducing the
//! programming model the paper evaluates:
//!
//! * **Pure, NumPy-style array programs**: immutable [`Array`] values;
//!   in-place updates are functional (`scatter_add` instead of `out[i] +=`).
//! * **Tracing** ([`trace`]): code runs against [`Tracer`]s that record an
//!   HLO-like SSA graph ([`ir`]); shapes are static and checked at trace
//!   time, so variable-length data (TOAST's intervals) must be padded.
//! * **A compiler** ([`compile`]): DCE, CSE, elementwise fusion and
//!   dot-pattern library matching, with per-stage cost profiles computed
//!   from the static shapes.
//! * **A JIT cache** ([`jit`]): one compile per (shapes, statics)
//!   signature, charged to the simulation clock like the paper's runtimes.
//! * **Two backends** ([`exec`]): the simulated device, and a deliberately
//!   weak CPU backend mirroring XLA-CPU (unfused, single-core) that the
//!   paper measured at 7.4x slower than parallel C++.
//!
//! # Example
//!
//! ```
//! use arrayjit::{Array, Backend, Jit};
//! use accel_sim::{Context, NodeCalib};
//!
//! let mut scale_add = Jit::new("scale_add", |_tc, p, _| {
//!     vec![&p[0] * &p[1] + &p[2]]
//! });
//! let mut ctx = Context::new(NodeCalib::default());
//! let out = scale_add.call(
//!     &mut ctx,
//!     Backend::Device,
//!     &[
//!         Array::scalar_f64(3.0),
//!         Array::from_f64(vec![1.0, 2.0]),
//!         Array::from_f64(vec![0.5, 0.5]),
//!     ],
//! );
//! assert_eq!(out[0].as_f64(), &[3.5, 6.5]);
//! ```

#![forbid(unsafe_code)]

pub mod array;
pub mod compile;
pub mod exec;
pub mod ir;
pub mod jit;
pub mod shape;
pub mod trace;

pub use array::{Array, DType, Data};
pub use compile::{Program, Stage, StageKind};
pub use exec::{run, Backend};
pub use jit::Jit;
pub use shape::Shape;
pub use trace::{TraceContext, Tracer};
