//! Concrete immutable arrays — the values that flow in and out of JIT'd
//! programs.
//!
//! Arrays are immutable (the JAX purity model): every operation produces a
//! new array, and in-place updates are expressed functionally
//! (`x.at[idx].set(v)` in JAX, [`crate::trace::Tracer::scatter_add`] here).
//! Buffer *donation* lets the JIT reuse an input allocation for an output,
//! which is how the paper's port recycles output-parameter memory.

use crate::shape::Shape;

/// Element type of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit float (the paper enables JAX's 64-bit mode).
    F64,
    /// 64-bit signed integer (pixel indices, interval bounds).
    I64,
    /// Boolean (masks from comparisons).
    Bool,
}

impl DType {
    /// Bytes per element on the device.
    pub fn size(self) -> usize {
        match self {
            DType::F64 | DType::I64 => 8,
            DType::Bool => 1,
        }
    }
}

/// Type-erased dense storage.
#[derive(Debug, Clone, PartialEq)]
pub enum Data {
    F64(Vec<f64>),
    I64(Vec<i64>),
    Bool(Vec<bool>),
}

impl Data {
    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            Data::F64(v) => v.len(),
            Data::I64(v) => v.len(),
            Data::Bool(v) => v.len(),
        }
    }

    /// True when no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The runtime dtype.
    pub fn dtype(&self) -> DType {
        match self {
            Data::F64(_) => DType::F64,
            Data::I64(_) => DType::I64,
            Data::Bool(_) => DType::Bool,
        }
    }
}

/// An immutable dense tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Array {
    shape: Shape,
    data: Data,
}

impl Array {
    /// Build from a shape and matching storage.
    pub fn new(shape: impl Into<Shape>, data: Data) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.elements(),
            data.len(),
            "shape {shape} does not match {} elements",
            data.len()
        );
        Self { shape, data }
    }

    /// 1-D f64 array.
    pub fn from_f64(values: Vec<f64>) -> Self {
        let n = values.len();
        Self::new(vec![n], Data::F64(values))
    }

    /// 1-D i64 array.
    pub fn from_i64(values: Vec<i64>) -> Self {
        let n = values.len();
        Self::new(vec![n], Data::I64(values))
    }

    /// f64 array with an explicit shape.
    pub fn from_f64_shaped(shape: impl Into<Shape>, values: Vec<f64>) -> Self {
        Self::new(shape, Data::F64(values))
    }

    /// i64 array with an explicit shape.
    pub fn from_i64_shaped(shape: impl Into<Shape>, values: Vec<i64>) -> Self {
        Self::new(shape, Data::I64(values))
    }

    /// f64 scalar.
    pub fn scalar_f64(v: f64) -> Self {
        Self::new(Shape::scalar(), Data::F64(vec![v]))
    }

    /// i64 scalar.
    pub fn scalar_i64(v: i64) -> Self {
        Self::new(Shape::scalar(), Data::I64(vec![v]))
    }

    /// All-zero f64 array.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.elements();
        Self::new(shape, Data::F64(vec![0.0; n]))
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dtype.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// Element count.
    pub fn elements(&self) -> usize {
        self.data.len()
    }

    /// Size in bytes on the device.
    pub fn byte_size(&self) -> usize {
        self.elements() * self.dtype().size()
    }

    /// The raw storage.
    pub fn data(&self) -> &Data {
        &self.data
    }

    /// Flat f64 view; panics if not F64 (programming error in a kernel).
    pub fn as_f64(&self) -> &[f64] {
        match &self.data {
            Data::F64(v) => v,
            other => panic!("expected F64 array, found {:?}", other.dtype()),
        }
    }

    /// Flat i64 view; panics if not I64.
    pub fn as_i64(&self) -> &[i64] {
        match &self.data {
            Data::I64(v) => v,
            other => panic!("expected I64 array, found {:?}", other.dtype()),
        }
    }

    /// Flat bool view; panics if not Bool.
    pub fn as_bool(&self) -> &[bool] {
        match &self.data {
            Data::Bool(v) => v,
            other => panic!("expected Bool array, found {:?}", other.dtype()),
        }
    }

    /// Consume into f64 storage; panics if not F64.
    pub fn into_f64(self) -> Vec<f64> {
        match self.data {
            Data::F64(v) => v,
            other => panic!("expected F64 array, found {:?}", other.dtype()),
        }
    }

    /// Consume into i64 storage; panics if not I64.
    pub fn into_i64(self) -> Vec<i64> {
        match self.data {
            Data::I64(v) => v,
            other => panic!("expected I64 array, found {:?}", other.dtype()),
        }
    }

    /// Reinterpret with a new shape of equal element count.
    pub fn reshaped(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(shape.elements(), self.elements(), "reshape size mismatch");
        self.shape = shape;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let a = Array::from_f64(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.shape(), &Shape(vec![3]));
        assert_eq!(a.as_f64(), &[1.0, 2.0, 3.0]);
        assert_eq!(a.byte_size(), 24);

        let b = Array::from_i64_shaped(vec![2, 2], vec![1, 2, 3, 4]);
        assert_eq!(b.dtype(), DType::I64);
        assert_eq!(b.elements(), 4);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn shape_data_mismatch_panics() {
        Array::new(vec![2, 2], Data::F64(vec![1.0]));
    }

    #[test]
    #[should_panic(expected = "expected F64")]
    fn wrong_view_panics() {
        Array::from_i64(vec![1]).as_f64();
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Array::from_f64(vec![1.0, 2.0, 3.0, 4.0]).reshaped(vec![2, 2]);
        assert_eq!(a.shape(), &Shape(vec![2, 2]));
        assert_eq!(a.as_f64(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn scalars_have_rank_zero() {
        let s = Array::scalar_f64(7.5);
        assert_eq!(s.shape().rank(), 0);
        assert_eq!(s.elements(), 1);
    }
}
