//! Static shapes and NumPy-style broadcasting.
//!
//! Like XLA, every value in an `arrayjit` program has a shape that is fully
//! known at trace time — the constraint that forced the paper's authors to
//! pad variable-length intervals to the maximum interval size (§ 2.3.2).

/// A static tensor shape (row-major / C order).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// A scalar (rank 0).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Total number of elements.
    pub fn elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Rank (number of axes).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension of axis `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1;
        for i in (0..self.0.len()).rev() {
            strides[i] = acc;
            acc *= self.0[i];
        }
        strides
    }

    /// NumPy broadcasting: align trailing axes; dimensions must match or be
    /// one. Returns the broadcast result shape or `None` if incompatible.
    // The index loop aligns trailing axes of two ranks at once.
    #[allow(clippy::needless_range_loop)]
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank().max(other.rank());
        let mut out = vec![0usize; rank];
        for i in 0..rank {
            let a = if i < rank - self.rank() {
                1
            } else {
                self.0[i - (rank - self.rank())]
            };
            let b = if i < rank - other.rank() {
                1
            } else {
                other.0[i - (rank - other.rank())]
            };
            out[i] = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return None;
            };
        }
        Some(Shape(out))
    }

    /// Whether `self` can broadcast *to* exactly `target`.
    pub fn broadcastable_to(&self, target: &Shape) -> bool {
        match self.broadcast(target) {
            Some(s) => &s == target,
            None => false,
        }
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Iterate the flat index of `src` (with shape `src_shape`) that corresponds
/// to flat index `flat` of the broadcast shape `out_shape`.
// The index loop walks paired out/src stride tables.
#[allow(clippy::needless_range_loop)]
pub fn broadcast_index(flat: usize, out_shape: &Shape, src_shape: &Shape) -> usize {
    let out_rank = out_shape.rank();
    let src_rank = src_shape.rank();
    let out_strides = out_shape.strides();
    let src_strides = src_shape.strides();
    let mut src_flat = 0usize;
    for axis in 0..out_rank {
        let coord = (flat / out_strides[axis]) % out_shape.0[axis];
        if axis >= out_rank - src_rank {
            let s_axis = axis - (out_rank - src_rank);
            if src_shape.0[s_axis] != 1 {
                src_flat += coord * src_strides[s_axis];
            }
        }
    }
    src_flat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_and_strides() {
        let s = Shape(vec![2, 3, 4]);
        assert_eq!(s.elements(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(Shape::scalar().elements(), 1);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn broadcasting_rules() {
        let a = Shape(vec![4, 1]);
        let b = Shape(vec![3]);
        assert_eq!(a.broadcast(&b), Some(Shape(vec![4, 3])));
        // Scalars broadcast with everything.
        assert_eq!(Shape::scalar().broadcast(&a), Some(a.clone()));
        // Mismatched non-1 dims fail.
        assert_eq!(Shape(vec![2]).broadcast(&Shape(vec![3])), None);
        // Equal shapes pass through.
        let c = Shape(vec![5, 6]);
        assert_eq!(c.broadcast(&c), Some(c.clone()));
    }

    #[test]
    fn broadcastable_to_is_directional() {
        assert!(Shape(vec![1, 3]).broadcastable_to(&Shape(vec![2, 3])));
        assert!(!Shape(vec![2, 3]).broadcastable_to(&Shape(vec![1, 3])));
        assert!(Shape::scalar().broadcastable_to(&Shape(vec![7, 7])));
    }

    #[test]
    fn broadcast_index_maps_correctly() {
        // src [1, 3] broadcast to out [2, 3]: rows repeat.
        let src = Shape(vec![1, 3]);
        let out = Shape(vec![2, 3]);
        let idx: Vec<usize> = (0..6).map(|f| broadcast_index(f, &out, &src)).collect();
        assert_eq!(idx, vec![0, 1, 2, 0, 1, 2]);
        // Scalar broadcast: always index 0.
        let s = Shape::scalar();
        assert!((0..6).all(|f| broadcast_index(f, &out, &s) == 0));
        // Column vector [2,1] to [2,3]: columns repeat.
        let col = Shape(vec![2, 1]);
        let idx: Vec<usize> = (0..6).map(|f| broadcast_index(f, &out, &col)).collect();
        assert_eq!(idx, vec![0, 0, 0, 1, 1, 1]);
    }
}
