//! Mapping this repository's source files to the paper's implementations.
//!
//! Fig. 2 compares, per implementation, the "lines of kernel code" (the
//! kernel bodies alone) and the total "lines of code" (kernels plus their
//! dependencies and accelerator plumbing). Fig. 3 breaks kernel lines down
//! per kernel. The inventory below encodes that mapping for this tree:
//!
//! * kernel code: `toast-core/src/kernels/<kernel>/{cpu,omp,jit}.rs`
//! * dependencies/plumbing: the CPU baseline leans only on shared support;
//!   the offload port additionally owns the `offload` crate and the
//!   `OmpStore` plumbing; the traced port owns the `arrayjit` crate and
//!   the `JitStore` plumbing.

use std::fs;
use std::path::{Path, PathBuf};

use crate::count::{count_lines, strip_tests};

/// The paper's three implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Implementation {
    /// "OpenMP CPU" — the host baseline.
    Cpu,
    /// "OpenMP Target Offload".
    OmpTarget,
    /// "JAX".
    Jit,
}

impl Implementation {
    /// All implementations, figure order.
    pub const ALL: [Implementation; 3] = [
        Implementation::Cpu,
        Implementation::OmpTarget,
        Implementation::Jit,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Implementation::Cpu => "OpenMP CPU",
            Implementation::OmpTarget => "OpenMP Target Offload",
            Implementation::Jit => "JAX (arrayjit)",
        }
    }

    /// The kernel-file name for this implementation.
    pub fn file_name(self) -> &'static str {
        match self {
            Implementation::Cpu => "cpu.rs",
            Implementation::OmpTarget => "omp.rs",
            Implementation::Jit => "jit.rs",
        }
    }

    /// Framework/plumbing source directories, relative to the workspace
    /// root (counted into Fig. 2's total but not into kernel lines).
    pub fn framework_dirs(self) -> &'static [&'static str] {
        match self {
            Implementation::Cpu => &[],
            Implementation::OmpTarget => &["crates/offload/src"],
            Implementation::Jit => &["crates/arrayjit/src"],
        }
    }
}

/// Per-kernel, per-implementation line counts.
#[derive(Debug, Clone)]
pub struct KernelLoc {
    /// Kernel name (paper figure label).
    pub kernel: String,
    /// Code lines for (cpu, omp, jit), tests stripped.
    pub cpu: usize,
    pub omp: usize,
    pub jit: usize,
}

/// Count code lines of one file with tests stripped; missing files count
/// zero (so the tool degrades gracefully outside the full tree).
fn file_code_lines(path: &Path) -> usize {
    match fs::read_to_string(path) {
        Ok(src) => count_lines(&strip_tests(&src)).code,
        Err(_) => 0,
    }
}

/// Count all `.rs` files under a directory (tests stripped).
fn dir_code_lines(dir: &Path) -> usize {
    let mut total = 0;
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += dir_code_lines(&path);
        } else if path.extension().is_some_and(|e| e == "rs") {
            total += file_code_lines(&path);
        }
    }
    total
}

/// The kernel directories under a workspace root.
pub fn kernel_dirs(root: &Path) -> Vec<PathBuf> {
    let base = root.join("crates/core/src/kernels");
    let mut dirs: Vec<PathBuf> = fs::read_dir(&base)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}

/// Build the Fig. 3 table: per-kernel code lines per implementation.
pub fn kernel_loc_table(root: &Path) -> Vec<KernelLoc> {
    kernel_dirs(root)
        .into_iter()
        .map(|dir| {
            let kernel = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            // The shared mod.rs (docs + dispatch + shared formulas) is
            // common to all three; the paper's per-kernel counts are the
            // implementation bodies, so count only the per-impl files.
            KernelLoc {
                kernel,
                cpu: file_code_lines(&dir.join("cpu.rs")),
                omp: file_code_lines(&dir.join("omp.rs")),
                jit: file_code_lines(&dir.join("jit.rs")),
            }
        })
        .collect()
}

/// Fig. 2's two bars for one implementation: `(kernel_lines,
/// total_lines)` where total adds the framework/plumbing sources.
pub fn implementation_totals(root: &Path, imp: Implementation) -> (usize, usize) {
    let kernels: usize = kernel_loc_table(root)
        .iter()
        .map(|k| match imp {
            Implementation::Cpu => k.cpu,
            Implementation::OmpTarget => k.omp,
            Implementation::Jit => k.jit,
        })
        .sum();
    let mut total = kernels;
    for dir in imp.framework_dirs() {
        total += dir_code_lines(&root.join(dir));
    }
    // Shared accelerator plumbing (memory abstraction) splits between the
    // two device ports.
    if imp != Implementation::Cpu {
        total += file_code_lines(&root.join("crates/core/src/memory.rs")) / 2;
    }
    (kernels, total)
}

/// Locate the workspace root from the current directory (walk up until a
/// directory containing `crates/core` appears).
pub fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates/core/src/kernels").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> PathBuf {
        find_workspace_root().expect("tests run inside the workspace")
    }

    #[test]
    fn finds_all_ten_kernels() {
        let table = kernel_loc_table(&root());
        assert_eq!(table.len(), 10, "{table:?}");
        for k in &table {
            assert!(k.cpu > 0, "{} cpu empty", k.kernel);
            assert!(k.omp > 0, "{} omp empty", k.kernel);
            assert!(k.jit > 0, "{} jit empty", k.kernel);
        }
    }

    #[test]
    fn offload_kernels_are_longer_than_cpu_on_average() {
        // The paper's Fig. 2: OpenMP Target Offload kernel code is ~1.8x
        // the CPU baseline. Directionally, our offload bodies (explicit
        // buffers, launch specs, guards) must be longer than the CPU ones.
        let table = kernel_loc_table(&root());
        let cpu: usize = table.iter().map(|k| k.cpu).sum();
        let omp: usize = table.iter().map(|k| k.omp).sum();
        assert!(omp > cpu, "omp {omp} vs cpu {cpu}");
    }

    #[test]
    fn framework_totals_dwarf_kernel_lines_for_device_ports() {
        let (k_omp, t_omp) = implementation_totals(&root(), Implementation::OmpTarget);
        let (k_jit, t_jit) = implementation_totals(&root(), Implementation::Jit);
        let (k_cpu, t_cpu) = implementation_totals(&root(), Implementation::Cpu);
        assert!(t_omp > k_omp);
        assert!(t_jit > k_jit);
        assert_eq!(k_cpu, t_cpu); // the baseline has no accelerator plumbing
        assert!(k_cpu > 0);
    }
}
