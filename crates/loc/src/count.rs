//! Comment- and blank-stripping line counting (the `cloc` rules).

/// Counts for one source file or source string.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineCount {
    /// Lines containing code (possibly with a trailing comment).
    pub code: usize,
    /// Pure comment lines (`//`, `///`, `//!`, or inside `/* */`).
    pub comment: usize,
    /// Blank/whitespace-only lines.
    pub blank: usize,
}

impl LineCount {
    /// Total physical lines.
    pub fn total(&self) -> usize {
        self.code + self.comment + self.blank
    }
}

impl std::ops::Add for LineCount {
    type Output = LineCount;
    fn add(self, rhs: LineCount) -> LineCount {
        LineCount {
            code: self.code + rhs.code,
            comment: self.comment + rhs.comment,
            blank: self.blank + rhs.blank,
        }
    }
}

impl std::ops::AddAssign for LineCount {
    fn add_assign(&mut self, rhs: LineCount) {
        *self = *self + rhs;
    }
}

/// Count Rust source the way `cloc` does: blanks and comments excluded
/// from the code count. Handles line comments, doc comments and (possibly
/// nested) block comments; string literals containing `//` are treated
/// conservatively as code.
pub fn count_lines(source: &str) -> LineCount {
    let mut out = LineCount::default();
    let mut block_depth = 0usize;

    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            out.blank += 1;
            continue;
        }
        if block_depth > 0 {
            // Inside a block comment: look for closers/openers.
            let (opens, closes) = scan_block_tokens(trimmed);
            let had_code_after = block_ends_with_code(trimmed, &mut block_depth, opens, closes);
            if had_code_after {
                out.code += 1;
            } else {
                out.comment += 1;
            }
            continue;
        }
        if trimmed.starts_with("//") {
            out.comment += 1;
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("/*") {
            // A block comment starting the line; is there code after it
            // closes on this same line?
            block_depth = 1;
            let (opens, closes) = scan_block_tokens(rest);
            let had_code_after = block_ends_with_code(rest, &mut block_depth, opens, closes);
            if had_code_after {
                out.code += 1;
            } else {
                out.comment += 1;
            }
            continue;
        }
        // A code line (may open a block comment mid-line).
        out.code += 1;
        let (opens, closes) = scan_block_tokens(trimmed);
        block_depth = (block_depth + opens).saturating_sub(closes);
    }
    out
}

fn scan_block_tokens(s: &str) -> (usize, usize) {
    let bytes = s.as_bytes();
    let (mut opens, mut closes) = (0usize, 0usize);
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b'/' && bytes[i + 1] == b'*' {
            opens += 1;
            i += 2;
        } else if bytes[i] == b'*' && bytes[i + 1] == b'/' {
            closes += 1;
            i += 2;
        } else {
            i += 1;
        }
    }
    (opens, closes)
}

/// Update `depth` given this line's tokens; report whether code follows
/// the final close.
fn block_ends_with_code(line: &str, depth: &mut usize, opens: usize, closes: usize) -> bool {
    let new_depth = (*depth + opens).saturating_sub(closes);
    let closed = new_depth == 0 && closes > 0;
    *depth = new_depth;
    if closed {
        if let Some(pos) = line.rfind("*/") {
            return !line[pos + 2..].trim().is_empty();
        }
    }
    false
}

/// Remove `#[cfg(test)] mod tests { .. }` blocks before counting, so the
/// figures compare *implementation* code the way the paper does (its C++
/// and Python kernels carry their tests elsewhere).
pub fn strip_tests(source: &str) -> String {
    let mut out = String::with_capacity(source.len());
    let mut skipping = false;
    let mut depth = 0i64;
    let mut lines = source.lines().peekable();
    while let Some(line) = lines.next() {
        if !skipping && line.trim_start().starts_with("#[cfg(test)]") {
            // Expect the mod on this or the next line.
            skipping = true;
            depth = 0;
            // Consume until we see the opening brace, tracking from there.
            let mut l = line;
            loop {
                depth += braces(l);
                if l.contains('{') {
                    break;
                }
                match lines.next() {
                    Some(next) => l = next,
                    None => return out,
                }
            }
            if depth <= 0 {
                skipping = false;
            }
            continue;
        }
        if skipping {
            depth += braces(line);
            if depth <= 0 {
                skipping = false;
            }
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn braces(line: &str) -> i64 {
    line.chars()
        .map(|c| match c {
            '{' => 1,
            '}' => -1,
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_the_three_categories() {
        let src = "\n// comment\nlet x = 1;\n\n/// doc\nfn f() {}\n";
        let c = count_lines(src);
        assert_eq!(c.blank, 2);
        assert_eq!(c.comment, 2);
        assert_eq!(c.code, 2);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn block_comments_spanning_lines() {
        let src = "/*\nall\ncomment\n*/\nlet y = 2;\n";
        let c = count_lines(src);
        assert_eq!(c.comment, 4);
        assert_eq!(c.code, 1);
    }

    #[test]
    fn code_after_block_close_counts_as_code() {
        let src = "/* c */ let z = 3;\n";
        let c = count_lines(src);
        assert_eq!(c.code, 1);
        assert_eq!(c.comment, 0);
    }

    #[test]
    fn trailing_comment_is_still_code() {
        let c = count_lines("let a = 1; // trailing\n");
        assert_eq!(c.code, 1);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still */\ncode();\n";
        let c = count_lines(src);
        assert_eq!(c.comment, 1);
        assert_eq!(c.code, 1);
    }

    #[test]
    fn strip_tests_removes_test_modules() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n}\nfn also_real() {}\n";
        let stripped = strip_tests(src);
        assert!(stripped.contains("fn real()"));
        assert!(stripped.contains("fn also_real()"));
        assert!(!stripped.contains("assert!(true)"));
        let c = count_lines(&stripped);
        assert_eq!(c.code, 2);
    }

    #[test]
    fn counts_add() {
        let a = LineCount {
            code: 1,
            comment: 2,
            blank: 3,
        };
        let b = LineCount {
            code: 10,
            comment: 20,
            blank: 30,
        };
        let s = a + b;
        assert_eq!(s.code, 11);
        assert_eq!(s.total(), 66);
    }
}
