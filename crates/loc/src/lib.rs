//! A `cloc`-like line counter for regenerating the paper's Fig. 2-3.
//!
//! The paper measures lines of code per implementation with `cloc` v1.82,
//! "not counting empty lines and comments". This crate applies the same
//! rules to Rust source: blank lines, `//` comment lines, `//!`/`///` doc
//! lines and `/* ... */` block comments are excluded; everything else
//! counts.
//!
//! [`kernel_loc_table`] maps this repository's kernel files to the paper's three
//! implementations (the `cpu.rs` / `omp.rs` / `jit.rs` layout of
//! `toast-core/src/kernels/` exists precisely so these figures can be
//! regenerated from the source tree).

#![forbid(unsafe_code)]

pub mod count;
pub mod inventory;

pub use count::{count_lines, strip_tests, LineCount};
pub use inventory::{
    find_workspace_root, implementation_totals, kernel_loc_table, Implementation, KernelLoc,
};
