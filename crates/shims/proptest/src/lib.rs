//! Offline stand-in for the `proptest` API subset this workspace uses.
//!
//! The build container has no network access and no cargo registry cache,
//! so the real proptest cannot be fetched. This shim keeps the property
//! tests source-compatible and meaningful: each `proptest!` test runs
//! [`CASES`] deterministic pseudo-random cases drawn from the declared
//! strategies (a SplitMix64 stream seeded from the test's name), with
//! `prop_assume!` rejection and `prop_assert*!` reporting the failing
//! condition. There is no shrinking — a failure reports the raw case.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Cases run per property test.
pub const CASES: usize = 64;

/// Sentinel error used by `prop_assume!` to reject a case.
pub const ASSUME_REJECTED: &str = "__proptest_assume_rejected";

/// Deterministic SplitMix64 stream.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, so every test gets a distinct stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of values for one test parameter.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types that half-open and inclusive ranges can sample uniformly.
pub trait SampleUniform: Copy {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty strategy range");
                let width = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % width) as $ty)
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % width) as $ty)
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        assert!(lo < hi, "empty strategy range");
        lo + rng.next_f64() * (hi - lo)
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        Self::sample_half_open(lo, hi + (hi - lo) * f64::EPSILON, rng)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident.$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// `any::<T>()`-style full-domain sampling, used for bare `name: type`
/// parameters in `proptest!` signatures.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, wide-range doubles; full bit-pattern sampling would
        // mostly produce NaN/subnormal noise the tests do not want.
        (rng.next_f64() - 0.5) * 2e12
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vector strategy: `size` is a fixed length or a length range.
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize, // exclusive
    }

    /// Lengths accepted by [`vec`].
    pub trait IntoSizeRange {
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// `proptest::collection::vec(element_strategy, len)`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec length range");
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.lo + (rng.next_u64() as usize) % (self.hi - self.lo);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Strategy,
    };
}

/// Bind one `proptest!` parameter list entry after another. Entries are
/// either `pattern in strategy` or `name: type` (full-domain sampling).
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:expr;) => {};
    ($rng:expr; $p:pat in $s:expr) => {
        let $p = $crate::Strategy::sample(&($s), $rng);
    };
    ($rng:expr; $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::Strategy::sample(&($s), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:expr; $i:ident: $ty:ty) => {
        let $i: $ty = <$ty as $crate::Arbitrary>::arbitrary($rng);
    };
    ($rng:expr; $i:ident: $ty:ty, $($rest:tt)*) => {
        let $i: $ty = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// The `proptest!` block: each contained `#[test] fn` becomes a plain test
/// running [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted = 0usize;
            let mut attempts = 0usize;
            while accepted < $crate::CASES {
                attempts += 1;
                assert!(
                    attempts < $crate::CASES * 50,
                    "prop_assume! rejected too many cases"
                );
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $crate::__proptest_bind!(&mut rng; $($args)*);
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err(e) if e == $crate::ASSUME_REJECTED => continue,
                    Err(e) => panic!("property '{}' failed: {}", stringify!($name), e),
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Reject the current case (resampled, not counted as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::ASSUME_REJECTED.to_string());
        }
    };
}

/// `assert!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// `assert_eq!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return ::std::result::Result::Err(format!(
                "{} != {}: {:?} vs {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                va,
                vb,
                file!(),
                line!()
            ));
        }
    }};
}

/// `assert_ne!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return ::std::result::Result::Err(format!(
                "{} == {}: both {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                va,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -4i64..4, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn mapped_and_tuple_strategies(e in evens(), (a, b) in (0u32..5, 10u32..15)) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(a < 5 && (10..15).contains(&b));
        }

        #[test]
        fn bare_types_assume_and_vec(
            x: u64,
            v in crate::collection::vec(0i64..7, 0usize..9),
        ) {
            prop_assume!(x != 41);
            prop_assert_ne!(x, 41);
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|&e| (0..7).contains(&e)));
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("a");
        let mut a2 = crate::TestRng::from_name("a");
        let mut b = crate::TestRng::from_name("b");
        let (x, y, z) = (a.next_u64(), a2.next_u64(), b.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }
}
