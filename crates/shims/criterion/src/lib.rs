//! Offline stand-in for the `criterion` API subset this workspace uses.
//!
//! The build container has no network access and no cargo registry cache,
//! so the real criterion cannot be fetched. This shim keeps the
//! `benches/*.rs` targets compiling and runnable: `bench_function` warms
//! up once, then runs the closure for the configured measurement window
//! and prints mean time per iteration (plus throughput when declared).
//! There is no statistical analysis, plotting, or HTML report.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export-compatible opaque black box. `std::hint::black_box` is the
/// real thing on current toolchains.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        self.run_one(&name, None, f);
    }

    fn run_one(&self, name: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            budget: self.warm_up_time,
            min_iters: 1,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher); // warm-up

        bencher.budget = self.measurement_time;
        bencher.min_iters = self.sample_size as u64;
        bencher.elapsed = Duration::ZERO;
        bencher.iters = 0;
        f(&mut bencher);

        let per_iter = if bencher.iters > 0 {
            bencher.elapsed / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        match throughput {
            Some(Throughput::Elements(n)) if !per_iter.is_zero() => {
                let rate = n as f64 / per_iter.as_secs_f64();
                println!("{name}: {per_iter:?}/iter, {rate:.3e} elem/s");
            }
            Some(Throughput::Bytes(n)) if !per_iter.is_zero() => {
                let rate = n as f64 / per_iter.as_secs_f64();
                println!("{name}: {per_iter:?}/iter, {rate:.3e} B/s");
            }
            _ => println!("{name}: {per_iter:?}/iter"),
        }
    }
}

/// A named group of benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for API compatibility; the shim sizes its own measurement
    /// window.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name.into());
        self.criterion.run_one(&full, self.throughput, f);
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs the routine repeatedly
/// until the measurement window closes.
pub struct Bencher {
    budget: Duration,
    min_iters: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.budget && self.iters >= self.min_iters {
                break;
            }
        }
    }
}

/// `criterion_group!`: both the simple and the `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!`: run every group from `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_the_routine() {
        let mut count = 0u64;
        let mut c = quick();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.finish();
        assert!(count >= 2, "routine ran {count} times");
    }

    criterion_group!(simple_group, smoke_target);

    fn smoke_target(c: &mut Criterion) {
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_produces_runnable_fn() {
        simple_group();
    }
}
