//! Offline stand-in for the `rayon` API subset this workspace uses.
//!
//! The build container has no network access and no cargo registry cache,
//! so the real rayon cannot be fetched. This shim keeps the call sites
//! source-compatible by handing back the standard *sequential* iterators:
//! `par_chunks_mut` → `chunks_mut`, `par_iter_mut` → `iter_mut`,
//! `into_par_iter` → `into_iter`. Every adaptor the code chains afterwards
//! (`enumerate`, `for_each`, `map`, `collect`, …) is the std one.
//!
//! Correctness is unaffected: the simulator's *virtual* clock charges
//! thread-level parallelism through its cost model, never through host
//! wall time. Only host-side wall time of the harness itself is lost, and
//! the tier-1 suite stays fast enough without it.

#![forbid(unsafe_code)]

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut, SliceParIterMut};
}

/// `into_par_iter()` for anything iterable (ranges in this workspace).
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<T: IntoIterator> IntoParallelIterator for T {}

/// `par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// `par_iter_mut()` on slices (and `Vec` through deref).
pub trait SliceParIterMut<T> {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
}

impl<T> SliceParIterMut<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_behave_like_std() {
        let squares: Vec<u32> = (0u32..5).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);

        let mut data = vec![0u32; 6];
        data.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, chunk)| chunk.fill(i as u32));
        assert_eq!(data, vec![0, 0, 1, 1, 2, 2]);

        data.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(data, vec![1, 1, 2, 2, 3, 3]);
    }
}
