//! Typed shared resources: SM pools, PCIe links, NICs.
//!
//! Each resource tracks its *current membership* (which flows want it
//! right now) and its *accumulated accounting* (busy seconds, switch
//! charges), which survives the whole replay and feeds
//! [`crate::node::NodeResult`] / [`crate::engine::ClusterResult`].
//!
//! Accounting is **settle-on-change**: membership is piecewise-constant
//! between events, so instead of folding `load × dt` into the totals at
//! every event (the pre-optimization engine's per-event `accumulate`
//! walk over all resources), each resource remembers when it was last
//! settled and integrates the elapsed interval only when its membership
//! actually changes. The integral is identical — the load was constant
//! over the whole interval — and the event loop no longer touches
//! resources that an event does not affect.

/// One GPU's streaming-multiprocessor pool.
#[derive(Debug, Clone, Default)]
pub struct SmPool {
    /// Σ solo-utilisation over kernels currently wanting this GPU
    /// (updated when kernel membership changes).
    pub load: f64,
    /// Ranks resident on this GPU for the whole replay (static
    /// assignment, whether or not they are currently computing).
    pub clients: u32,
    /// Accumulated seconds the device spent computing (load clamped to 1).
    pub busy: f64,
    /// Accumulated seconds lost to context switches (zero under MPS).
    pub switch_seconds: f64,
    /// Virtual time the accounting was last settled to.
    pub settled_at: f64,
}

impl SmPool {
    /// Integrate the interval since the last settle at the current load
    /// into the busy accounting. Call *before* changing `load`.
    pub fn settle(&mut self, now: f64) {
        let dt = now - self.settled_at;
        if dt > 0.0 && self.load > 0.0 {
            self.busy += self.load.min(1.0) * dt;
        }
        self.settled_at = now;
    }
}

/// One GPU's PCIe link (shared equally by its active transfers).
#[derive(Debug, Clone, Default)]
pub struct PcieLink {
    /// Transfers on the wire right now (updated when flows join/leave).
    pub users: u32,
}

impl PcieLink {
    /// Rate of each active transfer: the link is shared equally.
    pub fn rate(&self) -> f64 {
        1.0 / self.users.max(1) as f64
    }
}

/// One node's network interface, shared by that node's ranks during
/// collectives. A rank's collective demand is its *analytic* solo cost
/// (the [`crate::comm`] formulas, which assume a full NIC); sharing the
/// NIC among co-located ranks is what makes congestion emerge instead of
/// being assumed away.
#[derive(Debug, Clone, Default)]
pub struct Nic {
    /// Ranks of this node currently inside a collective (updated when
    /// collective membership changes).
    pub active: u32,
    /// Accumulated seconds the NIC spent moving collective traffic.
    pub busy: f64,
    /// Accumulated *per-rank* seconds inside collective network phases
    /// (`active × dt`, so two ranks sharing the NIC for a second count
    /// as two collective-seconds).
    pub collective_seconds: f64,
    /// Virtual time the accounting was last settled to.
    pub settled_at: f64,
}

impl Nic {
    /// Rate of each active collective flow: equal NIC sharing.
    pub fn rate(&self) -> f64 {
        1.0 / self.active.max(1) as f64
    }

    /// Integrate the interval since the last settle at the current
    /// membership. Call *before* changing `active`.
    pub fn settle(&mut self, now: f64) {
        let dt = now - self.settled_at;
        if dt > 0.0 && self.active > 0 {
            self.busy += dt;
            self.collective_seconds += self.active as f64 * dt;
        }
        self.settled_at = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sm_pool_clamps_oversubscribed_load() {
        let mut pool = SmPool {
            load: 2.5,
            ..SmPool::default()
        };
        pool.settle(2.0);
        assert_eq!(pool.busy, 2.0);
        pool.load = 0.25;
        pool.settle(4.0);
        assert_eq!(pool.busy, 2.5);
        pool.load = 0.0;
        pool.settle(9.0);
        assert_eq!(pool.busy, 2.5);
        assert_eq!(pool.settled_at, 9.0);
    }

    #[test]
    fn settle_is_idempotent_at_the_same_instant() {
        let mut pool = SmPool {
            load: 1.0,
            ..SmPool::default()
        };
        pool.settle(1.0);
        pool.settle(1.0);
        assert_eq!(pool.busy, 1.0);
    }

    #[test]
    fn link_and_nic_share_equally() {
        let link = PcieLink { users: 4 };
        assert_eq!(link.rate(), 0.25);
        let idle = PcieLink::default();
        assert_eq!(idle.rate(), 1.0);
        let nic = Nic {
            active: 16,
            ..Nic::default()
        };
        assert_eq!(nic.rate(), 1.0 / 16.0);
    }

    #[test]
    fn nic_settle_counts_only_active_intervals() {
        let mut nic = Nic::default();
        nic.settle(1.0);
        assert_eq!(nic.busy, 0.0);
        nic.active = 3;
        nic.settle(1.5);
        assert_eq!(nic.busy, 0.5);
        // Two ranks over one second: one busy-second, two
        // collective-seconds.
        assert_eq!(nic.collective_seconds, 1.5);
    }
}
