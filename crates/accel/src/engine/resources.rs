//! Typed shared resources: SM pools, PCIe links, NICs.
//!
//! Each resource tracks its *current membership* (which flows want it
//! right now — recomputed at every event, because membership is exactly
//! what events change) and its *accumulated accounting* (busy seconds,
//! switch charges), which survives the whole replay and feeds
//! [`crate::node::NodeResult`] / [`crate::engine::ClusterResult`].

/// One GPU's streaming-multiprocessor pool.
#[derive(Debug, Clone, Default)]
pub struct SmPool {
    /// Σ solo-utilisation over kernels currently wanting this GPU
    /// (recomputed per event).
    pub load: f64,
    /// Ranks resident on this GPU for the whole replay (static
    /// assignment, whether or not they are currently computing).
    pub clients: u32,
    /// Accumulated seconds the device spent computing (load clamped to 1).
    pub busy: f64,
    /// Accumulated seconds lost to context switches (zero under MPS).
    pub switch_seconds: f64,
}

impl SmPool {
    /// Fold `dt` seconds at the current load into the busy accounting.
    pub fn accumulate(&mut self, dt: f64) {
        if self.load > 0.0 {
            self.busy += self.load.min(1.0) * dt;
        }
    }
}

/// One GPU's PCIe link (shared equally by its active transfers).
#[derive(Debug, Clone, Default)]
pub struct PcieLink {
    /// Transfers on the wire right now (recomputed per event).
    pub users: u32,
}

impl PcieLink {
    /// Rate of each active transfer: the link is shared equally.
    pub fn rate(&self) -> f64 {
        1.0 / self.users.max(1) as f64
    }
}

/// One node's network interface, shared by that node's ranks during
/// collectives. A rank's collective demand is its *analytic* solo cost
/// (the [`crate::comm`] formulas, which assume a full NIC); sharing the
/// NIC among co-located ranks is what makes congestion emerge instead of
/// being assumed away.
#[derive(Debug, Clone, Default)]
pub struct Nic {
    /// Ranks of this node currently inside a collective (recomputed per
    /// event).
    pub active: u32,
    /// Accumulated seconds the NIC spent moving collective traffic.
    pub busy: f64,
}

impl Nic {
    /// Rate of each active collective flow: equal NIC sharing.
    pub fn rate(&self) -> f64 {
        1.0 / self.active.max(1) as f64
    }

    /// Fold `dt` seconds at the current membership into the accounting.
    pub fn accumulate(&mut self, dt: f64) {
        if self.active > 0 {
            self.busy += dt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sm_pool_clamps_oversubscribed_load() {
        let mut pool = SmPool {
            load: 2.5,
            ..SmPool::default()
        };
        pool.accumulate(2.0);
        assert_eq!(pool.busy, 2.0);
        pool.load = 0.25;
        pool.accumulate(2.0);
        assert_eq!(pool.busy, 2.5);
        pool.load = 0.0;
        pool.accumulate(5.0);
        assert_eq!(pool.busy, 2.5);
    }

    #[test]
    fn link_and_nic_share_equally() {
        let link = PcieLink { users: 4 };
        assert_eq!(link.rate(), 0.25);
        let idle = PcieLink::default();
        assert_eq!(idle.rate(), 1.0);
        let nic = Nic {
            active: 16,
            busy: 0.0,
        };
        assert_eq!(nic.rate(), 1.0 / 16.0);
    }

    #[test]
    fn nic_busy_counts_only_active_intervals() {
        let mut nic = Nic::default();
        nic.accumulate(1.0);
        assert_eq!(nic.busy, 0.0);
        nic.active = 3;
        nic.accumulate(0.5);
        assert_eq!(nic.busy, 0.5);
    }
}
