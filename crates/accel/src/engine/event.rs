//! The event heap: pending completions on the virtual clock.
//!
//! The engine is a fluid discrete-event simulation: between events every
//! active flow drains at a constant rate, so its completion time is
//! predictable the moment its rate is known. Those predictions live here,
//! in a min-heap keyed by virtual time. Because a rate can change when a
//! *different* flow joins or leaves a shared resource, predictions go
//! stale; the heap uses lazy invalidation — every flow carries a
//! generation counter, a prediction records the generation it was made
//! under, and stale entries are skipped on pop instead of being removed
//! eagerly (removal from the middle of a binary heap is O(n); skipping is
//! O(log n) amortised).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which of a rank's concurrent flows an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowId {
    /// The rank's main segment chain (host, kernel, blocking transfer,
    /// collective).
    Main,
    /// The head of the rank's asynchronous transfer stream (only active
    /// under [`crate::node::NodeConfig::overlap_transfers`]).
    Stream,
}

/// A predicted completion of one flow.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Global rank index.
    pub rank: usize,
    /// Which of the rank's flows completes.
    pub flow: FlowId,
    /// Generation of the flow when the prediction was made; compared
    /// against the flow's current generation on pop.
    pub gen: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    time: f64,
    /// Push sequence number: makes the ordering total and deterministic
    /// when times tie (earlier predictions pop first).
    seq: u64,
    completion: Completion,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest time.
        // Times are asserted finite on push, so `total_cmp` is a plain
        // numeric order here.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of predicted completions on the virtual clock.
#[derive(Debug, Default)]
pub struct EventHeap {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventHeap {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `completion` at virtual `time` (must be finite).
    pub fn push(&mut self, time: f64, completion: Completion) {
        debug_assert!(time.is_finite(), "event at non-finite time {time}");
        self.seq += 1;
        self.heap.push(Entry {
            time,
            seq: self.seq,
            completion,
        });
    }

    /// Pop the earliest prediction whose generation still matches,
    /// discarding stale entries along the way. `current_gen` maps a
    /// `(rank, flow)` to its live generation.
    pub fn pop_valid(
        &mut self,
        mut current_gen: impl FnMut(usize, FlowId) -> u64,
    ) -> Option<(f64, Completion)> {
        while let Some(e) = self.heap.pop() {
            if current_gen(e.completion.rank, e.completion.flow) == e.completion.gen {
                return Some((e.time, e.completion));
            }
        }
        None
    }

    /// Number of entries, including stale ones awaiting lazy removal.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(rank: usize, gen: u64) -> Completion {
        Completion {
            rank,
            flow: FlowId::Main,
            gen,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        h.push(3.0, c(0, 0));
        h.push(1.0, c(1, 0));
        h.push(2.0, c(2, 0));
        let order: Vec<usize> = std::iter::from_fn(|| h.pop_valid(|_, _| 0))
            .map(|(_, e)| e.rank)
            .collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_push_order() {
        let mut h = EventHeap::new();
        h.push(1.0, c(7, 0));
        h.push(1.0, c(9, 0));
        assert_eq!(h.pop_valid(|_, _| 0).unwrap().1.rank, 7);
        assert_eq!(h.pop_valid(|_, _| 0).unwrap().1.rank, 9);
    }

    #[test]
    fn stale_generations_are_skipped() {
        let mut h = EventHeap::new();
        h.push(1.0, c(0, 0)); // stale: rank 0 is at generation 2
        h.push(5.0, c(0, 2));
        h.push(3.0, c(1, 1));
        let gens = |rank: usize, _: FlowId| match rank {
            0 => 2,
            _ => 1,
        };
        assert_eq!(h.pop_valid(gens).unwrap().0, 3.0);
        assert_eq!(h.pop_valid(gens).unwrap().0, 5.0);
        assert!(h.pop_valid(gens).is_none());
        assert!(h.is_empty());
    }
}
