//! The event queue: pending completions on the virtual clock.
//!
//! The engine is a fluid discrete-event simulation: between events every
//! active flow drains at a constant rate, so its completion time is
//! predictable the moment its rate is known. Those predictions live here.
//!
//! Two mechanisms keep the queue cheap on the hot path:
//!
//! * **Bucketed calendar storage.** Instead of a binary heap's `O(log n)`
//!   sift per operation, predictions are hashed by time into a cyclic
//!   array of buckets (a calendar queue, Brown 1988). A push appends to
//!   its bucket in `O(1)`; a pop scans the current bucket for the
//!   earliest `(time, seq)` entry and advances the cursor through empty
//!   buckets. The bucket count and width are re-tuned from the live
//!   entries whenever the queue grows or shrinks past its operating
//!   range, keeping the expected cost per operation `O(1)`.
//! * **Lazy invalidation with bounded staleness.** A rate change makes a
//!   flow's old prediction stale; removing it from the middle of the
//!   structure eagerly would be `O(n)`, so every flow carries a
//!   generation counter and stale entries are skipped on pop. Unlike the
//!   classic lazy heap, the queue *bounds* stale growth: the engine
//!   reports each superseded prediction via [`EventQueue::note_stale`],
//!   and once more than half the stored entries are stale (and the queue
//!   is big enough to matter) the next pop compacts — drops every stale
//!   entry in one `O(n)` sweep — so a rate-churn-heavy replay cannot grow
//!   the queue unboundedly.
//!
//! Pop order is the total order `(time, seq)` — `seq` is the push
//! sequence number, so simultaneous predictions pop in push order and the
//! replay is deterministic regardless of bucket layout, compaction or
//! resize history.

/// Which of a rank's concurrent flows an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowId {
    /// The rank's main segment chain (host, kernel, blocking transfer,
    /// collective).
    Main,
    /// The head of the rank's asynchronous transfer stream (only active
    /// under [`crate::node::NodeConfig::overlap_transfers`]).
    Stream,
}

impl FlowId {
    /// Stable lowercase name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            FlowId::Main => "main",
            FlowId::Stream => "stream",
        }
    }
}

/// A predicted completion of one flow.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Rank index (node-local in sharded replays).
    pub rank: usize,
    /// Which of the rank's flows completes.
    pub flow: FlowId,
    /// Generation of the flow when the prediction was made; compared
    /// against the flow's current generation on pop.
    pub gen: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    time: f64,
    /// Push sequence number: makes the ordering total and deterministic
    /// when times tie (earlier predictions pop first).
    seq: u64,
    completion: Completion,
}

/// Minimum entries before staleness triggers compaction: tiny queues are
/// cheap to scan and compacting them would be pure overhead.
const COMPACT_MIN_LEN: usize = 64;

/// Bucketed calendar queue of predicted completions on the virtual clock.
#[derive(Debug)]
pub struct EventQueue {
    /// Cyclic bucket array; `buckets.len()` is a power of two.
    buckets: Vec<Vec<Entry>>,
    /// `buckets.len() - 1`, for masking absolute bucket numbers.
    mask: usize,
    /// Virtual-time width of one bucket.
    width: f64,
    /// Absolute (unwrapped) bucket number the pop cursor is parked on:
    /// every stored entry has `floor(time / width) >= cursor_abs`.
    cursor_abs: u64,
    /// Total stored entries, including stale ones.
    len: usize,
    /// Entries known stale via [`EventQueue::note_stale`].
    stale: usize,
    /// Pops since the last width retune, for the clustering heuristic in
    /// [`EventQueue::pop_min`].
    pops_since_retune: usize,
    seq: u64,
    /// Reused staging area for rebuilds/compactions, so re-tuning on the
    /// hot path does not allocate.
    scratch: Vec<Entry>,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            buckets: vec![Vec::new(); 16],
            mask: 15,
            width: 1.0,
            cursor_abs: 0,
            len: 0,
            stale: 0,
            pops_since_retune: 0,
            seq: 0,
            scratch: Vec::new(),
        }
    }

    /// Drain every bucket into the scratch buffer (keeping each bucket's
    /// capacity for reuse) and return the staged entries.
    fn stage_entries(&mut self) {
        self.scratch.clear();
        for bucket in &mut self.buckets {
            self.scratch.append(bucket);
        }
    }

    fn abs_bucket(&self, time: f64) -> u64 {
        // Entries never predate the cursor (predictions are at `now + d`,
        // d >= 0); clamp defensively so an ulp below the cursor's window
        // cannot strand an entry in an already-passed bucket.
        ((time / self.width) as u64).max(self.cursor_abs)
    }

    /// Schedule `completion` at virtual `time` (must be finite).
    pub fn push(&mut self, time: f64, completion: Completion) {
        debug_assert!(time.is_finite(), "event at non-finite time {time}");
        self.seq += 1;
        let entry = Entry {
            time,
            seq: self.seq,
            completion,
        };
        let slot = (self.abs_bucket(time) & self.mask as u64) as usize;
        self.buckets[slot].push(entry);
        self.len += 1;
        if self.len > 4 * self.buckets.len() {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    /// The engine superseded a live prediction (bumped a flow's
    /// generation while its previous prediction was still queued): one
    /// more stored entry is now stale.
    pub fn note_stale(&mut self) {
        self.stale += 1;
    }

    /// Pop the earliest prediction whose generation still matches,
    /// discarding stale entries along the way. `current_gen` maps a
    /// `(rank, flow)` to its live generation. Compacts first when more
    /// than half the stored entries are known stale.
    pub fn pop_valid(
        &mut self,
        mut current_gen: impl FnMut(usize, FlowId) -> u64,
    ) -> Option<(f64, Completion)> {
        if self.len >= COMPACT_MIN_LEN && self.stale * 2 > self.len {
            self.compact(&mut current_gen);
        }
        loop {
            let entry = self.pop_min()?;
            if current_gen(entry.completion.rank, entry.completion.flow) == entry.completion.gen {
                return Some((entry.time, entry.completion));
            }
            self.stale = self.stale.saturating_sub(1);
        }
    }

    /// Remove and return the globally earliest entry by `(time, seq)`.
    fn pop_min(&mut self) -> Option<Entry> {
        if self.len == 0 {
            return None;
        }
        loop {
            let slot = (self.cursor_abs & self.mask as u64) as usize;
            // Clustering guard: when one bucket holds most of the queue
            // (e.g. the initial width is far wider than the event
            // spread), every pop degenerates to a full scan. Re-tune the
            // width to the live spread, amortized to O(1) per pop by
            // requiring `len` pops between retunes.
            if self.len >= 8
                && self.buckets[slot].len() * 2 > self.len
                && self.pops_since_retune >= self.len
            {
                self.pops_since_retune = 0;
                self.rebuild(self.buckets.len());
                continue;
            }
            self.pops_since_retune += 1;
            let window_end = (self.cursor_abs as f64 + 1.0) * self.width;
            // The earliest entry overall, if in this window, is in this
            // slot: same-year entries of later slots and later-year
            // entries of this slot are all >= window_end.
            let mut best: Option<(usize, f64, u64)> = None;
            for (i, e) in self.buckets[slot].iter().enumerate() {
                if e.time < window_end && best.is_none_or(|(_, t, s)| (e.time, e.seq) < (t, s)) {
                    best = Some((i, e.time, e.seq));
                }
            }
            if let Some((i, _, _)) = best {
                let entry = self.buckets[slot].swap_remove(i);
                self.len -= 1;
                if self.len < self.buckets.len() / 8 && self.buckets.len() > 16 {
                    self.rebuild(self.buckets.len() / 2);
                }
                return Some(entry);
            }
            self.cursor_abs += 1;
            if self.cursor_abs & self.mask as u64 == 0 {
                // Wrapped a whole year without a hit: jump straight to
                // the earliest remaining entry instead of spinning
                // through empty buckets (entries can sit years ahead).
                let min_t = self
                    .buckets
                    .iter()
                    .flatten()
                    .map(|e| e.time)
                    .fold(f64::INFINITY, f64::min);
                self.cursor_abs = (min_t / self.width) as u64;
            }
        }
    }

    /// Drop every stale entry and re-tune the bucket array to the live
    /// population.
    pub fn compact(&mut self, mut current_gen: impl FnMut(usize, FlowId) -> u64) {
        self.stage_entries();
        self.scratch
            .retain(|e| current_gen(e.completion.rank, e.completion.flow) == e.completion.gen);
        self.len = self.scratch.len();
        self.stale = 0;
        self.redistribute();
    }

    /// Re-hash every entry into `n` buckets with a width matched to the
    /// current entry spread.
    fn rebuild(&mut self, n: usize) {
        self.stage_entries();
        debug_assert_eq!(self.scratch.len(), self.len);
        let n = n.max(16);
        if n != self.buckets.len() {
            self.buckets.resize(n, Vec::new());
        }
        self.mask = self.buckets.len() - 1;
        self.redistribute();
    }

    /// Re-tune width/cursor to the staged entries and hash them back into
    /// the bucket array. Empties the scratch buffer.
    fn redistribute(&mut self) {
        let entries = std::mem::take(&mut self.scratch);
        self.retune(&entries);
        for &e in &entries {
            let slot = (self.abs_bucket(e.time) & self.mask as u64) as usize;
            self.buckets[slot].push(e);
        }
        self.scratch = entries;
        self.scratch.clear();
    }

    /// Pick a bucket width so the live entries spread over about one
    /// "year" of buckets, then re-park the cursor on the earliest one.
    fn retune(&mut self, entries: &[Entry]) {
        debug_assert_eq!(self.buckets.len(), self.mask + 1);
        let mut min_t = f64::INFINITY;
        let mut max_t = f64::NEG_INFINITY;
        for e in entries {
            min_t = min_t.min(e.time);
            max_t = max_t.max(e.time);
        }
        let cursor_time = (self.cursor_abs as f64) * self.width;
        if entries.is_empty() {
            self.width = 1.0;
            self.cursor_abs = 0;
            return;
        }
        let span = (max_t - min_t).max(f64::MIN_POSITIVE);
        // Two floors on the width: an absolute one so a degenerate span
        // cannot zero it, and a relative one so `time / width` stays far
        // inside u64 range even when tightly-clustered entries sit at a
        // large absolute time (width >= max_t * 1e-15 bounds bucket
        // numbers near 1e15).
        self.width = (span / self.buckets.len() as f64)
            .max(max_t.abs() * 1e-15)
            .max(1e-12);
        // Keep the cursor's *time* position: entries at or after the old
        // cursor time must remain poppable.
        self.cursor_abs = (cursor_time.min(min_t) / self.width) as u64;
    }

    /// Number of entries, including stale ones awaiting lazy removal.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(rank: usize, gen: u64) -> Completion {
        Completion {
            rank,
            flow: FlowId::Main,
            gen,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut h = EventQueue::new();
        h.push(3.0, c(0, 0));
        h.push(1.0, c(1, 0));
        h.push(2.0, c(2, 0));
        let order: Vec<usize> = std::iter::from_fn(|| h.pop_valid(|_, _| 0))
            .map(|(_, e)| e.rank)
            .collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_push_order() {
        let mut h = EventQueue::new();
        h.push(1.0, c(7, 0));
        h.push(1.0, c(9, 0));
        assert_eq!(h.pop_valid(|_, _| 0).unwrap().1.rank, 7);
        assert_eq!(h.pop_valid(|_, _| 0).unwrap().1.rank, 9);
    }

    #[test]
    fn stale_generations_are_skipped() {
        let mut h = EventQueue::new();
        h.push(1.0, c(0, 0)); // stale: rank 0 is at generation 2
        h.push(5.0, c(0, 2));
        h.push(3.0, c(1, 1));
        let gens = |rank: usize, _: FlowId| match rank {
            0 => 2,
            _ => 1,
        };
        assert_eq!(h.pop_valid(gens).unwrap().0, 3.0);
        assert_eq!(h.pop_valid(gens).unwrap().0, 5.0);
        assert!(h.pop_valid(gens).is_none());
        assert!(h.is_empty());
    }

    #[test]
    fn survives_growth_shrink_and_wide_time_spread() {
        // Times spread over 12 orders of magnitude force year wraps,
        // rebuilds in both directions, and cursor re-parking.
        let mut h = EventQueue::new();
        let mut times: Vec<f64> = (0..500)
            .map(|i| {
                let i = i as f64;
                (i * 9973.0) % 17.0 * 10f64.powf((i as u64 % 12) as f64) + i * 1e-9
            })
            .collect();
        for (i, &t) in times.iter().enumerate() {
            h.push(t, c(i, 0));
        }
        assert_eq!(h.len(), 500);
        times.sort_by(f64::total_cmp);
        let popped: Vec<f64> = std::iter::from_fn(|| h.pop_valid(|_, _| 0))
            .map(|(t, _)| t)
            .collect();
        assert_eq!(popped, times);
        assert!(h.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut h = EventQueue::new();
        let mut expect = Vec::new();
        for round in 0..50u64 {
            for k in 0..10u64 {
                let t = round as f64 + (k as f64) * 0.01;
                h.push(t, c((round * 10 + k) as usize, 0));
                expect.push(t);
            }
            // Drain half before the next round lands.
            for _ in 0..5 {
                let (t, _) = h.pop_valid(|_, _| 0).unwrap();
                let i = expect
                    .iter()
                    .position(|&e| e == t)
                    .expect("popped an unknown time");
                // Must be the minimum outstanding.
                assert!(expect.iter().all(|&e| e >= t), "popped {t} early");
                expect.remove(i);
            }
        }
        while let Some((t, _)) = h.pop_valid(|_, _| 0) {
            assert!(expect.iter().all(|&e| e >= t));
            let i = expect.iter().position(|&e| e == t).unwrap();
            expect.remove(i);
        }
        assert!(expect.is_empty());
    }

    #[test]
    fn compaction_bounds_stale_growth() {
        // A rate-churn-heavy replay: rank 0's prediction far in the
        // future is superseded thousands of times while rank 1's nearby
        // events pop normally. Without compaction the queue would end up
        // holding all 4096 superseded entries; the stale bound keeps the
        // population within a small multiple of the compaction threshold
        // at every step.
        let mut h = EventQueue::new();
        let churn = 4096u64;
        let mut max_len = 0usize;
        for g in 0..churn {
            if g > 0 {
                h.note_stale(); // the engine superseded the previous prediction
            }
            let rank0_gen = g;
            h.push(1000.0 + g as f64 * 1e-6, c(0, g));
            // A foreground event pops every few churns, as in a real
            // replay; the pop is where the compaction check runs. Rank
            // 1's events are earliest, so popping them never discards
            // rank 0's live prediction.
            if g % 16 == 15 {
                h.push(g as f64 * 1e-3, c(1, 0));
                let gens = |rank: usize, _: FlowId| if rank == 0 { rank0_gen } else { 0 };
                let (_, e) = h.pop_valid(gens).expect("foreground event pops");
                assert_eq!(e.rank, 1);
            }
            max_len = max_len.max(h.len());
        }
        // Live population is 1-2 entries; the queue may run up to the
        // compaction threshold plus the pushes between foreground pops,
        // but never anywhere near the 4096 a lazy-only queue would hold.
        assert!(max_len <= 2 * COMPACT_MIN_LEN, "queue grew to {max_len}");
        assert!(h.len() <= 2 * COMPACT_MIN_LEN, "queue ended at {}", h.len());
        let live_gen = churn - 1;
        let (t, e) = h.pop_valid(|_, _| live_gen).expect("live entry survives");
        assert_eq!(e.gen, live_gen);
        assert!((t - (1000.0 + live_gen as f64 * 1e-6)).abs() < 1e-9);
    }

    #[test]
    fn explicit_compact_drops_only_stale_entries() {
        let mut h = EventQueue::new();
        for g in 0..100u64 {
            h.push(g as f64, c(g as usize % 4, g));
        }
        // Ranks report generation 96 + rank as live: exactly 4 survive.
        h.compact(|rank, _| 96 + rank as u64);
        assert_eq!(h.len(), 4);
        let mut times: Vec<f64> = std::iter::from_fn(|| h.pop_valid(|rank, _| 96 + rank as u64))
            .map(|(t, _)| t)
            .collect();
        times.sort_by(f64::total_cmp);
        assert_eq!(times, vec![96.0, 97.0, 98.0, 99.0]);
    }
}
