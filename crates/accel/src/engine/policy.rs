//! Pluggable GPU arbitration: how concurrent kernels share a device.
//!
//! The pre-engine replay hardcoded two sharing models behind an `mps`
//! boolean. The engine instead asks a [`SchedulePolicy`] for the service
//! rate of every kernel contending for a GPU, which turns the paper's MPS
//! observations (§ 3.1.2) into one policy among several and lets the
//! harness ask what-if questions the measured hardware could not answer
//! (e.g. a strict FIFO queue, or priority preemption across ranks).

use std::fmt;
use std::str::FromStr;

use crate::calib::DeviceCalib;

/// Everything a policy may consult about one GPU when arbitrating.
#[derive(Debug, Clone, Copy)]
pub struct GpuSchedContext<'a> {
    /// Device calibration (crowding penalty, context-switch cost).
    pub calib: &'a DeviceCalib,
    /// Σ solo-utilisation over the kernels currently wanting the device.
    pub load: f64,
    /// Number of ranks resident on this GPU (co-tenant processes, whether
    /// or not they are currently computing).
    pub clients: u32,
}

/// One kernel contending for a GPU.
#[derive(Debug, Clone, Copy)]
pub struct KernelReq {
    /// Global rank index (doubles as the priority key: lower = higher).
    pub rank: usize,
    /// The kernel's solo utilisation: the fraction of the device it can
    /// occupy on its own.
    pub util: f64,
    /// Virtual time the kernel reached the device (FIFO arbitration key).
    pub arrival: f64,
}

/// Arbitration of one GPU's compute throughput among concurrent kernels.
///
/// A *rate* is demand-seconds served per wall-clock second: a kernel with
/// `remaining` device-seconds of demand and rate `r` finishes after
/// `remaining / r` seconds if nothing changes in between.
pub trait SchedulePolicy: Sync {
    /// Stable lowercase policy name (CLI value, trace label).
    fn name(&self) -> &'static str;

    /// Service rate for each kernel in `kernels` (written to `rates`,
    /// aligned by index). `kernels` is ordered by global rank.
    fn rates(&self, gpu: &GpuSchedContext<'_>, kernels: &[KernelReq], rates: &mut Vec<f64>);

    /// Extra device-seconds charged when a kernel is scheduled onto the
    /// GPU (the context-swap cost of exclusive-context time slicing).
    fn switch_demand(&self, gpu: &GpuSchedContext<'_>) -> f64 {
        let _ = gpu;
        0.0
    }
}

/// MPS processor sharing: kernel *i* with solo utilisation `u_i` receives
/// `u_i · min(1, 1/Σu)`, degraded by the calibrated crowding penalty as
/// more clients share the device. An under-filled device runs concurrent
/// kernels at full speed — the oversubscription benefit of the paper's
/// Fig. 4.
#[derive(Debug, Clone, Copy, Default)]
pub struct MpsFluid;

impl SchedulePolicy for MpsFluid {
    fn name(&self) -> &'static str {
        "mps"
    }

    fn rates(&self, gpu: &GpuSchedContext<'_>, kernels: &[KernelReq], rates: &mut Vec<f64>) {
        let k = gpu.clients.max(1) as f64;
        let crowd = 1.0 + gpu.calib.mps_crowding * (k - 1.0);
        for req in kernels {
            rates.push(req.util * (1.0 / gpu.load).min(1.0) / crowd);
        }
    }
}

/// No MPS: the driver time-slices whole CUDA contexts with coarse quanta,
/// so a process gets `1/clients` of its device whether or not its
/// co-tenants are computing, plus a context-switch charge per kernel —
/// the paper's § 3.1.2 observation that non-MPS throughput caps near one
/// process per device.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeSliced;

impl SchedulePolicy for TimeSliced {
    fn name(&self) -> &'static str {
        "timeslice"
    }

    fn rates(&self, gpu: &GpuSchedContext<'_>, kernels: &[KernelReq], rates: &mut Vec<f64>) {
        for req in kernels {
            rates.push(req.util / gpu.clients.max(1) as f64);
        }
    }

    fn switch_demand(&self, gpu: &GpuSchedContext<'_>) -> f64 {
        if gpu.clients > 1 {
            gpu.calib.context_switch
        } else {
            0.0
        }
    }
}

/// Strict FIFO: the kernel that reached the device first runs alone at
/// its solo rate; later arrivals queue. Models an exclusive-compute-mode
/// device fed through a single work queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl SchedulePolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn rates(&self, _gpu: &GpuSchedContext<'_>, kernels: &[KernelReq], rates: &mut Vec<f64>) {
        let head = kernels
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.arrival
                    .total_cmp(&b.arrival)
                    .then_with(|| a.rank.cmp(&b.rank))
            })
            .map(|(i, _)| i);
        for (i, req) in kernels.iter().enumerate() {
            rates.push(if Some(i) == head { req.util } else { 0.0 });
        }
    }
}

/// Preemptive rank priority: the lowest-ranked kernel wanting the device
/// runs alone at its solo rate; everything else waits. Rank index is the
/// priority key, so rank 0 (the typical "critical path" rank) always wins.
#[derive(Debug, Clone, Copy, Default)]
pub struct RankPriority;

impl SchedulePolicy for RankPriority {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn rates(&self, _gpu: &GpuSchedContext<'_>, kernels: &[KernelReq], rates: &mut Vec<f64>) {
        let head = kernels.iter().map(|k| k.rank).min();
        for req in kernels {
            rates.push(if Some(req.rank) == head {
                req.util
            } else {
                0.0
            });
        }
    }
}

/// Which [`SchedulePolicy`] a replay uses — the `Copy` configuration-side
/// handle (trait objects cannot live in a `Copy` config struct).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicyKind {
    /// Follow [`crate::node::NodeConfig::mps`]: MPS on → [`MpsFluid`],
    /// off → [`TimeSliced`] (the pre-engine behaviour).
    #[default]
    Auto,
    /// Force [`MpsFluid`] processor sharing.
    MpsFluid,
    /// Force [`TimeSliced`] exclusive contexts.
    TimeSliced,
    /// Strict [`Fifo`] queueing.
    Fifo,
    /// Preemptive [`RankPriority`].
    Priority,
}

static MPS_FLUID: MpsFluid = MpsFluid;
static TIME_SLICED: TimeSliced = TimeSliced;
static FIFO: Fifo = Fifo;
static RANK_PRIORITY: RankPriority = RankPriority;

impl SchedulePolicyKind {
    /// Resolve to the policy implementation, using `mps` to break the
    /// [`SchedulePolicyKind::Auto`] tie.
    pub fn resolve(self, mps: bool) -> &'static dyn SchedulePolicy {
        match self {
            SchedulePolicyKind::Auto => {
                if mps {
                    &MPS_FLUID
                } else {
                    &TIME_SLICED
                }
            }
            SchedulePolicyKind::MpsFluid => &MPS_FLUID,
            SchedulePolicyKind::TimeSliced => &TIME_SLICED,
            SchedulePolicyKind::Fifo => &FIFO,
            SchedulePolicyKind::Priority => &RANK_PRIORITY,
        }
    }
}

impl fmt::Display for SchedulePolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SchedulePolicyKind::Auto => "auto",
            SchedulePolicyKind::MpsFluid => "mps",
            SchedulePolicyKind::TimeSliced => "timeslice",
            SchedulePolicyKind::Fifo => "fifo",
            SchedulePolicyKind::Priority => "priority",
        };
        f.write_str(name)
    }
}

impl FromStr for SchedulePolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(SchedulePolicyKind::Auto),
            "mps" | "fluid" => Ok(SchedulePolicyKind::MpsFluid),
            "timeslice" | "exclusive" => Ok(SchedulePolicyKind::TimeSliced),
            "fifo" => Ok(SchedulePolicyKind::Fifo),
            "priority" => Ok(SchedulePolicyKind::Priority),
            other => Err(format!(
                "unknown schedule policy '{other}' (expected auto, mps, timeslice, fifo or priority)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(calib: &DeviceCalib, load: f64, clients: u32) -> GpuSchedContext<'_> {
        GpuSchedContext {
            calib,
            load,
            clients,
        }
    }

    fn req(rank: usize, util: f64, arrival: f64) -> KernelReq {
        KernelReq {
            rank,
            util,
            arrival,
        }
    }

    #[test]
    fn mps_shares_proportionally_once_saturated() {
        let calib = DeviceCalib {
            mps_crowding: 0.0,
            ..Default::default()
        };
        let kernels = [req(0, 0.8, 0.0), req(1, 0.8, 0.0)];
        let mut rates = Vec::new();
        MpsFluid.rates(&ctx(&calib, 1.6, 2), &kernels, &mut rates);
        // Saturated: each gets util/Σu = 0.5 of the device.
        assert!((rates[0] - 0.5).abs() < 1e-12);
        assert!((rates[1] - 0.5).abs() < 1e-12);
        // Under-filled: full solo rate.
        rates.clear();
        MpsFluid.rates(&ctx(&calib, 0.4, 2), &[req(0, 0.2, 0.0)], &mut rates);
        assert!((rates[0] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn timeslice_caps_at_one_over_clients() {
        let calib = DeviceCalib::default();
        let kernels = [req(0, 1.0, 0.0)];
        let mut rates = Vec::new();
        TimeSliced.rates(&ctx(&calib, 1.0, 4), &kernels, &mut rates);
        assert!((rates[0] - 0.25).abs() < 1e-12);
        assert_eq!(
            TimeSliced.switch_demand(&ctx(&calib, 1.0, 4)),
            calib.context_switch
        );
        assert_eq!(TimeSliced.switch_demand(&ctx(&calib, 1.0, 1)), 0.0);
    }

    #[test]
    fn fifo_serves_the_earliest_arrival_alone() {
        let calib = DeviceCalib::default();
        let kernels = [req(0, 0.5, 2.0), req(1, 0.7, 1.0)];
        let mut rates = Vec::new();
        Fifo.rates(&ctx(&calib, 1.2, 2), &kernels, &mut rates);
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn priority_serves_the_lowest_rank_alone() {
        let calib = DeviceCalib::default();
        let kernels = [req(2, 0.5, 0.0), req(5, 0.7, 0.0)];
        let mut rates = Vec::new();
        RankPriority.rates(&ctx(&calib, 1.2, 2), &kernels, &mut rates);
        assert!((rates[0] - 0.5).abs() < 1e-12);
        assert_eq!(rates[1], 0.0);
    }

    #[test]
    fn kind_round_trips_through_strings() {
        for kind in [
            SchedulePolicyKind::Auto,
            SchedulePolicyKind::MpsFluid,
            SchedulePolicyKind::TimeSliced,
            SchedulePolicyKind::Fifo,
            SchedulePolicyKind::Priority,
        ] {
            assert_eq!(kind.to_string().parse::<SchedulePolicyKind>(), Ok(kind));
        }
        assert!("nope".parse::<SchedulePolicyKind>().is_err());
    }

    #[test]
    fn auto_follows_the_mps_flag() {
        assert_eq!(SchedulePolicyKind::Auto.resolve(true).name(), "mps");
        assert_eq!(SchedulePolicyKind::Auto.resolve(false).name(), "timeslice");
        assert_eq!(SchedulePolicyKind::Fifo.resolve(true).name(), "fifo");
    }
}
