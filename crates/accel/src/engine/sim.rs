//! The discrete-event core: ranks, flows, resources and the event loop.
//!
//! The engine replays recorded [`RankTrace`]s against typed shared
//! resources ([`SmPool`], [`PcieLink`], [`Nic`]). Between events every
//! active *flow* (a rank's current segment, or the head of its async
//! transfer stream) drains at a constant rate; an event is whatever
//! changes a rate:
//!
//! * a flow completing (predicted on the [`EventQueue`], lazily
//!   invalidated when resource membership shifts),
//! * a barrier releasing (the last rank arriving at a collective),
//! * a stream draining (waking a kernel that was waiting on its data).
//!
//! Kernel arbitration is delegated to the configured
//! [`SchedulePolicy`]; host segments always run at rate 1 (cores are
//! partitioned among ranks and segments were sized for their thread
//! count); PCIe links and NICs are shared equally among their users.
//!
//! # Hot-path architecture
//!
//! The loop is built to run allocation-free after setup and to touch
//! only what an event changes:
//!
//! * **Compiled segment arena, split by calibration dependence.** The
//!   traces are compiled once into a [`CompiledWorkload`]: a flat
//!   `Vec<QSeg>` of calibration-*invariant* quantities (byte counts,
//!   work-item counts, recorded charges) with every label interned as a
//!   [`LabelId`], plus the per-node segment ranges and barrier topology.
//!   A cheap second pass ([`CompiledWorkload::cost_table`]) materializes
//!   a `Vec<CSeg>` of plain-old-data *costs* for one calibration, so a
//!   what-if sweep compiles the workload once and prices each grid point
//!   with a small cost vector — no `String` re-interning, no segment
//!   graph re-allocation. The loop never chases `String`s or recomputes
//!   kernel models. Recorded charges are validated finite at compile and
//!   derived costs at table time; a NaN duration is a typed
//!   [`EngineError::NonFiniteCharge`], not a silently-bogus makespan.
//! * **Settle-on-change flows.** A flow's `remaining` is only brought up
//!   to date (`remaining -= rate · Δt`) when its rate is about to change
//!   or it completes. Rates change exactly when a *resource membership*
//!   changes, so each event re-rates the handful of flows sharing the
//!   affected pool/link/NIC instead of advancing every rank in the job.
//! * **Per-node shards.** GPUs, PCIe links and the NIC are node-local;
//!   only collective barriers couple nodes. Each node is therefore an
//!   independent sub-simulation ([`Shard`]) with its own clock and
//!   [`EventQueue`], stepped in parallel (`par_iter_mut` over shards —
//!   the rayon shim sequentialises this offline, the structure is
//!   thread-ready) between barrier releases. A shard stops popping as
//!   soon as all of its participants in the earliest unreleased barrier
//!   have arrived; the coordinator then releases that barrier at the
//!   global max arrival time and resumes the shards. Shards with *no*
//!   collective participants run to completion — their ranks are never
//!   coupled to another node. Following MPI semantics, every barrier
//!   expects the full participant set (all ranks with at least one
//!   collective segment); a participant that cannot arrive — its trace
//!   ran out of collectives — leaves the barrier short forever and the
//!   replay reports [`EngineError::Deadlock`] naming the waiting ranks.
//!
//! # Determinism contract
//!
//! Results are a pure function of the traces and configuration,
//! independent of shard scheduling: shards share no mutable state while
//! stepping, events within a shard pop in `(time, push-seq)` order, load
//! sums and policy inputs are assembled in ascending rank order, and all
//! cross-shard reductions (arrival draining, release, output merge) walk
//! shards in node order. The golden-path regression in `repro-bench`
//! holds makespans to the pre-refactor analytic replay within 1e-9, and
//! the determinism suite asserts byte-identical exported traces across
//! repeated runs and thread counts.

use std::collections::VecDeque;

use rayon::prelude::*;

use crate::calib::{DeviceCalib, NetCalib};
use crate::comm::allreduce_seconds;
use crate::engine::error::EngineError;
use crate::engine::event::{Completion, EventQueue, FlowId};
use crate::engine::policy::{GpuSchedContext, KernelReq, SchedulePolicy};
use crate::engine::resources::{Nic, PcieLink, SmPool};
use crate::node::{GpuSample, NodeConfig, NodeOom, NodeTimeline, TimelineEvent, TimelineKind};
use crate::profile::{device_seconds_raw, solo_utilization_raw};
use crate::trace::{LabelId, LabelTable, RankTrace, Segment};

/// Completion tolerance on a flow's remaining demand (matches the
/// pre-optimization engine's per-event check).
const EPS: f64 = 1e-15;

/// Everything the event loop accumulates.
#[derive(Debug, Default)]
pub(crate) struct SimOutput {
    /// Per-rank completion times, global rank order (node-major).
    pub rank_seconds: Vec<f64>,
    /// Per-GPU busy seconds, global GPU order (node-major).
    pub gpu_busy: Vec<f64>,
    /// Per-GPU context-switch seconds, global GPU order.
    pub switch_seconds: Vec<f64>,
    /// Per-node NIC busy seconds.
    pub nic_busy: Vec<f64>,
    /// Summed per-rank seconds spent inside collectives (network phase).
    pub collective_seconds: f64,
    /// Summed per-rank seconds spent waiting at collective barriers.
    pub collective_wait_seconds: f64,
    /// The contention-resolved wall-clock timeline (empty unless
    /// recording was requested).
    pub timeline: NodeTimeline,
}

impl SimOutput {
    /// Wall-clock seconds until the last rank finished. Charges are
    /// validated finite at intake, so the `f64::max` fold cannot drop a
    /// NaN here.
    pub fn wall_seconds(&self) -> f64 {
        self.rank_seconds.iter().cloned().fold(0.0, f64::max)
    }
}

/// A calibration-*invariant* compiled segment: the raw recorded
/// quantities of one [`Segment`], labels interned, `String`s gone.
/// [`CompiledWorkload::compile`] builds these once per workload;
/// [`CompiledWorkload::cost_table`] prices them into [`CSeg`]s per
/// calibration.
#[derive(Debug, Clone, Copy)]
pub(crate) enum QSeg {
    /// Host work. `alloc` marks a recorded device-allocation charge,
    /// which reprices by the allocator-latency ratio instead of the CPU
    /// throughput ratio (mirrors the whatif repricer).
    Host {
        seconds: f64,
        alloc: bool,
        label: LabelId,
    },
    /// A kernel work descriptor (the [`crate::profile::KernelProfile`]
    /// quantities) plus its recorded dispatch overhead.
    Kernel {
        items: f64,
        flops_per_item: f64,
        bytes_per_item: f64,
        divergence: f64,
        dispatch: f64,
        name: LabelId,
        dispatch_label: LabelId,
    },
    /// A PCIe transfer's payload.
    Transfer { bytes: f64, label: LabelId },
    /// A collective's recorded solo cost and payload.
    Collective {
        seconds: f64,
        bytes: f64,
        label: LabelId,
        wait_label: LabelId,
    },
}

/// Per-rank replay metadata, calibration-invariant.
#[derive(Debug, Clone)]
pub(crate) struct CRank {
    /// Node-local arena range: this rank replays
    /// `node_segs[seg_start..seg_end]`.
    pub(crate) seg_start: u32,
    pub(crate) seg_end: u32,
    pub(crate) collectives_total: u32,
    pub(crate) peak_device_bytes: u64,
}

/// One node's slice of the flat arena plus its barrier structure.
#[derive(Debug, Clone)]
pub(crate) struct CNode {
    /// Offset of this node's segments in the flat arena.
    pub(crate) seg_base: usize,
    pub(crate) seg_len: usize,
    pub(crate) ranks: Vec<CRank>,
    /// Local participants per barrier seq — the node's full collective
    /// participant count at every seq (MPI semantics: a collective
    /// involves everyone who does collectives).
    pub(crate) local_expected: Vec<u32>,
    /// Convergence guard for the event loop, sized from the trace.
    pub(crate) step_limit: usize,
}

/// A workload compiled once into the calibration-invariant arena: the
/// segment graph, interned labels and per-node/per-rank topology that
/// every sweep point shares. Pricing a calibration against it
/// ([`CompiledWorkload::cost_table`]) touches no `String` and allocates
/// only the flat cost vector.
#[derive(Debug)]
pub(crate) struct CompiledWorkload {
    pub(crate) labels: LabelTable,
    qsegs: Vec<QSeg>,
    /// Provenance of each arena entry — `(global rank, original segment
    /// index)` — so cost-table errors report the recorded segment.
    src: Vec<(u32, u32)>,
    pub(crate) nodes: Vec<CNode>,
    lbl_stream_sync: LabelId,
    lbl_context_switch: LabelId,
}

/// How record-time-priced charges (host seconds, allocation latency,
/// collective solo cost) are rescaled when a cost table is materialized.
/// Mirrors [`crate::whatif::RecordedWorkload::reprice`] term for term so
/// a sweep point and a standalone replay of the same calibration produce
/// bit-identical cost tables.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Reprice {
    /// Keep the compiled charges untouched (the live path, and bitwise
    /// exact for it).
    Identity,
    /// Rescale for a what-if calibration.
    Scaled {
        /// Recorded / target CPU per-core throughput.
        host_ratio: f64,
        /// Target / recorded allocator latency.
        alloc_ratio: f64,
        /// Network the collective charges were priced with.
        recorded_net: NetCalib,
        /// Network to reprice them for.
        net: NetCalib,
        /// Ranks the analytic collective formula was priced for.
        total_ranks: u32,
    },
}

impl CompiledWorkload {
    /// Compile traces (one slice per node) into the flat arena: intern
    /// every label, validate every recorded quantity finite, capture the
    /// per-rank segment ranges and barrier topology.
    pub(crate) fn compile(node_traces: &[&[RankTrace]]) -> Result<Self, EngineError> {
        let mut labels = LabelTable::default();
        let lbl_stream_sync = labels.intern("stream_sync");
        let lbl_context_switch = labels.intern("context_switch");
        let lbl_alloc = labels.intern("accel_data_alloc");

        // `<name>/dispatch` labels, cached by the kernel name's label id:
        // building the string once per distinct kernel instead of once per
        // kernel segment keeps the compile pass allocation-light.
        let mut dispatch_labels: Vec<Option<LabelId>> = Vec::new();

        let total: usize = node_traces
            .iter()
            .flat_map(|n| n.iter())
            .map(|t| t.segments.len())
            .sum();
        let mut qsegs: Vec<QSeg> = Vec::with_capacity(total);
        let mut src: Vec<(u32, u32)> = Vec::with_capacity(total);
        let mut nodes: Vec<CNode> = Vec::with_capacity(node_traces.len());
        let mut rank_base = 0usize;
        for traces in node_traces {
            let seg_base = qsegs.len();
            let mut ranks: Vec<CRank> = Vec::with_capacity(traces.len());
            for (local, trace) in traces.iter().enumerate() {
                let seg_start = (qsegs.len() - seg_base) as u32;
                let mut collectives = 0u32;
                for (i, seg) in trace.segments.iter().enumerate() {
                    let check = |value: f64| -> Result<f64, EngineError> {
                        if value.is_finite() {
                            Ok(value)
                        } else {
                            Err(EngineError::NonFiniteCharge {
                                rank: rank_base + local,
                                segment: i,
                                label: seg.label().to_string(),
                                value,
                            })
                        }
                    };
                    let q = match seg {
                        Segment::Host { seconds, label } => {
                            if check(*seconds)? <= 0.0 {
                                continue;
                            }
                            QSeg::Host {
                                seconds: *seconds,
                                alloc: false,
                                label: labels.intern(label),
                            }
                        }
                        Segment::Kernel { profile, dispatch } => {
                            let name = labels.intern(&profile.name);
                            if dispatch_labels.len() <= name.index() {
                                dispatch_labels.resize(name.index() + 1, None);
                            }
                            let dispatch_label =
                                *dispatch_labels[name.index()].get_or_insert_with(|| {
                                    labels.intern(&format!("{}/dispatch", profile.name))
                                });
                            QSeg::Kernel {
                                items: check(profile.items)?,
                                flops_per_item: check(profile.flops_per_item)?,
                                bytes_per_item: check(profile.bytes_per_item)?,
                                divergence: check(profile.divergence)?,
                                dispatch: check(*dispatch)?,
                                name,
                                dispatch_label,
                            }
                        }
                        Segment::Transfer { bytes, label, .. } => QSeg::Transfer {
                            bytes: check(*bytes)?,
                            label: labels.intern(label),
                        },
                        Segment::DeviceAlloc { seconds } => {
                            if check(*seconds)? <= 0.0 {
                                continue;
                            }
                            QSeg::Host {
                                seconds: *seconds,
                                alloc: true,
                                label: lbl_alloc,
                            }
                        }
                        Segment::Collective {
                            seconds,
                            bytes,
                            label,
                        } => {
                            collectives += 1;
                            QSeg::Collective {
                                seconds: check(*seconds)?,
                                bytes: check(*bytes)?,
                                label: labels.intern(label),
                                wait_label: labels.intern(&format!("{label}/wait")),
                            }
                        }
                    };
                    qsegs.push(q);
                    src.push(((rank_base + local) as u32, i as u32));
                }
                ranks.push(CRank {
                    seg_start,
                    seg_end: (qsegs.len() - seg_base) as u32,
                    collectives_total: collectives,
                    peak_device_bytes: trace.peak_device_bytes,
                });
            }
            let max_local_seq =
                ranks.iter().map(|r| r.collectives_total).max().unwrap_or(0) as usize;
            // MPI semantics: a collective involves every rank that takes
            // part in collectives at all, so each barrier expects the
            // full local participant set. A participant whose trace runs
            // out of collectives early leaves later barriers short — the
            // replay then reports a deadlock naming the waiting ranks,
            // exactly as the real job would hang.
            let participants = ranks.iter().filter(|r| r.collectives_total > 0).count() as u32;
            let local_expected: Vec<u32> = vec![participants; max_local_seq];
            let step_limit = 20
                * ranks
                    .iter()
                    .map(|r| (r.seg_end - r.seg_start) as usize + 2)
                    .sum::<usize>()
                + 1000;
            rank_base += traces.len();
            nodes.push(CNode {
                seg_base,
                seg_len: qsegs.len() - seg_base,
                ranks,
                local_expected,
                step_limit,
            });
        }
        // Barriers are global: pad every node's expectation vector to the
        // job-wide barrier count so a node whose ranks run out of
        // collectives early still owes its participants to later
        // barriers (cross-node ragged jobs deadlock like intra-node
        // ones).
        let global_seq = nodes.iter().map(|n| n.local_expected.len()).max();
        if let Some(global_seq) = global_seq {
            for node in &mut nodes {
                let participants = node.local_expected.first().copied().unwrap_or(0);
                node.local_expected.resize(global_seq, participants);
            }
        }
        Ok(Self {
            labels,
            qsegs,
            src,
            nodes,
            lbl_stream_sync,
            lbl_context_switch,
        })
    }

    /// Number of compiled arena entries (= cost-table length).
    pub(crate) fn segment_count(&self) -> usize {
        self.qsegs.len()
    }

    /// Materialize the per-calibration cost table: one [`CSeg`] per arena
    /// entry, kernel and transfer costs priced from `gpu`, record-time
    /// charges rescaled per `reprice`. Every derived cost is validated
    /// finite — a broken calibration cannot smuggle NaN into the replay.
    pub(crate) fn cost_table(
        &self,
        gpu: &DeviceCalib,
        reprice: &Reprice,
    ) -> Result<Vec<CSeg>, EngineError> {
        let mut costs: Vec<CSeg> = Vec::with_capacity(self.qsegs.len());
        for (idx, q) in self.qsegs.iter().enumerate() {
            let check = |value: f64, label: LabelId| -> Result<f64, EngineError> {
                if value.is_finite() {
                    Ok(value)
                } else {
                    let (rank, segment) = self.src[idx];
                    Err(EngineError::NonFiniteCharge {
                        rank: rank as usize,
                        segment: segment as usize,
                        label: self.labels.resolve(label).to_string(),
                        value,
                    })
                }
            };
            let c = match *q {
                QSeg::Host {
                    seconds,
                    alloc,
                    label,
                } => {
                    let seconds = match reprice {
                        Reprice::Identity => seconds,
                        Reprice::Scaled {
                            host_ratio,
                            alloc_ratio,
                            ..
                        } => seconds * if alloc { *alloc_ratio } else { *host_ratio },
                    };
                    CSeg::Host {
                        seconds: check(seconds, label)?,
                        label,
                    }
                }
                QSeg::Kernel {
                    items,
                    flops_per_item,
                    bytes_per_item,
                    divergence,
                    dispatch,
                    name,
                    dispatch_label,
                } => CSeg::Kernel {
                    lead: check((dispatch + gpu.launch_latency).max(1e-12), name)?,
                    device_seconds: check(
                        device_seconds_raw(items, flops_per_item, bytes_per_item, divergence, gpu),
                        name,
                    )?,
                    util: check(solo_utilization_raw(items, gpu).max(1e-6), name)?,
                    name,
                    dispatch_label,
                },
                QSeg::Transfer { bytes, label } => CSeg::Transfer {
                    seconds: check(gpu.pcie_latency + bytes / gpu.pcie_bw, label)?,
                    label,
                },
                QSeg::Collective {
                    seconds,
                    bytes,
                    label,
                    wait_label,
                } => {
                    let seconds = match reprice {
                        Reprice::Identity => seconds,
                        Reprice::Scaled {
                            recorded_net,
                            net,
                            total_ranks,
                            ..
                        } => {
                            let was = allreduce_seconds(recorded_net, *total_ranks, bytes);
                            let now = allreduce_seconds(net, *total_ranks, bytes);
                            let ratio = if was > 0.0 { now / was } else { 1.0 };
                            seconds * ratio
                        }
                    };
                    CSeg::Collective {
                        seconds: check(seconds, label)?,
                        label,
                        wait_label,
                    }
                }
            };
            costs.push(c);
        }
        Ok(costs)
    }
}

/// A priced segment: every cost precomputed against one calibration,
/// every label interned. Plain old data — the cost table is a flat `Vec`
/// aligned 1:1 with the [`QSeg`] arena.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CSeg {
    /// Host work (including device-alloc latency) at rate 1.
    Host { seconds: f64, label: LabelId },
    /// A kernel: host lead-in (dispatch + launch latency), then
    /// `device_seconds` of demand at solo utilisation `util`.
    Kernel {
        lead: f64,
        device_seconds: f64,
        util: f64,
        name: LabelId,
        dispatch_label: LabelId,
    },
    /// A PCIe transfer: `seconds` of link time at full link rate.
    Transfer { seconds: f64, label: LabelId },
    /// A collective: barrier, then `seconds` of NIC time at full NIC
    /// rate. `wait_label` is the pre-built `<label>/wait` timeline tag.
    Collective {
        seconds: f64,
        label: LabelId,
        wait_label: LabelId,
    },
}

/// What a rank's main flow is currently doing. Remaining demand lives in
/// [`Rank::main_remaining`] so settle logic is uniform across variants.
#[derive(Debug, Clone, Copy)]
enum Act {
    /// Running host code (includes kernel dispatch lead-ins).
    Host,
    /// Kernel on the rank's GPU at solo utilisation `util`.
    Kernel { util: f64 },
    /// Synchronous transfer on the rank's GPU's PCIe link.
    Transfer,
    /// Inside a collective's network phase on the node NIC.
    Collective,
    /// Arrived at a collective barrier; `seconds` of network demand
    /// pending release.
    Barrier { seconds: f64, wait_label: LabelId },
    /// Blocked until the rank's async transfer stream drains.
    StreamWait,
    /// All segments consumed and the stream drained.
    Done,
}

/// One flow's service state: its current rate, when its remaining demand
/// was last settled, and its prediction bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct Flow {
    rate: f64,
    /// Virtual time `remaining` was last brought up to date.
    settled: f64,
    /// Prediction generation; queue entries with older generations are
    /// stale.
    gen: u64,
    /// Whether a live (current-generation) prediction is on the queue.
    scheduled: bool,
}

/// One rank's replay state, indices into the shard's arenas.
struct Rank {
    /// This rank's compiled segments: `segs[seg_next..seg_end]` remain.
    seg_next: u32,
    seg_end: u32,
    activity: Act,
    finish: f64,
    /// Arena index of a kernel whose host lead-in is currently running.
    pending_kernel: Option<u32>,
    /// Label of the current activity (for the timeline).
    cur_label: LabelId,
    /// Wall-clock start of the current activity.
    cur_start: f64,
    /// Node-local GPU index this rank's device work lands on.
    gpu: u32,
    /// Virtual time the current kernel reached the device (FIFO key).
    kernel_arrival: f64,
    /// Index of the next collective segment this rank will join.
    collective_seq: u32,
    /// FIFO of asynchronous transfers (head is on the link):
    /// `(remaining link-seconds, label)`.
    stream: VecDeque<(f64, LabelId)>,
    /// Wall-clock time the current stream head reached the link.
    stream_head_start: f64,
    main_remaining: f64,
    main: Flow,
    stream_flow: Flow,
}

impl Rank {
    fn is_main_active(&self) -> bool {
        matches!(
            self.activity,
            Act::Host | Act::Kernel { .. } | Act::Transfer | Act::Collective
        )
    }
}

/// A GPU's SM pool plus its current kernel membership and the reusable
/// policy scratch buffers.
struct PoolState {
    res: SmPool,
    /// Local ranks with an active kernel here, ascending (the policy's
    /// rank-order contract).
    kernels: Vec<u32>,
    reqs: Vec<KernelReq>,
    rates: Vec<f64>,
}

/// A PCIe link plus its member flows, sorted by `(rank, flow)`.
struct LinkState {
    res: PcieLink,
    members: Vec<(u32, FlowId)>,
}

/// The node NIC plus its member ranks, ascending.
struct NicState {
    res: Nic,
    members: Vec<u32>,
}

/// A timeline event before label resolution and index globalisation.
struct RawEvent {
    rank: u32,
    gpu: Option<u32>,
    label: LabelId,
    kind: TimelineKind,
    start: f64,
    end: f64,
}

/// One collective barrier: how many ranks must arrive, across all nodes.
struct Group {
    expected: usize,
    arrived: usize,
    max_arrival: f64,
}

/// One node's independent sub-simulation.
struct Shard<'a> {
    /// Global index of local rank 0 / local GPU 0.
    rank_base: usize,
    gpu_base: usize,
    policy: &'a dyn SchedulePolicy,
    cfg: &'a NodeConfig,
    record: bool,
    overlap: bool,
    /// This node's slice of the materialized cost table.
    segs: &'a [CSeg],
    ranks: Vec<Rank>,
    pools: Vec<PoolState>,
    links: Vec<LinkState>,
    nic: NicState,
    queue: EventQueue,
    now: f64,
    collective_wait_seconds: f64,
    /// Local participants per barrier seq (ranks with more collectives
    /// than the seq index) — read-only topology, borrowed from the
    /// compiled workload.
    local_expected: &'a [u32],
    /// Local arrivals per barrier seq so far.
    arrived_at: Vec<u32>,
    /// Local ranks waiting at each barrier seq, arrival order.
    waiting: Vec<Vec<u32>>,
    /// Arrivals since the coordinator last drained: `(seq, time)`.
    new_arrivals: Vec<(u32, f64)>,
    raw_events: Vec<RawEvent>,
    /// Occupancy samples with *local* GPU indices.
    occupancy: Vec<GpuSample>,
    lbl_stream_sync: LabelId,
    lbl_context_switch: LabelId,
    steps: usize,
    step_limit: usize,
    error: Option<EngineError>,
}

/// Replay `node_traces` (one slice of rank traces per node) against the
/// engine's resources. Returns the accumulated accounting, or a typed
/// [`EngineError`]: OOM when co-located peak footprints exceed a GPU's
/// memory, `NonFiniteCharge` when a recorded duration is NaN/infinite,
/// `Deadlock` when a barrier can never fill.
pub(crate) fn simulate(
    node_traces: &[&[RankTrace]],
    cfg: &NodeConfig,
    record: bool,
) -> Result<SimOutput, EngineError> {
    let compiled = CompiledWorkload::compile(node_traces)?;
    let costs = compiled.cost_table(&cfg.calib.gpu, &Reprice::Identity)?;
    simulate_compiled(&compiled, &costs, cfg, record)
}

/// Replay an already-compiled workload against a materialized cost
/// table — the sweep hot path: the arena, labels and topology in
/// `compiled` are shared across calls; only `costs` and the per-shard
/// runtime state are per-point.
pub(crate) fn simulate_compiled(
    compiled: &CompiledWorkload,
    costs: &[CSeg],
    cfg: &NodeConfig,
    record: bool,
) -> Result<SimOutput, EngineError> {
    debug_assert_eq!(costs.len(), compiled.segment_count());
    let gpus = cfg.gpus.max(1) as usize;

    // Memory feasibility per physical GPU: peak footprints of co-located
    // ranks must fit.
    for (n, node) in compiled.nodes.iter().enumerate() {
        for g in 0..gpus {
            let demanded: u64 = node
                .ranks
                .iter()
                .enumerate()
                .filter(|(r, _)| r % gpus == g)
                .map(|(_, cr)| cr.peak_device_bytes)
                .sum();
            if demanded > cfg.calib.gpu.mem_bytes {
                return Err(EngineError::Oom(NodeOom {
                    gpu: (n * gpus + g) as u32,
                    demanded,
                    capacity: cfg.calib.gpu.mem_bytes,
                }));
            }
        }
    }

    let mut shards: Vec<Shard<'_>> = Vec::with_capacity(compiled.nodes.len());
    let mut rank_base = 0usize;
    for (n, node) in compiled.nodes.iter().enumerate() {
        let segs = &costs[node.seg_base..node.seg_base + node.seg_len];
        shards.push(Shard::new(
            node,
            segs,
            rank_base,
            n * gpus,
            cfg,
            record,
            compiled.lbl_stream_sync,
            compiled.lbl_context_switch,
        ));
        rank_base += node.ranks.len();
    }
    // Barrier groups: collective `s` involves every rank that performs
    // collectives at all (MPI semantics), so symmetric jobs synchronise
    // globally and a ragged trace — one rank finishing its collectives
    // while peers still wait — deadlocks, as the real job would.
    let max_seq = shards
        .iter()
        .map(|s| s.local_expected.len())
        .max()
        .unwrap_or(0);
    let mut groups: Vec<Group> = (0..max_seq)
        .map(|s| Group {
            expected: shards
                .iter()
                .map(|sh| *sh.local_expected.get(s).unwrap_or(&0) as usize)
                .sum(),
            arrived: 0,
            max_arrival: 0.0,
        })
        .collect();

    // Prime every rank's first activity (may arrive at barriers at t=0).
    for shard in &mut shards {
        shard.prime();
    }

    // Phase loop: step all shards (in parallel) until each is blocked on
    // the earliest unreleased barrier, then release it at the global max
    // arrival time. Shards share nothing while stepping; every reduction
    // below walks them in node order, so results are deterministic
    // regardless of thread count.
    let mut next_seq = 0usize;
    loop {
        let target = (next_seq < groups.len()).then_some(next_seq as u32);
        shards
            .par_iter_mut()
            .for_each(|shard| shard.run_until_blocked(target));
        for shard in &shards {
            if let Some(e) = &shard.error {
                return Err(e.clone());
            }
        }
        for shard in &mut shards {
            for (seq, t) in shard.new_arrivals.drain(..) {
                debug_assert_eq!(seq as usize, next_seq, "arrival past the frontier barrier");
                let g = &mut groups[seq as usize];
                g.arrived += 1;
                g.max_arrival = g.max_arrival.max(t);
            }
        }
        let Some(seq) = target else {
            // No barriers left and every queue drained: anything not
            // Done is stuck for good.
            if blocked_ranks(&shards) > 0 {
                return Err(deadlock_error(&shards, &compiled.labels));
            }
            break;
        };
        let group = &groups[seq as usize];
        if group.arrived < group.expected {
            // Every shard quiesced, yet the frontier barrier is short.
            return Err(deadlock_error(&shards, &compiled.labels));
        }
        let release_at = group.max_arrival;
        for shard in &mut shards {
            shard.release(seq, release_at);
        }
        next_seq += 1;
    }

    Ok(merge_output(shards, &compiled.labels, record))
}

fn blocked_ranks(shards: &[Shard<'_>]) -> usize {
    shards
        .iter()
        .flat_map(|s| &s.ranks)
        .filter(|r| !matches!(r.activity, Act::Done))
        .count()
}

/// Assemble the deadlock report: every non-Done rank counts as blocked,
/// and the ones stuck *at a barrier* are named with the collective label
/// they wait under, in global rank order (shards are walked in node
/// order, ranks ascending, so the roster is deterministic).
fn deadlock_error(shards: &[Shard<'_>], labels: &LabelTable) -> EngineError {
    let mut waiting = Vec::new();
    for shard in shards {
        for (local, rank) in shard.ranks.iter().enumerate() {
            if matches!(rank.activity, Act::Barrier { .. }) {
                waiting.push((
                    shard.rank_base + local,
                    labels.resolve(rank.cur_label).to_string(),
                ));
            }
        }
    }
    EngineError::Deadlock {
        blocked: blocked_ranks(shards),
        waiting,
    }
}

/// Concatenate per-shard results in node order and resolve interned
/// labels back to strings for the public timeline.
fn merge_output(shards: Vec<Shard<'_>>, labels: &LabelTable, record: bool) -> SimOutput {
    let mut out = SimOutput::default();
    for shard in shards {
        out.rank_seconds
            .extend(shard.ranks.iter().map(|r| r.finish));
        out.gpu_busy.extend(shard.pools.iter().map(|p| p.res.busy));
        out.switch_seconds
            .extend(shard.pools.iter().map(|p| p.res.switch_seconds));
        out.nic_busy.push(shard.nic.res.busy);
        out.collective_seconds += shard.nic.res.collective_seconds;
        out.collective_wait_seconds += shard.collective_wait_seconds;
        if record {
            let rank_base = shard.rank_base;
            let gpu_base = shard.gpu_base;
            out.timeline
                .events
                .extend(shard.raw_events.into_iter().map(|e| TimelineEvent {
                    rank: rank_base + e.rank as usize,
                    gpu: e.gpu.map(|g| gpu_base + g as usize),
                    label: labels.resolve(e.label).to_string(),
                    kind: e.kind,
                    start: e.start,
                    end: e.end,
                }));
            out.timeline
                .occupancy
                .extend(shard.occupancy.into_iter().map(|s| GpuSample {
                    gpu: gpu_base + s.gpu,
                    ..s
                }));
        }
    }
    out
}

impl<'a> Shard<'a> {
    /// Instantiate one node's sub-simulation over its slice of a
    /// materialized cost table (`rank_base` globalises rank indices).
    #[allow(clippy::too_many_arguments)]
    fn new(
        node: &'a CNode,
        segs: &'a [CSeg],
        rank_base: usize,
        gpu_base: usize,
        cfg: &'a NodeConfig,
        record: bool,
        lbl_stream_sync: LabelId,
        lbl_context_switch: LabelId,
    ) -> Self {
        let gpus = cfg.gpus.max(1) as usize;
        let ranks: Vec<Rank> = node
            .ranks
            .iter()
            .enumerate()
            .map(|(local, cr)| Rank {
                seg_next: cr.seg_start,
                seg_end: cr.seg_end,
                activity: Act::Done,
                finish: 0.0,
                pending_kernel: None,
                cur_label: lbl_stream_sync,
                cur_start: 0.0,
                gpu: (local % gpus) as u32,
                kernel_arrival: 0.0,
                collective_seq: 0,
                stream: VecDeque::new(),
                stream_head_start: 0.0,
                main_remaining: 0.0,
                main: Flow::default(),
                stream_flow: Flow::default(),
            })
            .collect();

        let mut pools: Vec<PoolState> = (0..gpus)
            .map(|_| PoolState {
                res: SmPool::default(),
                kernels: Vec::new(),
                reqs: Vec::new(),
                rates: Vec::new(),
            })
            .collect();
        for r in &ranks {
            pools[r.gpu as usize].res.clients += 1;
        }

        let barriers = node.local_expected.len();
        Self {
            rank_base,
            gpu_base,
            policy: cfg.schedule.resolve(cfg.mps),
            cfg,
            record,
            overlap: cfg.overlap_transfers,
            segs,
            ranks,
            pools,
            links: (0..gpus)
                .map(|_| LinkState {
                    res: PcieLink::default(),
                    members: Vec::new(),
                })
                .collect(),
            nic: NicState {
                res: Nic::default(),
                members: Vec::new(),
            },
            queue: EventQueue::new(),
            now: 0.0,
            collective_wait_seconds: 0.0,
            arrived_at: vec![0; barriers],
            waiting: vec![Vec::new(); barriers],
            local_expected: &node.local_expected,
            new_arrivals: Vec::new(),
            raw_events: Vec::new(),
            occupancy: Vec::new(),
            lbl_stream_sync,
            lbl_context_switch,
            steps: 0,
            step_limit: node.step_limit,
            error: None,
        }
    }

    /// Start every rank's first activity at t = 0.
    fn prime(&mut self) {
        for r in 0..self.ranks.len() {
            self.advance_segment(r, 0.0);
        }
    }

    /// Pop and process events until the shard cannot or should not
    /// proceed: the queue is empty, or all local participants of the
    /// `target` barrier have arrived (events past the last local arrival
    /// stay queued — they are at times at or after it, and pop in order
    /// once the barrier's release lands).
    fn run_until_blocked(&mut self, target: Option<u32>) {
        if self.error.is_some() {
            return;
        }
        loop {
            if let Some(s) = target {
                let expected = *self.local_expected.get(s as usize).unwrap_or(&0);
                if expected > 0 && self.arrived_at[s as usize] >= expected {
                    return;
                }
            }
            let ranks = &self.ranks;
            let popped = self.queue.pop_valid(|r, flow| match flow {
                FlowId::Main => ranks[r].main.gen,
                FlowId::Stream => ranks[r].stream_flow.gen,
            });
            let Some((t, completion)) = popped else {
                return;
            };
            self.steps += 1;
            assert!(self.steps < self.step_limit, "replay failed to converge");
            debug_assert!(t >= self.now, "event queue went backwards");
            self.now = t;
            match completion.flow {
                FlowId::Main => self.complete_main(completion.rank, t),
                FlowId::Stream => self.complete_stream_head(completion.rank, t),
            }
            if self.error.is_some() {
                return;
            }
        }
    }

    /// Settle a main flow's remaining demand up to `now`, then apply
    /// `new_rate` and keep exactly one live prediction for it (none while
    /// the flow is inactive or starved).
    fn sync_main(&mut self, r: usize, new_rate: f64, now: f64) {
        let rank = &mut self.ranks[r];
        let dt = now - rank.main.settled;
        if rank.main.rate > 0.0 && dt > 0.0 {
            rank.main_remaining -= rank.main.rate * dt;
        }
        rank.main.settled = now;
        if new_rate != rank.main.rate {
            if rank.main.scheduled {
                rank.main.scheduled = false;
                self.queue.note_stale();
            }
            let rank = &mut self.ranks[r];
            rank.main.gen += 1;
            rank.main.rate = new_rate;
        }
        let rank = &self.ranks[r];
        if rank.main.rate > 0.0 && !rank.main.scheduled && rank.is_main_active() {
            let at = now + (rank.main_remaining / rank.main.rate).max(0.0);
            let completion = Completion {
                rank: r,
                flow: FlowId::Main,
                gen: rank.main.gen,
            };
            self.queue.push(at, completion);
            self.ranks[r].main.scheduled = true;
        }
    }

    /// Settle the stream head up to `now`, then apply `new_rate` with the
    /// same single-live-prediction discipline as [`Shard::sync_main`].
    fn sync_stream(&mut self, r: usize, new_rate: f64, now: f64) {
        let rank = &mut self.ranks[r];
        let dt = now - rank.stream_flow.settled;
        if rank.stream_flow.rate > 0.0 && dt > 0.0 {
            if let Some(head) = rank.stream.front_mut() {
                head.0 -= rank.stream_flow.rate * dt;
            }
        }
        rank.stream_flow.settled = now;
        if new_rate != rank.stream_flow.rate {
            if rank.stream_flow.scheduled {
                rank.stream_flow.scheduled = false;
                self.queue.note_stale();
            }
            let rank = &mut self.ranks[r];
            rank.stream_flow.gen += 1;
            rank.stream_flow.rate = new_rate;
        }
        let rank = &self.ranks[r];
        if rank.stream_flow.rate > 0.0 && !rank.stream_flow.scheduled {
            if let Some(&(remaining, _)) = rank.stream.front() {
                let at = now + (remaining / rank.stream_flow.rate).max(0.0);
                let completion = Completion {
                    rank: r,
                    flow: FlowId::Stream,
                    gen: rank.stream_flow.gen,
                };
                self.queue.push(at, completion);
                self.ranks[r].stream_flow.scheduled = true;
            }
        }
    }

    /// Re-arbitrate one GPU after its kernel membership changed: settle
    /// its accounting, rebuild the load sum and policy inputs in rank
    /// order (the FP-determinism contract), and re-rate every member.
    fn rerate_pool(&mut self, g: usize, now: f64) {
        let pool = &mut self.pools[g];
        pool.res.settle(now);
        let old_load = pool.res.load;
        let mut load = 0.0;
        pool.reqs.clear();
        for &k in &pool.kernels {
            let rank = &self.ranks[k as usize];
            let Act::Kernel { util } = rank.activity else {
                unreachable!("pool member without a kernel activity");
            };
            load += util;
            pool.reqs.push(KernelReq {
                rank: self.rank_base + k as usize,
                util,
                arrival: rank.kernel_arrival,
            });
        }
        pool.res.load = load;
        pool.rates.clear();
        if !pool.reqs.is_empty() {
            let ctx = GpuSchedContext {
                calib: &self.cfg.calib.gpu,
                load,
                clients: pool.res.clients,
            };
            self.policy.rates(&ctx, &pool.reqs, &mut pool.rates);
        }
        if self.record && load != old_load {
            self.occupancy.push(GpuSample {
                t: now,
                gpu: g,
                load: load.min(1.0),
            });
        }
        for i in 0..self.pools[g].kernels.len() {
            let member = self.pools[g].kernels[i] as usize;
            let rate = self.pools[g].rates[i];
            self.sync_main(member, rate, now);
        }
    }

    /// Re-rate one PCIe link's members after a flow joined or left.
    fn rerate_link(&mut self, g: usize, now: f64) {
        self.links[g].res.users = self.links[g].members.len() as u32;
        let rate = self.links[g].res.rate();
        for i in 0..self.links[g].members.len() {
            let (r, flow) = self.links[g].members[i];
            match flow {
                FlowId::Main => self.sync_main(r as usize, rate, now),
                FlowId::Stream => self.sync_stream(r as usize, rate, now),
            }
        }
    }

    /// Re-rate the NIC's members after a collective joined or left.
    fn rerate_nic(&mut self, now: f64) {
        self.nic.res.settle(now);
        self.nic.res.active = self.nic.members.len() as u32;
        let rate = self.nic.res.rate();
        for i in 0..self.nic.members.len() {
            let member = self.nic.members[i] as usize;
            self.sync_main(member, rate, now);
        }
    }

    fn link_join(&mut self, g: usize, r: usize, flow: FlowId, now: f64) {
        let key = (r as u32, flow);
        let members = &mut self.links[g].members;
        let at = members
            .binary_search_by_key(&member_key(key), |&m| member_key(m))
            .unwrap_err();
        members.insert(at, key);
        self.rerate_link(g, now);
    }

    fn link_leave(&mut self, g: usize, r: usize, flow: FlowId, now: f64) {
        let key = (r as u32, flow);
        let members = &mut self.links[g].members;
        let at = members
            .binary_search_by_key(&member_key(key), |&m| member_key(m))
            .expect("leaving flow is a link member");
        members.remove(at);
        self.rerate_link(g, now);
    }

    /// A main-flow completion prediction fired.
    fn complete_main(&mut self, r: usize, t: f64) {
        // The queue entry is consumed either way.
        {
            let rank = &mut self.ranks[r];
            rank.main.scheduled = false;
            let dt = t - rank.main.settled;
            if dt > 0.0 {
                rank.main_remaining -= rank.main.rate * dt;
            }
            rank.main.settled = t;
            if rank.main_remaining > EPS {
                // The prediction missed by an ulp; re-aim unless the gap
                // is below the clock's resolution at this magnitude.
                let at = t + (rank.main_remaining / rank.main.rate).max(0.0);
                if at > t {
                    let completion = Completion {
                        rank: r,
                        flow: FlowId::Main,
                        gen: rank.main.gen,
                    };
                    rank.main.scheduled = true;
                    self.queue.push(at, completion);
                    return;
                }
            }
        }

        let act = self.ranks[r].activity;
        if self.record {
            let (kind, gpu) = match act {
                Act::Host => (TimelineKind::Host, None),
                Act::Kernel { .. } => (TimelineKind::Kernel, Some(self.ranks[r].gpu)),
                Act::Transfer => (TimelineKind::Transfer, Some(self.ranks[r].gpu)),
                Act::Collective => (TimelineKind::Collective, None),
                _ => unreachable!("finished implies a timed activity"),
            };
            self.raw_events.push(RawEvent {
                rank: r as u32,
                gpu,
                label: self.ranks[r].cur_label,
                kind,
                start: self.ranks[r].cur_start,
                end: t,
            });
        }

        // Leave the finished activity's resource (re-rating the peers).
        let g = self.ranks[r].gpu as usize;
        match act {
            Act::Kernel { .. } => {
                let kernels = &mut self.pools[g].kernels;
                let at = kernels
                    .binary_search(&(r as u32))
                    .expect("finished kernel is a pool member");
                kernels.remove(at);
                self.rerate_pool(g, t);
            }
            Act::Transfer => self.link_leave(g, r, FlowId::Main, t),
            Act::Collective => {
                let at = self
                    .nic
                    .members
                    .binary_search(&(r as u32))
                    .expect("finished collective is a NIC member");
                self.nic.members.remove(at);
                self.rerate_nic(t);
            }
            Act::Host => {}
            _ => unreachable!("finished implies a timed activity"),
        }

        self.advance_segment(r, t);
        self.ranks[r].cur_start = t;
        self.finish_if_done(r, t);
    }

    /// A stream-head completion prediction fired.
    fn complete_stream_head(&mut self, r: usize, t: f64) {
        {
            let rank = &mut self.ranks[r];
            rank.stream_flow.scheduled = false;
            let dt = t - rank.stream_flow.settled;
            if let Some(head) = rank.stream.front_mut() {
                if dt > 0.0 {
                    head.0 -= rank.stream_flow.rate * dt;
                }
                rank.stream_flow.settled = t;
                if head.0 > EPS {
                    let at = t + (head.0 / rank.stream_flow.rate).max(0.0);
                    if at > t {
                        let completion = Completion {
                            rank: r,
                            flow: FlowId::Stream,
                            gen: rank.stream_flow.gen,
                        };
                        rank.stream_flow.scheduled = true;
                        self.queue.push(at, completion);
                        return;
                    }
                }
            }
        }
        let Some((_, label)) = self.ranks[r].stream.pop_front() else {
            self.error = Some(EngineError::StreamUnderflow {
                rank: self.rank_base + r,
                flow: FlowId::Stream,
            });
            return;
        };
        if self.record {
            self.raw_events.push(RawEvent {
                rank: r as u32,
                gpu: Some(self.ranks[r].gpu),
                label,
                kind: TimelineKind::Transfer,
                start: self.ranks[r].stream_head_start,
                end: t,
            });
        }
        self.ranks[r].stream_head_start = t;
        let g = self.ranks[r].gpu as usize;
        if !self.ranks[r].stream.is_empty() {
            // Next head takes the wire at the unchanged link rate; the
            // consumed prediction just needs a successor.
            let rank = &self.ranks[r];
            let at = t + (rank.stream.front().unwrap().0 / rank.stream_flow.rate).max(0.0);
            let completion = Completion {
                rank: r,
                flow: FlowId::Stream,
                gen: rank.stream_flow.gen,
            };
            self.queue.push(at, completion);
            self.ranks[r].stream_flow.scheduled = true;
            return;
        }
        self.link_leave(g, r, FlowId::Stream, t);
        if matches!(self.ranks[r].activity, Act::StreamWait) {
            // The stream drained while the main flow was synchronising on
            // it: record the wait and resume the segment chain.
            if self.record && t > self.ranks[r].cur_start {
                self.raw_events.push(RawEvent {
                    rank: r as u32,
                    gpu: Some(self.ranks[r].gpu),
                    label: self.lbl_stream_sync,
                    kind: TimelineKind::Wait,
                    start: self.ranks[r].cur_start,
                    end: t,
                });
            }
            self.advance_segment(r, t);
            self.ranks[r].cur_start = t;
            self.finish_if_done(r, t);
        }
    }

    fn finish_if_done(&mut self, r: usize, t: f64) {
        if matches!(self.ranks[r].activity, Act::Done) && self.ranks[r].finish == 0.0 {
            self.ranks[r].finish = t;
        }
    }

    /// Pop the next segment of rank `r` into its activity slot and join
    /// the segment's resource. A `Kernel` arena entry expands to a host
    /// lead-in followed by the device part, staged through
    /// `pending_kernel`. Under overlapped transfers, `Transfer` entries
    /// enqueue on the rank's stream without blocking, and a kernel
    /// synchronises on the stream first.
    fn advance_segment(&mut self, r: usize, now: f64) {
        if let Some(seg) = self.ranks[r].pending_kernel.take() {
            self.start_kernel(r, seg as usize, now);
            return;
        }
        loop {
            let rank = &self.ranks[r];
            if rank.seg_next >= rank.seg_end {
                let rank = &mut self.ranks[r];
                if !rank.stream.is_empty() {
                    rank.cur_label = self.lbl_stream_sync;
                    rank.activity = Act::StreamWait;
                } else {
                    rank.activity = Act::Done;
                }
                self.sync_main(r, 0.0, now);
                return;
            }
            let seg = self.segs[rank.seg_next as usize];
            // A kernel consumes data the stream may still be moving:
            // synchronise before the launch (decided before consuming the
            // segment, so the retry after the drain sees it again).
            if self.overlap && !rank.stream.is_empty() && matches!(seg, CSeg::Kernel { .. }) {
                let rank = &mut self.ranks[r];
                rank.cur_label = self.lbl_stream_sync;
                rank.activity = Act::StreamWait;
                self.sync_main(r, 0.0, now);
                return;
            }
            self.ranks[r].seg_next += 1;
            match seg {
                CSeg::Host { seconds, label } => {
                    let rank = &mut self.ranks[r];
                    rank.cur_label = label;
                    rank.activity = Act::Host;
                    rank.main_remaining = seconds;
                    rank.main.settled = now;
                    self.sync_main(r, 1.0, now);
                    return;
                }
                CSeg::Kernel {
                    lead,
                    dispatch_label,
                    ..
                } => {
                    let rank = &mut self.ranks[r];
                    rank.pending_kernel = Some(rank.seg_next - 1);
                    rank.cur_label = dispatch_label;
                    rank.activity = Act::Host;
                    rank.main_remaining = lead;
                    rank.main.settled = now;
                    self.sync_main(r, 1.0, now);
                    return;
                }
                CSeg::Transfer { seconds, label } => {
                    if self.overlap {
                        let rank = &mut self.ranks[r];
                        rank.stream.push_back((seconds, label));
                        if rank.stream.len() == 1 {
                            rank.stream_head_start = now;
                            rank.stream_flow.settled = now;
                            let g = rank.gpu as usize;
                            self.link_join(g, r, FlowId::Stream, now);
                        }
                        continue;
                    }
                    let rank = &mut self.ranks[r];
                    rank.cur_label = label;
                    rank.activity = Act::Transfer;
                    rank.main_remaining = seconds;
                    rank.main.settled = now;
                    let g = rank.gpu as usize;
                    self.link_join(g, r, FlowId::Main, now);
                    return;
                }
                CSeg::Collective {
                    seconds,
                    label,
                    wait_label,
                } => {
                    let rank = &mut self.ranks[r];
                    let seq = rank.collective_seq;
                    rank.collective_seq += 1;
                    rank.cur_label = label;
                    rank.cur_start = now;
                    rank.activity = Act::Barrier {
                        seconds,
                        wait_label,
                    };
                    self.sync_main(r, 0.0, now);
                    self.arrived_at[seq as usize] += 1;
                    self.waiting[seq as usize].push(r as u32);
                    self.new_arrivals.push((seq, now));
                    return;
                }
            }
        }
    }

    /// The host lead-in of a kernel finished: put the device part on the
    /// GPU, charging the policy's context-switch demand and stamping the
    /// FIFO arrival.
    fn start_kernel(&mut self, r: usize, seg: usize, now: f64) {
        let CSeg::Kernel {
            device_seconds,
            util,
            name,
            ..
        } = self.segs[seg]
        else {
            unreachable!("pending_kernel points at a kernel segment");
        };
        let g = self.ranks[r].gpu as usize;
        {
            let rank = &mut self.ranks[r];
            rank.cur_label = name;
            rank.activity = Act::Kernel { util };
            rank.main_remaining = device_seconds;
            rank.main.settled = now;
            rank.kernel_arrival = now;
        }
        let ctx = GpuSchedContext {
            calib: &self.cfg.calib.gpu,
            load: self.pools[g].res.load,
            clients: self.pools[g].res.clients,
        };
        let extra = self.policy.switch_demand(&ctx);
        if extra > 0.0 {
            self.ranks[r].main_remaining += extra;
            self.pools[g].res.switch_seconds += extra;
            if self.record {
                self.raw_events.push(RawEvent {
                    rank: r as u32,
                    gpu: Some(g as u32),
                    label: self.lbl_context_switch,
                    kind: TimelineKind::ContextSwitch,
                    start: now,
                    end: now,
                });
            }
        }
        let kernels = &mut self.pools[g].kernels;
        let at = kernels.binary_search(&(r as u32)).unwrap_err();
        kernels.insert(at, r as u32);
        self.rerate_pool(g, now);
    }

    /// The coordinator released barrier `seq` at global time `t`: move
    /// every local rank waiting there into its collective network phase.
    fn release(&mut self, seq: u32, t: f64) {
        let Some(waiting) = self.waiting.get_mut(seq as usize) else {
            return;
        };
        let waiting = std::mem::take(waiting);
        if waiting.is_empty() {
            return;
        }
        for &w in &waiting {
            let rank = &mut self.ranks[w as usize];
            let Act::Barrier {
                seconds,
                wait_label,
            } = rank.activity
            else {
                unreachable!("waiting rank must be at the barrier");
            };
            let wait = t - rank.cur_start;
            self.collective_wait_seconds += wait;
            if self.record && wait > 0.0 {
                let start = rank.cur_start;
                self.raw_events.push(RawEvent {
                    rank: w,
                    gpu: None,
                    label: wait_label,
                    kind: TimelineKind::Wait,
                    start,
                    end: t,
                });
            }
            let rank = &mut self.ranks[w as usize];
            rank.activity = Act::Collective;
            rank.main_remaining = seconds;
            rank.main.settled = t;
            rank.cur_start = t;
            let at = self.nic.members.binary_search(&w).unwrap_err();
            self.nic.members.insert(at, w);
        }
        self.rerate_nic(t);
    }
}

fn member_key(m: (u32, FlowId)) -> (u32, u8) {
    (
        m.0,
        match m.1 {
            FlowId::Main => 0,
            FlowId::Stream => 1,
        },
    )
}
