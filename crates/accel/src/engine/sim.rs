//! The discrete-event core: ranks, flows, resources and the event loop.
//!
//! The engine replays recorded [`RankTrace`]s against typed shared
//! resources ([`SmPool`], [`PcieLink`], [`Nic`]) on one virtual clock.
//! Between events every active *flow* (a rank's current segment, or the
//! head of its async transfer stream) drains at a constant rate; an event
//! is whatever changes a rate:
//!
//! * a flow completing (predicted on the [`EventHeap`], lazily
//!   invalidated when resource membership shifts),
//! * a barrier releasing (the last rank arriving at a collective),
//! * a stream draining (waking a kernel that was waiting on its data).
//!
//! Kernel arbitration is delegated to the configured
//! [`SchedulePolicy`]; host segments always run at rate 1 (cores are
//! partitioned among ranks and segments were sized for their thread
//! count); PCIe links and NICs are shared equally among their users.
//!
//! The semantics for the default configuration (one node, synchronous
//! transfers, MPS or time-sliced arbitration) are those of the original
//! analytic replay, reproduced step for step — the golden-path regression
//! in `repro-bench` holds the engine to the pre-refactor makespans within
//! 1e-9.

use std::collections::VecDeque;

use crate::engine::event::{Completion, EventHeap, FlowId};
use crate::engine::policy::{GpuSchedContext, KernelReq, SchedulePolicy};
use crate::engine::resources::{Nic, PcieLink, SmPool};
use crate::node::{GpuSample, NodeConfig, NodeOom, NodeTimeline, TimelineEvent, TimelineKind};
use crate::trace::{RankTrace, Segment};

/// Everything the event loop accumulates.
#[derive(Debug, Default)]
pub(crate) struct SimOutput {
    /// Per-rank completion times, global rank order (node-major).
    pub rank_seconds: Vec<f64>,
    /// Per-GPU busy seconds, global GPU order (node-major).
    pub gpu_busy: Vec<f64>,
    /// Per-GPU context-switch seconds, global GPU order.
    pub switch_seconds: Vec<f64>,
    /// Per-node NIC busy seconds.
    pub nic_busy: Vec<f64>,
    /// Summed per-rank seconds spent inside collectives (network phase).
    pub collective_seconds: f64,
    /// Summed per-rank seconds spent waiting at collective barriers.
    pub collective_wait_seconds: f64,
    /// The contention-resolved wall-clock timeline (empty unless
    /// recording was requested).
    pub timeline: NodeTimeline,
}

impl SimOutput {
    /// Wall-clock seconds until the last rank finished.
    pub fn wall_seconds(&self) -> f64 {
        self.rank_seconds.iter().cloned().fold(0.0, f64::max)
    }
}

/// What a rank's main flow is currently doing.
#[derive(Debug, Clone)]
enum Activity {
    /// Running host code; `remaining` host-seconds left.
    Host { remaining: f64 },
    /// Kernel on global GPU `gpu`: `remaining` device-seconds of demand
    /// at solo utilisation `util`.
    Kernel {
        gpu: usize,
        remaining: f64,
        util: f64,
    },
    /// Synchronous transfer on `gpu`'s PCIe link; `remaining`
    /// link-seconds.
    Transfer { gpu: usize, remaining: f64 },
    /// Inside a collective's network phase on `node`'s NIC; `remaining`
    /// NIC-seconds (the analytic solo cost).
    Collective { node: usize, remaining: f64 },
    /// Arrived at collective barrier `seq`; `seconds` of network demand
    /// pending release.
    Barrier { seconds: f64 },
    /// Blocked until the rank's async transfer stream drains (a kernel
    /// needs the data, or the trace ended with transfers in flight).
    StreamWait,
    /// All segments consumed and the stream drained.
    Done,
}

/// One queued asynchronous transfer on a rank's stream.
#[derive(Debug, Clone)]
struct StreamXfer {
    remaining: f64,
    label: String,
}

struct RankState<'a> {
    segments: &'a [Segment],
    next: usize,
    activity: Activity,
    finish: f64,
    /// Device part of a kernel whose host lead-in (dispatch + launch
    /// latency) is currently running: `(device_seconds, utilization,
    /// kernel name)`.
    pending_kernel: Option<(f64, f64, String)>,
    /// Label of the current activity (for the timeline).
    cur_label: String,
    /// Wall-clock start of the current activity.
    cur_start: f64,
    /// Home node of this rank.
    node: usize,
    /// Global GPU index this rank's device work lands on.
    gpu: usize,
    /// Virtual time the current kernel reached the device (FIFO key).
    kernel_arrival: f64,
    /// Index of the next collective segment this rank will join.
    collective_seq: usize,
    /// FIFO of asynchronous transfers (head is on the link).
    stream: VecDeque<StreamXfer>,
    /// Wall-clock time the current stream head reached the link.
    stream_head_start: f64,
    /// Cached service rates, generations and dirty flags per flow.
    main_rate: f64,
    main_gen: u64,
    main_dirty: bool,
    stream_rate: f64,
    stream_gen: u64,
    stream_dirty: bool,
}

impl RankState<'_> {
    fn remaining_main(&self) -> Option<f64> {
        match &self.activity {
            Activity::Host { remaining }
            | Activity::Kernel { remaining, .. }
            | Activity::Transfer { remaining, .. }
            | Activity::Collective { remaining, .. } => Some(*remaining),
            Activity::Barrier { .. } | Activity::StreamWait | Activity::Done => None,
        }
    }
}

/// One collective barrier: how many ranks must arrive, who is waiting.
struct BarrierGroup {
    expected: usize,
    arrived: usize,
    waiting: Vec<usize>,
}

pub(crate) struct Engine<'a> {
    cfg: &'a NodeConfig,
    policy: &'a dyn SchedulePolicy,
    record: bool,
    gpus_per_node: usize,
    ranks: Vec<RankState<'a>>,
    pools: Vec<SmPool>,
    links: Vec<PcieLink>,
    nics: Vec<Nic>,
    groups: Vec<BarrierGroup>,
    heap: EventHeap,
    timeline: NodeTimeline,
    collective_seconds: f64,
    collective_wait_seconds: f64,
    /// Scratch: per-GPU kernel requests and policy-assigned rates.
    kernel_reqs: Vec<Vec<KernelReq>>,
    kernel_rates: Vec<Vec<f64>>,
    now: f64,
}

/// Replay `node_traces` (one slice of rank traces per node) against the
/// engine's resources. Returns the accumulated accounting or an OOM when
/// the combined peak footprints of the ranks sharing a GPU exceed its
/// memory (`NodeOom::gpu` is the *global* GPU index).
pub(crate) fn simulate(
    node_traces: &[&[RankTrace]],
    cfg: &NodeConfig,
    record: bool,
) -> Result<SimOutput, NodeOom> {
    let gpus = cfg.gpus.max(1) as usize;

    // Memory feasibility per physical GPU: peak footprints of co-located
    // ranks must fit.
    for (n, traces) in node_traces.iter().enumerate() {
        for g in 0..gpus {
            let demanded: u64 = traces
                .iter()
                .enumerate()
                .filter(|(r, _)| r % gpus == g)
                .map(|(_, t)| t.peak_device_bytes)
                .sum();
            if demanded > cfg.calib.gpu.mem_bytes {
                return Err(NodeOom {
                    gpu: (n * gpus + g) as u32,
                    demanded,
                    capacity: cfg.calib.gpu.mem_bytes,
                });
            }
        }
    }

    let mut engine = Engine::new(node_traces, cfg, record);
    engine.run();
    Ok(engine.into_output())
}

impl<'a> Engine<'a> {
    fn new(node_traces: &[&'a [RankTrace]], cfg: &'a NodeConfig, record: bool) -> Self {
        let gpus = cfg.gpus.max(1) as usize;
        let nodes = node_traces.len();
        let total_gpus = nodes * gpus;

        let mut ranks: Vec<RankState<'a>> = Vec::new();
        for (n, traces) in node_traces.iter().enumerate() {
            for (local, t) in traces.iter().enumerate() {
                ranks.push(RankState {
                    segments: &t.segments,
                    next: 0,
                    activity: Activity::Done,
                    finish: 0.0,
                    pending_kernel: None,
                    cur_label: String::new(),
                    cur_start: 0.0,
                    node: n,
                    gpu: n * gpus + local % gpus,
                    kernel_arrival: 0.0,
                    collective_seq: 0,
                    stream: VecDeque::new(),
                    stream_head_start: 0.0,
                    main_rate: 0.0,
                    main_gen: 0,
                    main_dirty: true,
                    stream_rate: 0.0,
                    stream_gen: 0,
                    stream_dirty: true,
                });
            }
        }

        let mut pools: Vec<SmPool> = vec![SmPool::default(); total_gpus];
        for r in &ranks {
            pools[r.gpu].clients += 1;
        }

        // Barrier groups: collective `s` involves every rank whose trace
        // contains more than `s` collective segments, so symmetric jobs
        // synchronise globally and ragged traces cannot deadlock.
        let counts: Vec<usize> = ranks
            .iter()
            .map(|r| {
                r.segments
                    .iter()
                    .filter(|s| matches!(s, Segment::Collective { .. }))
                    .count()
            })
            .collect();
        let max_seq = counts.iter().copied().max().unwrap_or(0);
        let groups = (0..max_seq)
            .map(|s| BarrierGroup {
                expected: counts.iter().filter(|&&c| c > s).count(),
                arrived: 0,
                waiting: Vec::new(),
            })
            .collect();

        Self {
            cfg,
            policy: cfg.schedule.resolve(cfg.mps),
            record,
            gpus_per_node: gpus,
            ranks,
            pools,
            links: vec![PcieLink::default(); total_gpus],
            nics: vec![Nic::default(); nodes],
            groups,
            heap: EventHeap::new(),
            timeline: NodeTimeline::default(),
            collective_seconds: 0.0,
            collective_wait_seconds: 0.0,
            kernel_reqs: vec![Vec::new(); total_gpus],
            kernel_rates: vec![Vec::new(); total_gpus],
            now: 0.0,
        }
    }

    fn run(&mut self) {
        // Prime every rank's first activity.
        for r in 0..self.ranks.len() {
            self.advance_segment(r);
            self.enter_kernel_if_needed(r);
        }

        let mut guard = 0usize;
        let guard_limit = 20
            * self
                .ranks
                .iter()
                .map(|s| s.segments.len() + 2)
                .sum::<usize>()
            + 1000;

        loop {
            guard += 1;
            assert!(guard < guard_limit, "replay failed to converge");

            self.refresh_rates();

            // Predicted completion of the earliest valid flow defines dt.
            let ranks = &self.ranks;
            let popped = self.heap.pop_valid(|r, flow| match flow {
                FlowId::Main => ranks[r].main_gen,
                FlowId::Stream => ranks[r].stream_gen,
            });
            let Some((t, completion)) = popped else {
                // Nothing can complete: everything is Done, or the replay
                // deadlocked (a barrier that can never fill) — the latter
                // is a bug worth failing loudly on.
                let stuck = self
                    .ranks
                    .iter()
                    .filter(|s| !matches!(s.activity, Activity::Done))
                    .count();
                assert!(
                    stuck == 0,
                    "replay deadlocked: {stuck} rank(s) blocked with no pending event"
                );
                break;
            };
            let dt = (t - self.now).max(0.0);

            if self.record {
                for (g, pool) in self.pools.iter().enumerate() {
                    self.timeline.occupancy.push(GpuSample {
                        t: self.now,
                        gpu: g,
                        load: pool.load.min(1.0),
                    });
                }
            }
            self.now += dt;
            for pool in &mut self.pools {
                pool.accumulate(dt);
            }
            for nic in &mut self.nics {
                nic.accumulate(dt);
            }
            self.collective_seconds += dt
                * self
                    .ranks
                    .iter()
                    .filter(|s| matches!(s.activity, Activity::Collective { .. }))
                    .count() as f64;

            // Advance every flow and process completions in rank order.
            let mut completed_popped = false;
            for r in 0..self.ranks.len() {
                let main_finished = {
                    let s = &mut self.ranks[r];
                    let served = s.main_rate * dt;
                    match &mut s.activity {
                        Activity::Host { remaining }
                        | Activity::Kernel { remaining, .. }
                        | Activity::Transfer { remaining, .. }
                        | Activity::Collective { remaining, .. } => {
                            *remaining -= served;
                            *remaining <= 1e-15
                        }
                        _ => false,
                    }
                };
                if main_finished {
                    if completion.rank == r && completion.flow == FlowId::Main {
                        completed_popped = true;
                    }
                    self.complete_main(r);
                }

                let stream_finished = {
                    let s = &mut self.ranks[r];
                    match s.stream.front_mut() {
                        Some(head) => {
                            head.remaining -= s.stream_rate * dt;
                            head.remaining <= 1e-15
                        }
                        None => false,
                    }
                };
                if stream_finished {
                    if completion.rank == r && completion.flow == FlowId::Stream {
                        completed_popped = true;
                    }
                    self.complete_stream_head(r);
                }
            }

            // The popped prediction can miss by an ulp when the clock is
            // large; if its flow survived, force a fresh prediction so the
            // replay cannot stall.
            if !completed_popped {
                match completion.flow {
                    FlowId::Main => self.ranks[completion.rank].main_dirty = true,
                    FlowId::Stream => self.ranks[completion.rank].stream_dirty = true,
                }
            }
        }
    }

    /// Recompute resource membership and every flow's service rate;
    /// schedule fresh completion predictions for flows whose rate changed.
    fn refresh_rates(&mut self) {
        for pool in &mut self.pools {
            pool.load = 0.0;
        }
        for link in &mut self.links {
            link.users = 0;
        }
        for nic in &mut self.nics {
            nic.active = 0;
        }
        for reqs in &mut self.kernel_reqs {
            reqs.clear();
        }

        for (r, s) in self.ranks.iter().enumerate() {
            match &s.activity {
                Activity::Kernel { gpu, util, .. } => {
                    self.pools[*gpu].load += *util;
                    self.kernel_reqs[*gpu].push(KernelReq {
                        rank: r,
                        util: *util,
                        arrival: s.kernel_arrival,
                    });
                }
                Activity::Transfer { gpu, .. } => self.links[*gpu].users += 1,
                Activity::Collective { node, .. } => self.nics[*node].active += 1,
                _ => {}
            }
            if !s.stream.is_empty() {
                self.links[s.gpu].users += 1;
            }
        }

        for g in 0..self.pools.len() {
            self.kernel_rates[g].clear();
            if !self.kernel_reqs[g].is_empty() {
                let ctx = GpuSchedContext {
                    calib: &self.cfg.calib.gpu,
                    load: self.pools[g].load,
                    clients: self.pools[g].clients,
                };
                self.policy
                    .rates(&ctx, &self.kernel_reqs[g], &mut self.kernel_rates[g]);
            }
        }
        // Scatter policy rates back by rank.
        let mut kernel_rate_of = vec![0.0f64; self.ranks.len()];
        for g in 0..self.kernel_reqs.len() {
            for (i, req) in self.kernel_reqs[g].iter().enumerate() {
                kernel_rate_of[req.rank] = self.kernel_rates[g][i];
            }
        }

        // Indexed in rank order on purpose: r addresses ranks,
        // kernel_rate_of, links and nics together, and the order is the
        // FP-determinism contract.
        #[allow(clippy::needless_range_loop)]
        for r in 0..self.ranks.len() {
            let main_rate = match &self.ranks[r].activity {
                Activity::Host { .. } => 1.0,
                Activity::Kernel { .. } => kernel_rate_of[r],
                Activity::Transfer { gpu, .. } => self.links[*gpu].rate(),
                Activity::Collective { node, .. } => self.nics[*node].rate(),
                Activity::Barrier { .. } | Activity::StreamWait | Activity::Done => 0.0,
            };
            let s = &mut self.ranks[r];
            if s.main_dirty || main_rate != s.main_rate {
                s.main_rate = main_rate;
                s.main_dirty = false;
                s.main_gen += 1;
                if main_rate > 0.0 {
                    if let Some(remaining) = s.remaining_main() {
                        self.heap.push(
                            self.now + remaining / main_rate,
                            Completion {
                                rank: r,
                                flow: FlowId::Main,
                                gen: s.main_gen,
                            },
                        );
                    }
                }
            }

            let stream_rate = if self.ranks[r].stream.is_empty() {
                0.0
            } else {
                self.links[self.ranks[r].gpu].rate()
            };
            let s = &mut self.ranks[r];
            if s.stream_dirty || stream_rate != s.stream_rate {
                s.stream_rate = stream_rate;
                s.stream_dirty = false;
                s.stream_gen += 1;
                if stream_rate > 0.0 {
                    if let Some(head) = s.stream.front() {
                        self.heap.push(
                            self.now + head.remaining / stream_rate,
                            Completion {
                                rank: r,
                                flow: FlowId::Stream,
                                gen: s.stream_gen,
                            },
                        );
                    }
                }
            }
        }
    }

    /// A rank's main flow finished: record it, move to the next segment.
    fn complete_main(&mut self, r: usize) {
        if self.record {
            let (kind, gpu) = match &self.ranks[r].activity {
                Activity::Host { .. } => (TimelineKind::Host, None),
                Activity::Kernel { gpu, .. } => (TimelineKind::Kernel, Some(*gpu)),
                Activity::Transfer { gpu, .. } => (TimelineKind::Transfer, Some(*gpu)),
                Activity::Collective { .. } => (TimelineKind::Collective, None),
                _ => unreachable!("finished implies a timed activity"),
            };
            self.timeline.events.push(TimelineEvent {
                rank: r,
                gpu,
                label: self.ranks[r].cur_label.clone(),
                kind,
                start: self.ranks[r].cur_start,
                end: self.now,
            });
        }
        self.advance_segment(r);
        self.ranks[r].cur_start = self.now;
        self.enter_kernel_if_needed(r);
        self.finish_if_done(r);
    }

    /// The head of a rank's async transfer stream finished.
    fn complete_stream_head(&mut self, r: usize) {
        let head = self.ranks[r].stream.pop_front().expect("head exists");
        if self.record {
            self.timeline.events.push(TimelineEvent {
                rank: r,
                gpu: Some(self.ranks[r].gpu),
                label: head.label,
                kind: TimelineKind::Transfer,
                start: self.ranks[r].stream_head_start,
                end: self.now,
            });
        }
        self.ranks[r].stream_head_start = self.now;
        self.ranks[r].stream_dirty = true;
        if self.ranks[r].stream.is_empty() && matches!(self.ranks[r].activity, Activity::StreamWait)
        {
            // The stream drained while the main flow was synchronising on
            // it: record the wait and resume the segment chain.
            if self.record && self.now > self.ranks[r].cur_start {
                self.timeline.events.push(TimelineEvent {
                    rank: r,
                    gpu: Some(self.ranks[r].gpu),
                    label: "stream_sync".into(),
                    kind: TimelineKind::Wait,
                    start: self.ranks[r].cur_start,
                    end: self.now,
                });
            }
            self.advance_segment(r);
            self.ranks[r].cur_start = self.now;
            self.enter_kernel_if_needed(r);
            self.finish_if_done(r);
        }
    }

    fn finish_if_done(&mut self, r: usize) {
        if matches!(self.ranks[r].activity, Activity::Done) && self.ranks[r].finish == 0.0 {
            self.ranks[r].finish = self.now;
        }
    }

    /// Charge the policy's context-switch demand when a rank's new
    /// activity is a kernel, and stamp its arrival for FIFO arbitration.
    fn enter_kernel_if_needed(&mut self, r: usize) {
        let gpu = match &self.ranks[r].activity {
            Activity::Kernel { gpu, .. } => *gpu,
            _ => return,
        };
        self.ranks[r].kernel_arrival = self.now;
        let ctx = GpuSchedContext {
            calib: &self.cfg.calib.gpu,
            load: self.pools[gpu].load,
            clients: self.pools[gpu].clients,
        };
        let extra = self.policy.switch_demand(&ctx);
        if extra > 0.0 {
            if let Activity::Kernel { remaining, .. } = &mut self.ranks[r].activity {
                *remaining += extra;
            }
            self.pools[gpu].switch_seconds += extra;
            if self.record {
                self.timeline.events.push(TimelineEvent {
                    rank: r,
                    gpu: Some(gpu),
                    label: "context_switch".into(),
                    kind: TimelineKind::ContextSwitch,
                    start: self.now,
                    end: self.now,
                });
            }
        }
    }

    /// Pop the next segment of rank `r` into its activity slot. A `Kernel`
    /// segment expands to a host lead-in (dispatch + launch latency)
    /// followed by the device part, staged through `pending_kernel`.
    /// Under overlapped transfers, `Transfer` segments enqueue on the
    /// rank's stream without blocking, and a `Kernel` segment synchronises
    /// on the stream first.
    fn advance_segment(&mut self, r: usize) {
        let now = self.now;
        let overlap = self.cfg.overlap_transfers;
        let mut barrier_arrival: Option<usize> = None;
        {
            let state = &mut self.ranks[r];
            let gpu = state.gpu;
            state.main_dirty = true;
            if let Some((remaining, util, name)) = state.pending_kernel.take() {
                state.cur_label = name;
                state.activity = Activity::Kernel {
                    gpu,
                    remaining,
                    util,
                };
                return;
            }
            state.activity = loop {
                let Some(seg) = state.segments.get(state.next) else {
                    if !state.stream.is_empty() {
                        state.cur_label = "stream_sync".into();
                        break Activity::StreamWait;
                    }
                    break Activity::Done;
                };
                // A kernel consumes data the stream may still be moving:
                // synchronise before the launch (decided before consuming
                // the segment, so the retry after the drain sees it again).
                if overlap && !state.stream.is_empty() && matches!(seg, Segment::Kernel { .. }) {
                    state.cur_label = "stream_sync".into();
                    break Activity::StreamWait;
                }
                state.next += 1;
                match seg {
                    Segment::Host { seconds, label } => {
                        if *seconds > 0.0 {
                            state.cur_label.clone_from(label);
                            break Activity::Host {
                                remaining: *seconds,
                            };
                        }
                    }
                    Segment::Kernel { profile, dispatch } => {
                        let lead = dispatch + self.cfg.calib.gpu.launch_latency;
                        state.pending_kernel = Some((
                            profile.device_seconds(&self.cfg.calib.gpu),
                            profile.solo_utilization(&self.cfg.calib.gpu).max(1e-6),
                            profile.name.clone(),
                        ));
                        state.cur_label = format!("{}/dispatch", profile.name);
                        break Activity::Host {
                            remaining: lead.max(1e-12),
                        };
                    }
                    Segment::Transfer { bytes, label, .. } => {
                        let t =
                            self.cfg.calib.gpu.pcie_latency + bytes / self.cfg.calib.gpu.pcie_bw;
                        if overlap {
                            state.stream.push_back(StreamXfer {
                                remaining: t,
                                label: label.clone(),
                            });
                            if state.stream.len() == 1 {
                                state.stream_head_start = now;
                            }
                            state.stream_dirty = true;
                            continue;
                        }
                        state.cur_label.clone_from(label);
                        break Activity::Transfer { gpu, remaining: t };
                    }
                    Segment::DeviceAlloc { seconds } => {
                        if *seconds > 0.0 {
                            state.cur_label = "accel_data_alloc".into();
                            break Activity::Host {
                                remaining: *seconds,
                            };
                        }
                    }
                    Segment::Collective { seconds, label, .. } => {
                        let seq = state.collective_seq;
                        state.collective_seq += 1;
                        state.cur_label.clone_from(label);
                        state.cur_start = now;
                        barrier_arrival = Some(seq);
                        break Activity::Barrier { seconds: *seconds };
                    }
                }
            };
        }
        if let Some(seq) = barrier_arrival {
            self.arrive_barrier(r, seq);
        }
    }

    /// Rank `r` reached collective barrier `seq`; release everyone when it
    /// was the last participant.
    fn arrive_barrier(&mut self, r: usize, seq: usize) {
        let group = &mut self.groups[seq];
        group.arrived += 1;
        group.waiting.push(r);
        if group.arrived < group.expected {
            return;
        }
        let waiting = std::mem::take(&mut self.groups[seq].waiting);
        for w in waiting {
            let wait = self.now - self.ranks[w].cur_start;
            self.collective_wait_seconds += wait;
            if self.record && wait > 0.0 {
                self.timeline.events.push(TimelineEvent {
                    rank: w,
                    gpu: None,
                    label: format!("{}/wait", self.ranks[w].cur_label),
                    kind: TimelineKind::Wait,
                    start: self.ranks[w].cur_start,
                    end: self.now,
                });
            }
            let node = self.ranks[w].node;
            let seconds = match self.ranks[w].activity {
                Activity::Barrier { seconds } => seconds,
                ref other => unreachable!("waiting rank must be at the barrier, was {other:?}"),
            };
            self.ranks[w].activity = Activity::Collective {
                node,
                remaining: seconds,
            };
            self.ranks[w].cur_start = self.now;
            self.ranks[w].main_dirty = true;
        }
    }

    fn into_output(self) -> SimOutput {
        SimOutput {
            rank_seconds: self.ranks.iter().map(|s| s.finish).collect(),
            gpu_busy: self.pools.iter().map(|p| p.busy).collect(),
            switch_seconds: self.pools.iter().map(|p| p.switch_seconds).collect(),
            nic_busy: self.nics.iter().map(|n| n.busy).collect(),
            collective_seconds: self.collective_seconds,
            collective_wait_seconds: self.collective_wait_seconds,
            timeline: self.timeline,
        }
    }
}

// `gpus_per_node` is carried for future per-node views of the global
// arrays; silence the field until a consumer lands.
impl Engine<'_> {
    #[allow(dead_code)]
    fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }
}
