//! Typed replay failures, following the `ResidencyError` convention from
//! the memory subsystem: every failure mode the engine can hit is a
//! variant with enough context to name the culprit, instead of a panic
//! (`expect("head exists")`) or a silently-poisoned result (a NaN charge
//! folding through `f64::max` into a bogus makespan).

use crate::engine::event::FlowId;
use crate::node::NodeOom;

/// Why a replay could not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The combined peak footprints of co-located ranks exceed a GPU's
    /// memory (checked before the event loop starts).
    Oom(NodeOom),
    /// A recorded charge is NaN or infinite. Validated at intake so the
    /// makespan reduction cannot silently drop the poisoned rank
    /// (`f64::max(NaN, x) == x`).
    NonFiniteCharge {
        /// Global rank whose trace carries the charge.
        rank: usize,
        /// Index of the offending segment in that rank's trace.
        segment: usize,
        /// The segment's accounting label.
        label: String,
        /// The non-finite value as recorded.
        value: f64,
    },
    /// A flow's completion event fired with nothing left to complete —
    /// the transfer stream was empty when its head was due.
    StreamUnderflow {
        /// Global rank whose flow misfired.
        rank: usize,
        /// Which of the rank's flows misfired.
        flow: FlowId,
    },
    /// The replay quiesced with ranks still blocked: a collective
    /// barrier that can never fill.
    Deadlock {
        /// Number of ranks left blocked.
        blocked: usize,
        /// The blocked ranks in global rank order: `(rank, collective
        /// label)` for every rank stuck at the barrier.
        waiting: Vec<(usize, String)>,
    },
}

/// Render the blocked-rank roster of a deadlock: `rank 1 at
/// 'mpi_allreduce', rank 3 at ...`, capped at [`DEADLOCK_ROSTER_CAP`]
/// entries. Shared by the runtime [`EngineError::Deadlock`] display and
/// the static analyzer's deadlock diagnostic so the two reports are
/// directly comparable.
pub fn fmt_deadlock_roster(waiting: &[(usize, String)]) -> String {
    let mut out = String::new();
    for (i, (rank, label)) in waiting.iter().take(DEADLOCK_ROSTER_CAP).enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("rank {rank} at '{label}'"));
    }
    if waiting.len() > DEADLOCK_ROSTER_CAP {
        out.push_str(&format!(", +{} more", waiting.len() - DEADLOCK_ROSTER_CAP));
    }
    out
}

/// Most waiting ranks named individually in a deadlock report.
pub const DEADLOCK_ROSTER_CAP: usize = 4;

impl EngineError {
    /// The OOM details, if this is an out-of-memory failure.
    pub fn as_oom(&self) -> Option<&NodeOom> {
        match self {
            EngineError::Oom(oom) => Some(oom),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Oom(oom) => oom.fmt(f),
            EngineError::NonFiniteCharge {
                rank,
                segment,
                label,
                value,
            } => write!(
                f,
                "rank {rank} segment {segment} ('{label}') carries a non-finite charge ({value})"
            ),
            EngineError::StreamUnderflow { rank, flow } => write!(
                f,
                "rank {rank} {} flow completed with an empty stream",
                flow.name()
            ),
            EngineError::Deadlock { blocked, waiting } => {
                write!(
                    f,
                    "replay deadlocked: {blocked} rank(s) blocked at a collective barrier that can never fill"
                )?;
                if !waiting.is_empty() {
                    write!(f, " ({})", fmt_deadlock_roster(waiting))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Oom(oom) => Some(oom),
            _ => None,
        }
    }
}

impl From<NodeOom> for EngineError {
    fn from(oom: NodeOom) -> Self {
        EngineError::Oom(oom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_culprit() {
        let e = EngineError::StreamUnderflow {
            rank: 3,
            flow: FlowId::Stream,
        };
        assert_eq!(
            e.to_string(),
            "rank 3 stream flow completed with an empty stream"
        );
        let e = EngineError::NonFiniteCharge {
            rank: 1,
            segment: 4,
            label: "k".into(),
            value: f64::NAN,
        };
        assert!(e.to_string().contains("rank 1 segment 4"));
        assert!(e.to_string().contains("NaN"));
        let e = EngineError::Deadlock {
            blocked: 2,
            waiting: vec![(1, "mpi_allreduce".into()), (3, "mpi_allreduce".into())],
        };
        assert!(e.to_string().contains("2 rank(s)"));
        assert!(e.to_string().contains("rank 1 at 'mpi_allreduce'"));
        assert!(e.to_string().contains("rank 3 at 'mpi_allreduce'"));
    }

    #[test]
    fn deadlock_roster_caps_long_lists() {
        let waiting: Vec<(usize, String)> =
            (0..7).map(|r| (r, "mpi_allreduce".to_string())).collect();
        let roster = fmt_deadlock_roster(&waiting);
        assert!(roster.contains("rank 3 at 'mpi_allreduce'"));
        assert!(!roster.contains("rank 4"));
        assert!(roster.ends_with("+3 more"));
        let e = EngineError::Deadlock {
            blocked: 7,
            waiting: Vec::new(),
        };
        assert_eq!(
            e.to_string(),
            "replay deadlocked: 7 rank(s) blocked at a collective barrier that can never fill"
        );
    }

    #[test]
    fn oom_wraps_with_source() {
        let oom = NodeOom {
            gpu: 5,
            demanded: 10,
            capacity: 4,
        };
        let e = EngineError::from(oom.clone());
        assert_eq!(e.as_oom(), Some(&oom));
        assert_eq!(e.to_string(), oom.to_string());
        assert!(std::error::Error::source(&e).is_some());
    }
}
