//! The discrete-event simulation engine.
//!
//! This module is the timing core of the simulator: an event heap on one
//! virtual clock ([`event`]), typed shared resources — per-GPU SM pools,
//! per-GPU PCIe links, per-node NICs ([`resources`]) — and pluggable
//! kernel arbitration ([`policy`]). [`crate::simulate_node`] and
//! [`crate::simulate_node_traced`] are thin single-node wrappers over it;
//! [`simulate_cluster`] replays many nodes against the same clock, with
//! inter-node collectives as network events so congestion emerges from
//! NIC occupancy rather than from a closed-form assumption.
//!
//! The event loop lives in the private `sim` submodule: between events every active flow
//! drains at a constant rate, each event is a predicted flow completion
//! (lazily invalidated when resource membership changes), and rates are
//! recomputed in global rank order at every event so the replay is
//! deterministic and — for the legacy single-node configurations —
//! bit-compatible with the analytic replay it replaced.

pub mod cluster;
pub mod event;
pub mod policy;
pub mod resources;
pub(crate) mod sim;

pub use cluster::{
    cluster_collective_bytes, simulate_cluster, simulate_cluster_traced, ClusterResult,
};
pub use policy::{GpuSchedContext, KernelReq, SchedulePolicy, SchedulePolicyKind};
pub use resources::{Nic, PcieLink, SmPool};
