//! The discrete-event simulation engine.
//!
//! This module is the timing core of the simulator: an event heap on one
//! virtual clock ([`event`]), typed shared resources — per-GPU SM pools,
//! per-GPU PCIe links, per-node NICs ([`resources`]) — and pluggable
//! kernel arbitration ([`policy`]). [`crate::simulate_node`] and
//! [`crate::simulate_node_traced`] are thin single-node wrappers over it;
//! [`simulate_cluster`] replays many nodes against the same clock, with
//! inter-node collectives as network events so congestion emerges from
//! NIC occupancy rather than from a closed-form assumption.
//!
//! The event loop lives in the private `sim` submodule: between events
//! every active flow drains at a constant rate, and each event is a
//! predicted flow completion (lazily invalidated when resource
//! membership changes, with bounded staleness — the calendar queue in
//! [`event`] compacts itself when stale entries outnumber live ones).
//! Traces are compiled to a flat per-node segment arena with interned
//! labels before the loop starts — split into calibration-invariant
//! recorded quantities and a per-calibration cost table, so one compile
//! can be replayed under many calibrations (the [`mod@crate::sweep`] hot
//! path) — accounting is settled lazily per resource, and nodes are
//! stepped as independent shards between collective barriers, so the
//! loop is allocation-free and touches only what each event changes. Replays are deterministic — independent of
//! shard scheduling — and, for the legacy single-node configurations,
//! match the analytic replay they replaced to ≤ 1e-9.
//!
//! Failures are typed: every entry point returns [`EngineError`] instead
//! of panicking mid-replay or folding NaN charges into the makespan.

pub mod cluster;
pub mod error;
pub mod event;
pub mod policy;
pub mod resources;
pub(crate) mod sim;

pub use cluster::{
    cluster_collective_bytes, simulate_cluster, simulate_cluster_traced, ClusterResult,
};
pub use error::EngineError;
pub use policy::{GpuSchedContext, KernelReq, SchedulePolicy, SchedulePolicyKind};
pub use resources::{Nic, PcieLink, SmPool};
