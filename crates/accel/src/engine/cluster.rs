//! Multi-node replay: `simulate_cluster` and its result types.
//!
//! A cluster replay runs N nodes' worth of rank traces against one event
//! loop. Ranks are numbered node-major (node `n`'s local rank `l` is
//! global rank `n * ranks_per_node + l` when nodes are symmetric), GPUs
//! likewise. Inter-node collectives appear in the traces as
//! [`Segment::Collective`] entries whose `seconds` is the *analytic* solo
//! cost from [`crate::comm`]; the engine turns them into a global barrier
//! followed by a network phase during which each node's NIC is shared
//! equally among that node's participating ranks — so with 8 ranks per
//! node the network phase stretches to ~8× the analytic cost, and
//! congestion *emerges* from link occupancy instead of being a formula's
//! assumption.

use crate::engine::error::EngineError;
use crate::engine::sim::{simulate, SimOutput};
use crate::node::{NodeConfig, NodeTimeline};
use crate::trace::{RankTrace, Segment};

/// What a whole-cluster replay produced.
#[derive(Debug, Clone, Default)]
pub struct ClusterResult {
    /// Wall-clock seconds until the last rank of the last node finished.
    pub wall_seconds: f64,
    /// Per-rank completion times, node-major global rank order.
    pub rank_seconds: Vec<f64>,
    /// Busy seconds per GPU, node-major global GPU order.
    pub gpu_busy: Vec<f64>,
    /// Context-switch seconds per GPU (non-MPS arbitration only).
    pub switch_seconds: Vec<f64>,
    /// Busy seconds per node NIC.
    pub nic_busy: Vec<f64>,
    /// Summed per-rank seconds inside collective network phases (the
    /// congestion-stretched cost, not the analytic solo cost).
    pub collective_seconds: f64,
    /// Summed per-rank seconds spent waiting at collective barriers
    /// (load-imbalance cost, separate from network cost).
    pub collective_wait_seconds: f64,
    /// Number of nodes replayed.
    pub nodes: usize,
}

impl ClusterResult {
    fn from_output(out: SimOutput, nodes: usize) -> Self {
        ClusterResult {
            wall_seconds: out.wall_seconds(),
            rank_seconds: out.rank_seconds,
            gpu_busy: out.gpu_busy,
            switch_seconds: out.switch_seconds,
            nic_busy: out.nic_busy,
            collective_seconds: out.collective_seconds,
            collective_wait_seconds: out.collective_wait_seconds,
            nodes,
        }
    }
}

/// Replay `node_traces` (one `Vec<RankTrace>` per node, every node using
/// the same [`NodeConfig`]) through the discrete-event engine.
///
/// Collective segments in the traces synchronise across *all* ranks of
/// all nodes; everything else contends only for its own node's GPUs,
/// PCIe links and NIC. Returns a typed [`EngineError`] — an OOM (with a
/// global GPU index) if any GPU's co-located peak footprints exceed its
/// memory, a `NonFiniteCharge` if a recorded duration is NaN/infinite.
pub fn simulate_cluster(
    node_traces: &[Vec<RankTrace>],
    cfg: &NodeConfig,
) -> Result<ClusterResult, EngineError> {
    let slices: Vec<&[RankTrace]> = node_traces.iter().map(|v| v.as_slice()).collect();
    let out = simulate(&slices, cfg, false)?;
    Ok(ClusterResult::from_output(out, node_traces.len()))
}

/// Like [`simulate_cluster`], but also records the merged wall-clock
/// timeline (rank spans and GPU occupancy samples use global indices).
pub fn simulate_cluster_traced(
    node_traces: &[Vec<RankTrace>],
    cfg: &NodeConfig,
) -> Result<(ClusterResult, NodeTimeline), EngineError> {
    let slices: Vec<&[RankTrace]> = node_traces.iter().map(|v| v.as_slice()).collect();
    let mut out = simulate(&slices, cfg, true)?;
    let timeline = std::mem::take(&mut out.timeline);
    Ok((ClusterResult::from_output(out, node_traces.len()), timeline))
}

/// Total bytes moved by collective segments across all ranks of all
/// nodes — convenience for reports.
pub fn cluster_collective_bytes(node_traces: &[Vec<RankTrace>]) -> f64 {
    node_traces
        .iter()
        .flatten()
        .flat_map(|t| &t.segments)
        .map(|s| match s {
            Segment::Collective { bytes, .. } => *bytes,
            _ => 0.0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{simulate_node, TimelineKind};
    use crate::profile::KernelProfile;

    fn host(seconds: f64) -> Segment {
        Segment::Host {
            seconds,
            label: "h".into(),
        }
    }

    fn coll(seconds: f64) -> Segment {
        Segment::Collective {
            seconds,
            bytes: 1e6,
            label: "mpi_allreduce".into(),
        }
    }

    fn trace(segments: Vec<Segment>) -> RankTrace {
        RankTrace {
            segments,
            ..RankTrace::default()
        }
    }

    #[test]
    fn collective_free_cluster_matches_simulate_node_per_node() {
        let cfg = NodeConfig::default();
        let k = KernelProfile::uniform("k", 1e9, 100.0, 8.0);
        let mk = || {
            trace(vec![
                host(0.01),
                Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 1e-5,
                },
            ])
        };
        let node = simulate_node(&[mk(), mk()], &cfg).unwrap();
        let cluster = simulate_cluster(&[vec![mk(), mk()], vec![mk(), mk()]], &cfg).unwrap();
        // Independent identical nodes: same wall, per-node resources
        // concatenated node-major.
        assert!((cluster.wall_seconds - node.wall_seconds).abs() < 1e-12);
        assert_eq!(cluster.rank_seconds.len(), 4);
        assert_eq!(cluster.gpu_busy.len(), 8);
        assert!((cluster.gpu_busy[0] - node.gpu_busy[0]).abs() < 1e-12);
        assert!((cluster.gpu_busy[4] - node.gpu_busy[0]).abs() < 1e-12);
        assert_eq!(cluster.collective_seconds, 0.0);
        assert_eq!(cluster.nic_busy, vec![0.0, 0.0]);
    }

    #[test]
    fn nic_sharing_stretches_collectives() {
        let cfg = NodeConfig::default();
        let s = 0.01;
        // One rank per node: each NIC serves one flow, network phase = solo.
        let spread = simulate_cluster(&vec![vec![trace(vec![coll(s)])]; 4], &cfg).unwrap();
        assert!(
            (spread.wall_seconds - s).abs() < 1e-9,
            "{} vs {s}",
            spread.wall_seconds
        );
        // Four ranks on one node: the NIC is shared 4 ways, so the same
        // analytic cost takes 4x the wall time — congestion emerges.
        let packed = simulate_cluster(&[vec![trace(vec![coll(s)]); 4]], &cfg).unwrap();
        assert!(
            (packed.wall_seconds - 4.0 * s).abs() < 1e-9,
            "{} vs {}",
            packed.wall_seconds,
            4.0 * s
        );
        assert!((packed.nic_busy[0] - 4.0 * s).abs() < 1e-9);
        assert!((packed.collective_seconds - 16.0 * s).abs() < 1e-9);
    }

    #[test]
    fn collectives_barrier_across_nodes() {
        let cfg = NodeConfig::default();
        let s = 0.01;
        let slow = trace(vec![host(1.0), coll(s)]);
        let fast = trace(vec![coll(s)]);
        let (res, tl) = simulate_cluster_traced(&[vec![fast], vec![slow]], &cfg).unwrap();
        // The fast rank waits at the barrier for the slow one; both then
        // spend the network phase concurrently on their own NICs.
        assert!(
            (res.wall_seconds - (1.0 + s)).abs() < 1e-9,
            "{} vs {}",
            res.wall_seconds,
            1.0 + s
        );
        assert!((res.collective_wait_seconds - 1.0).abs() < 1e-9);
        let waits: Vec<_> = tl
            .events
            .iter()
            .filter(|e| e.kind == TimelineKind::Wait)
            .collect();
        assert_eq!(waits.len(), 1);
        assert_eq!(waits[0].rank, 0);
        assert_eq!(waits[0].label, "mpi_allreduce/wait");
        let colls = tl
            .events
            .iter()
            .filter(|e| e.kind == TimelineKind::Collective)
            .count();
        assert_eq!(colls, 2);
    }

    #[test]
    fn ragged_collective_counts_deadlock_and_name_the_waiter() {
        // One rank performs two collectives, the other only one: under
        // MPI semantics the second barrier waits on a rank that already
        // finished its collectives, so the job hangs. The typed error
        // names who is stuck and at which collective.
        let cfg = NodeConfig::default();
        let s = 0.001;
        let a = trace(vec![coll(s), coll(s)]);
        let b = trace(vec![coll(s)]);
        let err = simulate_cluster(&[vec![a, b]], &cfg).unwrap_err();
        assert_eq!(
            err,
            EngineError::Deadlock {
                blocked: 1,
                waiting: vec![(0, "mpi_allreduce".into())],
            }
        );
        assert!(err.to_string().contains("rank 0 at 'mpi_allreduce'"));
    }

    #[test]
    fn collective_free_ranks_do_not_join_barriers() {
        // A rank with no collectives at all is outside the collective
        // communicator: peers synchronise without it.
        let cfg = NodeConfig::default();
        let s = 0.001;
        let a = trace(vec![coll(s)]);
        let b = trace(vec![coll(s)]);
        let c = trace(vec![host(10.0 * s)]);
        let res = simulate_cluster(&[vec![a, b, c]], &cfg).unwrap();
        assert!(res.wall_seconds >= 10.0 * s);
    }

    #[test]
    fn collective_bytes_sum_across_nodes() {
        let traces = vec![vec![trace(vec![coll(0.1)]); 2]; 3];
        assert_eq!(cluster_collective_bytes(&traces), 6e6);
    }
}
