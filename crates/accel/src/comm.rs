//! Inter-node communication cost model.
//!
//! The paper's large benchmark (Fig. 5) runs on 8 nodes and its reported
//! runtime "includes the MPI communication cost". Map-making reduces
//! per-rank partial sky maps with an allreduce each conjugate-gradient
//! iteration; this module prices those collectives with the standard
//! latency–bandwidth models for ring/recursive-doubling algorithms.

use crate::calib::NetCalib;

/// Seconds for an allreduce of `bytes` across `ranks` processes using the
/// ring algorithm (bandwidth-optimal for large messages):
/// `2·(n−1)/n · bytes / bw + 2·(n−1) · latency`.
pub fn allreduce_seconds(net: &NetCalib, ranks: u32, bytes: f64) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let n = ranks as f64;
    2.0 * (n - 1.0) / n * bytes / net.bw + 2.0 * (n - 1.0) * net.latency
}

/// Seconds for a reduce-scatter of `bytes` (ring): `(n−1)/n · bytes / bw`.
pub fn reduce_scatter_seconds(net: &NetCalib, ranks: u32, bytes: f64) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let n = ranks as f64;
    (n - 1.0) / n * bytes / net.bw + (n - 1.0) * net.latency
}

/// Seconds for a broadcast of `bytes` (binomial tree):
/// `log2(n) · (latency + bytes / bw)`.
pub fn broadcast_seconds(net: &NetCalib, ranks: u32, bytes: f64) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let steps = (ranks as f64).log2().ceil();
    steps * (net.latency + bytes / net.bw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetCalib {
        NetCalib::default()
    }

    #[test]
    fn single_rank_is_free() {
        assert_eq!(allreduce_seconds(&net(), 1, 1e9), 0.0);
        assert_eq!(broadcast_seconds(&net(), 1, 1e9), 0.0);
        assert_eq!(reduce_scatter_seconds(&net(), 1, 1e9), 0.0);
    }

    #[test]
    fn allreduce_approaches_twice_bandwidth_time() {
        // For large n and large messages the ring allreduce costs
        // ~2·bytes/bw.
        let bytes = 1e10;
        let t = allreduce_seconds(&net(), 1024, bytes);
        let lower = 2.0 * bytes / net().bw * (1023.0 / 1024.0);
        assert!(t >= lower);
        assert!(t < 1.1 * (2.0 * bytes / net().bw) + 3.0);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let small = allreduce_seconds(&net(), 128, 8.0);
        let expected_latency = 2.0 * 127.0 * net().latency;
        assert!((small - expected_latency).abs() / expected_latency < 0.01);
    }

    #[test]
    fn costs_grow_with_ranks() {
        let bytes = 1e8;
        let t2 = allreduce_seconds(&net(), 2, bytes);
        let t16 = allreduce_seconds(&net(), 16, bytes);
        assert!(t16 > t2);
        let b2 = broadcast_seconds(&net(), 2, bytes);
        let b16 = broadcast_seconds(&net(), 16, bytes);
        assert!(b16 > b2);
    }

    #[test]
    fn reduce_scatter_is_half_an_allreduce() {
        let bytes = 1e9;
        let rs = reduce_scatter_seconds(&net(), 64, bytes);
        let ar = allreduce_seconds(&net(), 64, bytes);
        assert!((ar / rs - 2.0).abs() < 0.01);
    }
}
