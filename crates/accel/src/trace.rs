//! Trace records: what a simulated process did, in order.
//!
//! A [`crate::context::Context`] appends one [`Segment`] per action. The
//! node-level replay ([`crate::node`]) walks these sequentially per rank —
//! a segment cannot start before the previous one of the same rank
//! finished, which models the synchronous launch style both the paper's
//! ports use.

use crate::profile::KernelProfile;

/// Direction of a host↔device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferDir {
    /// Host to device (`accel_data_update_device` in the paper's Fig. 6).
    HostToDevice,
    /// Device to host (`accel_data_update_host`).
    DeviceToHost,
}

impl TransferDir {
    /// The paper's Fig. 6 label for this operation.
    pub fn label(self) -> &'static str {
        match self {
            TransferDir::HostToDevice => "accel_data_update_device",
            TransferDir::DeviceToHost => "accel_data_update_host",
        }
    }
}

/// One step of a rank's timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// Host-side computation (serial orchestration, unported kernels, CPU
    /// kernel implementations) for `seconds` of host time.
    Host { seconds: f64, label: String },
    /// A kernel launch on the rank's device. `dispatch` is the host-side
    /// framework overhead paid before the device sees the kernel.
    Kernel {
        profile: KernelProfile,
        dispatch: f64,
    },
    /// A PCIe transfer of `bytes` in direction `dir`.
    Transfer {
        bytes: f64,
        dir: TransferDir,
        label: String,
    },
    /// A device-side allocation or free (latency only; capacity accounting
    /// happens in [`crate::context::Context`]).
    DeviceAlloc { seconds: f64 },
}

impl Segment {
    /// The accounting label used for per-operation breakdowns.
    pub fn label(&self) -> &str {
        match self {
            Segment::Host { label, .. } => label,
            Segment::Kernel { profile, .. } => &profile.name,
            Segment::Transfer { label, .. } => label,
            Segment::DeviceAlloc { .. } => "accel_data_alloc",
        }
    }
}

/// A whole rank's recorded timeline plus its peak device-memory footprint.
#[derive(Debug, Clone, Default)]
pub struct RankTrace {
    /// Ordered segments.
    pub segments: Vec<Segment>,
    /// Peak bytes simultaneously resident on the device.
    pub peak_device_bytes: u64,
}

impl RankTrace {
    /// Sum of all host seconds in the trace.
    pub fn host_seconds(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Host { seconds, .. } => *seconds,
                Segment::Kernel { dispatch, .. } => *dispatch,
                _ => 0.0,
            })
            .sum()
    }

    /// Number of kernel launches in the trace.
    pub fn kernel_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Kernel { .. }))
            .count()
    }

    /// Total bytes transferred over PCIe (both directions).
    pub fn transfer_bytes(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Transfer { bytes, .. } => *bytes,
                _ => 0.0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accounting() {
        let mut t = RankTrace::default();
        t.segments.push(Segment::Host {
            seconds: 1.5,
            label: "serial".into(),
        });
        t.segments.push(Segment::Kernel {
            profile: KernelProfile::uniform("k", 10.0, 1.0, 8.0),
            dispatch: 0.5,
        });
        t.segments.push(Segment::Transfer {
            bytes: 100.0,
            dir: TransferDir::HostToDevice,
            label: TransferDir::HostToDevice.label().into(),
        });
        assert_eq!(t.host_seconds(), 2.0);
        assert_eq!(t.kernel_count(), 1);
        assert_eq!(t.transfer_bytes(), 100.0);
    }

    #[test]
    fn labels_match_the_papers_figure() {
        assert_eq!(TransferDir::HostToDevice.label(), "accel_data_update_device");
        assert_eq!(TransferDir::DeviceToHost.label(), "accel_data_update_host");
    }
}
