//! Trace records: what a simulated process did, in order.
//!
//! A [`crate::context::Context`] appends one [`Segment`] per action. The
//! node-level replay ([`crate::node`]) walks these sequentially per rank —
//! a segment cannot start before the previous one of the same rank
//! finished, which models the synchronous launch style both the paper's
//! ports use.

use crate::profile::KernelProfile;

/// Direction of a host↔device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferDir {
    /// Host to device (`accel_data_update_device` in the paper's Fig. 6).
    HostToDevice,
    /// Device to host (`accel_data_update_host`).
    DeviceToHost,
}

impl TransferDir {
    /// The paper's Fig. 6 label for this operation.
    pub fn label(self) -> &'static str {
        match self {
            TransferDir::HostToDevice => "accel_data_update_device",
            TransferDir::DeviceToHost => "accel_data_update_host",
        }
    }
}

/// One step of a rank's timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// Host-side computation (serial orchestration, unported kernels, CPU
    /// kernel implementations) for `seconds` of host time.
    Host { seconds: f64, label: String },
    /// A kernel launch on the rank's device. `dispatch` is the host-side
    /// framework overhead paid before the device sees the kernel.
    Kernel {
        profile: KernelProfile,
        dispatch: f64,
    },
    /// A PCIe transfer of `bytes` in direction `dir`.
    Transfer {
        bytes: f64,
        dir: TransferDir,
        label: String,
    },
    /// A device-side allocation or free (latency only; capacity accounting
    /// happens in [`crate::context::Context`]).
    DeviceAlloc { seconds: f64 },
    /// An inter-node collective (e.g. an MPI allreduce) moving `bytes`
    /// through the node NIC. `seconds` is the *analytic solo* network cost
    /// (the [`crate::comm`] formulas, which assume the whole NIC); the
    /// engine barriers all participating ranks and then shares each NIC
    /// among its node's ranks, so the replayed cost is congestion-aware.
    Collective {
        seconds: f64,
        bytes: f64,
        label: String,
    },
}

impl Segment {
    /// The accounting label used for per-operation breakdowns.
    pub fn label(&self) -> &str {
        match self {
            Segment::Host { label, .. } => label,
            Segment::Kernel { profile, .. } => &profile.name,
            Segment::Transfer { label, .. } => label,
            Segment::DeviceAlloc { .. } => "accel_data_alloc",
            Segment::Collective { label, .. } => label,
        }
    }
}

/// An interned label: an index into a [`LabelTable`].
///
/// The discrete-event engine replays hundreds of thousands of segments,
/// and cloning each segment's label `String` per event dominated its
/// profile. Labels are interned once at replay setup; the hot loop moves
/// only these copyable ids, and the strings are resolved back when the
/// recorded timeline is assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelId(u32);

impl LabelId {
    /// The table slot, for engine-side side tables keyed by label.
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// FNV-1a: labels are short ASCII identifiers interned on the replay's
/// setup path, where the default SipHash is measurably slower without
/// buying anything (the table is rebuilt per replay, so there is no
/// adversarial-key exposure).
#[derive(Debug, Clone, Copy, Default)]
struct FnvBuild;

#[derive(Debug)]
struct Fnv(u64);

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = Fnv;
    fn build_hasher(&self) -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Chunked FNV-1a over little-endian u64 words (zero-padded tail):
        // nonstandard but internally consistent, and 8x fewer multiplies
        // on the setup hot path than the byte-at-a-time original.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 ^= u64::from_le_bytes(word);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// The string table backing [`LabelId`]s.
#[derive(Debug, Clone, Default)]
pub struct LabelTable {
    names: Vec<String>,
    index: std::collections::HashMap<String, u32, FnvBuild>,
}

impl LabelTable {
    /// Intern `s`, returning the existing id if it was seen before.
    pub fn intern(&mut self, s: &str) -> LabelId {
        if let Some(&i) = self.index.get(s) {
            return LabelId(i);
        }
        let i = u32::try_from(self.names.len()).expect("label table overflow");
        self.names.push(s.to_string());
        self.index.insert(s.to_string(), i);
        LabelId(i)
    }

    /// The string `id` was interned from.
    pub fn resolve(&self, id: LabelId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Kind of a timed [`SpanEvent`] on a rank's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Host-side computation.
    Host,
    /// Device kernel (dispatch + launch latency + solo device time).
    Kernel,
    /// PCIe transfer.
    Transfer,
    /// Device allocation (instant when pool-hit).
    Alloc,
    /// Device free (instant).
    Free,
    /// An inter-node collective (analytic solo network cost).
    Collective,
    /// A failed allocation — device out of memory (instant).
    Oom,
    /// A phase opened with [`crate::context::Context::push_phase`]: spans
    /// everything charged between push and pop.
    Phase,
}

impl SpanKind {
    /// Stable lowercase name, used by the trace exporters.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Host => "host",
            SpanKind::Kernel => "kernel",
            SpanKind::Transfer => "transfer",
            SpanKind::Alloc => "alloc",
            SpanKind::Free => "free",
            SpanKind::Collective => "collective",
            SpanKind::Oom => "oom",
            SpanKind::Phase => "phase",
        }
    }

    /// Whether this kind's duration is part of the rank's solo-estimate
    /// wall time (phases overlap their contents; frees and OOMs are
    /// instants).
    pub fn is_timed(self) -> bool {
        matches!(
            self,
            SpanKind::Host
                | SpanKind::Kernel
                | SpanKind::Transfer
                | SpanKind::Alloc
                | SpanKind::Collective
        )
    }
}

/// One timed span (or instant event) on a rank's virtual clock. The
/// [`crate::context::Context`] records one per charge, giving every
/// [`Segment`] a start time, a duration and the phase scope it was charged
/// under — the raw material for the Chrome-trace export.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// What happened.
    pub kind: SpanKind,
    /// Accounting label (same vocabulary as [`Segment::label`]).
    pub label: String,
    /// `/`-joined phase stack at record time (empty at top level).
    pub scope: String,
    /// Virtual seconds since the rank started.
    pub start: f64,
    /// Span length in virtual seconds (0 for instants).
    pub dur: f64,
    /// Bytes involved (transfers, allocations, frees, OOM requests).
    pub bytes: f64,
}

/// A whole rank's recorded timeline plus its peak device-memory footprint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTrace {
    /// Ordered segments.
    pub segments: Vec<Segment>,
    /// Timed spans mirroring `segments` on the virtual clock, plus phase
    /// and memory events the segment list does not carry.
    pub events: Vec<SpanEvent>,
    /// Peak bytes simultaneously resident on the device.
    pub peak_device_bytes: u64,
}

impl RankTrace {
    /// Sum of all host seconds in the trace.
    pub fn host_seconds(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Host { seconds, .. } => *seconds,
                Segment::Kernel { dispatch, .. } => *dispatch,
                _ => 0.0,
            })
            .sum()
    }

    /// Number of kernel launches in the trace.
    pub fn kernel_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Kernel { .. }))
            .count()
    }

    /// Total bytes transferred over PCIe (both directions).
    pub fn transfer_bytes(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Transfer { bytes, .. } => *bytes,
                _ => 0.0,
            })
            .sum()
    }

    /// Summed span seconds per label over the timed event kinds — by
    /// construction equal to the per-label `seconds` the owning context's
    /// stats report (the trace-export round-trip invariant).
    pub fn span_seconds_by_label(&self) -> std::collections::BTreeMap<String, f64> {
        let mut out = std::collections::BTreeMap::new();
        for e in &self.events {
            if e.kind.is_timed() {
                *out.entry(e.label.clone()).or_insert(0.0) += e.dur;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accounting() {
        let mut t = RankTrace::default();
        t.segments.push(Segment::Host {
            seconds: 1.5,
            label: "serial".into(),
        });
        t.segments.push(Segment::Kernel {
            profile: KernelProfile::uniform("k", 10.0, 1.0, 8.0),
            dispatch: 0.5,
        });
        t.segments.push(Segment::Transfer {
            bytes: 100.0,
            dir: TransferDir::HostToDevice,
            label: TransferDir::HostToDevice.label().into(),
        });
        assert_eq!(t.host_seconds(), 2.0);
        assert_eq!(t.kernel_count(), 1);
        assert_eq!(t.transfer_bytes(), 100.0);
    }

    #[test]
    fn labels_match_the_papers_figure() {
        assert_eq!(
            TransferDir::HostToDevice.label(),
            "accel_data_update_device"
        );
        assert_eq!(TransferDir::DeviceToHost.label(), "accel_data_update_host");
    }

    #[test]
    fn label_table_interns_each_string_once() {
        let mut t = LabelTable::default();
        assert!(t.is_empty());
        let a = t.intern("kernel_a");
        let b = t.intern("kernel_b");
        assert_ne!(a, b);
        assert_eq!(t.intern("kernel_a"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "kernel_a");
        assert_eq!(t.resolve(b), "kernel_b");
    }

    #[test]
    fn span_seconds_sum_timed_kinds_only() {
        let mut t = RankTrace::default();
        let span = |kind, label: &str, dur| SpanEvent {
            kind,
            label: label.into(),
            scope: String::new(),
            start: 0.0,
            dur,
            bytes: 0.0,
        };
        t.events.push(span(SpanKind::Host, "h", 1.0));
        t.events.push(span(SpanKind::Host, "h", 2.0));
        t.events.push(span(SpanKind::Kernel, "k", 4.0));
        t.events.push(span(SpanKind::Phase, "phase", 100.0));
        t.events.push(span(SpanKind::Oom, "oom", 50.0));
        let by = t.span_seconds_by_label();
        assert_eq!(by["h"], 3.0);
        assert_eq!(by["k"], 4.0);
        assert!(!by.contains_key("phase"));
        assert!(!by.contains_key("oom"));
    }
}
