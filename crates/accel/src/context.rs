//! Per-process simulation context: the recording side of the simulator.
//!
//! Each simulated MPI rank owns one [`Context`]. Framework code calls into
//! it to charge host compute, launch kernels, move data and account device
//! memory; the context appends [`Segment`]s to a [`RankTrace`] and keeps
//! aggregate per-label statistics that the figure harness reads back (the
//! paper's Fig. 6 per-kernel breakdown).

use std::collections::BTreeMap;

use crate::calib::NodeCalib;
use crate::profile::KernelProfile;
use crate::trace::{RankTrace, Segment, TransferDir};

/// Device out-of-memory, mirroring the paper's JAX runs that "do not fit on
/// GPU memory when running with one and 64 processes".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryError {
    /// Bytes the failing allocation requested.
    pub requested: u64,
    /// Bytes already resident.
    pub in_use: u64,
    /// Device capacity available to this rank.
    pub capacity: u64,
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} B with {} B in use of {} B",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for MemoryError {}

/// The recording context for one simulated process.
#[derive(Debug, Clone)]
pub struct Context {
    /// Calibration shared by everything this process touches.
    pub calib: NodeCalib,
    /// Device-memory capacity available to this rank (the node model sets
    /// this to `gpu.mem_bytes / ranks_per_gpu` so OOM emerges from
    /// oversubscription).
    pub device_capacity: u64,
    trace: RankTrace,
    device_in_use: u64,
    by_label: BTreeMap<String, LabelStats>,
}

/// Aggregate statistics for one accounting label.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LabelStats {
    /// Number of segments recorded under this label.
    pub calls: u64,
    /// Estimated solo seconds (device kernels: solo wall time; host
    /// segments: host seconds; transfers: PCIe time). The node replay
    /// refines these with contention; these per-label numbers drive the
    /// per-kernel figure.
    pub seconds: f64,
    /// Bytes moved (transfers only).
    pub bytes: f64,
}

impl Context {
    /// A context with the whole device to itself.
    pub fn new(calib: NodeCalib) -> Self {
        let cap = calib.gpu.mem_bytes;
        Self::with_capacity(calib, cap)
    }

    /// A context limited to `device_capacity` bytes of device memory.
    pub fn with_capacity(calib: NodeCalib, device_capacity: u64) -> Self {
        Self {
            calib,
            device_capacity,
            trace: RankTrace::default(),
            device_in_use: 0,
            by_label: BTreeMap::new(),
        }
    }

    /// Charge `seconds` of host computation under `label`.
    pub fn host_compute(&mut self, label: impl Into<String>, seconds: f64) {
        let label = label.into();
        self.stat(&label).calls += 1;
        self.stat(&label).seconds += seconds;
        self.trace.segments.push(Segment::Host { seconds, label });
    }

    /// Launch a kernel with host-side `dispatch` overhead.
    pub fn launch(&mut self, profile: KernelProfile, dispatch: f64) {
        let solo = profile.solo_seconds(&self.calib.gpu) + dispatch + self.calib.gpu.launch_latency;
        let s = self.stat(&profile.name);
        s.calls += 1;
        s.seconds += solo;
        self.trace.segments.push(Segment::Kernel { profile, dispatch });
    }

    /// Record a host↔device transfer of `bytes` under the standard
    /// `accel_data_*` labels.
    pub fn transfer(&mut self, bytes: f64, dir: TransferDir) {
        self.transfer_labeled(bytes, dir, dir.label());
    }

    /// Record a transfer under a custom label (e.g. `accel_data_reset` for
    /// device-side zeroing, which the paper charges separately).
    pub fn transfer_labeled(&mut self, bytes: f64, dir: TransferDir, label: impl Into<String>) {
        let label = label.into();
        let seconds = self.calib.gpu.pcie_latency + bytes / self.calib.gpu.pcie_bw;
        let s = self.stat(&label);
        s.calls += 1;
        s.seconds += seconds;
        s.bytes += bytes;
        self.trace.segments.push(Segment::Transfer { bytes, dir, label });
    }

    /// Account a device allocation of `bytes`; charges allocator latency
    /// unless `pooled` (a pool hit costs effectively nothing, the reason
    /// both ports implement pools).
    pub fn device_alloc(&mut self, bytes: u64, pooled: bool) -> Result<(), MemoryError> {
        if self.device_in_use + bytes > self.device_capacity {
            return Err(MemoryError {
                requested: bytes,
                in_use: self.device_in_use,
                capacity: self.device_capacity,
            });
        }
        self.device_in_use += bytes;
        self.trace.peak_device_bytes = self.trace.peak_device_bytes.max(self.device_in_use);
        let seconds = if pooled { 0.0 } else { self.calib.gpu.alloc_latency };
        if seconds > 0.0 {
            self.trace.segments.push(Segment::DeviceAlloc { seconds });
            let s = self.stat("accel_data_alloc");
            s.calls += 1;
            s.seconds += seconds;
        }
        Ok(())
    }

    /// Release `bytes` of device memory.
    pub fn device_free(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.device_in_use, "free of {bytes} exceeds usage");
        self.device_in_use = self.device_in_use.saturating_sub(bytes);
    }

    /// Bytes currently resident on the device.
    pub fn device_in_use(&self) -> u64 {
        self.device_in_use
    }

    /// Peak bytes ever resident.
    pub fn peak_device_bytes(&self) -> u64 {
        self.trace.peak_device_bytes
    }

    /// The recorded timeline.
    pub fn trace(&self) -> &RankTrace {
        &self.trace
    }

    /// Consume the context, returning its trace.
    pub fn into_trace(self) -> RankTrace {
        self.trace
    }

    /// Per-label statistics (kernel names, `accel_data_*` operations,
    /// host labels), sorted by label.
    pub fn stats(&self) -> &BTreeMap<String, LabelStats> {
        &self.by_label
    }

    /// Total solo-estimate seconds across all labels.
    pub fn total_seconds(&self) -> f64 {
        self.by_label.values().map(|s| s.seconds).sum()
    }

    fn stat(&mut self, label: &str) -> &mut LabelStats {
        if !self.by_label.contains_key(label) {
            self.by_label.insert(label.to_string(), LabelStats::default());
        }
        self.by_label.get_mut(label).expect("just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::new(NodeCalib::default())
    }

    #[test]
    fn memory_accounting_and_oom() {
        let mut c = Context::with_capacity(NodeCalib::default(), 1000);
        c.device_alloc(400, true).unwrap();
        c.device_alloc(600, true).unwrap();
        assert_eq!(c.device_in_use(), 1000);
        let err = c.device_alloc(1, true).unwrap_err();
        assert_eq!(err.in_use, 1000);
        c.device_free(600);
        assert_eq!(c.device_in_use(), 400);
        c.device_alloc(500, true).unwrap();
        assert_eq!(c.peak_device_bytes(), 1000);
    }

    #[test]
    fn pooled_allocs_are_free_of_latency() {
        let mut c = ctx();
        c.device_alloc(100, true).unwrap();
        assert!(c.stats().get("accel_data_alloc").is_none());
        c.device_alloc(100, false).unwrap();
        let s = c.stats()["accel_data_alloc"];
        assert_eq!(s.calls, 1);
        assert!(s.seconds > 0.0);
    }

    #[test]
    fn per_label_stats_accumulate() {
        let mut c = ctx();
        c.host_compute("serial", 1.0);
        c.host_compute("serial", 2.0);
        c.launch(KernelProfile::uniform("scan_map", 1e6, 10.0, 24.0), 1e-5);
        c.transfer(1e6, TransferDir::HostToDevice);
        c.transfer(2e6, TransferDir::HostToDevice);
        assert_eq!(c.stats()["serial"].calls, 2);
        assert_eq!(c.stats()["serial"].seconds, 3.0);
        assert_eq!(c.stats()["scan_map"].calls, 1);
        let t = c.stats()["accel_data_update_device"];
        assert_eq!(t.calls, 2);
        assert_eq!(t.bytes, 3e6);
        assert!(t.seconds > 3e6 / c.calib.gpu.pcie_bw);
        assert_eq!(c.trace().kernel_count(), 1);
    }

    #[test]
    fn kernel_stat_includes_dispatch_and_launch() {
        let mut c = ctx();
        let k = KernelProfile::uniform("k", 1e6, 10.0, 24.0);
        let solo = k.solo_seconds(&c.calib.gpu);
        c.launch(k, 1e-3);
        let s = c.stats()["k"];
        assert!(s.seconds > solo + 1e-3);
    }
}
