//! Per-process simulation context: the recording side of the simulator.
//!
//! Each simulated MPI rank owns one [`Context`]. Framework code calls into
//! it to charge host compute, launch kernels, move data and account device
//! memory; the context appends [`Segment`]s to a [`RankTrace`] and keeps
//! aggregate per-label statistics that the figure harness reads back (the
//! paper's Fig. 6 per-kernel breakdown).

use std::collections::BTreeMap;

use crate::calib::NodeCalib;
use crate::profile::KernelProfile;
use crate::trace::{RankTrace, Segment, SpanEvent, SpanKind, TransferDir};

/// Device out-of-memory, mirroring the paper's JAX runs that "do not fit on
/// GPU memory when running with one and 64 processes".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryError {
    /// Bytes the failing allocation requested.
    pub requested: u64,
    /// Bytes already resident.
    pub in_use: u64,
    /// Device capacity available to this rank.
    pub capacity: u64,
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} B with {} B in use of {} B",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for MemoryError {}

/// The recording context for one simulated process.
#[derive(Debug, Clone)]
pub struct Context {
    /// Calibration shared by everything this process touches.
    pub calib: NodeCalib,
    /// Device-memory capacity available to this rank (the node model sets
    /// this to `gpu.mem_bytes / ranks_per_gpu` so OOM emerges from
    /// oversubscription).
    pub device_capacity: u64,
    trace: RankTrace,
    device_in_use: u64,
    by_label: BTreeMap<String, LabelStats>,
    /// Virtual seconds elapsed on this rank's solo-estimate clock.
    clock: f64,
    /// Open phases: `(label, start clock)`, innermost last.
    phases: Vec<(String, f64)>,
}

/// Aggregate statistics for one accounting label.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LabelStats {
    /// Number of segments recorded under this label.
    pub calls: u64,
    /// Estimated solo seconds (device kernels: solo wall time; host
    /// segments: host seconds; transfers: PCIe time). The node replay
    /// refines these with contention; these per-label numbers drive the
    /// per-kernel figure.
    pub seconds: f64,
    /// Bytes moved (transfers only).
    pub bytes: f64,
}

impl Context {
    /// A context with the whole device to itself.
    pub fn new(calib: NodeCalib) -> Self {
        let cap = calib.gpu.mem_bytes;
        Self::with_capacity(calib, cap)
    }

    /// A context limited to `device_capacity` bytes of device memory.
    pub fn with_capacity(calib: NodeCalib, device_capacity: u64) -> Self {
        Self {
            calib,
            device_capacity,
            trace: RankTrace::default(),
            device_in_use: 0,
            by_label: BTreeMap::new(),
            clock: 0.0,
            phases: Vec::new(),
        }
    }

    /// Virtual seconds elapsed on this rank's solo-estimate clock.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Open a phase: spans recorded until the matching [`Self::pop_phase`]
    /// carry it in their scope, and the phase itself is emitted as a
    /// [`SpanKind::Phase`] event covering push → pop on the virtual clock.
    pub fn push_phase(&mut self, label: impl Into<String>) {
        self.phases.push((label.into(), self.clock));
    }

    /// Close the innermost phase, emitting its span. No-op when no phase
    /// is open.
    pub fn pop_phase(&mut self) {
        if let Some((label, start)) = self.phases.pop() {
            let scope = self.scope();
            self.trace.events.push(SpanEvent {
                kind: SpanKind::Phase,
                label,
                scope,
                start,
                dur: self.clock - start,
                bytes: 0.0,
            });
        }
    }

    /// Number of open phases.
    pub fn phase_depth(&self) -> usize {
        self.phases.len()
    }

    /// Pop phases (emitting their spans) until `depth` remain — the
    /// early-exit cleanup for callers that error out mid-phase.
    pub fn truncate_phases(&mut self, depth: usize) {
        while self.phases.len() > depth {
            self.pop_phase();
        }
    }

    fn scope(&self) -> String {
        self.phases
            .iter()
            .map(|(l, _)| l.as_str())
            .collect::<Vec<_>>()
            .join("/")
    }

    /// Record a span of `dur` virtual seconds starting now, advancing the
    /// clock by its duration when timed.
    fn record(&mut self, kind: SpanKind, label: &str, dur: f64, bytes: f64) {
        let scope = self.scope();
        self.trace.events.push(SpanEvent {
            kind,
            label: label.to_string(),
            scope,
            start: self.clock,
            dur,
            bytes,
        });
        if kind.is_timed() {
            self.clock += dur;
        }
    }

    /// Charge `seconds` of host computation under `label`.
    pub fn host_compute(&mut self, label: impl Into<String>, seconds: f64) {
        let label = label.into();
        self.stat(&label).calls += 1;
        self.stat(&label).seconds += seconds;
        self.record(SpanKind::Host, &label, seconds, 0.0);
        self.trace.segments.push(Segment::Host { seconds, label });
    }

    /// Launch a kernel with host-side `dispatch` overhead.
    pub fn launch(&mut self, profile: KernelProfile, dispatch: f64) {
        let solo = profile.solo_seconds(&self.calib.gpu) + dispatch + self.calib.gpu.launch_latency;
        let s = self.stat(&profile.name);
        s.calls += 1;
        s.seconds += solo;
        self.record(SpanKind::Kernel, &profile.name.clone(), solo, 0.0);
        self.trace
            .segments
            .push(Segment::Kernel { profile, dispatch });
    }

    /// Record a host↔device transfer of `bytes` under the standard
    /// `accel_data_*` labels.
    pub fn transfer(&mut self, bytes: f64, dir: TransferDir) {
        self.transfer_labeled(bytes, dir, dir.label());
    }

    /// Record a transfer under a custom label (e.g. `accel_data_reset` for
    /// device-side zeroing, which the paper charges separately).
    pub fn transfer_labeled(&mut self, bytes: f64, dir: TransferDir, label: impl Into<String>) {
        let label = label.into();
        let seconds = self.calib.gpu.pcie_latency + bytes / self.calib.gpu.pcie_bw;
        let s = self.stat(&label);
        s.calls += 1;
        s.seconds += seconds;
        s.bytes += bytes;
        self.record(SpanKind::Transfer, &label, seconds, bytes);
        self.trace
            .segments
            .push(Segment::Transfer { bytes, dir, label });
    }

    /// Record an inter-node collective moving `bytes` at an analytic solo
    /// cost of `seconds` (from [`crate::comm`]). The engine's cluster
    /// replay barriers all participating ranks on this segment and shares
    /// the node NIC, so the replayed cost exceeds `seconds` under
    /// congestion; the solo estimate is what this rank's stats carry.
    pub fn collective(&mut self, label: impl Into<String>, bytes: f64, seconds: f64) {
        let label = label.into();
        let s = self.stat(&label);
        s.calls += 1;
        s.seconds += seconds;
        s.bytes += bytes;
        self.record(SpanKind::Collective, &label, seconds, bytes);
        self.trace.segments.push(Segment::Collective {
            seconds,
            bytes,
            label,
        });
    }

    /// Account a device allocation of `bytes`; charges allocator latency
    /// unless `pooled` (a pool hit costs effectively nothing, the reason
    /// both ports implement pools).
    pub fn device_alloc(&mut self, bytes: u64, pooled: bool) -> Result<(), MemoryError> {
        if self.device_in_use + bytes > self.device_capacity {
            self.record(SpanKind::Oom, "accel_oom", 0.0, bytes as f64);
            return Err(MemoryError {
                requested: bytes,
                in_use: self.device_in_use,
                capacity: self.device_capacity,
            });
        }
        self.device_in_use += bytes;
        self.trace.peak_device_bytes = self.trace.peak_device_bytes.max(self.device_in_use);
        let seconds = if pooled {
            0.0
        } else {
            self.calib.gpu.alloc_latency
        };
        if seconds > 0.0 {
            let s = self.stat("accel_data_alloc");
            s.calls += 1;
            s.seconds += seconds;
            self.record(SpanKind::Alloc, "accel_data_alloc", seconds, bytes as f64);
            self.trace.segments.push(Segment::DeviceAlloc { seconds });
        } else {
            // Pool hit: no time charged, but keep the event for the trace.
            self.record(
                SpanKind::Alloc,
                "accel_data_alloc_pooled",
                0.0,
                bytes as f64,
            );
        }
        Ok(())
    }

    /// Release `bytes` of device memory.
    pub fn device_free(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.device_in_use, "free of {bytes} exceeds usage");
        self.device_in_use = self.device_in_use.saturating_sub(bytes);
        self.record(SpanKind::Free, "accel_data_free", 0.0, bytes as f64);
    }

    /// Bytes currently resident on the device.
    pub fn device_in_use(&self) -> u64 {
        self.device_in_use
    }

    /// Peak bytes ever resident.
    pub fn peak_device_bytes(&self) -> u64 {
        self.trace.peak_device_bytes
    }

    /// The recorded timeline.
    pub fn trace(&self) -> &RankTrace {
        &self.trace
    }

    /// Consume the context, returning its trace.
    pub fn into_trace(self) -> RankTrace {
        self.trace
    }

    /// Per-label statistics (kernel names, `accel_data_*` operations,
    /// host labels), sorted by label.
    pub fn stats(&self) -> &BTreeMap<String, LabelStats> {
        &self.by_label
    }

    /// Total solo-estimate seconds across all labels.
    pub fn total_seconds(&self) -> f64 {
        self.by_label.values().map(|s| s.seconds).sum()
    }

    fn stat(&mut self, label: &str) -> &mut LabelStats {
        if !self.by_label.contains_key(label) {
            self.by_label
                .insert(label.to_string(), LabelStats::default());
        }
        self.by_label.get_mut(label).expect("just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::new(NodeCalib::default())
    }

    #[test]
    fn memory_accounting_and_oom() {
        let mut c = Context::with_capacity(NodeCalib::default(), 1000);
        c.device_alloc(400, true).unwrap();
        c.device_alloc(600, true).unwrap();
        assert_eq!(c.device_in_use(), 1000);
        let err = c.device_alloc(1, true).unwrap_err();
        assert_eq!(err.in_use, 1000);
        c.device_free(600);
        assert_eq!(c.device_in_use(), 400);
        c.device_alloc(500, true).unwrap();
        assert_eq!(c.peak_device_bytes(), 1000);
    }

    #[test]
    fn pooled_allocs_are_free_of_latency() {
        let mut c = ctx();
        c.device_alloc(100, true).unwrap();
        assert!(c.stats().get("accel_data_alloc").is_none());
        c.device_alloc(100, false).unwrap();
        let s = c.stats()["accel_data_alloc"];
        assert_eq!(s.calls, 1);
        assert!(s.seconds > 0.0);
    }

    #[test]
    fn per_label_stats_accumulate() {
        let mut c = ctx();
        c.host_compute("serial", 1.0);
        c.host_compute("serial", 2.0);
        c.launch(KernelProfile::uniform("scan_map", 1e6, 10.0, 24.0), 1e-5);
        c.transfer(1e6, TransferDir::HostToDevice);
        c.transfer(2e6, TransferDir::HostToDevice);
        assert_eq!(c.stats()["serial"].calls, 2);
        assert_eq!(c.stats()["serial"].seconds, 3.0);
        assert_eq!(c.stats()["scan_map"].calls, 1);
        let t = c.stats()["accel_data_update_device"];
        assert_eq!(t.calls, 2);
        assert_eq!(t.bytes, 3e6);
        assert!(t.seconds > 3e6 / c.calib.gpu.pcie_bw);
        assert_eq!(c.trace().kernel_count(), 1);
    }

    #[test]
    fn clock_advances_with_every_charge() {
        let mut c = ctx();
        assert_eq!(c.now(), 0.0);
        c.host_compute("a", 1.0);
        assert_eq!(c.now(), 1.0);
        c.transfer(1e6, TransferDir::HostToDevice);
        let after_transfer = c.now();
        assert!(after_transfer > 1.0);
        c.launch(KernelProfile::uniform("k", 1e6, 10.0, 24.0), 1e-5);
        assert!(c.now() > after_transfer);
        // Spans start back-to-back and cover the clock exactly.
        let events = &c.trace().events;
        let mut t = 0.0;
        for e in events.iter().filter(|e| e.kind.is_timed()) {
            assert!((e.start - t).abs() < 1e-15, "{} vs {}", e.start, t);
            t = e.start + e.dur;
        }
        assert!((t - c.now()).abs() < 1e-15);
    }

    #[test]
    fn span_seconds_match_label_stats() {
        let mut c = ctx();
        c.host_compute("serial", 1.5);
        c.host_compute("serial", 0.5);
        c.launch(KernelProfile::uniform("scan_map", 1e6, 10.0, 24.0), 1e-5);
        c.transfer(4e6, TransferDir::DeviceToHost);
        c.device_alloc(100, false).unwrap();
        let by_span = c.trace().span_seconds_by_label();
        for (label, stat) in c.stats() {
            let spans = by_span.get(label).copied().unwrap_or(0.0);
            assert!(
                (spans - stat.seconds).abs() < 1e-12,
                "{label}: spans {spans} vs stats {}",
                stat.seconds
            );
        }
    }

    #[test]
    fn phases_scope_spans_and_emit_phase_events() {
        let mut c = ctx();
        c.push_phase("pipeline");
        c.host_compute("setup", 1.0);
        c.push_phase("kernel[ScanMap]");
        c.host_compute("inner", 2.0);
        c.pop_phase();
        c.pop_phase();

        let events = &c.trace().events;
        let inner = events.iter().find(|e| e.label == "inner").unwrap();
        assert_eq!(inner.scope, "pipeline/kernel[ScanMap]");
        let phase = events
            .iter()
            .find(|e| e.kind == SpanKind::Phase && e.label == "kernel[ScanMap]")
            .unwrap();
        assert_eq!(phase.start, 1.0);
        assert_eq!(phase.dur, 2.0);
        assert_eq!(phase.scope, "pipeline");
        let outer = events
            .iter()
            .find(|e| e.kind == SpanKind::Phase && e.label == "pipeline")
            .unwrap();
        assert_eq!(outer.dur, 3.0);
        assert_eq!(c.phase_depth(), 0);
    }

    #[test]
    fn truncate_phases_closes_dangling_scopes() {
        let mut c = ctx();
        let depth = c.phase_depth();
        c.push_phase("a");
        c.push_phase("b");
        c.host_compute("x", 1.0);
        c.truncate_phases(depth);
        assert_eq!(c.phase_depth(), 0);
        let phases: Vec<_> = c
            .trace()
            .events
            .iter()
            .filter(|e| e.kind == SpanKind::Phase)
            .collect();
        assert_eq!(phases.len(), 2);
    }

    #[test]
    fn oom_and_free_are_recorded_as_instants() {
        let mut c = Context::with_capacity(NodeCalib::default(), 1000);
        c.device_alloc(800, true).unwrap();
        assert!(c.device_alloc(400, true).is_err());
        c.device_free(800);
        let events = &c.trace().events;
        let oom = events.iter().find(|e| e.kind == SpanKind::Oom).unwrap();
        assert_eq!(oom.bytes, 400.0);
        assert_eq!(oom.dur, 0.0);
        let free = events.iter().find(|e| e.kind == SpanKind::Free).unwrap();
        assert_eq!(free.bytes, 800.0);
    }

    #[test]
    fn kernel_stat_includes_dispatch_and_launch() {
        let mut c = ctx();
        let k = KernelProfile::uniform("k", 1e6, 10.0, 24.0);
        let solo = k.solo_seconds(&c.calib.gpu);
        c.launch(k, 1e-3);
        let s = c.stats()["k"];
        assert!(s.seconds > solo + 1e-3);
    }
}
